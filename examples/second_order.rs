//! Second-order effects: why interleaving matters.
//!
//! Reproduces the Fig. 8 / Fig. 9 comparison: a restricted algorithm that
//! only performs *immediately profitable* hoistings (Dhamdhere-style)
//! cannot remove the partially redundant `x := y+z`, because the blocking
//! `a := x+y` is not itself worth moving. The unrestricted assignment
//! motion phase moves the blocker anyway and the redundancy falls.
//!
//! ```sh
//! cargo run --example second_order
//! ```

use assignment_motion::alg::restricted::fig8_example;
use assignment_motion::prelude::*;

fn dynamic_cost(g: &FlowGraph, p: i64) -> u64 {
    run(
        g,
        &RunConfig::with_inputs(vec![("y", 3), ("z", 4), ("p", p)]),
    )
    .expr_evals
}

fn main() {
    let program = fig8_example();
    println!("== Input (Fig. 8) ==\n{}", to_text(&program));

    // Restricted: only immediately profitable hoistings.
    let mut restricted = program.clone();
    restricted.split_critical_edges();
    let stats = restricted_assignment_motion(&mut restricted);
    println!(
        "== Restricted AM (Dhamdhere-style) == accepted {} hoistings, rejected {}\n{}",
        stats.accepted,
        stats.rejected,
        to_text(&restricted)
    );

    // Unrestricted: the paper's assignment motion phase.
    let mut unrestricted = program.clone();
    unrestricted.split_critical_edges();
    let stats = assignment_motion(&mut unrestricted);
    println!(
        "== Unrestricted AM (Fig. 9b) == {} rounds\n{}",
        stats.rounds,
        to_text(&unrestricted)
    );

    for p in [0, 1] {
        println!(
            "branch p={p}: evaluations original={} restricted={} unrestricted={}",
            dynamic_cost(&program, p),
            dynamic_cost(&restricted, p),
            dynamic_cost(&unrestricted, p),
        );
    }

    // The headline: the restricted algorithm changed nothing; the
    // unrestricted one removed the join-block redundancy.
    assert_eq!(to_text(&program), {
        let mut baseline = program.clone();
        baseline.split_critical_edges();
        to_text(&baseline)
    });
    assert!(to_text(&restricted).contains("x := y+z\n  out(a,x)"));
    assert!(!to_text(&unrestricted).contains("x := y+z\n  out(a,x)"));
}
