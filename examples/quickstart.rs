//! Quickstart: run the paper's running example (Fig. 4) through the full
//! three-phase algorithm and watch each phase do its work.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use assignment_motion::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 4 of the paper.
    let program = parse(
        "start 1\nend 4\n\
         node 1 { y := c+d }\n\
         node 2 { branch x+z > y+i }\n\
         node 3 { y := c+d; x := y+z; i := i+x }\n\
         node 4 { x := y+z; x := c+d; out(i,x,y) }\n\
         edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2",
    )?;

    println!("== Input (Fig. 4) ==\n{}", to_text(&program));

    let result = optimize(&program);
    println!(
        "== After initialization (Fig. 12) ==\n{}",
        canonical_text(result.after_init.as_ref().expect("snapshots on"))
    );
    println!(
        "== After assignment motion (Fig. 14) ==\n{}",
        canonical_text(result.after_motion.as_ref().expect("snapshots on"))
    );
    println!(
        "== Final program (Fig. 5 / 15) ==\n{}",
        canonical_text(&result.program)
    );

    println!(
        "phases: {} motion rounds, {} eliminations, {} reconstructions",
        result.motion.rounds, result.motion.eliminated, result.flush.reconstructed
    );

    // Measure the win on corresponding runs.
    let report = compare(
        &program,
        &result.program,
        &CompareConfig {
            inputs: vec![
                ("c".into(), 1),
                ("d".into(), 2),
                ("x".into(), 3),
                ("z".into(), 4),
                ("i".into(), 0),
            ],
            ..Default::default()
        },
    );
    assert!(report.semantically_equal());
    println!(
        "expression evaluations over {} completed runs: {} -> {}",
        report.completed, report.expr_evals_a, report.expr_evals_b
    );
    println!(
        "assignment executions:                        {} -> {}",
        report.assign_execs_a, report.assign_execs_b
    );
    Ok(())
}
