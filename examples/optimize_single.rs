//! A small command-line optimizer driver over the textual IR.
//!
//! ```sh
//! # Full pipeline on a file (see the grammar in `am_ir::text`):
//! cargo run --example optimize_single -- program.ir
//!
//! # Read from stdin, decompose nested expressions, show phase snapshots:
//! cargo run --example optimize_single -- --decompose --phases - < program.ir
//!
//! # Baselines:
//! cargo run --example optimize_single -- --pass em program.ir
//! cargo run --example optimize_single -- --pass restricted program.ir
//! cargo run --example optimize_single -- --pass sink program.ir
//! ```

use std::io::Read;

use assignment_motion::prelude::*;

struct Options {
    pass: String,
    decompose: bool,
    phases: bool,
    simplify: bool,
    dot: bool,
    lang: bool,
    input: String,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        pass: "full".to_owned(),
        decompose: false,
        phases: false,
        simplify: false,
        dot: false,
        lang: false,
        input: String::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--pass" => {
                opts.pass = args.next().ok_or("--pass needs a value")?;
            }
            "--decompose" => opts.decompose = true,
            "--phases" => opts.phases = true,
            "--simplify" => opts.simplify = true,
            "--dot" => opts.dot = true,
            "--lang" => opts.lang = true,
            "--help" | "-h" => {
                return Err(
                    "usage: optimize_file [--pass full|em|bcm|am|restricted|sink|cp] \
                            [--decompose] [--phases] [--simplify] [--dot] [--lang] <file|->\n\
                            --lang parses the input as a while-language program"
                        .to_owned(),
                );
            }
            path => opts.input = path.to_owned(),
        }
    }
    if opts.input.is_empty() {
        return Err("missing input file (use '-' for stdin); --help for usage".to_owned());
    }
    Ok(opts)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let source = if opts.input == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        buf
    } else {
        std::fs::read_to_string(&opts.input)?
    };
    let program = if opts.lang {
        assignment_motion::lang::compile(&source)?
    } else {
        let mode = if opts.decompose {
            Mode::Decompose
        } else {
            Mode::Strict
        };
        parse_with_mode(&source, mode)?
    };

    let emit = |g: &FlowGraph| {
        let g = if opts.simplify {
            g.simplified()
        } else {
            g.clone()
        };
        if opts.dot {
            println!("{}", assignment_motion::ir::dot::to_dot(&g));
        } else {
            println!("{}", canonical_text(&g));
        }
    };
    match opts.pass.as_str() {
        "full" => {
            let result = optimize(&program);
            if opts.phases {
                println!(
                    "== after initialization ==\n{}",
                    canonical_text(result.after_init.as_ref().unwrap())
                );
                println!(
                    "== after assignment motion ({} rounds) ==\n{}",
                    result.motion.rounds,
                    canonical_text(result.after_motion.as_ref().unwrap())
                );
            }
            emit(&result.program);
        }
        "em" => {
            let mut g = program.clone();
            g.split_critical_edges();
            lazy_expression_motion(&mut g);
            emit(&g);
        }
        "bcm" => {
            let mut g = program.clone();
            g.split_critical_edges();
            busy_expression_motion(&mut g);
            emit(&g);
        }
        "am" => {
            let mut g = program.clone();
            g.split_critical_edges();
            assignment_motion(&mut g);
            emit(&g);
        }
        "restricted" => {
            let mut g = program.clone();
            g.split_critical_edges();
            restricted_assignment_motion(&mut g);
            emit(&g);
        }
        "sink" => {
            let mut g = program.clone();
            g.split_critical_edges();
            sink_assignments(&mut g, &SinkConfig::default());
            emit(&g);
        }
        "cp" => {
            let mut g = program.clone();
            assignment_motion::alg::copyprop::copy_propagation(&mut g, true);
            emit(&g);
        }
        other => {
            eprintln!("unknown pass '{other}'");
            std::process::exit(2);
        }
    }
    Ok(())
}
