//! Loop-invariant code motion on a realistic array-address computation —
//! the workload class the paper's introduction motivates.
//!
//! A row-major `a[i][j]` access in a nested loop computes
//! `base + i*cols + j` every inner iteration. The address arithmetic
//! `i*cols` and the row base are invariant in the inner loop; the full
//! algorithm hoists both the expressions *and* the address assignments,
//! which plain expression motion cannot do alone.
//!
//! ```sh
//! cargo run --example loop_invariants
//! ```

use assignment_motion::prelude::*;

/// Sum over a `rows × cols` "matrix" (modelled arithmetically): the inner
/// do-while loop recomputes the row address from scratch every iteration.
/// (A do-while shape matters: hoisting out of a potentially zero-trip
/// `while` loop would execute the assignments on paths that never ran them
/// — not *justified* in the sense of Def. 3.2, so the algorithm correctly
/// refuses. The body of a do-while is unavoidable, and out it goes.)
const MATRIX_SUM: &str = "
    start init
    end done
    node init { i := 0; sum := 0 }
    node outer { branch i < rows }
    node inner_init { j := 0 }
    node body {
        rowoff := i * cols
        rowbase := base + rowoff
        addr := rowbase + j
        elem := addr % 97
        sum := sum + elem
        j := j + 1
    }
    node inner { branch j < cols }
    node outer_step { i := i + 1 }
    node done { out(sum) }
    edge init -> outer
    edge outer -> inner_init, done
    edge inner_init -> body
    edge body -> inner
    edge inner -> body, outer_step
    edge outer_step -> outer
";

fn measure(name: &str, g: &FlowGraph, rows: i64, cols: i64) -> (u64, u64) {
    let result = run(
        g,
        &RunConfig::with_inputs(vec![("rows", rows), ("cols", cols), ("base", 1000)]),
    );
    println!(
        "{name:>24}: {:>5} expression evaluations, {:>5} assignments, out = {:?}",
        result.expr_evals, result.assign_execs, result.outputs[0]
    );
    (result.expr_evals, result.assign_execs)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse(MATRIX_SUM)?;
    let (rows, cols) = (8, 16);

    let (base_evals, _) = measure("original", &program, rows, cols);

    // Expression motion only (lazy code motion).
    let mut em_only = program.clone();
    em_only.split_critical_edges();
    lazy_expression_motion(&mut em_only);
    let (em_evals, _) = measure("EM only (LCM)", &em_only, rows, cols);

    // The full uniform EM & AM algorithm.
    let optimized = optimize(&program).program;
    let (am_evals, _) = measure("uniform EM & AM", &optimized, rows, cols);

    println!("\n== optimized program ==\n{}", canonical_text(&optimized));

    assert!(em_evals <= base_evals);
    assert!(am_evals <= em_evals);
    println!(
        "savings: EM alone {:.1}%, uniform EM & AM {:.1}%",
        100.0 * (base_evals - em_evals) as f64 / base_evals as f64,
        100.0 * (base_evals - am_evals) as f64 / base_evals as f64,
    );
    Ok(())
}
