//! A guided tour of the paper's data-flow analyses (Tables 1–3) on the
//! running example: prints the local predicates and the solved facts that
//! drive each transformation, the way one would trace the algorithm by
//! hand.
//!
//! ```sh
//! cargo run --example analyses
//! ```

use assignment_motion::alg::{flush, hoist, init, motion, rae};
use assignment_motion::dfa::PointGraph;
use assignment_motion::ir::{patterns::PatternUniverse, text::parse, FlowGraph};

const RUNNING_EXAMPLE: &str = "
    start 1
    end 4
    node 1 { y := c+d }
    node 2 { branch x+z > y+i }
    node 3 { y := c+d; x := y+z; i := i+x }
    node 4 { x := y+z; x := c+d; out(i,x,y) }
    edge 1 -> 2
    edge 2 -> 3, 4
    edge 3 -> 2
";

fn show_hoisting(g: &FlowGraph, title: &str) {
    println!("== Table 1 (hoistability) — {title} ==");
    let analysis = hoist::analyze_hoisting(g);
    println!(
        "{:<8} {:<28} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8}",
        "node", "pattern", "LOC-H", "LOC-B", "N-H*", "X-H*", "N-INS", "X-INS"
    );
    for n in g.nodes() {
        for (i, pat) in analysis.universe.assign_patterns() {
            let any = analysis.loc_hoistable[n.index()].contains(i)
                || analysis.loc_blocked[n.index()].contains(i)
                || analysis.n_insert[n.index()].contains(i)
                || analysis.x_insert[n.index()].contains(i);
            if !any {
                continue;
            }
            println!(
                "{:<8} {:<28} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8}",
                g.label(n),
                pat.display(g.pool()),
                analysis.loc_hoistable[n.index()].contains(i),
                analysis.loc_blocked[n.index()].contains(i),
                analysis.n_hoistable[n.index()].contains(i),
                analysis.x_hoistable[n.index()].contains(i),
                analysis.n_insert[n.index()].contains(i),
                analysis.x_insert[n.index()].contains(i),
            );
        }
    }
    println!();
}

fn show_redundancy(g: &FlowGraph, title: &str) {
    println!("== Table 2 (redundancy) — {title} ==");
    let universe = PatternUniverse::collect(g);
    let pg = PointGraph::build(g);
    let sol = rae::redundancy(&pg, &universe);
    for p in pg.points() {
        let Some(instr) = pg.instr(p) else { continue };
        let redundant: Vec<String> = universe
            .assign_patterns()
            .filter(|(i, _)| sol.before[p.index()].contains(*i))
            .map(|(_, pat)| pat.display(g.pool()))
            .collect();
        if !redundant.is_empty() {
            println!(
                "before '{}' in node {}: redundant {{{}}}",
                instr.display(g.pool()),
                g.label(pg.node(p)),
                redundant.join(", ")
            );
        }
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut g = parse(RUNNING_EXAMPLE)?;
    g.split_critical_edges();

    println!("--- input program ---\n{g:?}");
    show_hoisting(&g, "before initialization");

    init::initialize(&mut g);
    println!("--- after initialization (Fig. 12) ---");
    show_redundancy(&g, "G_Init");
    show_hoisting(&g, "G_Init");

    let stats = motion::assignment_motion(&mut g);
    println!(
        "--- after assignment motion: {} rounds, {} eliminations, {} insertions ---",
        stats.rounds, stats.eliminated, stats.inserted
    );
    show_redundancy(&g, "G_AssMot (stable: nothing redundant)");
    show_flush(&mut g);

    // Graphviz rendering of the result, for paper-style figures.
    println!("--- Graphviz of G_AssMot ---");
    println!("{}", assignment_motion::ir::dot::to_dot(&g));
    Ok(())
}

fn show_flush(g: &mut FlowGraph) {
    println!("== Table 3 (delayability / usability) — G_AssMot ==");
    let analysis = flush::analyze_flush(g);
    let snapshot = g.clone();
    let pg = PointGraph::build(&snapshot);
    println!(
        "{:<24} {:<10} {:>8} {:>8} {:>8} {:>8}",
        "instruction", "pattern", "N-DELAY", "X-DELAY", "N-USABLE", "X-USABLE"
    );
    for p in pg.points() {
        let Some(instr) = pg.instr(p) else { continue };
        for (i, eps) in analysis.universe.expr_patterns() {
            let interesting = analysis.is_inst[p.index()].contains(i)
                || analysis.used[p.index()].contains(i)
                || analysis.blocked[p.index()].contains(i);
            if !interesting {
                continue;
            }
            println!(
                "{:<24} {:<10} {:>8} {:>8} {:>8} {:>8}",
                instr.display(snapshot.pool()),
                eps.display(snapshot.pool()),
                analysis.delay.before[p.index()].contains(i),
                analysis.delay.after[p.index()].contains(i),
                analysis.usable.before[p.index()].contains(i),
                analysis.usable.after[p.index()].contains(i),
            );
        }
    }
    println!();
}
