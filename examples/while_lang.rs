//! End-to-end frontend demo: compile a while-language program, run the
//! full optimization pipeline, and measure the win.
//!
//! ```sh
//! cargo run --example while_lang
//! cargo run --example while_lang -- path/to/program.wl n=10 base=100
//! ```

use am_lang::compile;
use assignment_motion::prelude::*;

const DEFAULT_PROGRAM: &str = "
// Polynomial evaluation with a manually unrolled-ish inner loop:
// coefficients are synthesized arithmetically. The address-style
// computations (scale * scale, base + offset) are loop-invariant.
i := 0;
acc := 0;
do {
    sq := scale * scale;            // invariant
    offset := base + sq;            // invariant (second-order: needs sq moved first)
    term := (acc + offset) % 1000003;
    acc := term + i;
    i := i + 1;
} while (i < n);
print(acc);
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let (source, mut inputs) = match args.next() {
        Some(path) => (std::fs::read_to_string(path)?, Vec::new()),
        None => (
            DEFAULT_PROGRAM.to_owned(),
            vec![
                ("scale".to_owned(), 7i64),
                ("base".to_owned(), 100),
                ("n".to_owned(), 50),
            ],
        ),
    };
    for arg in args {
        if let Some((name, value)) = arg.split_once('=') {
            inputs.push((name.to_owned(), value.parse()?));
        }
    }

    let program = compile(&source)?;
    println!("== compiled flow graph ==\n{}", to_text(&program));

    let result = optimize(&program);
    println!(
        "== optimized ({} motion rounds, {} eliminations) ==\n{}",
        result.motion.rounds,
        result.motion.eliminated,
        canonical_text(&result.program.simplified())
    );

    let cfg = RunConfig {
        oracle: Oracle::Deterministic,
        inputs: inputs.clone(),
        ..RunConfig::default()
    };
    let before = run(&program, &cfg);
    let after = run(&result.program, &cfg);
    assert_eq!(before.observable(), after.observable());
    println!("output: {:?}", before.outputs);
    println!(
        "expression evaluations: {} -> {} ({:.1}% saved)",
        before.expr_evals,
        after.expr_evals,
        100.0 * (before.expr_evals - after.expr_evals) as f64 / before.expr_evals.max(1) as f64
    );
    println!(
        "assignments executed:   {} -> {}",
        before.assign_execs, after.assign_execs
    );
    Ok(())
}
