//! Batch optimization through `am-pipeline`: optimize every `.wl` and
//! `.ir` file in a directory, in parallel, with content-addressed result
//! caching, and print the engine's report.
//!
//! ```sh
//! # The bundled corpus (programs/), all cores:
//! cargo run --example optimize_file
//!
//! # Explicit files/dirs, two workers, print the optimized programs:
//! cargo run --example optimize_file -- --workers 2 --emit programs demo.wl
//! ```
//!
//! For single-program work (baseline passes, phase snapshots, dot output)
//! see `examples/optimize_single.rs`; for the full batch CLI see the
//! `amopt` binary in `crates/pipeline`.

use std::path::PathBuf;

use assignment_motion::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut workers = None;
    let mut emit = false;
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => workers = Some(args.next().ok_or("--workers needs a value")?.parse()?),
            "--emit" => emit = true,
            "--help" | "-h" => {
                eprintln!("usage: optimize_file [--workers N] [--emit] [file|dir ...]");
                return Ok(());
            }
            path => inputs.push(PathBuf::from(path)),
        }
    }
    if inputs.is_empty() {
        inputs.push(PathBuf::from("programs"));
    }

    // Expand directories into .wl/.ir jobs, sorted for a deterministic batch.
    let mut files: Vec<PathBuf> = Vec::new();
    for input in &inputs {
        if input.is_dir() {
            for entry in std::fs::read_dir(input)? {
                let path = entry?.path();
                if path.is_file() && SourceKind::from_path(&path).is_some() {
                    files.push(path);
                }
            }
        } else {
            files.push(input.clone());
        }
    }
    files.sort();
    let jobs: Vec<Job> = files.into_iter().map(Job::from_path).collect();
    if jobs.is_empty() {
        return Err("no .wl or .ir files found".into());
    }

    let pipeline = Pipeline::new(PipelineConfig {
        workers,
        ..Default::default()
    });
    let report = pipeline.run(&jobs);
    println!("{report}");
    if emit {
        for job in &report.jobs {
            if let Some(o) = job.optimized() {
                println!("== {} ==\n{}", job.name, o.result.canonical);
            }
        }
    }
    if report.failed() + report.panicked() > 0 {
        std::process::exit(1);
    }
    Ok(())
}
