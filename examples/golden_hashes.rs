//! Regenerates the golden stable-hash fixture used by
//! `tests/interned_oracle.rs`.
//!
//! For every program of the shared 80-program corpus plus the 200 extra
//! seeded random graphs of the solver property suite, prints one line:
//!
//! ```text
//! <family> <name> <input stable_hash> <optimized stable_hash>
//! ```
//!
//! The fixture (`tests/fixtures/golden_hashes.txt`) pins two things at
//! once: the `stable_hash` values of the *inputs* (the content addresses
//! under which `am-pipeline`'s result cache and `am-serve`'s on-disk
//! `v1/<shard>/<hash>.json` store live — they must never drift, or
//! persisted caches silently change meaning) and the hashes of the
//! *optimized outputs* (so any change to the optimizer's identity layer
//! that moves a single byte of output is caught as a diff).
//!
//! Run `cargo run --release --example golden_hashes >
//! tests/fixtures/golden_hashes.txt` only when an output change is
//! intentional, and say so in the commit.

use am_core::global::optimize;
use am_ir::alpha::stable_hash;
use am_ir::random::{corpus80, structured, unstructured, StructuredConfig, UnstructuredConfig};
use am_ir::rng::SplitMix64;
use am_ir::FlowGraph;

fn line(family: &str, name: &str, g: &FlowGraph) {
    let input = stable_hash(g);
    let output = stable_hash(&optimize(g).program);
    println!("{family} {name} {input:016x} {output:016x}");
}

fn main() {
    for (name, g) in corpus80() {
        line("corpus80", &name, &g);
    }
    // The same 200 extra programs `crates/dfa/tests/solver_props.rs` uses,
    // seeded apart from the corpus seed ranges.
    for seed in 1000..1100u64 {
        let mut rng = SplitMix64::new(seed);
        let g = structured(
            &mut rng,
            &StructuredConfig {
                allow_div: seed % 2 == 0,
                max_depth: 2 + (seed as usize % 3),
                ..Default::default()
            },
        );
        line("structured", &seed.to_string(), &g);
    }
    for seed in 2000..2100u64 {
        let mut rng = SplitMix64::new(seed);
        let g = unstructured(
            &mut rng,
            &UnstructuredConfig {
                nodes: 4 + (seed as usize % 16),
                extra_edges: 1 + (seed as usize % 10),
                max_instrs: 4,
                num_vars: 6,
                allow_div: seed % 3 == 0,
            },
        );
        line("unstructured", &seed.to_string(), &g);
    }
}
