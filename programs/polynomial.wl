// Horner evaluation with a for loop; coefficients synthesized as (k*7)%13.
acc := 0;
for (k := 0; k < degree; k := k + 1) {
    coeff := (k * 7) % 13;
    acc := acc * x + coeff;
}
print(acc);
