// Row-major matrix summation: the address arithmetic is loop-invariant
// in the inner do-while loop.
i := 0; sum := 0;
while (i < rows) {
    j := 0;
    do {
        rowoff := i * cols;
        rowbase := base + rowoff;
        addr := rowbase + j;
        sum := sum + addr % 97;
        j := j + 1;
    } while (j < cols);
    i := i + 1;
}
print(sum);
