//! Prints a phase-by-phase proof transcript for one *campaign* seed —
//! the distribution `amcheck` sweeps (`seed_program`), which is
//! division-heavier than the test-suite generators. Handy when the CI
//! `--max-inconclusive` gate trips: failing pairs are dumped in full so
//! the reason string can be traced to the programs.
//!
//! Usage: `cargo run --example dbg_campaign_seed -p am-check -- <seed>`

use am_check::seed_program;
use am_core::global::{optimize_hooked, GlobalConfig};
use am_ir::text::to_text;
use am_ir::FlowGraph;
use am_prove::{prove_pair, ProveConfig, Verdict};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let g = seed_program(seed);
    let mut snaps: Vec<(String, FlowGraph)> = Vec::new();
    optimize_hooked(&g, &GlobalConfig::default(), &mut |p, prog| {
        snaps.push((format!("{p:?}"), prog.clone()));
    });
    let cfg = ProveConfig::default();
    let mut prev = g.clone();
    let mut prev_name = "input".to_owned();
    for (name, snap) in snaps {
        let o = prove_pair(&prev, &snap, &cfg);
        println!("{prev_name} -> {name}: {} ({})", o.verdict, o.reason);
        if o.verdict != Verdict::Proved {
            println!("==== LEFT ({prev_name}) ====\n{}", to_text(&prev));
            println!("==== RIGHT ({name}) ====\n{}", to_text(&snap));
        }
        prev = snap;
        prev_name = name;
    }
}
