//! Translation validation for the assignment-motion optimizer.
//!
//! The workspace's correctness story rests on the paper's theorems:
//! semantics preservation (Thm 5.1) and run-cost optimality (Thms 5.2–5.4).
//! `am-core::verify` can compare two whole programs, but an end-to-end
//! mismatch on a 40-node random program says nothing about *which* phase
//! broke it. This crate follows the translation-validation tradition
//! (Necula's TVI; Csmith-style differential testing): it re-runs the
//! optimizer through the phase-boundary hooks of
//! [`am_core::global::optimize_hooked`], snapshots the program after
//! critical-edge splitting, initialization, **every** `rae; aht` round and
//! the final flush, and checks each consecutive pair of snapshots against
//! the counting interpreter on corresponding runs. The first pair that
//! disagrees names the exact phase — and round — that introduced the bug.
//! The LCM and sink baselines are validated against the original program
//! the same way.
//!
//! Campaigns additionally run the `am-prove` symbolic equivalence prover
//! on every snapshot pair *before* the interpreter (on by default, see
//! [`validate::ValidationConfig::prove`]): statically proved pairs are
//! discharged for all inputs without a single concrete run, statically
//! refuted pairs fail as [`validate::FailureKind::Proof`] with the
//! prover's interpreter-confirmed witness path, and only inconclusive
//! pairs fall back to the dynamic differential oracle.
//!
//! On failure, a delta-debugging [`shrink`](shrink::shrink) pass cuts the
//! program down (drop nodes and edges, truncate blocks, simplify terms),
//! re-checking after each cut that the *same class* of failure survives,
//! and a reproduction [`bundle`](bundle) — minimized `.ir` text, seed,
//! phase, oracle trace — is written under `target/am-check/`.
//!
//! Entry points:
//!
//! * [`validate::validate`] — check one program, localizing any failure;
//! * [`campaign::run_campaign`] — seeded sweeps over the random-program
//!   corpus (the `amcheck` binary and `fuzz_blitz` wrap this);
//! * [`fault::FaultSpec`] — inject a deliberate miscompile at a chosen
//!   phase boundary, to prove the harness localizes and shrinks it.
//!
//! # Examples
//!
//! ```
//! use am_check::validate::{validate, ValidationConfig};
//! use am_ir::text::parse;
//!
//! let g = parse(
//!     "start s\nend e\nnode s { x := a+b; y := a+b }\nnode e { out(x,y) }\nedge s -> e",
//! )?;
//! let report = validate(&g, &ValidationConfig::default());
//! assert!(report.passed(), "{:?}", report.failure);
//! # Ok::<(), am_ir::text::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod bundle;
pub mod campaign;
pub mod fault;
pub mod shrink;
pub mod stage;
pub mod validate;

pub use bundle::{write_bundle, Bundle};
pub use campaign::{
    run_campaign, seed_program, CampaignConfig, CampaignReport, ProveSummary, SeedFailure,
};
pub use fault::{FaultKind, FaultSpec, InjectAt};
pub use shrink::{shrink, ShrinkConfig, ShrinkResult};
pub use stage::Stage;
pub use validate::{validate, Failure, FailureKind, Validation, ValidationConfig, VerdictCounts};
