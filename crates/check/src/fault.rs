//! Deliberate miscompilation, for exercising the harness itself.
//!
//! A translation validator that has never seen a miscompile is untested.
//! [`FaultSpec`] corrupts the program at an exact phase boundary — through
//! the same mutable hook of
//! [`optimize_hooked`](am_core::global::optimize_hooked) that the
//! snapshotting uses — and the test suite (and `amcheck --inject`) then
//! asserts that validation localizes the failure to that phase and that
//! the shrinker reduces the witness to a handful of nodes.

use am_core::global::PhaseId;
use am_ir::{FlowGraph, Instr, Operand, PatternUniverse, Term};

/// Where to inject the fault: immediately after the named phase runs, so
/// the corruption is attributed to that phase's output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectAt {
    /// After the initialization phase.
    Init,
    /// After the given 1-based assignment-motion round.
    MotionRound(usize),
    /// After the final flush.
    Flush,
}

impl InjectAt {
    /// Whether this injection point matches a fired phase boundary.
    pub fn matches(self, phase: PhaseId) -> bool {
        match (self, phase) {
            (InjectAt::Init, PhaseId::Init) => true,
            (InjectAt::MotionRound(want), PhaseId::MotionRound(got)) => want == got,
            (InjectAt::Flush, PhaseId::Flush) => true,
            _ => false,
        }
    }
}

/// The corruption to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Add 1 to the first constant operand found — a wrong-code bug that
    /// diverges observably whenever the constant flows to an `out`.
    TweakConst,
    /// Delete the last `out(...)` (or, failing that, the last assignment) —
    /// the classic dropped-instruction miscompile.
    DropInstr,
    /// Duplicate the first non-trivial assignment whose right-hand side
    /// does not mention its own left-hand side. Semantics are preserved but
    /// every execution pays an extra expression evaluation: an *optimality*
    /// regression (Thm 5.2), not a wrong-code bug.
    DuplicateEval,
    /// Swap every occurrence of the program's first two expression patterns
    /// (pattern ids 0 and 1 of the interning arena, i.e. the first two
    /// distinct non-trivial terms in first-occurrence order). This models an
    /// id-confusion bug in a hash-consed IR: every id stays in range and the
    /// graph stays structurally valid, but terms are systematically
    /// mis-resolved — the kind of corruption only a semantic differential
    /// (or a redundancy lint on the now-misplaced recomputations) catches.
    SwapPatternIds,
}

/// A fault to inject during a hooked optimizer run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// The phase boundary to corrupt.
    pub at: InjectAt,
    /// The corruption.
    pub kind: FaultKind,
}

/// Applies `kind` to `g`. Returns whether a suitable injection site was
/// found; the graph is untouched otherwise. The mutation always leaves the
/// graph structurally valid.
pub fn apply_fault(g: &mut FlowGraph, kind: FaultKind) -> bool {
    match kind {
        FaultKind::TweakConst => tweak_first_const(g),
        FaultKind::DropInstr => drop_instr(g),
        FaultKind::DuplicateEval => duplicate_eval(g),
        FaultKind::SwapPatternIds => swap_pattern_ids(g),
    }
}

fn swap_pattern_ids(g: &mut FlowGraph) -> bool {
    // The first two distinct non-trivial terms in first-occurrence order are
    // exactly pattern ids 0 and 1 of the interning arena.
    let universe = PatternUniverse::collect(g);
    if universe.expr_count() < 2 {
        return false;
    }
    let (a, b) = (universe.expr(0), universe.expr(1));
    let swap = |t: &mut Term| {
        if *t == a {
            *t = b;
        } else if *t == b {
            *t = a;
        }
    };
    for n in g.nodes().collect::<Vec<_>>() {
        for instr in &mut g.block_mut(n).instrs {
            match instr {
                Instr::Assign { rhs, .. } => swap(rhs),
                Instr::Branch(c) => {
                    swap(&mut c.lhs);
                    swap(&mut c.rhs);
                }
                Instr::Skip | Instr::Out(_) => {}
            }
        }
    }
    true
}

fn tweak_operand(op: &mut Operand) -> bool {
    if let Operand::Const(c) = op {
        *c = c.wrapping_add(1);
        true
    } else {
        false
    }
}

fn tweak_term(t: &mut Term) -> bool {
    match t {
        Term::Operand(op) => tweak_operand(op),
        Term::Binary { lhs, rhs, .. } => tweak_operand(lhs) || tweak_operand(rhs),
    }
}

fn tweak_first_const(g: &mut FlowGraph) -> bool {
    for n in g.nodes().collect::<Vec<_>>() {
        for instr in &mut g.block_mut(n).instrs {
            let hit = match instr {
                Instr::Skip => false,
                Instr::Assign { rhs, .. } => tweak_term(rhs),
                Instr::Out(ops) => ops.iter_mut().any(tweak_operand),
                Instr::Branch(c) => tweak_term(&mut c.lhs) || tweak_term(&mut c.rhs),
            };
            if hit {
                return true;
            }
        }
    }
    false
}

fn drop_instr(g: &mut FlowGraph) -> bool {
    let nodes: Vec<_> = g.nodes().collect();
    // Prefer dropping an out — observably wrong on every path through it.
    for &n in nodes.iter().rev() {
        let block = g.block_mut(n);
        if let Some(i) = block
            .instrs
            .iter()
            .rposition(|i| matches!(i, Instr::Out(_)))
        {
            block.instrs.remove(i);
            return true;
        }
    }
    for &n in nodes.iter().rev() {
        let block = g.block_mut(n);
        if let Some(i) = block
            .instrs
            .iter()
            .rposition(|i| matches!(i, Instr::Assign { .. }))
        {
            block.instrs.remove(i);
            return true;
        }
    }
    false
}

fn duplicate_eval(g: &mut FlowGraph) -> bool {
    for n in g.nodes().collect::<Vec<_>>() {
        let block = g.block_mut(n);
        let site = block.instrs.iter().position(|i| match i {
            Instr::Assign { lhs, rhs } => rhs.is_nontrivial() && !rhs.mentions(*lhs),
            _ => false,
        });
        if let Some(i) = site {
            let dup = block.instrs[i].clone();
            block.instrs.insert(i + 1, dup);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::interp::{run, Config};
    use am_ir::text::parse;

    const SRC: &str =
        "start s\nend e\nnode s { x := a+1; y := x+2 }\nnode e { out(x,y) }\nedge s -> e";

    #[test]
    fn tweak_const_changes_observables() {
        let orig = parse(SRC).unwrap();
        let mut g = orig.clone();
        assert!(apply_fault(&mut g, FaultKind::TweakConst));
        assert_eq!(g.validate(), Ok(()));
        let cfg = Config::with_inputs(vec![("a", 5)]);
        assert_ne!(run(&orig, &cfg).observable(), run(&g, &cfg).observable());
    }

    #[test]
    fn drop_instr_removes_an_out_first() {
        let mut g = parse(SRC).unwrap();
        assert!(apply_fault(&mut g, FaultKind::DropInstr));
        assert_eq!(g.validate(), Ok(()));
        let text = am_ir::text::to_text(&g);
        assert!(!text.contains("out"), "{text}");
    }

    #[test]
    fn duplicate_eval_keeps_semantics_but_adds_an_evaluation() {
        let orig = parse(SRC).unwrap();
        let mut g = orig.clone();
        assert!(apply_fault(&mut g, FaultKind::DuplicateEval));
        assert_eq!(g.validate(), Ok(()));
        let cfg = Config::with_inputs(vec![("a", 5)]);
        let (a, b) = (run(&orig, &cfg), run(&g, &cfg));
        assert_eq!(a.observable(), b.observable());
        assert_eq!(b.expr_evals, a.expr_evals + 1);
    }

    #[test]
    fn self_referential_assignments_are_never_duplicated() {
        let mut g =
            parse("start s\nend e\nnode s { x := x+1 }\nnode e { out(x) }\nedge s -> e").unwrap();
        assert!(!apply_fault(&mut g, FaultKind::DuplicateEval));
    }

    #[test]
    fn faults_without_a_site_report_failure() {
        let mut g =
            parse("start s\nend e\nnode s { skip }\nnode e { out(x) }\nedge s -> e").unwrap();
        assert!(!apply_fault(&mut g, FaultKind::TweakConst));
        assert!(!apply_fault(&mut g, FaultKind::DuplicateEval));
        assert!(!apply_fault(&mut g, FaultKind::SwapPatternIds));
    }

    #[test]
    fn swap_pattern_ids_exchanges_the_first_two_patterns_everywhere() {
        let orig = parse(SRC).unwrap();
        let mut g = orig.clone();
        assert!(apply_fault(&mut g, FaultKind::SwapPatternIds));
        assert_eq!(g.validate(), Ok(()));
        // `x := a+1; y := x+2` becomes `x := x+2; y := a+1`: same instruction
        // shapes, same pattern universe, systematically wrong bindings.
        let text = am_ir::text::to_text(&g);
        assert!(text.contains("x := x+2"), "{text}");
        assert!(text.contains("y := a+1"), "{text}");
        let cfg = Config::with_inputs(vec![("a", 5)]);
        assert_ne!(run(&orig, &cfg).observable(), run(&g, &cfg).observable());
    }

    #[test]
    fn swap_pattern_ids_needs_two_distinct_patterns() {
        // Two occurrences of the *same* pattern are one pattern id — no site.
        let mut g = parse(
            "start s\nend e\nnode s { x := a+1; y := a+1 }\nnode e { out(x,y) }\nedge s -> e",
        )
        .unwrap();
        assert!(!apply_fault(&mut g, FaultKind::SwapPatternIds));
    }

    #[test]
    fn swap_pattern_ids_is_an_involution() {
        let orig = parse(SRC).unwrap();
        let mut g = orig.clone();
        assert!(apply_fault(&mut g, FaultKind::SwapPatternIds));
        // First-occurrence order flips with the swap, so applying the fault
        // again swaps the same two terms back.
        assert!(apply_fault(&mut g, FaultKind::SwapPatternIds));
        assert_eq!(am_ir::text::to_text(&g), am_ir::text::to_text(&orig));
    }

    #[test]
    fn inject_at_matches_the_right_boundaries() {
        assert!(InjectAt::Init.matches(PhaseId::Init));
        assert!(InjectAt::MotionRound(2).matches(PhaseId::MotionRound(2)));
        assert!(!InjectAt::MotionRound(2).matches(PhaseId::MotionRound(1)));
        assert!(!InjectAt::Flush.matches(PhaseId::Init));
    }
}
