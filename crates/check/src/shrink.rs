//! A delta-debugging minimizer for failing programs.
//!
//! Random programs that trip the validator are rarely small. [`shrink`]
//! cuts a failing program down — drop nodes (with or without bridging the
//! gap), drop edges, clear blocks, delete single instructions, simplify
//! terms to their operands — re-validating after every cut and keeping a
//! candidate only if the *same class* of failure at the *same stage class*
//! survives (`ddmin`-style greedy first-improvement, restarted to a fixed
//! point). The result is the graph that goes into the reproduction bundle.

use am_ir::{FlowGraph, Instr, Term};

use crate::stage::Stage;
use crate::validate::{validate, Failure, ValidationConfig};

/// Budget knobs for [`shrink`].
#[derive(Clone, Copy, Debug)]
pub struct ShrinkConfig {
    /// Hard cap on candidate validations (each one replays the optimizer
    /// and the oracle runs on the candidate).
    pub max_attempts: usize,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig { max_attempts: 3000 }
    }
}

/// The outcome of a [`shrink`] call.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The smallest failing program found.
    pub minimized: FlowGraph,
    /// The failure the minimized program exhibits (stage may carry a
    /// different round number than the original's, never a different
    /// class).
    pub failure: Failure,
    /// Node count before shrinking.
    pub original_nodes: usize,
    /// Node count after shrinking.
    pub minimized_nodes: usize,
    /// Candidate validations performed.
    pub attempts: usize,
    /// Candidates that kept the failure alive and were adopted.
    pub accepted: usize,
}

/// Re-validates `candidate` and returns its failure if it reproduces the
/// same class of bug at the same class of stage.
fn reproduces(
    candidate: &FlowGraph,
    vcfg: &ValidationConfig,
    stage: Stage,
    failure: &Failure,
) -> Option<Failure> {
    if candidate.validate().is_err() {
        return None;
    }
    let v = validate(candidate, vcfg);
    v.failure
        .filter(|f| f.stage.same_class(stage) && f.kind.same_class(&failure.kind))
}

/// All single-step reductions of `g`, most aggressive first.
fn candidates(g: &FlowGraph) -> Vec<FlowGraph> {
    let mut out = Vec::new();
    let nodes: Vec<_> = g.nodes().collect();

    // Drop a whole node — first severing its paths, then bridging them.
    for &n in &nodes {
        for bridge in [false, true] {
            if let Some(c) = g.without_node(n, bridge) {
                out.push(c);
            }
        }
    }
    // Drop one edge.
    for &m in &nodes {
        for &n in g.succs(m) {
            let mut c = g.clone();
            c.remove_edge(m, n);
            out.push(c);
        }
    }
    // Clear a whole block.
    for &n in &nodes {
        if !g.block(n).instrs.is_empty() {
            let mut c = g.clone();
            c.block_mut(n).instrs.clear();
            out.push(c);
        }
    }
    // Delete one instruction.
    for &n in &nodes {
        for i in 0..g.block(n).instrs.len() {
            let mut c = g.clone();
            c.block_mut(n).instrs.remove(i);
            out.push(c);
        }
    }
    // Simplify one term: a binary right-hand side or branch side collapses
    // to either of its operands; an out(...) truncates to one operand.
    for &n in &nodes {
        for i in 0..g.block(n).instrs.len() {
            match &g.block(n).instrs[i] {
                Instr::Assign {
                    rhs: Term::Binary { lhs, rhs, .. },
                    ..
                } => {
                    for op in [*lhs, *rhs] {
                        let mut c = g.clone();
                        if let Instr::Assign { rhs, .. } = &mut c.block_mut(n).instrs[i] {
                            *rhs = Term::Operand(op);
                        }
                        out.push(c);
                    }
                }
                Instr::Branch(cond) => {
                    for side in [0, 1] {
                        let term = if side == 0 { &cond.lhs } else { &cond.rhs };
                        if let Term::Binary { lhs, .. } = term {
                            let simplified = Term::Operand(*lhs);
                            let mut c = g.clone();
                            if let Instr::Branch(cond) = &mut c.block_mut(n).instrs[i] {
                                if side == 0 {
                                    cond.lhs = simplified;
                                } else {
                                    cond.rhs = simplified;
                                }
                            }
                            out.push(c);
                        }
                    }
                }
                Instr::Out(ops) if ops.len() > 1 => {
                    let mut c = g.clone();
                    if let Instr::Out(ops) = &mut c.block_mut(n).instrs[i] {
                        ops.truncate(1);
                    }
                    out.push(c);
                }
                _ => {}
            }
        }
    }
    out
}

/// Minimizes `g` while preserving `failure`'s class at its stage class.
///
/// `vcfg` must be the configuration that produced `failure` on `g` —
/// including any injected fault — so each candidate is judged by the same
/// oracle. Greedy: the first candidate that still fails becomes the new
/// program and the passes restart, until a full sweep yields nothing or
/// the attempt budget runs out.
pub fn shrink(
    g: &FlowGraph,
    vcfg: &ValidationConfig,
    failure: &Failure,
    cfg: &ShrinkConfig,
) -> ShrinkResult {
    let mut current = g.clone();
    let mut best_failure = failure.clone();
    let mut attempts = 0;
    let mut accepted = 0;

    'restart: loop {
        for candidate in candidates(&current) {
            if attempts >= cfg.max_attempts {
                break 'restart;
            }
            attempts += 1;
            if let Some(f) = reproduces(&candidate, vcfg, failure.stage, failure) {
                current = candidate;
                best_failure = f;
                accepted += 1;
                continue 'restart;
            }
        }
        break;
    }

    ShrinkResult {
        original_nodes: g.nodes().count(),
        minimized_nodes: current.nodes().count(),
        minimized: current,
        failure: best_failure,
        attempts,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultSpec, InjectAt};
    use am_ir::text::parse;

    /// A padded program: the fault only needs the `x := v0+1; out(x)`
    /// kernel, everything else is shrinkable decoration.
    fn padded() -> FlowGraph {
        parse(
            "start s\nend e\n\
             node s { x := v0+1; out(x) }\n\
             node a { p := v1+v2; q := p*2 }\n\
             node b { r := v3+4; out(r, p) }\n\
             node c { w := v2*v2 }\n\
             node j { out(q) }\n\
             node e { out(v3) }\n\
             edge s -> a\nedge s -> b\nedge a -> c\nedge b -> c\n\
             edge c -> j\nedge j -> e",
        )
        .unwrap()
    }

    #[test]
    fn shrinks_an_injected_fault_below_the_acceptance_bound() {
        let vcfg = ValidationConfig {
            fault: Some(FaultSpec {
                at: InjectAt::Init,
                kind: FaultKind::TweakConst,
            }),
            check_baselines: false,
            ..ValidationConfig::default()
        };
        let g = padded();
        let v = validate(&g, &vcfg);
        let failure = v.failure.expect("padded program must fail under fault");
        let r = shrink(&g, &vcfg, &failure, &ShrinkConfig::default());
        assert!(r.minimized_nodes < r.original_nodes);
        assert!(r.minimized_nodes <= 10, "{} nodes", r.minimized_nodes);
        assert!(r.failure.stage.same_class(failure.stage));
        // The minimized program still reproduces when validated afresh.
        let again = validate(&r.minimized, &vcfg);
        assert!(again
            .failure
            .as_ref()
            .is_some_and(|f| f.kind.same_class(&failure.kind)));
    }

    #[test]
    fn shrink_respects_the_attempt_budget() {
        let vcfg = ValidationConfig {
            fault: Some(FaultSpec {
                at: InjectAt::Init,
                kind: FaultKind::TweakConst,
            }),
            check_baselines: false,
            ..ValidationConfig::default()
        };
        let g = padded();
        let failure = validate(&g, &vcfg).failure.unwrap();
        let r = shrink(&g, &vcfg, &failure, &ShrinkConfig { max_attempts: 5 });
        assert!(r.attempts <= 5);
    }
}
