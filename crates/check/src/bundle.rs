//! Reproduction bundles for validation failures.
//!
//! A failure that cannot be replayed is a rumor. [`write_bundle`] persists
//! everything needed to reproduce one by hand under a directory (by
//! default `target/am-check/`): the original program, the shrunk witness,
//! and a `report.txt` naming the failing stage, the oracle decision trace,
//! the inputs, the seed and the exact `amcheck` command line.
//!
//! The `.ir` files hold the [`canonical_text`](am_ir::alpha::canonical_text)
//! of the *pre-optimization* programs: labels synthesized by edge splitting
//! (`"S2,3"`) and optimizer temporaries (`"h<a+b>"`) do not re-lex, so
//! bundles always snapshot programs from before the optimizer ran.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use am_ir::alpha::canonical_text;
use am_ir::FlowGraph;

use crate::shrink::ShrinkResult;
use crate::stage::Stage;
use crate::validate::{Failure, FailureKind};
use am_prove::Verdict;

/// Everything a reproduction needs.
#[derive(Clone, Debug)]
pub struct Bundle {
    /// Directory name under the output root, e.g. `seed-42`.
    pub name: String,
    /// The campaign seed that generated the program, if any.
    pub seed: Option<u64>,
    /// The unoptimized program that failed validation.
    pub original: FlowGraph,
    /// The shrinker's output, when one ran.
    pub shrunk: Option<ShrinkResult>,
    /// The localized failure.
    pub failure: Failure,
    /// An exact command line that replays the failure.
    pub command: String,
    /// Per-stage prover verdicts of the failing validation, in chain
    /// order (empty when the prover was off).
    pub prove_verdicts: Vec<(Stage, Verdict)>,
}

/// The human-readable `report.txt` body for `b`.
pub fn render_report(b: &Bundle) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "am-check failure report");
    let _ = writeln!(s, "=======================");
    let _ = writeln!(s, "stage:     {}", b.failure.stage);
    match &b.failure.kind {
        FailureKind::Structural(e) => {
            let _ = writeln!(s, "kind:      structural ({e})");
        }
        FailureKind::Identity(e) => {
            let _ = writeln!(s, "kind:      identity-layer corruption ({e})");
        }
        FailureKind::Semantic { run, detail } => {
            let _ = writeln!(s, "kind:      semantic divergence (run {run})");
            let _ = writeln!(s, "detail:    {detail}");
        }
        FailureKind::Optimality { run, before, after } => {
            let _ = writeln!(
                s,
                "kind:      optimality regression (run {run}): {before} -> {after} expr evals"
            );
        }
        FailureKind::Proof { detail } => {
            let _ = writeln!(
                s,
                "kind:      statically refuted by the prover (interpreter-confirmed witness)"
            );
            let _ = writeln!(s, "detail:    {detail}");
        }
    }
    if let Some(seed) = b.seed {
        let _ = writeln!(s, "seed:      {seed}");
    }
    let _ = writeln!(s, "decisions: {:?}", b.failure.decisions);
    let _ = writeln!(s, "inputs:    {:?}", b.failure.inputs);
    if !b.prove_verdicts.is_empty() {
        let rendered: Vec<String> = b
            .prove_verdicts
            .iter()
            .map(|(stage, v)| format!("{stage} {v}"))
            .collect();
        let _ = writeln!(s, "prover:    {}", rendered.join("; "));
    }
    if let Some(r) = &b.shrunk {
        let _ = writeln!(
            s,
            "shrink:    {} -> {} nodes ({} candidates tried, {} accepted)",
            r.original_nodes, r.minimized_nodes, r.attempts, r.accepted
        );
    }
    let _ = writeln!(s, "reproduce: {}", b.command);
    s
}

/// Writes `b` under `root`, creating `root/<name>/`, and returns that
/// directory. Emits `original.ir`, `minimized.ir` (when a shrink ran) and
/// `report.txt`.
pub fn write_bundle(root: &Path, b: &Bundle) -> io::Result<PathBuf> {
    let dir = root.join(&b.name);
    fs::create_dir_all(&dir)?;
    fs::write(dir.join("original.ir"), canonical_text(&b.original))?;
    if let Some(r) = &b.shrunk {
        fs::write(dir.join("minimized.ir"), canonical_text(&r.minimized))?;
    }
    fs::write(dir.join("report.txt"), render_report(b))?;
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Stage;
    use am_ir::text::parse;

    fn dummy_failure() -> Failure {
        Failure {
            stage: Stage::MotionRound(2),
            kind: FailureKind::Semantic {
                run: 3,
                detail: "outputs differ".into(),
            },
            decisions: vec![1, 0, 2],
            inputs: vec![("v0".into(), 3)],
        }
    }

    #[test]
    fn bundle_round_trips_through_the_parser() {
        let g =
            parse("start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e").unwrap();
        let b = Bundle {
            name: "seed-7".into(),
            seed: Some(7),
            original: g.clone(),
            shrunk: None,
            failure: dummy_failure(),
            command: "amcheck --seeds 7..8".into(),
            prove_verdicts: vec![
                (Stage::Split, Verdict::Proved),
                (Stage::Init, Verdict::Refuted),
            ],
        };
        let root = std::env::temp_dir().join("am-check-bundle-rt");
        let _ = std::fs::remove_dir_all(&root);
        let dir = write_bundle(&root, &b).unwrap();
        let text = std::fs::read_to_string(dir.join("original.ir")).unwrap();
        let reparsed = parse(&text).unwrap();
        assert!(am_ir::alpha::alpha_eq(&g, &reparsed));
        let report = std::fs::read_to_string(dir.join("report.txt")).unwrap();
        assert!(report.contains("motion round 2"), "{report}");
        assert!(report.contains("seed:      7"), "{report}");
        assert!(report.contains("amcheck --seeds 7..8"), "{report}");
        assert!(
            report.contains("prover:    split proved; init refuted"),
            "{report}"
        );
        assert!(!dir.join("minimized.ir").exists());
    }
}
