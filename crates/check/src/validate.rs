//! Per-phase differential validation of one program.
//!
//! [`validate`] replays the optimizer through the phase-boundary hooks of
//! [`optimize_hooked`](am_core::global::optimize_hooked), snapshotting the
//! program after every phase, then checks each *consecutive pair* of
//! snapshots — original vs. split, split vs. init, round `r` vs. round
//! `r+1`, … — against the counting interpreter on corresponding runs (the
//! same fixed oracle and inputs). Because every stage of the paper's
//! algorithm must individually preserve semantics and never increase the
//! number of expression evaluations on corresponding paths, the first pair
//! that disagrees names the exact phase that introduced the bug.
//!
//! When [`ValidationConfig::prove`] is set, each pair is first handed to
//! the symbolic equivalence prover (`am-prove`): a statically *Proved*
//! pair never touches the interpreter, a *Refuted* pair fails immediately
//! as [`FailureKind::Proof`] with the prover's interpreter-confirmed
//! witness path, and only an *Inconclusive* pair falls back to the
//! dynamic differential oracle. Campaigns enable this by default, so
//! every injected fault must be refuted statically, for all inputs — not
//! merely observed to diverge on the sampled runs.

use am_core::global::{optimize_hooked, GlobalConfig};
use am_core::sink::{sink_assignments, SinkConfig};
use am_core::verify::weakly_equivalent;
use am_ir::alpha::{canonical_text, stable_hash, stable_hash_text};
use am_ir::interp::{run, Config, Oracle, RunResult, StopReason};
use am_ir::{reference_universe, FlowGraph, PatternUniverse};
use am_prove::{prove_pair, ProveConfig, Verdict};
use am_trace::Tracer;

use crate::fault::{apply_fault, FaultSpec};
use crate::stage::Stage;

/// Configuration for one [`validate`] call.
#[derive(Clone, Debug)]
pub struct ValidationConfig {
    /// Corresponding runs per snapshot pair.
    pub runs: usize,
    /// Oracle decisions per run (bounds the common path prefix).
    pub decisions: usize,
    /// Base seed; run `i` uses oracle seed `seed + i`.
    pub seed: u64,
    /// Initial variable values for every run.
    pub inputs: Vec<(String, i64)>,
    /// Round budget forwarded to the optimizer (`None` = paper bound).
    pub max_motion_rounds: Option<usize>,
    /// Also check the LCM and sink baselines against the original.
    pub check_baselines: bool,
    /// Inject a deliberate miscompile at a phase boundary (testing the
    /// harness itself; see [`crate::fault`]).
    pub fault: Option<FaultSpec>,
    /// Also run the `am-lint` static suite on the final snapshot (after
    /// any injected fault) and report its findings in
    /// [`Validation::lint`]. A static cross-check of the dynamic oracles:
    /// a corrupted translation should both diverge under the interpreter
    /// *and* trip the linter.
    pub lint: bool,
    /// Trace sink forwarded to the optimizer under validation, so
    /// campaign traces include phase/round/analysis events. Disabled
    /// (a no-op) by default.
    pub tracer: Tracer,
    /// Run the symbolic equivalence prover on every snapshot pair before
    /// the interpreter: statically proved pairs skip the dynamic runs,
    /// statically refuted pairs fail as [`FailureKind::Proof`], and
    /// inconclusive pairs fall back to the differential oracle. Off by
    /// default here (the plain differential harness); campaigns turn it
    /// on.
    pub prove: bool,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            runs: 16,
            decisions: 14,
            seed: 0xC0FFEE,
            inputs: vec![
                ("v0".into(), 3),
                ("v1".into(), 2),
                ("v2".into(), -5),
                ("v3".into(), 1),
            ],
            max_motion_rounds: None,
            check_baselines: true,
            fault: None,
            lint: false,
            tracer: Tracer::disabled(),
            prove: false,
        }
    }
}

/// What went wrong at a stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The stage produced a structurally invalid graph.
    Structural(String),
    /// Observable behaviour diverged on a corresponding run.
    Semantic {
        /// Index of the failing run (its oracle seed is `seed + run`).
        run: usize,
        /// Human-readable account of the divergence.
        detail: String,
    },
    /// The interned identity layer disagreed with its structural reference
    /// on a snapshot: the streamed `stable_hash` diverged from the
    /// text-path hash, or the arena-backed pattern universe diverged from
    /// the naive linear-scan enumeration. Not a miscompile of the program —
    /// a corruption of the identity layer every cache and gen/kill system
    /// is keyed by.
    Identity(String),
    /// The stage *increased* expression evaluations on a completed
    /// corresponding run — an optimality regression (Thm 5.2).
    Optimality {
        /// Index of the failing run.
        run: usize,
        /// Evaluations before the stage.
        before: u64,
        /// Evaluations after the stage.
        after: u64,
    },
    /// The symbolic prover statically refuted the pair: it holds an
    /// interpreter-confirmed witness path on which the two snapshots
    /// diverge (the witness oracle and inputs are in the enclosing
    /// [`Failure`]). Found without running the differential oracle first.
    Proof {
        /// The prover's account of the divergence along the witness path.
        detail: String,
    },
}

impl FailureKind {
    /// Whether two failures are the same kind, ignoring run indices and
    /// message text. The shrinker's acceptance test.
    pub fn same_class(&self, other: &FailureKind) -> bool {
        std::mem::discriminant(self) == std::mem::discriminant(other)
    }
}

/// A localized validation failure.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The stage whose output first disagreed with its input.
    pub stage: Stage,
    /// The nature of the disagreement.
    pub kind: FailureKind,
    /// The fixed oracle decisions of the failing run (empty for
    /// structural failures) — enough to replay it by hand.
    pub decisions: Vec<usize>,
    /// The inputs of the failing run.
    pub inputs: Vec<(String, i64)>,
}

/// The outcome of one [`validate`] call.
#[derive(Clone, Debug)]
pub struct Validation {
    /// The first failure found, if any.
    pub failure: Option<Failure>,
    /// Snapshot pairs that were differentially checked.
    pub stages_checked: usize,
    /// Corresponding runs per pair.
    pub runs: usize,
    /// Assignment-motion rounds the optimizer took.
    pub motion_rounds: usize,
    /// Whether a requested fault found an injection site. A fault with no
    /// site leaves the program untouched, so the validation passing then
    /// is vacuous — campaigns skip such seeds.
    pub fault_injected: bool,
    /// Findings of the `am-lint` suite on the final snapshot, when
    /// [`ValidationConfig::lint`] was set.
    pub lint: Option<am_lint::LintSummary>,
    /// Per-stage prover verdicts, in chain order, when
    /// [`ValidationConfig::prove`] was set. Baseline stages are never
    /// proved (they are compared dynamically only), so they do not
    /// appear here.
    pub prove_verdicts: Vec<(Stage, Verdict)>,
}

impl Validation {
    /// No failure was found.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Counts of prover verdicts over some set of proof attempts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerdictCounts {
    /// Pairs proved equivalent for all inputs.
    pub proved: u64,
    /// Pairs refuted with a confirmed witness.
    pub refuted: u64,
    /// Pairs the prover could not decide (dynamic fallback).
    pub inconclusive: u64,
}

impl VerdictCounts {
    /// Records one verdict.
    pub fn add(&mut self, v: Verdict) {
        match v {
            Verdict::Proved => self.proved += 1,
            Verdict::Refuted => self.refuted += 1,
            Verdict::Inconclusive => self.inconclusive += 1,
        }
    }

    /// Total proof attempts counted.
    pub fn total(&self) -> u64 {
        self.proved + self.refuted + self.inconclusive
    }
}

impl std::fmt::Display for VerdictCounts {
    /// Renders as `proved/refuted/inconclusive`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}", self.proved, self.refuted, self.inconclusive)
    }
}

/// Weak equivalence relaxed for *corresponding truncated runs*.
///
/// Stages move assignments across program points, so on a fixed oracle one
/// version may hit a (faithfully preserved) trap that the other version's
/// run never reaches because its oracle ran out first. That skew is not a
/// miscompile: it is accepted when the truncated run has no trap and its
/// outputs are a prefix of (or extended by) the trapped run's outputs.
fn corresponding_equivalent(a: &RunResult, b: &RunResult) -> bool {
    if weakly_equivalent(a, b) {
        return true;
    }
    fn prefix(short: &[Vec<i64>], long: &[Vec<i64>]) -> bool {
        short.len() <= long.len() && &long[..short.len()] == short
    }
    fn skew(truncated: &RunResult, trapped: &RunResult) -> bool {
        truncated.trap.is_none()
            && matches!(
                truncated.stop,
                StopReason::OracleExhausted | StopReason::StepLimit
            )
            && trapped.trap.is_some()
            && (prefix(&truncated.outputs, &trapped.outputs)
                || prefix(&trapped.outputs, &truncated.outputs))
    }
    skew(a, b) || skew(b, a)
}

fn describe(a: &RunResult, b: &RunResult) -> String {
    format!(
        "before: outputs {:?} trap {:?} stop {:?} | after: outputs {:?} trap {:?} stop {:?}",
        a.outputs, a.trap, a.stop, b.outputs, b.trap, b.stop
    )
}

/// Cross-checks the interned identity layer on one snapshot against its
/// structural references: the streamed `stable_hash` against the hash of
/// the materialised canonical text, the arena-backed pattern universe
/// against the naive linear-scan enumeration, and the arena's own internal
/// invariants. Returns a description of the first mismatch.
fn identity_mismatch(snap: &FlowGraph) -> Option<String> {
    let streamed = stable_hash(snap);
    let texted = stable_hash_text(&canonical_text(snap));
    if streamed != texted {
        return Some(format!(
            "streamed stable_hash {streamed:016x} != text-path hash {texted:016x}"
        ));
    }
    let interned = PatternUniverse::collect(snap);
    let (ref_assigns, ref_exprs) = reference_universe(snap);
    let assigns: Vec<_> = interned.assign_patterns().map(|(_, p)| p).collect();
    if assigns != ref_assigns {
        return Some(format!(
            "assign-pattern universe diverges from reference: {} interned vs {} reference",
            assigns.len(),
            ref_assigns.len()
        ));
    }
    let exprs: Vec<_> = interned.expr_patterns().map(|(_, t)| t).collect();
    if exprs != ref_exprs {
        return Some(format!(
            "expression universe diverges from reference: {} interned vs {} reference",
            exprs.len(),
            ref_exprs.len()
        ));
    }
    if let Err(e) = interned.arena().verify() {
        return Some(format!("arena invariant violated: {e}"));
    }
    None
}

fn decisions_of(oracle: &Oracle) -> Vec<usize> {
    match oracle {
        Oracle::Fixed(v) => v.clone(),
        Oracle::Deterministic => Vec::new(),
    }
}

/// Validates every optimizer stage on `g`, plus the end-to-end result and
/// (optionally) the LCM and sink baselines. Returns the first failure
/// found, localized to the stage that introduced it.
pub fn validate(g: &FlowGraph, cfg: &ValidationConfig) -> Validation {
    // 1. Replay the optimizer, snapshotting at every phase boundary. A
    //    requested fault is applied *before* the snapshot is taken, so the
    //    corruption is attributed to the injected stage.
    let mut chain: Vec<(Stage, FlowGraph)> = Vec::new();
    let mut fault_injected = false;
    let gcfg = GlobalConfig {
        max_motion_rounds: cfg.max_motion_rounds,
        keep_snapshots: false,
        tracer: cfg.tracer.clone(),
        ..GlobalConfig::default()
    };
    let mut motion_rounds = 0;
    optimize_hooked(g, &gcfg, &mut |phase, prog| {
        if let Some(f) = cfg.fault {
            if !fault_injected && f.at.matches(phase) {
                fault_injected = apply_fault(prog, f.kind);
            }
        }
        let stage = Stage::from(phase);
        if let Stage::MotionRound(r) = stage {
            motion_rounds = r;
        }
        // The converged motion round is a no-op; checking an identical
        // snapshot twice adds nothing, so collapse it.
        if chain.last().map(|(_, prev)| prev == prog) != Some(true) {
            chain.push((stage, prog.clone()));
        }
    });

    // Static cross-check: lint the final snapshot (post-fault, so injected
    // corruption is visible to the static analyses too).
    let lint = cfg.lint.then(|| {
        let final_prog = chain.last().map(|(_, p)| p).unwrap_or(g);
        let report = am_lint::lint_graph(
            final_prog,
            &am_lint::LintConfig {
                tracer: cfg.tracer.clone(),
                srcmap: None,
            },
        );
        am_lint::LintSummary::from(&report)
    });

    // 2. Every snapshot must be structurally valid, and the interned
    //    identity layer must agree with its structural reference on it.
    for (stage, snap) in &chain {
        let kind = if let Err(e) = snap.validate() {
            Some(FailureKind::Structural(e.to_string()))
        } else {
            identity_mismatch(snap).map(FailureKind::Identity)
        };
        if let Some(kind) = kind {
            return Validation {
                failure: Some(Failure {
                    stage: *stage,
                    kind,
                    decisions: Vec::new(),
                    inputs: cfg.inputs.clone(),
                }),
                stages_checked: chain.len(),
                runs: cfg.runs,
                motion_rounds,
                fault_injected,
                lint: lint.clone(),
                prove_verdicts: Vec::new(),
            };
        }
    }

    // 3. Fixed-oracle run configurations shared by every comparison. Run
    //    results are produced lazily per snapshot: a pair the prover
    //    discharges statically never touches the interpreter at all.
    let run_cfgs: Vec<Config> = (0..cfg.runs)
        .map(|i| Config {
            oracle: Oracle::random(cfg.seed.wrapping_add(i as u64), cfg.decisions),
            inputs: cfg.inputs.clone(),
            ..Config::default()
        })
        .collect();
    let progs: Vec<&FlowGraph> = std::iter::once(g)
        .chain(chain.iter().map(|(_, s)| s))
        .collect();
    let mut runs_cache: Vec<Option<Vec<RunResult>>> = vec![None; progs.len()];
    fn runs_at<'c>(
        cache: &'c mut [Option<Vec<RunResult>>],
        progs: &[&FlowGraph],
        cfgs: &[Config],
        i: usize,
    ) -> &'c [RunResult] {
        if cache[i].is_none() {
            cache[i] = Some(cfgs.iter().map(|c| run(progs[i], c)).collect());
        }
        cache[i].as_deref().unwrap()
    }

    let fail = |stage: Stage, kind: FailureKind, run_idx: Option<usize>| Failure {
        stage,
        kind,
        decisions: run_idx
            .map(|i| decisions_of(&run_cfgs[i].oracle))
            .unwrap_or_default(),
        inputs: cfg.inputs.clone(),
    };

    // Differentially checks one transformation step: semantics must be
    // preserved and expression evaluations must not increase on completed
    // corresponding runs.
    let check_pair = |stage: Stage, before: &[RunResult], after: &[RunResult]| -> Option<Failure> {
        for (i, (ra, rb)) in before.iter().zip(after).enumerate() {
            if !corresponding_equivalent(ra, rb) {
                return Some(fail(
                    stage,
                    FailureKind::Semantic {
                        run: i,
                        detail: describe(ra, rb),
                    },
                    Some(i),
                ));
            }
            let both_done = ra.stop == StopReason::ReachedEnd && rb.stop == StopReason::ReachedEnd;
            if both_done && rb.expr_evals > ra.expr_evals {
                return Some(fail(
                    stage,
                    FailureKind::Optimality {
                        run: i,
                        before: ra.expr_evals,
                        after: rb.expr_evals,
                    },
                    Some(i),
                ));
            }
        }
        None
    };

    let mut stages_checked = 0;
    let mut prove_verdicts: Vec<(Stage, Verdict)> = Vec::new();
    let prove_cfg = ProveConfig {
        inputs: cfg.inputs.clone(),
        tracer: cfg.tracer.clone(),
        ..ProveConfig::default()
    };
    // Proves one pair when the prover is enabled. `Ok(true)` means the
    // pair is statically discharged (skip the interpreter); `Ok(false)`
    // means fall back to the dynamic oracle; `Err` carries the static
    // refutation, with the prover's confirmed witness as the replay.
    let prove_step = |verdicts: &mut Vec<(Stage, Verdict)>,
                      stage: Stage,
                      before: &FlowGraph,
                      after: &FlowGraph|
     -> Result<bool, Failure> {
        let o = prove_pair(before, after, &prove_cfg);
        verdicts.push((stage, o.verdict));
        match o.verdict {
            Verdict::Proved => Ok(true),
            Verdict::Inconclusive => Ok(false),
            Verdict::Refuted => {
                let r = o.refutation.expect("a refuted outcome carries its witness");
                Err(Failure {
                    stage,
                    kind: FailureKind::Proof { detail: r.detail },
                    decisions: r.decisions,
                    inputs: r.inputs,
                })
            }
        }
    };

    // 4. Pairwise consecutive checks along the phase chain — prover
    //    first, interpreter fallback — then the end-to-end comparison
    //    backing the theorems directly. `progs[i]` precedes `chain[i]`.
    let failure: Option<Failure> = 'check: {
        let final_pairs = chain
            .iter()
            .enumerate()
            .map(|(i, (stage, _))| (*stage, i, i + 1))
            .chain((!chain.is_empty()).then_some((Stage::Final, 0, chain.len())));
        for (stage, before_idx, after_idx) in final_pairs {
            stages_checked += 1;
            if cfg.prove {
                match prove_step(
                    &mut prove_verdicts,
                    stage,
                    progs[before_idx],
                    progs[after_idx],
                ) {
                    Ok(true) => continue,
                    Ok(false) => {}
                    Err(f) => break 'check Some(f),
                }
            }
            runs_at(&mut runs_cache, &progs, &run_cfgs, before_idx);
            runs_at(&mut runs_cache, &progs, &run_cfgs, after_idx);
            let before = runs_cache[before_idx].as_deref().unwrap();
            let after = runs_cache[after_idx].as_deref().unwrap();
            if let Some(f) = check_pair(stage, before, after) {
                break 'check Some(f);
            }
        }

        // 5. The standalone baselines, against the original program. These
        //    are independent algorithms, not phase transitions of the run
        //    under validation, so they are always compared dynamically.
        if cfg.check_baselines {
            let mut lcm = g.clone();
            lcm.split_critical_edges();
            am_core::lcm::lazy_expression_motion(&mut lcm);
            let mut sink = g.clone();
            sink.split_critical_edges();
            sink_assignments(
                &mut sink,
                &SinkConfig {
                    eliminate_nontrivial_dead: false,
                },
            );
            for (stage, version) in [(Stage::Lcm, &lcm), (Stage::Sink, &sink)] {
                if let Err(e) = version.validate() {
                    break 'check Some(fail(stage, FailureKind::Structural(e.to_string()), None));
                }
                stages_checked += 1;
                let runs: Vec<RunResult> = run_cfgs.iter().map(|c| run(version, c)).collect();
                let original = runs_at(&mut runs_cache, &progs, &run_cfgs, 0);
                if let Some(f) = check_pair(stage, original, &runs) {
                    break 'check Some(f);
                }
            }
        }
        None
    };

    Validation {
        failure,
        stages_checked,
        runs: cfg.runs,
        motion_rounds,
        fault_injected,
        lint,
        prove_verdicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, InjectAt};
    use am_ir::text::parse;

    fn diamond() -> FlowGraph {
        parse(
            "start s\nend e\n\
             node s { x := a+b }\n\
             node l { y := a+b; out(y) }\n\
             node r { z := a*b; out(z) }\n\
             node j { out(x) }\n\
             node e { }\n\
             edge s -> l\nedge s -> r\nedge l -> j\nedge r -> j\nedge j -> e",
        )
        .unwrap()
    }

    #[test]
    fn clean_program_validates_across_all_stages() {
        let v = validate(&diamond(), &ValidationConfig::default());
        assert!(v.passed(), "{:?}", v.failure);
        assert!(v.stages_checked >= 4, "{}", v.stages_checked);
        assert!(!v.fault_injected);
    }

    #[test]
    fn init_fault_is_localized_to_init() {
        let cfg = ValidationConfig {
            fault: Some(FaultSpec {
                at: InjectAt::Init,
                kind: FaultKind::TweakConst,
            }),
            ..ValidationConfig::default()
        };
        let src = "start s\nend e\nnode s { x := v0+1; out(x) }\nnode e { out(v0) }\nedge s -> e";
        let v = validate(&parse(src).unwrap(), &cfg);
        assert!(v.fault_injected);
        let f = v.failure.expect("fault must be caught");
        assert_eq!(f.stage, Stage::Init, "{f:?}");
        assert!(matches!(f.kind, FailureKind::Semantic { .. }), "{f:?}");
    }

    #[test]
    fn flush_fault_is_localized_to_flush() {
        let cfg = ValidationConfig {
            fault: Some(FaultSpec {
                at: InjectAt::Flush,
                kind: FaultKind::DropInstr,
            }),
            ..ValidationConfig::default()
        };
        let v = validate(&diamond(), &cfg);
        assert!(v.fault_injected);
        let f = v.failure.expect("fault must be caught");
        assert_eq!(f.stage, Stage::Flush, "{f:?}");
    }

    #[test]
    fn duplicate_eval_fault_is_an_optimality_failure() {
        let cfg = ValidationConfig {
            fault: Some(FaultSpec {
                at: InjectAt::Init,
                kind: FaultKind::DuplicateEval,
            }),
            ..ValidationConfig::default()
        };
        let src = "start s\nend e\nnode s { x := v0+v1; out(x) }\nnode e { }\nedge s -> e";
        let v = validate(&parse(src).unwrap(), &cfg);
        assert!(v.fault_injected);
        let f = v.failure.expect("extra evaluation must be caught");
        assert_eq!(f.stage, Stage::Init, "{f:?}");
        assert!(matches!(f.kind, FailureKind::Optimality { .. }), "{f:?}");
    }

    #[test]
    fn fault_without_a_site_reports_not_injected() {
        let cfg = ValidationConfig {
            fault: Some(FaultSpec {
                at: InjectAt::Init,
                kind: FaultKind::TweakConst,
            }),
            ..ValidationConfig::default()
        };
        let src = "start s\nend e\nnode s { x := v0+v1 }\nnode e { out(x) }\nedge s -> e";
        let v = validate(&parse(src).unwrap(), &cfg);
        assert!(!v.fault_injected);
        assert!(v.passed(), "{:?}", v.failure);
    }

    #[test]
    fn failure_carries_a_replayable_oracle() {
        let cfg = ValidationConfig {
            fault: Some(FaultSpec {
                at: InjectAt::Flush,
                kind: FaultKind::DropInstr,
            }),
            ..ValidationConfig::default()
        };
        let v = validate(&diamond(), &cfg);
        let f = v.failure.expect("fault must be caught");
        assert_eq!(f.decisions.len(), cfg.decisions);
        assert_eq!(f.inputs, cfg.inputs);
    }

    #[test]
    fn identity_oracle_is_silent_on_sound_graphs() {
        assert_eq!(identity_mismatch(&diamond()), None);
        let opt = am_core::global::optimize(&diamond()).program;
        assert_eq!(identity_mismatch(&opt), None);
    }

    #[test]
    fn kind_classes_ignore_payloads() {
        let a = FailureKind::Semantic {
            run: 0,
            detail: "x".into(),
        };
        let b = FailureKind::Semantic {
            run: 7,
            detail: "y".into(),
        };
        assert!(a.same_class(&b));
        assert!(!a.same_class(&FailureKind::Structural("z".into())));
        assert!(!a.same_class(&FailureKind::Identity("w".into())));
        assert!(FailureKind::Identity("p".into()).same_class(&FailureKind::Identity("q".into())));
        assert!(FailureKind::Proof { detail: "p".into() }
            .same_class(&FailureKind::Proof { detail: "q".into() }));
        assert!(!a.same_class(&FailureKind::Proof { detail: "r".into() }));
    }

    #[test]
    fn prover_discharges_a_clean_program_statically() {
        let cfg = ValidationConfig {
            prove: true,
            ..ValidationConfig::default()
        };
        let v = validate(&diamond(), &cfg);
        assert!(v.passed(), "{:?}", v.failure);
        assert!(!v.prove_verdicts.is_empty());
        assert!(
            v.prove_verdicts
                .iter()
                .all(|(_, vd)| *vd == Verdict::Proved),
            "{:?}",
            v.prove_verdicts
        );
    }

    #[test]
    fn prover_statically_refutes_an_injected_fault() {
        let cfg = ValidationConfig {
            prove: true,
            fault: Some(FaultSpec {
                at: InjectAt::Init,
                kind: FaultKind::TweakConst,
            }),
            ..ValidationConfig::default()
        };
        let src = "start s\nend e\nnode s { x := v0+1; out(x) }\nnode e { out(v0) }\nedge s -> e";
        let v = validate(&parse(src).unwrap(), &cfg);
        assert!(v.fault_injected);
        let f = v.failure.expect("fault must be caught");
        assert_eq!(f.stage, Stage::Init, "{f:?}");
        assert!(matches!(f.kind, FailureKind::Proof { .. }), "{f:?}");
    }

    #[test]
    fn corresponding_equivalence_tolerates_trap_skew() {
        use am_ir::interp::Trap;
        let base = run(
            &parse("start s\nend e\nnode s { out(v1) }\nnode e { }\nedge s -> e").unwrap(),
            &Config::with_inputs(vec![("v1", 2)]),
        );
        let mut truncated = base.clone();
        truncated.stop = StopReason::OracleExhausted;
        truncated.trap = None;
        let mut trapped = base.clone();
        trapped.stop = StopReason::Trapped;
        trapped.trap = Some(Trap::DivByZero);
        assert!(!weakly_equivalent(&truncated, &trapped));
        assert!(corresponding_equivalent(&truncated, &trapped));
        // But a *completed* run against a trapped one is a real divergence.
        assert!(!corresponding_equivalent(&base, &trapped));
    }
}
