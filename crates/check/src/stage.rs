//! Names for the checkable stages of the optimization pipeline.

use std::fmt;

use am_core::global::PhaseId;

/// One differential-oracle boundary of the validation harness.
///
/// The pipeline stages mirror [`PhaseId`]; `Lcm` and `Sink` are the
/// standalone baselines checked against the original program, and `Final`
/// is the end-to-end comparison (original vs. fully optimized) that backs
/// the optimality theorems.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Critical-edge splitting (Sec. 2.1).
    Split,
    /// Initialization (Fig. 12).
    Init,
    /// The given 1-based `rae; aht` round of assignment motion (Fig. 14).
    MotionRound(usize),
    /// The final flush (Fig. 15).
    Flush,
    /// Original vs. fully optimized program (Thm 5.1/5.2 end to end).
    Final,
    /// The lazy-expression-motion baseline vs. the original.
    Lcm,
    /// The assignment-sinking baseline vs. the original.
    Sink,
}

impl Stage {
    /// Whether two stages are the same kind of boundary, ignoring the round
    /// number. The shrinker uses this: cutting a program legitimately
    /// changes *when* a bug manifests inside the motion fixed point, but
    /// not *which phase* manifests it.
    pub fn same_class(self, other: Stage) -> bool {
        matches!(
            (self, other),
            (Stage::Split, Stage::Split)
                | (Stage::Init, Stage::Init)
                | (Stage::MotionRound(_), Stage::MotionRound(_))
                | (Stage::Flush, Stage::Flush)
                | (Stage::Final, Stage::Final)
                | (Stage::Lcm, Stage::Lcm)
                | (Stage::Sink, Stage::Sink)
        )
    }
}

impl From<PhaseId> for Stage {
    fn from(p: PhaseId) -> Stage {
        match p {
            PhaseId::Split => Stage::Split,
            PhaseId::Init => Stage::Init,
            PhaseId::MotionRound(r) => Stage::MotionRound(r),
            PhaseId::Flush => Stage::Flush,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Split => write!(f, "split"),
            Stage::Init => write!(f, "init"),
            Stage::MotionRound(r) => write!(f, "motion round {r}"),
            Stage::Flush => write!(f, "flush"),
            Stage::Final => write!(f, "final (end to end)"),
            Stage::Lcm => write!(f, "lcm baseline"),
            Stage::Sink => write!(f, "sink baseline"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_numbers_do_not_split_classes() {
        assert!(Stage::MotionRound(1).same_class(Stage::MotionRound(7)));
        assert!(!Stage::MotionRound(1).same_class(Stage::Flush));
        assert!(Stage::Flush.same_class(Stage::Flush));
        assert!(!Stage::Lcm.same_class(Stage::Sink));
    }

    #[test]
    fn phases_map_onto_stages() {
        assert_eq!(Stage::from(PhaseId::MotionRound(3)), Stage::MotionRound(3));
        assert_eq!(Stage::from(PhaseId::Flush), Stage::Flush);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(Stage::MotionRound(2).to_string(), "motion round 2");
        assert_eq!(Stage::Final.to_string(), "final (end to end)");
    }
}
