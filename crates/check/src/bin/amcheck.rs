//! Seeded translation-validation campaigns from the command line.
//!
//! ```sh
//! amcheck --seeds 0..500                     # clean sweep
//! amcheck --seeds 0..50 --inject flush --fault drop-instr
//! amcheck program.ir other.wl                # validate specific files
//! ```
//!
//! Exit status: 0 all seeds/files pass, 1 at least one failure (bundles
//! under `--out`, default `target/am-check`), 2 usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use am_check::campaign::{
    check_file, default_bundle_dir, parse_seed_range, run_campaign, CampaignConfig,
};
use am_check::fault::{FaultKind, FaultSpec, InjectAt};
use am_ir::text::parse;

const USAGE: &str = "\
usage: amcheck [OPTIONS] [FILE...]

Validates every optimizer phase differentially on random programs (or the
given .ir/.wl files), shrinking failures and writing reproduction bundles.

options:
  --seeds A..B      seed range, end-exclusive (default 0..200); N means N..N+1
  --runs N          corresponding runs per phase pair (default 10)
  --decisions N     oracle decisions per run (default 14)
  --fail-fast       stop at the first failing seed
  --inject WHERE    inject a fault: init, round:N, flush (harness self-test)
  --fault KIND      fault kind: tweak-const, drop-instr, duplicate-eval,
                    swap-pattern-ids (default tweak-const; only with --inject)
  --lint            also run the am-lint static suite on each final
                    snapshot; reports seeds with error-severity findings
  --no-prove        disable the symbolic equivalence prover (on by default:
                    each phase pair is proved for all inputs first, and the
                    interpreter only runs on inconclusive pairs)
  --max-inconclusive PCT
                    fail if more than PCT percent of proof attempts were
                    inconclusive (CI gate; only meaningful with the prover on)
  --out DIR         bundle directory (default target/am-check)
  --no-bundles      do not shrink or write bundles
  -h, --help        show this help
";

fn fail_usage(msg: &str) -> ExitCode {
    eprintln!("amcheck: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut cfg = CampaignConfig {
        bundle_dir: Some(default_bundle_dir(&PathBuf::from("."))),
        ..CampaignConfig::default()
    };
    let mut inject: Option<InjectAt> = None;
    let mut fault_kind = FaultKind::TweakConst;
    let mut files: Vec<String> = Vec::new();
    let mut max_inconclusive_pct: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--seeds" => match value("--seeds").map(|v| parse_seed_range(&v)) {
                Ok(Some((a, b))) => (cfg.seed_start, cfg.seed_end) = (a, b),
                Ok(None) => return fail_usage("--seeds wants A..B or N"),
                Err(e) => return fail_usage(&e),
            },
            "--runs" => match value("--runs").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.runs = n,
                _ => return fail_usage("--runs wants a number"),
            },
            "--decisions" => match value("--decisions").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.decisions = n,
                _ => return fail_usage("--decisions wants a number"),
            },
            "--fail-fast" => cfg.fail_fast = true,
            "--lint" => cfg.lint = true,
            "--no-prove" => cfg.prove = false,
            "--max-inconclusive" => match value("--max-inconclusive").map(|v| v.parse()) {
                Ok(Ok(n)) => max_inconclusive_pct = Some(n),
                _ => return fail_usage("--max-inconclusive wants a percentage"),
            },
            "--inject" => match value("--inject") {
                Ok(v) => {
                    inject = Some(match v.as_str() {
                        "init" => InjectAt::Init,
                        "flush" => InjectAt::Flush,
                        other => match other.strip_prefix("round:").and_then(|r| r.parse().ok()) {
                            Some(r) => InjectAt::MotionRound(r),
                            None => return fail_usage("--inject wants init, round:N or flush"),
                        },
                    })
                }
                Err(e) => return fail_usage(&e),
            },
            "--fault" => match value("--fault").as_deref() {
                Ok("tweak-const") => fault_kind = FaultKind::TweakConst,
                Ok("drop-instr") => fault_kind = FaultKind::DropInstr,
                Ok("duplicate-eval") => fault_kind = FaultKind::DuplicateEval,
                Ok("swap-pattern-ids") => fault_kind = FaultKind::SwapPatternIds,
                Ok(_) => {
                    return fail_usage(
                        "--fault wants tweak-const, drop-instr, duplicate-eval \
                         or swap-pattern-ids",
                    )
                }
                Err(e) => return fail_usage(e),
            },
            "--out" => match value("--out") {
                Ok(v) => cfg.bundle_dir = Some(PathBuf::from(v)),
                Err(e) => return fail_usage(&e),
            },
            "--no-bundles" => cfg.bundle_dir = None,
            other if other.starts_with('-') => {
                return fail_usage(&format!("unknown option {other}"))
            }
            file => files.push(file.to_string()),
        }
    }
    cfg.fault = inject.map(|at| FaultSpec {
        at,
        kind: fault_kind,
    });

    let mut failed = 0usize;
    if files.is_empty() {
        let total = cfg.seed_end - cfg.seed_start;
        eprintln!(
            "amcheck: validating seeds {}..{} ({} programs, {} runs each)",
            cfg.seed_start, cfg.seed_end, total, cfg.runs
        );
        let report = run_campaign(&cfg, &mut |seed, fails| {
            let done = seed + 1 - cfg.seed_start;
            if done.is_multiple_of(100) {
                eprintln!("... {done}/{total} seeds, {fails} failures");
            }
        });
        for f in &report.failures {
            let shrunk = f
                .minimized_nodes
                .map(|n| format!(", shrunk to {n} nodes"))
                .unwrap_or_default();
            let bundle = f
                .bundle
                .as_ref()
                .map(|p| format!(" -> {}", p.display()))
                .unwrap_or_default();
            eprintln!(
                "seed {}: FAILED at {} ({:?}){shrunk}{bundle}",
                f.seed, f.failure.stage, f.failure.kind
            );
        }
        let lints = if cfg.lint {
            format!(", {} lints tripped", report.lints_tripped)
        } else {
            String::new()
        };
        println!(
            "amcheck: {} seeds checked ({} skipped), {} stage pairs, {} failures{lints}",
            report.seeds_checked,
            report.seeds_skipped,
            report.stages_checked,
            report.failures.len()
        );
        if !report.prove.is_empty() {
            println!("amcheck prover: {}", report.prove);
        }
        failed += report.failures.len();
        if let Some(pct) = max_inconclusive_pct {
            let t = report.prove.total();
            if t.inconclusive * 100 > t.total() * pct {
                eprintln!(
                    "amcheck: inconclusive rate above {pct}% ({} of {} proof attempts)",
                    t.inconclusive,
                    t.total()
                );
                failed += 1;
            }
        }
    } else {
        for file in &files {
            let src = match std::fs::read_to_string(file) {
                Ok(s) => s,
                Err(e) => return fail_usage(&format!("cannot read {file}: {e}")),
            };
            let program = match parse(&src) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("{file}: parse error: {e}");
                    failed += 1;
                    continue;
                }
            };
            match check_file(file, &program, &cfg) {
                Ok(()) => println!("{file}: ok"),
                Err(f) => {
                    let bundle = f
                        .bundle
                        .as_ref()
                        .map(|p| format!(" -> {}", p.display()))
                        .unwrap_or_default();
                    eprintln!(
                        "{file}: FAILED at {} ({:?}){bundle}",
                        f.failure.stage, f.failure.kind
                    );
                    failed += 1;
                }
            }
        }
    }

    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
