//! Seeded validation campaigns over the random-program corpus.
//!
//! [`run_campaign`] sweeps a seed range, generating each program with
//! [`seed_program`] (the same distribution the historical `fuzz_blitz`
//! sweep used, so seed numbers stay comparable across tools), validating
//! it per phase, and — on failure — shrinking the witness and writing a
//! reproduction bundle. The `amcheck` binary and `fuzz_blitz` are thin
//! wrappers around this.

use std::path::{Path, PathBuf};

use am_ir::random::{structured, unstructured, SplitMix64, StructuredConfig, UnstructuredConfig};
use am_ir::FlowGraph;
use am_trace::Tracer;

use crate::bundle::{write_bundle, Bundle};
use crate::fault::FaultSpec;
use crate::shrink::{shrink, ShrinkConfig};
use crate::stage::Stage;
use crate::validate::{validate, Failure, ValidationConfig, VerdictCounts};
use am_prove::Verdict;

/// The deterministic program for `seed` — one third structured, one third
/// structured with division and deeper nesting, one third unstructured
/// with seed-dependent size. Matches `fuzz_blitz`'s historical
/// distribution so seed numbers are stable identifiers.
pub fn seed_program(seed: u64) -> FlowGraph {
    let mut rng = SplitMix64::new(seed);
    match seed % 3 {
        0 => structured(&mut rng, &StructuredConfig::default()),
        1 => structured(
            &mut rng,
            &StructuredConfig {
                allow_div: true,
                max_depth: 4,
                ..Default::default()
            },
        ),
        _ => unstructured(
            &mut rng,
            &UnstructuredConfig {
                nodes: 8 + (seed as usize % 12),
                extra_edges: 4 + (seed as usize % 8),
                max_instrs: 4,
                num_vars: 6,
                allow_div: seed % 6 == 5,
            },
        ),
    }
}

/// The validation configuration campaigns use for `seed` — `fuzz_blitz`'s
/// historical inputs (`v0` varies with the seed) and oracle seeding.
pub fn seed_validation_config(seed: u64, runs: usize, decisions: usize) -> ValidationConfig {
    ValidationConfig {
        runs,
        decisions,
        seed: seed.wrapping_mul(1_000_003),
        inputs: vec![
            ("v0".into(), (seed as i64 % 7) - 3),
            ("v1".into(), 2),
            ("v2".into(), -5),
            ("v3".into(), 1),
        ],
        ..ValidationConfig::default()
    }
}

/// Parameters of one [`run_campaign`] sweep.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// First seed (inclusive).
    pub seed_start: u64,
    /// Last seed (exclusive).
    pub seed_end: u64,
    /// Corresponding runs per snapshot pair.
    pub runs: usize,
    /// Oracle decisions per run.
    pub decisions: usize,
    /// Stop at the first failing seed.
    pub fail_fast: bool,
    /// Inject this fault into every seed's optimization (harness
    /// self-test; seeds where the fault finds no site are skipped).
    pub fault: Option<FaultSpec>,
    /// Cross-check every seed's final snapshot with the `am-lint` static
    /// suite; [`CampaignReport::lints_tripped`] counts the seeds whose
    /// snapshot had error-severity findings. On clean optimizer output
    /// that count must be zero; under fault injection a nonzero count
    /// shows the linter catching corruption statically.
    pub lint: bool,
    /// Shrink failures and write bundles here; `None` disables both.
    pub bundle_dir: Option<PathBuf>,
    /// Shrinker budget.
    pub shrink: ShrinkConfig,
    /// Trace sink: one `campaign/seed` span per seed plus running
    /// progress counters. Disabled (a no-op) by default.
    pub tracer: Tracer,
    /// Run the symbolic equivalence prover on every snapshot pair before
    /// the interpreter (see [`ValidationConfig::prove`]). **On by
    /// default**: campaigns demand that injected faults be refuted
    /// statically, for all inputs, and that clean seeds be statically
    /// proved rather than merely sampled.
    pub prove: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed_start: 0,
            seed_end: 200,
            runs: 10,
            decisions: 14,
            fail_fast: false,
            fault: None,
            lint: false,
            bundle_dir: None,
            shrink: ShrinkConfig::default(),
            tracer: Tracer::disabled(),
            prove: true,
        }
    }
}

/// Per-phase prover verdict counts accumulated across a campaign, keyed
/// by stage class (every motion round lands in [`ProveSummary::motion`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProveSummary {
    /// Original vs. split snapshot.
    pub split: VerdictCounts,
    /// Split vs. initialization snapshot.
    pub init: VerdictCounts,
    /// All consecutive motion-round pairs.
    pub motion: VerdictCounts,
    /// Last round vs. flush snapshot.
    pub flush: VerdictCounts,
    /// Original vs. final snapshot, end to end.
    pub end_to_end: VerdictCounts,
}

impl ProveSummary {
    /// Records one verdict under its stage class. Baseline stages are
    /// never proved and are ignored.
    pub fn add(&mut self, stage: Stage, v: Verdict) {
        let slot = match stage {
            Stage::Split => &mut self.split,
            Stage::Init => &mut self.init,
            Stage::MotionRound(_) => &mut self.motion,
            Stage::Flush => &mut self.flush,
            Stage::Final => &mut self.end_to_end,
            Stage::Lcm | Stage::Sink => return,
        };
        slot.add(v);
    }

    /// Totals over all stage classes.
    pub fn total(&self) -> VerdictCounts {
        let mut t = VerdictCounts::default();
        for c in [
            self.split,
            self.init,
            self.motion,
            self.flush,
            self.end_to_end,
        ] {
            t.proved += c.proved;
            t.refuted += c.refuted;
            t.inconclusive += c.inconclusive;
        }
        t
    }

    /// No proof attempt was recorded (the prover was off).
    pub fn is_empty(&self) -> bool {
        self.total().total() == 0
    }
}

impl std::fmt::Display for ProveSummary {
    /// Per-phase `proved/refuted/inconclusive` counts.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "split {}, init {}, motion {}, flush {}, final {} (proved/refuted/inconclusive)",
            self.split, self.init, self.motion, self.flush, self.end_to_end
        )
    }
}

/// One failing seed of a campaign.
#[derive(Clone, Debug)]
pub struct SeedFailure {
    /// The failing seed.
    pub seed: u64,
    /// The localized failure.
    pub failure: Failure,
    /// Node count of the shrunk witness, when shrinking ran.
    pub minimized_nodes: Option<usize>,
    /// Where the reproduction bundle was written, when one was.
    pub bundle: Option<PathBuf>,
}

/// The outcome of a [`run_campaign`] sweep.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Seeds validated (excludes skipped ones).
    pub seeds_checked: u64,
    /// Seeds skipped because a requested fault found no injection site.
    pub seeds_skipped: u64,
    /// Snapshot pairs differentially checked, across all seeds.
    pub stages_checked: u64,
    /// Seeds whose final snapshot had error-severity lint findings
    /// (always 0 unless [`CampaignConfig::lint`] is set).
    pub lints_tripped: u64,
    /// Per-phase prover verdict counts, across all seeds (empty when
    /// [`CampaignConfig::prove`] is off).
    pub prove: ProveSummary,
    /// Every failing seed, in order.
    pub failures: Vec<SeedFailure>,
}

impl CampaignReport {
    /// No seed failed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Sweeps `cfg`'s seed range; see the module docs. `progress` is called
/// after every seed with (seed, failed-so-far) — binaries print from it,
/// library callers pass `|_, _| {}`.
pub fn run_campaign(cfg: &CampaignConfig, progress: &mut dyn FnMut(u64, usize)) -> CampaignReport {
    let mut report = CampaignReport::default();
    for seed in cfg.seed_start..cfg.seed_end {
        let mut span = cfg.tracer.span("campaign", "seed");
        span.arg("seed", seed as i64);
        let program = seed_program(seed);
        let vcfg = ValidationConfig {
            fault: cfg.fault,
            lint: cfg.lint,
            tracer: cfg.tracer.clone(),
            prove: cfg.prove,
            ..seed_validation_config(seed, cfg.runs, cfg.decisions)
        };
        let v = validate(&program, &vcfg);
        if cfg.fault.is_some() && !v.fault_injected {
            report.seeds_skipped += 1;
            span.arg("skipped", 1);
            drop(span);
            progress(seed, report.failures.len());
            continue;
        }
        report.seeds_checked += 1;
        report.stages_checked += v.stages_checked as u64;
        for (stage, verdict) in &v.prove_verdicts {
            report.prove.add(*stage, *verdict);
        }
        span.arg("stages", v.stages_checked as i64);
        if let Some(lint) = &v.lint {
            if lint.has_errors() {
                report.lints_tripped += 1;
                span.arg("lint_errors", lint.errors as i64);
            }
        }
        let failed = v.failure.is_some();
        if let Some(failure) = v.failure {
            let entry = handle_failure(seed, &program, &vcfg, failure, v.prove_verdicts, cfg);
            report.failures.push(entry);
        }
        span.arg("failed", failed as i64);
        drop(span);
        cfg.tracer.counter(
            "campaign",
            "progress",
            &[
                ("seeds_checked", report.seeds_checked as i64),
                ("stages_checked", report.stages_checked as i64),
                ("failures", report.failures.len() as i64),
            ],
        );
        if failed && cfg.fail_fast {
            progress(seed, report.failures.len());
            break;
        }
        progress(seed, report.failures.len());
    }
    report
}

fn handle_failure(
    seed: u64,
    program: &FlowGraph,
    vcfg: &ValidationConfig,
    failure: Failure,
    prove_verdicts: Vec<(Stage, Verdict)>,
    cfg: &CampaignConfig,
) -> SeedFailure {
    let Some(dir) = &cfg.bundle_dir else {
        return SeedFailure {
            seed,
            failure,
            minimized_nodes: None,
            bundle: None,
        };
    };
    // Shrinking replays the whole validation per candidate; skip the
    // baselines unless the failure is in one of them.
    let shrink_cfg = ValidationConfig {
        check_baselines: matches!(
            failure.stage,
            crate::stage::Stage::Lcm | crate::stage::Stage::Sink
        ),
        ..vcfg.clone()
    };
    let shrunk = shrink(program, &shrink_cfg, &failure, &cfg.shrink);
    let bundle = Bundle {
        name: format!("seed-{seed}"),
        seed: Some(seed),
        original: program.clone(),
        failure: shrunk.failure.clone(),
        command: reproduce_command(seed, cfg),
        shrunk: Some(shrunk),
        prove_verdicts,
    };
    let written = write_bundle(dir, &bundle).ok();
    SeedFailure {
        seed,
        failure: bundle.failure.clone(),
        minimized_nodes: bundle.shrunk.as_ref().map(|s| s.minimized_nodes),
        bundle: written,
    }
}

fn reproduce_command(seed: u64, cfg: &CampaignConfig) -> String {
    let mut cmd = format!(
        "cargo run --release -p am-check --bin amcheck -- --seeds {}..{} --runs {} --decisions {}",
        seed,
        seed + 1,
        cfg.runs,
        cfg.decisions
    );
    if !cfg.prove {
        cmd.push_str(" --no-prove");
    }
    if let Some(f) = cfg.fault {
        use crate::fault::{FaultKind, InjectAt};
        let at = match f.at {
            InjectAt::Init => "init".to_string(),
            InjectAt::MotionRound(r) => format!("round:{r}"),
            InjectAt::Flush => "flush".to_string(),
        };
        let kind = match f.kind {
            FaultKind::TweakConst => "tweak-const",
            FaultKind::DropInstr => "drop-instr",
            FaultKind::DuplicateEval => "duplicate-eval",
            FaultKind::SwapPatternIds => "swap-pattern-ids",
        };
        cmd.push_str(&format!(" --inject {at} --fault {kind}"));
    }
    cmd
}

/// Validates a hand-written program the way a campaign seed is validated,
/// shrinking and bundling on failure. Used by `amcheck FILE...`.
pub fn check_file(
    name: &str,
    program: &FlowGraph,
    cfg: &CampaignConfig,
) -> Result<(), Box<SeedFailure>> {
    let vcfg = ValidationConfig {
        runs: cfg.runs,
        decisions: cfg.decisions,
        fault: cfg.fault,
        prove: cfg.prove,
        ..ValidationConfig::default()
    };
    let v = validate(program, &vcfg);
    match v.failure {
        None => Ok(()),
        Some(failure) => {
            let verdicts = v.prove_verdicts.clone();
            let mut entry = handle_failure(0, program, &vcfg, failure, v.prove_verdicts, cfg);
            if let Some(dir) = &cfg.bundle_dir {
                // Rename the bundle after the file, not a fake seed.
                let _ = std::fs::remove_dir_all(dir.join("seed-0"));
                let sanitized: String = name
                    .chars()
                    .map(|c| if c.is_alphanumeric() { c } else { '-' })
                    .collect();
                let b = Bundle {
                    name: format!("file-{sanitized}"),
                    seed: None,
                    original: program.clone(),
                    shrunk: None,
                    failure: entry.failure.clone(),
                    command: format!("cargo run --release -p am-check --bin amcheck -- {name}"),
                    prove_verdicts: verdicts,
                };
                entry.bundle = write_bundle(dir, &b).ok();
            }
            Err(Box::new(entry))
        }
    }
}

/// Parses `A..B` (end-exclusive) or a single `N` (meaning `N..N+1`).
pub fn parse_seed_range(s: &str) -> Option<(u64, u64)> {
    if let Some((a, b)) = s.split_once("..") {
        let (a, b) = (a.trim().parse().ok()?, b.trim().parse().ok()?);
        (a <= b).then_some((a, b))
    } else {
        let n: u64 = s.trim().parse().ok()?;
        Some((n, n + 1))
    }
}

/// The default bundle directory, `target/am-check` relative to `cwd`.
pub fn default_bundle_dir(cwd: &Path) -> PathBuf {
    cwd.join("target").join("am-check")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, InjectAt};

    #[test]
    fn seed_programs_are_deterministic_and_valid() {
        for seed in 0..30 {
            let a = seed_program(seed);
            let b = seed_program(seed);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(a.validate(), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn a_small_clean_campaign_passes() {
        let cfg = CampaignConfig {
            seed_start: 0,
            seed_end: 12,
            runs: 6,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&cfg, &mut |_, _| {});
        assert!(r.passed(), "{:?}", r.failures);
        assert_eq!(r.seeds_checked, 12);
        assert_eq!(r.seeds_skipped, 0);
        assert!(r.stages_checked >= 12 * 4);
        // The prover is on by default and must discharge every phase of
        // every clean seed without a single refutation.
        let totals = r.prove.total();
        assert_eq!(totals.refuted, 0, "{:?}", r.prove);
        assert!(totals.proved > 0, "{:?}", r.prove);
        assert_eq!(r.prove.split.refuted + r.prove.end_to_end.refuted, 0);
    }

    #[test]
    fn an_injected_fault_is_refuted_statically() {
        let cfg = CampaignConfig {
            seed_start: 0,
            seed_end: 10,
            runs: 4,
            fault: Some(FaultSpec {
                at: InjectAt::Flush,
                kind: FaultKind::DropInstr,
            }),
            ..CampaignConfig::default()
        };
        let r = run_campaign(&cfg, &mut |_, _| {});
        assert!(!r.failures.is_empty());
        // Every caught fault must be a *static* refutation: the prover
        // finds the witness before the interpreter ever runs the pair.
        for f in &r.failures {
            assert!(
                matches!(f.failure.kind, crate::validate::FailureKind::Proof { .. }),
                "seed {} fell back to the dynamic oracle: {:?}",
                f.seed,
                f.failure
            );
        }
        assert!(r.prove.total().refuted as usize >= r.failures.len());
    }

    #[test]
    fn fail_fast_stops_at_the_first_failure() {
        let cfg = CampaignConfig {
            seed_start: 0,
            seed_end: 50,
            runs: 4,
            fail_fast: true,
            fault: Some(FaultSpec {
                at: InjectAt::Init,
                kind: FaultKind::TweakConst,
            }),
            ..CampaignConfig::default()
        };
        let r = run_campaign(&cfg, &mut |_, _| {});
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
        // Everything before the failing seed was either clean-skipped
        // (no injection site) or... nothing: an injected const tweak
        // must be caught, so no checked seed precedes the failure.
        assert!(r.seeds_checked >= 1);
    }

    #[test]
    fn seed_ranges_parse() {
        assert_eq!(parse_seed_range("0..500"), Some((0, 500)));
        assert_eq!(parse_seed_range("42"), Some((42, 43)));
        assert_eq!(parse_seed_range("9..3"), None);
        assert_eq!(parse_seed_range("x"), None);
    }
}
