//! End-to-end acceptance tests for the translation-validation harness:
//! an injected miscompile must be localized to its phase, shrunk to a
//! small witness, and persisted as a replayable bundle.

use std::path::PathBuf;

use am_check::campaign::{run_campaign, CampaignConfig};
use am_check::fault::{FaultKind, FaultSpec, InjectAt};
use am_check::shrink::ShrinkConfig;
use am_check::stage::Stage;
use am_check::validate::{validate, FailureKind, ValidationConfig};
use am_ir::text::parse;

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A clean sweep over the first 60 seeds of the corpus: every phase of
/// every program validates. (The release acceptance run covers 0..500 via
/// the `amcheck` binary; this keeps a meaningful slice in the suite.)
#[test]
fn clean_campaign_over_the_random_corpus_passes() {
    let cfg = CampaignConfig {
        seed_start: 0,
        seed_end: 60,
        runs: 8,
        bundle_dir: None,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&cfg, &mut |_, _| {});
    assert!(report.passed(), "failures: {:?}", report.failures);
    assert_eq!(report.seeds_checked, 60);
}

/// The headline acceptance criterion: an intentionally-miscompiled phase
/// is (a) localized to that phase, (b) shrunk to a reproducer of at most
/// 10 nodes, and (c) written out as a reproduction bundle.
#[test]
fn injected_fault_is_localized_shrunk_and_bundled() {
    let out = tmp("fault-campaign");
    let cfg = CampaignConfig {
        seed_start: 0,
        seed_end: 40,
        runs: 8,
        fault: Some(FaultSpec {
            at: InjectAt::Flush,
            kind: FaultKind::DropInstr,
        }),
        bundle_dir: Some(out.clone()),
        shrink: ShrinkConfig::default(),
        ..CampaignConfig::default()
    };
    let report = run_campaign(&cfg, &mut |_, _| {});
    assert!(
        !report.failures.is_empty(),
        "a dropped out() must be caught on some seed \
         ({} checked, {} skipped)",
        report.seeds_checked,
        report.seeds_skipped
    );
    for f in &report.failures {
        // (a) localized to the injected phase, and — since campaigns
        // prove before they run — *statically* refuted by the prover.
        assert_eq!(f.failure.stage, Stage::Flush, "seed {}: {f:?}", f.seed);
        assert!(
            matches!(f.failure.kind, FailureKind::Proof { .. }),
            "seed {}: {f:?}",
            f.seed
        );
        // (b) shrunk small.
        let nodes = f.minimized_nodes.expect("shrinker must run");
        assert!(nodes <= 10, "seed {}: {} nodes", f.seed, nodes);
        // (c) bundled, and the bundle replays.
        let dir = f.bundle.clone().expect("bundle must be written");
        let minimized = std::fs::read_to_string(dir.join("minimized.ir")).unwrap();
        let g = parse(&minimized).expect("minimized witness must re-parse");
        let vcfg = ValidationConfig {
            fault: cfg.fault,
            check_baselines: false,
            prove: true,
            ..ValidationConfig::default()
        };
        let v = validate(&g, &vcfg);
        assert!(
            v.failure.is_some_and(|fx| fx.stage == Stage::Flush),
            "seed {}: bundle does not reproduce",
            f.seed
        );
        let report_txt = std::fs::read_to_string(dir.join("report.txt")).unwrap();
        assert!(report_txt.contains("--inject flush"), "{report_txt}");
        assert!(report_txt.contains("--fault drop-instr"), "{report_txt}");
    }
}

/// A fault injected into a motion round is pinned to a motion round (the
/// exact round may differ between programs, never the phase class).
#[test]
fn motion_round_fault_is_pinned_to_a_motion_round() {
    let cfg = CampaignConfig {
        seed_start: 0,
        seed_end: 60,
        runs: 8,
        fail_fast: true,
        fault: Some(FaultSpec {
            at: InjectAt::MotionRound(1),
            kind: FaultKind::TweakConst,
        }),
        bundle_dir: None,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&cfg, &mut |_, _| {});
    let f = report
        .failures
        .first()
        .expect("a tweaked constant after round 1 must be caught on some seed");
    assert!(
        f.failure.stage.same_class(Stage::MotionRound(1)),
        "{:?}",
        f.failure
    );
}

/// Validating a hand-written file through the campaign API fails cleanly
/// and names the file in the bundle.
#[test]
fn file_checking_bundles_under_the_file_name() {
    use am_check::campaign::check_file;
    let out = tmp("file-check");
    let g =
        parse("start s\nend e\nnode s { x := v0+v1; out(x) }\nnode e { }\nedge s -> e").unwrap();
    let cfg = CampaignConfig {
        fault: Some(FaultSpec {
            at: InjectAt::Init,
            kind: FaultKind::DuplicateEval,
        }),
        bundle_dir: Some(out.clone()),
        ..CampaignConfig::default()
    };
    let err = check_file("demo.ir", &g, &cfg).expect_err("duplicate eval must fail");
    // The prover is on by default, so the extra evaluation is refuted
    // statically (its witness carries the optimality divergence).
    assert!(
        matches!(err.failure.kind, FailureKind::Proof { .. }),
        "{:?}",
        err.failure
    );
    let dir = err.bundle.expect("bundle written");
    assert!(dir.ends_with("file-demo-ir"), "{}", dir.display());
    assert!(dir.join("original.ir").exists());
}
