//! Additional coverage: interpreter corner cases, nested loop analysis,
//! pattern collection from conditions, and point graphs over hand-built
//! blocks.

use am_ir::interp::{run, Config, Oracle, StopReason, Trap};
use am_ir::text::parse;
use am_ir::{
    analysis, AssignPattern, BinOp, Cond, FlowGraph, Instr, Operand, PatternUniverse, Term,
};

#[test]
fn mod_by_zero_traps() {
    let g = parse("start s\nend e\nnode s { x := a % b }\nnode e { out(x) }\nedge s -> e").unwrap();
    let r = run(&g, &Config::with_inputs(vec![("a", 5), ("b", 0)]));
    assert_eq!(r.trap, Some(Trap::DivByZero));
    assert_eq!(r.stop, StopReason::Trapped);
    let ok = run(&g, &Config::with_inputs(vec![("a", 5), ("b", 3)]));
    assert_eq!(ok.outputs, vec![vec![2]]);
}

#[test]
fn min_div_minus_one_wraps_instead_of_panicking() {
    let g = parse("start s\nend e\nnode s { x := a / b }\nnode e { out(x) }\nedge s -> e").unwrap();
    let r = run(&g, &Config::with_inputs(vec![("a", i64::MIN), ("b", -1)]));
    assert_eq!(r.stop, StopReason::ReachedEnd);
    assert_eq!(r.outputs, vec![vec![i64::MIN]]); // wrapping division
}

#[test]
fn out_with_constants_and_negatives() {
    let g =
        parse("start s\nend e\nnode s { skip }\nnode e { out(x, -3, 42) }\nedge s -> e").unwrap();
    let r = run(&g, &Config::with_inputs(vec![("x", -7)]));
    assert_eq!(r.outputs, vec![vec![-7, -3, 42]]);
}

#[test]
fn relational_terms_in_assignments() {
    let g = parse(
        "start s\nend e\nnode s { t := a < b; u := a == a }\nnode e { out(t,u) }\nedge s -> e",
    )
    .unwrap();
    let r = run(&g, &Config::with_inputs(vec![("a", 1), ("b", 2)]));
    assert_eq!(r.outputs, vec![vec![1, 1]]);
    let r2 = run(&g, &Config::with_inputs(vec![("a", 3), ("b", 2)]));
    assert_eq!(r2.outputs, vec![vec![0, 1]]);
}

#[test]
fn nested_natural_loops() {
    // outer: 2..5, inner: 3..4.
    let g = parse(
        "start 1\nend 6\n\
         node 1 { skip }\n\
         node 2 { branch i < n }\n\
         node 3 { branch j < m }\n\
         node 4 { j := j + 1 }\n\
         node 5 { i := i + 1 }\n\
         node 6 { out(i,j) }\n\
         edge 1 -> 2\nedge 2 -> 3, 6\nedge 3 -> 4, 5\nedge 4 -> 3\nedge 5 -> 2",
    )
    .unwrap();
    let back = analysis::back_edges(&g);
    assert_eq!(back.len(), 2);
    let label = |n: am_ir::NodeId| g.label(n).to_owned();
    let mut headers: Vec<String> = back.iter().map(|&(_, h)| label(h)).collect();
    headers.sort();
    assert_eq!(headers, vec!["2", "3"]);
    // The outer loop contains the inner one.
    let (outer_tail, outer_header) = back
        .iter()
        .find(|&&(_, h)| label(h) == "2")
        .copied()
        .unwrap();
    let outer = analysis::natural_loop(&g, outer_tail, outer_header);
    let outer_labels: Vec<String> = outer.iter().map(|&n| label(n)).collect();
    assert_eq!(outer_labels, vec!["2", "3", "4", "5"]);
    let (inner_tail, inner_header) = back
        .iter()
        .find(|&&(_, h)| label(h) == "3")
        .copied()
        .unwrap();
    let inner = analysis::natural_loop(&g, inner_tail, inner_header);
    let inner_labels: Vec<String> = inner.iter().map(|&n| label(n)).collect();
    assert_eq!(inner_labels, vec!["3", "4"]);
    assert!(analysis::is_reducible(&g));
}

#[test]
fn condition_sides_join_the_expression_universe() {
    let g = parse(
        "start s\nend e\n\
         node s { branch a*b >= c-d }\n\
         node l { skip }\n\
         node e { out(a) }\n\
         edge s -> l, e\nedge l -> e",
    )
    .unwrap();
    let u = PatternUniverse::collect(&g);
    assert_eq!(u.expr_count(), 2);
    let a = g.pool().lookup("a").unwrap();
    let b = g.pool().lookup("b").unwrap();
    let c = g.pool().lookup("c").unwrap();
    let d = g.pool().lookup("d").unwrap();
    assert!(u.expr_id(&Term::binary(BinOp::Mul, a, b)).is_some());
    assert!(u.expr_id(&Term::binary(BinOp::Sub, c, d)).is_some());
}

#[test]
fn instructions_after_a_branch_execute_before_transfer() {
    // The representation allows assignments after the decision point; they
    // run before control moves (how X-INSERT at branch nodes works).
    let mut g = FlowGraph::new();
    let s = g.add_node("s");
    let l = g.add_node("l");
    let r = g.add_node("r");
    let e = g.add_node("e");
    g.set_start(s);
    g.set_end(e);
    g.add_edge(s, l);
    g.add_edge(s, r);
    g.add_edge(l, e);
    g.add_edge(r, e);
    let p = g.pool_mut().intern("p");
    let x = g.pool_mut().intern("x");
    g.block_mut(s)
        .instrs
        .push(Instr::Branch(Cond::new(BinOp::Gt, p, 0)));
    g.block_mut(s).instrs.push(Instr::assign(x, 9)); // after the branch
    g.block_mut(e)
        .instrs
        .push(Instr::Out(vec![Operand::Var(x)]));
    assert_eq!(g.validate(), Ok(()));
    for p_val in [1, -1] {
        let res = run(&g, &Config::with_inputs(vec![("p", p_val)]));
        assert_eq!(res.outputs, vec![vec![9]], "x set on both branches");
    }
}

#[test]
fn transparency_vs_blocking_are_different_relations() {
    let mut g = FlowGraph::new();
    let x = g.pool_mut().intern("x");
    let a = g.pool_mut().intern("a");
    let pattern = AssignPattern::new(x, Term::binary(BinOp::Add, a, 1));
    // Reading x blocks hoisting but is transparent for redundancy.
    let read = Instr::Out(vec![Operand::Var(x)]);
    assert!(pattern.blocked_by(&read));
    assert!(pattern.transparent_for(&read));
}

#[test]
fn oracle_decisions_count_only_at_branches() {
    let g = parse(
        "start s\nend e\nnode s { x := 1 }\nnode m { x := x + 1 }\nnode e { out(x) }\nedge s -> m\nedge m -> e",
    )
    .unwrap();
    let r = run(
        &g,
        &Config {
            oracle: Oracle::Fixed(vec![]),
            ..Config::default()
        },
    );
    assert_eq!(r.stop, StopReason::ReachedEnd, "no decisions needed");
    assert_eq!(r.decisions, 0);
}

#[test]
fn traced_runs_mirror_untraced_results() {
    use am_ir::interp::{run_traced, TraceEvent};
    let g = parse(
        "start 1\nend 4\n\
         node 1 { i := 0 }\n\
         node 2 { branch i < n }\n\
         node 3 { i := i + 1 }\n\
         node 4 { out(i) }\n\
         edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2",
    )
    .unwrap();
    let cfg = Config::with_inputs(vec![("n", 3)]);
    let (result, trace) = run_traced(&g, &cfg);
    assert_eq!(result, run(&g, &cfg), "tracing must not change behaviour");
    // One Enter per visited node, one Decided per decision, one Emitted
    // per output, writes match assignment executions.
    let enters = trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Enter(_)))
        .count();
    let decides = trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Decided(_)))
        .count();
    let emits = trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Emitted(_)))
        .count();
    let writes = trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Wrote { .. }))
        .count();
    assert_eq!(enters as u64, result.nodes_visited);
    assert_eq!(decides as u64, result.decisions);
    assert_eq!(emits, result.outputs.len());
    assert_eq!(writes as u64, result.assign_execs);
    // The final write to i is 3.
    let last_write = trace.iter().rev().find_map(|e| match e {
        TraceEvent::Wrote { value, .. } => Some(*value),
        _ => None,
    });
    assert_eq!(last_write, Some(3));
}

#[test]
fn traced_trap_is_an_event() {
    use am_ir::interp::{run_traced, TraceEvent, Trap};
    let g = parse("start s\nend e\nnode s { x := 1/q }\nnode e { out(x) }\nedge s -> e").unwrap();
    let (_, trace) = run_traced(&g, &Config::with_inputs(vec![("q", 0)]));
    assert!(trace.contains(&TraceEvent::Trapped(Trap::DivByZero)));
}
