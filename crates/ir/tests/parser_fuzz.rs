//! Fuzz-style robustness tests: the lexer and parser must never panic, on
//! any input; valid programs survive mutation without UB.

use am_ir::text::{lex, parse, parse_with_mode, Mode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics(src in "\\PC*") {
        let _ = lex(&src);
    }

    #[test]
    fn parser_never_panics(src in "\\PC*") {
        let _ = parse(&src);
        let _ = parse_with_mode(&src, Mode::Decompose);
    }

    #[test]
    fn parser_never_panics_on_grammar_like_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("start".to_owned()),
                Just("end".to_owned()),
                Just("node".to_owned()),
                Just("edge".to_owned()),
                Just("{".to_owned()),
                Just("}".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just(":=".to_owned()),
                Just("->".to_owned()),
                Just(";".to_owned()),
                Just(",".to_owned()),
                Just("+".to_owned()),
                Just(">".to_owned()),
                Just("out".to_owned()),
                Just("branch".to_owned()),
                Just("skip".to_owned()),
                Just("x".to_owned()),
                Just("1".to_owned()),
            ],
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = parse(&src);
    }

    #[test]
    fn valid_programs_with_injected_noise_do_not_panic(
        pos in 0usize..200,
        noise in "\\PC{0,3}",
    ) {
        let base = "start 1\nend 4\nnode 1 { y := c+d }\nnode 2 { branch x+z > y+i }\n\
                    node 3 { y := c+d; x := y+z }\nnode 4 { out(y,x) }\n\
                    edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2";
        let mut src = base.to_owned();
        let at = pos.min(src.len());
        // Keep the insertion point on a char boundary.
        let at = (0..=at).rev().find(|&i| src.is_char_boundary(i)).unwrap_or(0);
        src.insert_str(at, &noise);
        let _ = parse(&src);
    }
}
