//! Fuzz-style robustness tests: the lexer and parser must never panic, on
//! any input; valid programs survive mutation without UB. Inputs are
//! generated with the crate's own deterministic PRNG, so failures
//! reproduce from the printed seed.

use am_ir::rng::SplitMix64;
use am_ir::text::{lex, parse, parse_with_mode, Mode};

/// A printable-ish random string: ASCII, punctuation the grammar uses, and
/// some multi-byte unicode to exercise char-boundary handling.
fn random_string(rng: &mut SplitMix64, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    let mut s = String::with_capacity(len);
    for _ in 0..len {
        let c = match rng.gen_range(0..10usize) {
            0..=4 => rng.gen_range(0x20i64..0x7F) as u8 as char,
            5 => *rng.choose(&['\n', '\t', ' ', ';', ',']),
            6 => *rng.choose(&[':', '=', '-', '>', '{', '}', '(', ')', '+', '*', '%']),
            7 => *rng.choose(&['α', 'β', '漢', '🦀', 'Ж']),
            _ => rng.gen_range(0x30i64..0x7B) as u8 as char,
        };
        s.push(c);
    }
    s
}

#[test]
fn lexer_never_panics() {
    let mut rng = SplitMix64::new(0xFACE);
    for case in 0..512 {
        let src = random_string(&mut rng, 80);
        let _ = lex(&src);
        let _ = case;
    }
}

#[test]
fn parser_never_panics() {
    let mut rng = SplitMix64::new(0xBEEF);
    for _ in 0..512 {
        let src = random_string(&mut rng, 80);
        let _ = parse(&src);
        let _ = parse_with_mode(&src, Mode::Decompose);
    }
}

#[test]
fn parser_never_panics_on_grammar_like_soup() {
    const TOKENS: &[&str] = &[
        "start", "end", "node", "edge", "{", "}", "(", ")", ":=", "->", ";", ",", "+", ">", "out",
        "branch", "skip", "x", "1",
    ];
    let mut rng = SplitMix64::new(0x5009);
    for _ in 0..512 {
        let n = rng.gen_range(0..40usize);
        let src: Vec<&str> = (0..n).map(|_| *rng.choose(TOKENS)).collect();
        let _ = parse(&src.join(" "));
    }
}

#[test]
fn valid_programs_with_injected_noise_do_not_panic() {
    let base = "start 1\nend 4\nnode 1 { y := c+d }\nnode 2 { branch x+z > y+i }\n\
                node 3 { y := c+d; x := y+z }\nnode 4 { out(y,x) }\n\
                edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2";
    let mut rng = SplitMix64::new(0xD15EA5E);
    for _ in 0..512 {
        let pos = rng.gen_range(0..200usize);
        let noise = random_string(&mut rng, 3);
        let mut src = base.to_owned();
        let at = pos.min(src.len());
        // Keep the insertion point on a char boundary.
        let at = (0..=at)
            .rev()
            .find(|&i| src.is_char_boundary(i))
            .unwrap_or(0);
        src.insert_str(at, &noise);
        let _ = parse(&src);
    }
}
