//! Print-then-parse is the identity (up to alpha-renaming of temporaries)
//! over the random-program corpus — the property the `am-check`
//! reproduction bundles rely on: a bundled `.ir` file must re-parse to the
//! very program that failed.

use am_ir::alpha::{alpha_eq, canonical_text, stable_hash};
use am_ir::random::corpus80;
use am_ir::text::{parse, to_text};
use am_ir::FlowGraph;

fn corpus() -> Vec<(String, FlowGraph)> {
    corpus80()
}

#[test]
fn to_text_then_parse_is_alpha_identity_over_the_corpus() {
    for (name, g) in corpus() {
        let text = to_text(&g);
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}\n{text}"));
        assert!(alpha_eq(&g, &reparsed), "{name}:\n{text}");
        assert_eq!(stable_hash(&g), stable_hash(&reparsed), "{name}");
    }
}

#[test]
fn canonical_text_is_a_fixed_point_over_the_corpus() {
    // canonical_text(parse(canonical_text(g))) == canonical_text(g):
    // canonicalization must be stable, or equal programs would hash apart
    // depending on how many times they round-tripped.
    for (name, g) in corpus() {
        let once = canonical_text(&g);
        let reparsed = parse(&once).unwrap_or_else(|e| panic!("{name}: {e}\n{once}"));
        let twice = canonical_text(&reparsed);
        assert_eq!(once, twice, "{name}");
        assert_eq!(stable_hash(&g), stable_hash(&reparsed), "{name}");
    }
}

#[test]
fn round_trip_preserves_start_end_and_shape() {
    for (name, g) in corpus() {
        let reparsed = parse(&to_text(&g)).unwrap();
        assert_eq!(g.nodes().count(), reparsed.nodes().count(), "{name}");
        let edges = |g: &FlowGraph| g.nodes().map(|n| g.succs(n).len()).sum::<usize>();
        assert_eq!(edges(&g), edges(&reparsed), "{name}");
        assert_eq!(
            g.label(g.start()),
            reparsed.label(reparsed.start()),
            "{name}"
        );
        assert_eq!(g.label(g.end()), reparsed.label(reparsed.end()), "{name}");
    }
}
