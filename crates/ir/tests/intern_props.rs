//! Property tests for the interning arena (`am_ir::intern`).
//!
//! The arena's contract is that interning is a *pure function of structure*:
//! two terms receive the same `TermId` exactly when they are structurally
//! equal, cached hashes never drift from freshly computed ones, and ids are
//! insensitive to how often (and in what order) already-known terms are
//! re-presented. All randomness is driven by the in-tree `SplitMix64` so
//! every run is reproducible from the printed seed.

use am_ir::intern::term_hash;
use am_ir::rng::SplitMix64;
use am_ir::{BinOp, Cond, Instr, InstrInterner, Operand, Term, TermArena, Var, VarPool};

const OPS: [BinOp; 11] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Mod,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::EqOp,
    BinOp::Ne,
];

fn make_vars(pool: &mut VarPool, n: usize) -> Vec<Var> {
    (0..n).map(|i| pool.intern(&format!("v{i}"))).collect()
}

fn random_operand(rng: &mut SplitMix64, vars: &[Var]) -> Operand {
    if rng.gen_bool(0.6) {
        Operand::Var(*rng.choose(vars))
    } else {
        Operand::Const(rng.gen_range(-8i64..=8))
    }
}

/// A random 3-address term. Roughly a quarter are trivial operands so the
/// trivial/non-trivial boundary of the pattern table is exercised too.
fn random_term(rng: &mut SplitMix64, vars: &[Var]) -> Term {
    if rng.gen_bool(0.25) {
        Term::operand(random_operand(rng, vars))
    } else {
        let op = *rng.choose(&OPS);
        Term::binary(op, random_operand(rng, vars), random_operand(rng, vars))
    }
}

fn shuffle<T>(rng: &mut SplitMix64, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// `intern(t) == intern(u)` exactly when `t == u` structurally.
#[test]
fn intern_equality_coincides_with_structural_equality() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(0xA11C_E500 + seed);
        let mut pool = VarPool::new();
        let vars = make_vars(&mut pool, 5);
        let mut arena = TermArena::new();
        let terms: Vec<Term> = (0..64).map(|_| random_term(&mut rng, &vars)).collect();
        let ids: Vec<_> = terms.iter().map(|&t| arena.intern(t)).collect();
        for (i, &t) in terms.iter().enumerate() {
            for (j, &u) in terms.iter().enumerate() {
                assert_eq!(
                    ids[i] == ids[j],
                    t == u,
                    "seed {seed}: id equality disagrees with structural equality \
                     for {t:?} vs {u:?}"
                );
            }
        }
        arena.verify().expect("arena invariants");
    }
}

/// The hash cached at intern time equals a fresh structural recomputation.
#[test]
fn cached_hash_never_drifts_from_fresh_hash() {
    let mut rng = SplitMix64::new(0xCAC4E);
    let mut pool = VarPool::new();
    let vars = make_vars(&mut pool, 6);
    let mut arena = TermArena::new();
    let mut seen = Vec::new();
    for _ in 0..512 {
        let t = random_term(&mut rng, &vars);
        let id = arena.intern(t);
        seen.push(t);
        assert_eq!(
            arena.hash(id),
            term_hash(t),
            "cached hash diverged from term_hash for {t:?}"
        );
    }
    // Re-check every term after the arena stopped growing: the cache must be
    // write-once, never invalidated by later growth.
    for &t in &seen {
        let id = arena.lookup(&t).expect("previously interned");
        assert_eq!(arena.hash(id), term_hash(t));
        assert_eq!(arena.term(id), t);
    }
}

/// Ids are stable under re-interning in any order: once a term is known,
/// every later `intern` returns the original id and the arena stops growing.
#[test]
fn ids_stable_under_reintern_order_permutations() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(0x5EED_0000 + seed);
        let mut pool = VarPool::new();
        let vars = make_vars(&mut pool, 4);
        let mut arena = TermArena::new();
        let terms: Vec<Term> = (0..48).map(|_| random_term(&mut rng, &vars)).collect();
        let first: Vec<_> = terms.iter().map(|&t| arena.intern(t)).collect();
        let len = arena.len();
        let pattern_count = arena.pattern_count();
        // Re-present the same terms in several shuffled orders.
        let mut order: Vec<usize> = (0..terms.len()).collect();
        for _ in 0..4 {
            shuffle(&mut rng, &mut order);
            for &i in &order {
                assert_eq!(
                    arena.intern(terms[i]),
                    first[i],
                    "seed {seed}: re-intern changed the id of {:?}",
                    terms[i]
                );
            }
            assert_eq!(arena.len(), len, "re-interning grew the arena");
            assert_eq!(arena.pattern_count(), pattern_count);
        }
        arena.verify().expect("arena invariants");
    }
}

/// Pattern ids are dense over distinct non-trivial terms in first-occurrence
/// order, and trivial terms never get one.
#[test]
fn pattern_ids_are_dense_and_ordered_by_first_occurrence() {
    let mut rng = SplitMix64::new(0xDE5E);
    let mut pool = VarPool::new();
    let vars = make_vars(&mut pool, 5);
    let mut arena = TermArena::new();
    let mut expected = Vec::new();
    for _ in 0..256 {
        let t = random_term(&mut rng, &vars);
        let known = arena.lookup(&t).is_some();
        let id = arena.intern(t);
        if t.is_nontrivial() && !known {
            expected.push(t);
            assert_eq!(
                arena.pattern_of(id).map(|p| p.index()),
                Some(expected.len() - 1),
                "fresh non-trivial term must take the next dense pattern id"
            );
        }
        if !t.is_nontrivial() {
            assert!(
                arena.pattern_of(id).is_none(),
                "trivial term got a pattern id"
            );
        }
    }
    assert_eq!(arena.pattern_count(), expected.len());
    for (i, &t) in expected.iter().enumerate() {
        assert_eq!(
            arena.pattern_term(am_ir::PatternId::from_index(i)),
            t,
            "pattern table order must be first-occurrence order"
        );
    }
}

/// The instruction interner dedups structurally equal instructions and its
/// ids are stable under re-interning, mirroring the term-level properties.
#[test]
fn instr_interner_properties() {
    let mut rng = SplitMix64::new(0x1257);
    let mut pool = VarPool::new();
    let vars = make_vars(&mut pool, 5);
    let mut interner = InstrInterner::new();
    let mut instrs = Vec::new();
    for _ in 0..128 {
        let instr = match rng.gen_range(0..4usize) {
            0 => Instr::Skip,
            1 => Instr::Assign {
                lhs: *rng.choose(&vars),
                rhs: random_term(&mut rng, &vars),
            },
            2 => {
                let n = rng.gen_range(0..3usize);
                Instr::Out((0..n).map(|_| random_operand(&mut rng, &vars)).collect())
            }
            _ => Instr::Branch(Cond::new(
                *rng.choose(&OPS),
                random_term(&mut rng, &vars),
                random_term(&mut rng, &vars),
            )),
        };
        instrs.push(instr);
    }
    let first: Vec<_> = instrs.iter().map(|i| interner.intern(i).0).collect();
    let len = interner.len();
    for (k, instr) in instrs.iter().enumerate() {
        let (id, fresh) = interner.intern(instr);
        assert_eq!(id, first[k], "re-intern changed an instruction id");
        assert!(!fresh, "re-intern reported a known instruction as new");
    }
    assert_eq!(interner.len(), len);
    for (i, a) in instrs.iter().enumerate() {
        for (j, b) in instrs.iter().enumerate() {
            assert_eq!(
                first[i] == first[j],
                a == b,
                "instr id equality disagrees with structural equality"
            );
            if a == b {
                assert_eq!(interner.hash(first[i]), interner.hash(first[j]));
            }
        }
    }
}
