//! Canonical renaming of temporaries and alpha-equivalence of programs.
//!
//! The optimizer names the temporary of expression ε canonically after ε
//! (e.g. `h<a+b>`), while the paper's figures use positional names (`h1`,
//! `h2`, …). Tests that pin transformed programs against the paper compare
//! *canonical text*: temporaries are renamed to `h1`, `h2`, … in order of
//! first occurrence, so the comparison is insensitive to internal naming.

use std::collections::HashMap;

use crate::graph::FlowGraph;
use crate::instr::{Cond, Instr};
use crate::term::Term;
use crate::text::to_text;
use crate::var::Var;

/// Returns a copy of `g` whose temporaries are renamed to `h1`, `h2`, … in
/// order of first occurrence (instruction order, nodes in index order).
///
/// Non-temporary variables keep their names. The copy shares no state with
/// the original.
pub fn rename_temps_canonically(g: &FlowGraph) -> FlowGraph {
    // Order temporaries by first occurrence.
    let mut order: Vec<Var> = Vec::new();
    let mut seen: HashMap<Var, ()> = HashMap::new();
    let note =
        |v: Var, pool: &crate::var::VarPool, order: &mut Vec<Var>, seen: &mut HashMap<Var, ()>| {
            if pool.is_temp(v) && !seen.contains_key(&v) {
                seen.insert(v, ());
                order.push(v);
            }
        };
    for (_, instr) in g.locs() {
        if let Some(d) = instr.def() {
            note(d, g.pool(), &mut order, &mut seen);
        }
        instr.for_each_use(|v| note(v, g.pool(), &mut order, &mut seen));
    }

    let mut renamed = g.clone();
    let new_names: HashMap<Var, String> = order
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, format!("h{}", i + 1)))
        .collect();

    // Build a fresh pool: keep non-temp names, substitute temp names.
    let mut pool = crate::var::VarPool::new();
    let mut map: HashMap<Var, Var> = HashMap::new();
    for v in g.pool().iter() {
        let nv = match new_names.get(&v) {
            Some(name) => pool.intern_temp(name),
            None if g.pool().is_temp(v) => pool.intern_temp(g.pool().name(v)),
            None => pool.intern(g.pool().name(v)),
        };
        map.insert(v, nv);
    }
    *renamed.pool_mut() = pool;
    let remap = |v: Var| map[&v];
    for n in g.nodes() {
        for instr in &mut renamed.block_mut(n).instrs {
            *instr = map_instr(instr, &remap);
        }
    }
    renamed
}

fn map_instr(instr: &Instr, f: &impl Fn(Var) -> Var) -> Instr {
    match instr {
        Instr::Skip => Instr::Skip,
        Instr::Assign { lhs, rhs } => Instr::Assign {
            lhs: f(*lhs),
            rhs: rhs.map_vars(f),
        },
        Instr::Out(ops) => Instr::Out(
            ops.iter()
                .map(|o| match o {
                    crate::term::Operand::Var(v) => crate::term::Operand::Var(f(*v)),
                    c => *c,
                })
                .collect(),
        ),
        Instr::Branch(c) => Instr::Branch(Cond {
            op: c.op,
            lhs: c.lhs.map_vars(f),
            rhs: c.rhs.map_vars(f),
        }),
    }
}

/// The canonical textual form of `g`: temporaries renamed positionally, then
/// printed with [`to_text`]. Two programs are *alpha-equivalent* when their
/// canonical texts are equal.
pub fn canonical_text(g: &FlowGraph) -> String {
    to_text(&rename_temps_canonically(g))
}

/// Whether two programs are identical up to the renaming of temporaries.
pub fn alpha_eq(a: &FlowGraph, b: &FlowGraph) -> bool {
    canonical_text(a) == canonical_text(b)
}

/// A stable 64-bit content hash of `g`, insensitive to temporary naming:
/// alpha-equivalent programs hash equal on every platform and in every
/// process (the hash is FNV-1a over [`canonical_text`], with no per-process
/// randomization — unlike `DefaultHasher`). Suitable as a
/// content-addressed cache key.
pub fn stable_hash(g: &FlowGraph) -> u64 {
    stable_hash_text(&canonical_text(g))
}

/// The raw FNV-1a hash used by [`stable_hash`], exposed so callers that
/// already hold a canonical text can avoid recomputing it.
pub fn stable_hash_text(canonical: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in canonical.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Helper for terms in tests: maps a term's variables.
pub fn map_term(t: Term, f: &impl Fn(Var) -> Var) -> Term {
    t.map_vars(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::BinOp;
    use crate::text::parse;

    fn with_temp(name_suffix: &str) -> FlowGraph {
        let mut g =
            parse("start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e").unwrap();
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let h = g.pool_mut().intern_temp(&format!("h<{name_suffix}>"));
        let x = g.pool().lookup("x").unwrap();
        let start = g.start();
        g.block_mut(start).instrs.clear();
        g.block_mut(start)
            .instrs
            .push(Instr::assign(h, Term::binary(BinOp::Add, a, b)));
        g.block_mut(start).instrs.push(Instr::assign(x, h));
        g
    }

    #[test]
    fn temps_get_positional_names() {
        let g = with_temp("a+b");
        let text = canonical_text(&g);
        assert!(text.contains("h1 := a+b"), "{text}");
        assert!(text.contains("x := h1"), "{text}");
        assert!(!text.contains("h<"), "{text}");
    }

    #[test]
    fn alpha_eq_ignores_temp_names() {
        let g1 = with_temp("a+b");
        let g2 = with_temp("weird_name");
        assert!(alpha_eq(&g1, &g2));
    }

    #[test]
    fn alpha_eq_distinguishes_real_differences() {
        let g1 = with_temp("a+b");
        let g2 =
            parse("start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e").unwrap();
        assert!(!alpha_eq(&g1, &g2));
    }

    #[test]
    fn non_temp_names_are_preserved() {
        let g =
            parse("start s\nend e\nnode s { hello := a+b }\nnode e { out(hello) }\nedge s -> e")
                .unwrap();
        let text = canonical_text(&g);
        assert!(text.contains("hello := a+b"));
    }

    #[test]
    fn stable_hash_is_alpha_insensitive_and_content_sensitive() {
        let g1 = with_temp("a+b");
        let g2 = with_temp("completely_different_temp_name");
        assert_eq!(stable_hash(&g1), stable_hash(&g2));
        let g3 =
            parse("start s\nend e\nnode s { x := a+c }\nnode e { out(x) }\nedge s -> e").unwrap();
        assert_ne!(stable_hash(&g1), stable_hash(&g3));
        // Pinned value: the hash must never drift across versions or
        // platforms, or cache keys silently change meaning.
        assert_eq!(stable_hash_text(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash_text("a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn numbering_follows_first_occurrence() {
        let mut g = parse(
            "start s\nend e\nnode s { x := a+b; y := c+d }\nnode e { out(x,y) }\nedge s -> e",
        )
        .unwrap();
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let c = g.pool().lookup("c").unwrap();
        let d = g.pool().lookup("d").unwrap();
        // Intern the temporaries in the *opposite* order of use.
        let h_cd = g.temp_for(Term::binary(BinOp::Add, c, d));
        let h_ab = g.temp_for(Term::binary(BinOp::Add, a, b));
        let x = g.pool().lookup("x").unwrap();
        let y = g.pool().lookup("y").unwrap();
        let start = g.start();
        g.block_mut(start).instrs.clear();
        g.block_mut(start)
            .instrs
            .push(Instr::assign(h_ab, Term::binary(BinOp::Add, a, b)));
        g.block_mut(start).instrs.push(Instr::assign(x, h_ab));
        g.block_mut(start)
            .instrs
            .push(Instr::assign(h_cd, Term::binary(BinOp::Add, c, d)));
        g.block_mut(start).instrs.push(Instr::assign(y, h_cd));
        let text = canonical_text(&g);
        // h_ab occurs first, so it becomes h1 regardless of interning order.
        assert!(text.contains("h1 := a+b"), "{text}");
        assert!(text.contains("h2 := c+d"), "{text}");
    }
}
