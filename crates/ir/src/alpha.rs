//! Canonical renaming of temporaries and alpha-equivalence of programs.
//!
//! The optimizer names the temporary of expression ε canonically after ε
//! (e.g. `h<a+b>`), while the paper's figures use positional names (`h1`,
//! `h2`, …). Tests that pin transformed programs against the paper compare
//! *canonical text*: temporaries are renamed to `h1`, `h2`, … in order of
//! first occurrence, so the comparison is insensitive to internal naming.

use std::collections::HashMap;
use std::fmt::{self, Write};

use crate::graph::FlowGraph;
use crate::instr::{Cond, Instr};
use crate::term::{Operand, Term};
use crate::text::to_text;
use crate::var::Var;

/// Returns a copy of `g` whose temporaries are renamed to `h1`, `h2`, … in
/// order of first occurrence (instruction order, nodes in index order).
///
/// Non-temporary variables keep their names. The copy shares no state with
/// the original.
pub fn rename_temps_canonically(g: &FlowGraph) -> FlowGraph {
    // Order temporaries by first occurrence.
    let mut order: Vec<Var> = Vec::new();
    let mut seen: HashMap<Var, ()> = HashMap::new();
    let note =
        |v: Var, pool: &crate::var::VarPool, order: &mut Vec<Var>, seen: &mut HashMap<Var, ()>| {
            if pool.is_temp(v) && !seen.contains_key(&v) {
                seen.insert(v, ());
                order.push(v);
            }
        };
    for (_, instr) in g.locs() {
        if let Some(d) = instr.def() {
            note(d, g.pool(), &mut order, &mut seen);
        }
        instr.for_each_use(|v| note(v, g.pool(), &mut order, &mut seen));
    }

    let mut renamed = g.clone();
    let new_names: HashMap<Var, String> = order
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, format!("h{}", i + 1)))
        .collect();

    // Build a fresh pool: keep non-temp names, substitute temp names.
    let mut pool = crate::var::VarPool::new();
    let mut map: HashMap<Var, Var> = HashMap::new();
    for v in g.pool().iter() {
        let nv = match new_names.get(&v) {
            Some(name) => pool.intern_temp(name),
            None if g.pool().is_temp(v) => pool.intern_temp(g.pool().name(v)),
            None => pool.intern(g.pool().name(v)),
        };
        map.insert(v, nv);
    }
    *renamed.pool_mut() = pool;
    let remap = |v: Var| map[&v];
    for n in g.nodes() {
        for instr in &mut renamed.block_mut(n).instrs {
            *instr = map_instr(instr, &remap);
        }
    }
    renamed
}

fn map_instr(instr: &Instr, f: &impl Fn(Var) -> Var) -> Instr {
    match instr {
        Instr::Skip => Instr::Skip,
        Instr::Assign { lhs, rhs } => Instr::Assign {
            lhs: f(*lhs),
            rhs: rhs.map_vars(f),
        },
        Instr::Out(ops) => Instr::Out(
            ops.iter()
                .map(|o| match o {
                    crate::term::Operand::Var(v) => crate::term::Operand::Var(f(*v)),
                    c => *c,
                })
                .collect(),
        ),
        Instr::Branch(c) => Instr::Branch(Cond {
            op: c.op,
            lhs: c.lhs.map_vars(f),
            rhs: c.rhs.map_vars(f),
        }),
    }
}

/// The canonical textual form of `g`: temporaries renamed positionally, then
/// printed with [`to_text`]. Two programs are *alpha-equivalent* when their
/// canonical texts are equal.
pub fn canonical_text(g: &FlowGraph) -> String {
    to_text(&rename_temps_canonically(g))
}

/// Whether two programs are identical up to the renaming of temporaries.
pub fn alpha_eq(a: &FlowGraph, b: &FlowGraph) -> bool {
    canonical_text(a) == canonical_text(b)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An [`fmt::Write`] sink that FNV-1a-hashes every byte written to it, so
/// the canonical text can be hashed as it is produced instead of being
/// materialized first.
struct FnvWriter(u64);

impl Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for &b in s.as_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        Ok(())
    }
}

/// A stable 64-bit content hash of `g`, insensitive to temporary naming:
/// alpha-equivalent programs hash equal on every platform and in every
/// process (the hash is FNV-1a over [`canonical_text`], with no per-process
/// randomization — unlike `DefaultHasher`). Suitable as a
/// content-addressed cache key; the `am-serve` disk cache and the pipeline
/// result cache address entries by this value, so it must never drift (a
/// golden fixture over the shared corpus pins it).
///
/// The bytes are streamed straight into the hash: the canonical renaming is
/// computed as a name substitution and the text is re-rendered into the
/// hasher, with no program clone and no intermediate `String`. The
/// regression suite asserts byte-for-byte agreement with the
/// clone-and-print path (`stable_hash_text(&canonical_text(g))`) on every
/// corpus program — two independent render paths, differentially pinned.
pub fn stable_hash(g: &FlowGraph) -> u64 {
    let mut w = FnvWriter(FNV_OFFSET);
    write_canonical(&mut w, g).expect("hashing sink never fails");
    w.0
}

/// The raw FNV-1a hash used by [`stable_hash`], exposed so callers that
/// already hold a canonical text can avoid recomputing it.
pub fn stable_hash_text(canonical: &str) -> u64 {
    let mut w = FnvWriter(FNV_OFFSET);
    w.write_str(canonical).expect("hashing sink never fails");
    w.0
}

/// Streams the canonical text of `g` (exactly the bytes of
/// [`canonical_text`]) into `w`: positional temporary names substituted on
/// the fly, everything else rendered as [`to_text`] renders it.
fn write_canonical(w: &mut impl Write, g: &FlowGraph) -> fmt::Result {
    // Positional names for temporaries, in first-occurrence order — the
    // same order `rename_temps_canonically` assigns. Renaming only changes
    // what `display` prints for a variable, so substituting names during
    // rendering yields byte-identical text without cloning the graph.
    let mut renamed: HashMap<Var, String> = HashMap::new();
    let note = |v: Var, renamed: &mut HashMap<Var, String>| {
        if g.pool().is_temp(v) && !renamed.contains_key(&v) {
            let name = format!("h{}", renamed.len() + 1);
            renamed.insert(v, name);
        }
    };
    for (_, instr) in g.locs() {
        if let Some(d) = instr.def() {
            note(d, &mut renamed);
        }
        instr.for_each_use(|v| note(v, &mut renamed));
    }
    let name = |v: Var| -> &str {
        renamed
            .get(&v)
            .map(String::as_str)
            .unwrap_or_else(|| g.pool().name(v))
    };
    let operand = |w: &mut dyn Write, o: Operand| -> fmt::Result {
        match o {
            Operand::Var(v) => w.write_str(name(v)),
            Operand::Const(c) => write!(w, "{c}"),
        }
    };
    let term = |w: &mut dyn Write, t: Term| -> fmt::Result {
        match t {
            Term::Operand(o) => operand(w, o),
            Term::Binary { op, lhs, rhs } => {
                operand(w, lhs)?;
                w.write_str(op.symbol())?;
                operand(w, rhs)
            }
        }
    };

    writeln!(w, "start {}", g.label(g.start()))?;
    writeln!(w, "end {}", g.label(g.end()))?;
    for n in g.nodes() {
        writeln!(w, "node {} {{", g.label(n))?;
        for instr in &g.block(n).instrs {
            w.write_str("  ")?;
            match instr {
                Instr::Skip => w.write_str("skip")?,
                Instr::Assign { lhs, rhs } => {
                    w.write_str(name(*lhs))?;
                    w.write_str(" := ")?;
                    term(w, *rhs)?;
                }
                Instr::Out(ops) => {
                    w.write_str("out(")?;
                    for (i, &o) in ops.iter().enumerate() {
                        if i > 0 {
                            w.write_str(",")?;
                        }
                        operand(w, o)?;
                    }
                    w.write_str(")")?;
                }
                Instr::Branch(c) => {
                    w.write_str("branch ")?;
                    term(w, c.lhs)?;
                    write!(w, " {} ", c.op.symbol())?;
                    term(w, c.rhs)?;
                }
            }
            w.write_str("\n")?;
        }
        w.write_str("}\n")?;
    }
    for n in g.nodes() {
        if !g.succs(n).is_empty() {
            write!(w, "edge {} -> ", g.label(n))?;
            for (i, &m) in g.succs(n).iter().enumerate() {
                if i > 0 {
                    w.write_str(", ")?;
                }
                w.write_str(g.label(m))?;
            }
            w.write_str("\n")?;
        }
    }
    Ok(())
}

/// Helper for terms in tests: maps a term's variables.
pub fn map_term(t: Term, f: &impl Fn(Var) -> Var) -> Term {
    t.map_vars(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::BinOp;
    use crate::text::parse;

    fn with_temp(name_suffix: &str) -> FlowGraph {
        let mut g =
            parse("start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e").unwrap();
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let h = g.pool_mut().intern_temp(&format!("h<{name_suffix}>"));
        let x = g.pool().lookup("x").unwrap();
        let start = g.start();
        g.block_mut(start).instrs.clear();
        g.block_mut(start)
            .instrs
            .push(Instr::assign(h, Term::binary(BinOp::Add, a, b)));
        g.block_mut(start).instrs.push(Instr::assign(x, h));
        g
    }

    #[test]
    fn temps_get_positional_names() {
        let g = with_temp("a+b");
        let text = canonical_text(&g);
        assert!(text.contains("h1 := a+b"), "{text}");
        assert!(text.contains("x := h1"), "{text}");
        assert!(!text.contains("h<"), "{text}");
    }

    #[test]
    fn alpha_eq_ignores_temp_names() {
        let g1 = with_temp("a+b");
        let g2 = with_temp("weird_name");
        assert!(alpha_eq(&g1, &g2));
    }

    #[test]
    fn alpha_eq_distinguishes_real_differences() {
        let g1 = with_temp("a+b");
        let g2 =
            parse("start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e").unwrap();
        assert!(!alpha_eq(&g1, &g2));
    }

    #[test]
    fn non_temp_names_are_preserved() {
        let g =
            parse("start s\nend e\nnode s { hello := a+b }\nnode e { out(hello) }\nedge s -> e")
                .unwrap();
        let text = canonical_text(&g);
        assert!(text.contains("hello := a+b"));
    }

    #[test]
    fn stable_hash_is_alpha_insensitive_and_content_sensitive() {
        let g1 = with_temp("a+b");
        let g2 = with_temp("completely_different_temp_name");
        assert_eq!(stable_hash(&g1), stable_hash(&g2));
        let g3 =
            parse("start s\nend e\nnode s { x := a+c }\nnode e { out(x) }\nedge s -> e").unwrap();
        assert_ne!(stable_hash(&g1), stable_hash(&g3));
        // Pinned value: the hash must never drift across versions or
        // platforms, or cache keys silently change meaning.
        assert_eq!(stable_hash_text(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash_text("a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn streamed_hash_equals_text_path_hash() {
        // The streaming renderer inside `stable_hash` and the
        // clone-and-print path must produce identical bytes — including on
        // programs with temporaries, where the renaming substitution does
        // the work the clone path does by rebuilding the pool.
        for g in [
            with_temp("a+b"),
            with_temp("weird_name"),
            parse("start s\nend e\nnode s { skip }\nnode e { out(x) }\nedge s -> e").unwrap(),
        ] {
            assert_eq!(stable_hash(&g), stable_hash_text(&canonical_text(&g)));
        }
    }

    #[test]
    fn numbering_follows_first_occurrence() {
        let mut g = parse(
            "start s\nend e\nnode s { x := a+b; y := c+d }\nnode e { out(x,y) }\nedge s -> e",
        )
        .unwrap();
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let c = g.pool().lookup("c").unwrap();
        let d = g.pool().lookup("d").unwrap();
        // Intern the temporaries in the *opposite* order of use.
        let h_cd = g.temp_for(Term::binary(BinOp::Add, c, d));
        let h_ab = g.temp_for(Term::binary(BinOp::Add, a, b));
        let x = g.pool().lookup("x").unwrap();
        let y = g.pool().lookup("y").unwrap();
        let start = g.start();
        g.block_mut(start).instrs.clear();
        g.block_mut(start)
            .instrs
            .push(Instr::assign(h_ab, Term::binary(BinOp::Add, a, b)));
        g.block_mut(start).instrs.push(Instr::assign(x, h_ab));
        g.block_mut(start)
            .instrs
            .push(Instr::assign(h_cd, Term::binary(BinOp::Add, c, d)));
        g.block_mut(start).instrs.push(Instr::assign(y, h_cd));
        let text = canonical_text(&g);
        // h_ab occurs first, so it becomes h1 regardless of interning order.
        assert!(text.contains("h1 := a+b"), "{text}");
        assert!(text.contains("h2 := c+d"), "{text}");
    }
}
