//! A fluent builder for flow graphs.
//!
//! The textual frontend is convenient for fixed programs; the builder is
//! for programmatic construction (generators, frontends, tests) without
//! dealing with explicit variable interning or edge bookkeeping.
//!
//! # Examples
//!
//! ```
//! use am_ir::builder::GraphBuilder;
//!
//! // Fig. 2(a)-like: a diamond with an assignment on both branches.
//! let mut b = GraphBuilder::new();
//! b.node("s").branch_on("p");
//! b.node("l").assign("x", "a+b");
//! b.node("r").assign("x", "a+b");
//! b.node("e").out(["x"]);
//! b.edge("s", "l");
//! b.edge("s", "r");
//! b.edge("l", "e");
//! b.edge("r", "e");
//! let g = b.build("s", "e")?;
//! assert_eq!(g.node_count(), 4);
//! # Ok::<(), am_ir::builder::BuildError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::graph::{FlowGraph, GraphError, NodeId};
use crate::instr::{Cond, Instr};
use crate::term::Operand;
use crate::text::{parse_expr_str, ParseError as ExprParseError};
use crate::var::Var;

/// Errors reported by [`GraphBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A statement's expression failed to parse.
    Expr(String, ExprParseError),
    /// An edge references an undefined node.
    UnknownNode(String),
    /// The finished graph violates a structural invariant.
    Graph(GraphError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Expr(src, e) => write!(f, "in expression '{src}': {e}"),
            BuildError::UnknownNode(l) => write!(f, "edge references undefined node '{l}'"),
            BuildError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`FlowGraph`] incrementally. See the [module docs](self).
#[derive(Default)]
pub struct GraphBuilder {
    graph: FlowGraph,
    nodes: HashMap<String, NodeId>,
    pending: Vec<(String, PendingInstr)>,
    edges: Vec<(String, String)>,
}

enum PendingInstr {
    Skip,
    Assign(String, String),
    Out(Vec<String>),
    Branch(String),
}

/// A handle to one node under construction; statements append in order.
pub struct NodeBuilder<'b> {
    builder: &'b mut GraphBuilder,
    label: String,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Declares (or re-opens) the node `label`.
    pub fn node(&mut self, label: &str) -> NodeBuilder<'_> {
        if !self.nodes.contains_key(label) {
            let id = self.graph.add_node(label);
            self.nodes.insert(label.to_owned(), id);
        }
        NodeBuilder {
            builder: self,
            label: label.to_owned(),
        }
    }

    /// Adds the edge `from -> to` (appended to `from`'s successor order).
    pub fn edge(&mut self, from: &str, to: &str) -> &mut Self {
        self.edges.push((from.to_owned(), to.to_owned()));
        self
    }

    /// Finalizes the graph with the given start and end labels.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for unparsable expressions, unknown edge
    /// endpoints, or structural violations (see [`FlowGraph::validate`]).
    pub fn build(mut self, start: &str, end: &str) -> Result<FlowGraph, BuildError> {
        // Resolve statements.
        let pending = std::mem::take(&mut self.pending);
        for (label, instr) in pending {
            let node = self.nodes[&label];
            let lowered = self.lower(instr)?;
            self.graph.block_mut(node).instrs.push(lowered);
        }
        // Resolve edges.
        for (from, to) in std::mem::take(&mut self.edges) {
            let f = *self
                .nodes
                .get(&from)
                .ok_or_else(|| BuildError::UnknownNode(from.clone()))?;
            let t = *self
                .nodes
                .get(&to)
                .ok_or_else(|| BuildError::UnknownNode(to.clone()))?;
            self.graph.add_edge(f, t);
        }
        let s = *self
            .nodes
            .get(start)
            .ok_or_else(|| BuildError::UnknownNode(start.to_owned()))?;
        let e = *self
            .nodes
            .get(end)
            .ok_or_else(|| BuildError::UnknownNode(end.to_owned()))?;
        self.graph.set_start(s);
        self.graph.set_end(e);
        self.graph.validate().map_err(BuildError::Graph)?;
        Ok(self.graph)
    }

    fn lower(&mut self, instr: PendingInstr) -> Result<Instr, BuildError> {
        Ok(match instr {
            PendingInstr::Skip => Instr::Skip,
            PendingInstr::Assign(lhs, rhs) => {
                let term = parse_expr_str(&rhs, self.graph.pool_mut())
                    .map_err(|e| BuildError::Expr(rhs.clone(), e))?;
                let lhs: Var = self.graph.pool_mut().intern(&lhs);
                Instr::assign(lhs, term)
            }
            PendingInstr::Out(vars) => {
                let ops: Vec<Operand> = vars
                    .iter()
                    .map(|v| Operand::Var(self.graph.pool_mut().intern(v)))
                    .collect();
                Instr::Out(ops)
            }
            PendingInstr::Branch(src) => {
                let cond: Cond = crate::text::parse_cond_str(&src, self.graph.pool_mut())
                    .map_err(|e| BuildError::Expr(src.clone(), e))?;
                Instr::Branch(cond)
            }
        })
    }
}

impl NodeBuilder<'_> {
    /// Appends `lhs := rhs`; `rhs` is 3-address expression syntax
    /// (`"a+b"`, `"x"`, `"5"`).
    pub fn assign(&mut self, lhs: &str, rhs: &str) -> &mut Self {
        self.builder.pending.push((
            self.label.clone(),
            PendingInstr::Assign(lhs.into(), rhs.into()),
        ));
        self
    }

    /// Appends a `skip`.
    pub fn skip(&mut self) -> &mut Self {
        self.builder
            .pending
            .push((self.label.clone(), PendingInstr::Skip));
        self
    }

    /// Appends `out(vars...)`.
    pub fn out<'a>(&mut self, vars: impl IntoIterator<Item = &'a str>) -> &mut Self {
        self.builder.pending.push((
            self.label.clone(),
            PendingInstr::Out(vars.into_iter().map(str::to_owned).collect()),
        ));
        self
    }

    /// Appends a branch on condition syntax (`"x+z > y"`, `"p"`).
    pub fn branch_on(&mut self, cond: &str) -> &mut Self {
        self.builder
            .pending
            .push((self.label.clone(), PendingInstr::Branch(cond.into())));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::to_text;

    fn diamond() -> GraphBuilder {
        let mut b = GraphBuilder::new();
        b.node("s").branch_on("p > 0");
        b.node("l").assign("x", "a+b").out(["x"]);
        b.node("r").assign("x", "a+b");
        b.node("e").out(["x"]);
        b.edge("s", "l");
        b.edge("s", "r");
        b.edge("l", "e");
        b.edge("r", "e");
        b
    }

    #[test]
    fn builds_a_valid_diamond() {
        let g = diamond().build("s", "e").unwrap();
        assert_eq!(g.validate(), Ok(()));
        let text = to_text(&g);
        assert!(text.contains("branch p > 0"), "{text}");
        assert!(text.contains("x := a+b"), "{text}");
    }

    #[test]
    fn builder_matches_parser_output() {
        let built = diamond().build("s", "e").unwrap();
        let parsed = crate::text::parse(
            "start s\nend e\n\
             node s { branch p > 0 }\n\
             node l { x := a+b; out(x) }\n\
             node r { x := a+b }\n\
             node e { out(x) }\n\
             edge s -> l\nedge s -> r\nedge l -> e\nedge r -> e",
        )
        .unwrap();
        assert_eq!(to_text(&built), to_text(&parsed));
    }

    #[test]
    fn unknown_edge_endpoint_is_reported() {
        let mut b = GraphBuilder::new();
        b.node("s").skip();
        b.node("e").skip();
        b.edge("s", "ghost");
        let err = b.build("s", "e").unwrap_err();
        assert_eq!(err, BuildError::UnknownNode("ghost".into()));
    }

    #[test]
    fn bad_expression_is_reported() {
        let mut b = GraphBuilder::new();
        b.node("s").assign("x", "a + ");
        b.node("e").skip();
        b.edge("s", "e");
        let err = b.build("s", "e").unwrap_err();
        assert!(matches!(err, BuildError::Expr(_, _)), "{err}");
    }

    #[test]
    fn invalid_graph_is_reported() {
        let mut b = GraphBuilder::new();
        b.node("s").skip();
        b.node("e").skip();
        b.node("island").skip();
        b.edge("s", "e");
        let err = b.build("s", "e").unwrap_err();
        assert!(matches!(err, BuildError::Graph(_)), "{err}");
    }

    #[test]
    fn nested_expressions_are_rejected() {
        let mut b = GraphBuilder::new();
        b.node("s").assign("x", "a+b+c");
        b.node("e").skip();
        b.edge("s", "e");
        assert!(matches!(b.build("s", "e"), Err(BuildError::Expr(_, _))));
    }

    #[test]
    fn reopening_a_node_appends() {
        let mut b = GraphBuilder::new();
        b.node("s").assign("x", "1");
        b.node("s").assign("y", "2");
        b.node("e").out(["x", "y"]);
        b.edge("s", "e");
        let g = b.build("s", "e").unwrap();
        assert_eq!(g.block(g.start()).len(), 2);
    }
}
