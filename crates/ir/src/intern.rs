//! Hash-consing arenas for terms and instructions.
//!
//! Every analysis layer above the IR keys caches by structural content:
//! the expression universe dedups [`Term`]s, the motion engine fingerprints
//! instructions and whole programs, and the pipeline addresses results by
//! canonical hash. [`TermArena`] and [`InstrInterner`] centralize that
//! identity work: each distinct node is stored once, its structural hash is
//! computed once at interning time and cached, and from then on
//!
//! * equality is an id compare ([`TermId`]/[`InstrId`] are `u32` indices),
//! * composite hashes (an instruction over its terms, a program over its
//!   instructions) combine the cached child hashes instead of re-walking
//!   the children, and
//! * the non-trivial terms form a dense [`PatternId`] range in
//!   first-interning order — exactly the expression-pattern numbering the
//!   pattern universe (`EP`, Sec. 2 of the paper) hands to the bitvector
//!   analyses.
//!
//! The arena is an *identity* layer, not an *address* layer: the
//! cross-process content address of a program remains the FNV-1a hash of
//! its canonical text ([`crate::alpha::stable_hash`]), which is pinned by a
//! golden fixture and must never drift. Arena hashes are in-memory
//! fingerprints in the FxHash family and carry no stability promise.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use crate::instr::Instr;
use crate::term::{Operand, Term};

/// FxHash-style hasher for the intern index maps. The interner sits on the
/// motion engine's per-round hot path, where SipHash is measurable
/// overhead, and the maps never face untrusted keys; collisions are
/// resolved by `Eq` as usual.
#[derive(Default)]
pub(crate) struct FxMapHasher(u64);

impl FxMapHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = mix(self.0, word);
    }
}

impl Hasher for FxMapHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = tail << 8 | b as u64;
        }
        self.add(tail);
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

pub(crate) type FxMapBuild = BuildHasherDefault<FxMapHasher>;

/// Index of an interned [`Term`] in a [`TermArena`].
///
/// Within one arena, two ids are equal exactly when the terms are
/// structurally equal — that is the hash-consing invariant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

impl TermId {
    /// The arena index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Index of a non-trivial (expression-pattern) term in a [`TermArena`].
///
/// Pattern ids are assigned densely in interning order over the non-trivial
/// terms only, so when terms are interned in first-occurrence program order
/// the pattern range reproduces the expression-universe numbering.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternId(u32);

impl PatternId {
    /// The dense pattern index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a pattern id from a dense index (for iterating a known
    /// `0..pattern_count()` range).
    pub fn from_index(i: usize) -> Self {
        PatternId(u32::try_from(i).expect("pattern index fits u32"))
    }
}

impl fmt::Debug for PatternId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Index of an interned [`Instr`] in an [`InstrInterner`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstrId(u32);

impl InstrId {
    /// The interner index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Multiply-rotate mixing step in the FxHash family (the same scheme the
/// motion engine's fingerprints use). Not a stable cross-process hash.
#[inline]
fn mix(h: u64, word: u64) -> u64 {
    (h.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

#[inline]
fn operand_word(o: Operand) -> u64 {
    match o {
        Operand::Var(v) => mix(1, v.index() as u64),
        Operand::Const(c) => mix(2, c as u64),
    }
}

/// The structural hash of a term, computed from scratch. [`TermArena`]
/// caches this value per node; the property suite asserts the cached copy
/// always equals a fresh recomputation.
pub fn term_hash(t: Term) -> u64 {
    match t {
        Term::Operand(o) => mix(3, operand_word(o)),
        Term::Binary { op, lhs, rhs } => {
            mix(mix(mix(4, op as u64), operand_word(lhs)), operand_word(rhs))
        }
    }
}

struct TermNode {
    term: Term,
    hash: u64,
    pattern: Option<PatternId>,
}

/// A hash-consing arena of [`Term`]s with cached structural hashes and a
/// dense pattern numbering of the non-trivial terms.
///
/// # Examples
///
/// ```
/// use am_ir::{intern::TermArena, BinOp, Term, VarPool};
///
/// let mut pool = VarPool::new();
/// let (a, b) = (pool.intern("a"), pool.intern("b"));
/// let mut arena = TermArena::new();
/// let t1 = arena.intern(Term::binary(BinOp::Add, a, b));
/// let t2 = arena.intern(Term::binary(BinOp::Add, a, b));
/// assert_eq!(t1, t2); // structural equality is id equality
/// assert_eq!(arena.pattern_of(t1).unwrap().index(), 0);
/// ```
#[derive(Default)]
pub struct TermArena {
    nodes: Vec<TermNode>,
    index: HashMap<Term, TermId, FxMapBuild>,
    patterns: Vec<TermId>,
}

impl TermArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        TermArena::default()
    }

    /// Interns `t`, returning the existing id when a structurally equal
    /// term is already present. A newly interned non-trivial term is also
    /// assigned the next dense [`PatternId`].
    pub fn intern(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.index.get(&t) {
            return id;
        }
        let id = TermId(u32::try_from(self.nodes.len()).expect("arena fits u32"));
        let pattern = t.is_nontrivial().then(|| {
            let p = PatternId(u32::try_from(self.patterns.len()).expect("patterns fit u32"));
            self.patterns.push(id);
            p
        });
        self.nodes.push(TermNode {
            term: t,
            hash: term_hash(t),
            pattern,
        });
        self.index.insert(t, id);
        id
    }

    /// The id of `t`, if it has been interned.
    pub fn lookup(&self, t: &Term) -> Option<TermId> {
        self.index.get(t).copied()
    }

    /// The term behind `id`.
    pub fn term(&self, id: TermId) -> Term {
        self.nodes[id.index()].term
    }

    /// The cached structural hash of `id` — O(1), no re-walk.
    pub fn hash(&self, id: TermId) -> u64 {
        self.nodes[id.index()].hash
    }

    /// The pattern id of `id`, if the term is non-trivial.
    pub fn pattern_of(&self, id: TermId) -> Option<PatternId> {
        self.nodes[id.index()].pattern
    }

    /// The pattern id of `t`, if it is interned and non-trivial.
    pub fn pattern_id(&self, t: &Term) -> Option<PatternId> {
        self.lookup(t).and_then(|id| self.pattern_of(id))
    }

    /// The term id backing pattern `p`.
    pub fn pattern_term_id(&self, p: PatternId) -> TermId {
        self.patterns[p.index()]
    }

    /// The term behind pattern `p`.
    pub fn pattern_term(&self, p: PatternId) -> Term {
        self.term(self.pattern_term_id(p))
    }

    /// Number of patterns (non-trivial terms) interned so far.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Iterates over `(pattern id, term)` in dense pattern order.
    pub fn patterns(&self) -> impl Iterator<Item = (PatternId, Term)> + '_ {
        self.patterns
            .iter()
            .enumerate()
            .map(|(i, &id)| (PatternId(i as u32), self.term(id)))
    }

    /// Number of terms interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Audits every hash-consing invariant: the index maps each stored term
    /// to its own node, cached hashes equal fresh recomputations, exactly
    /// the non-trivial terms carry pattern ids, and the pattern table and
    /// the per-node back-pointers agree. Returns the first violation found.
    ///
    /// This is the detection side of the intern-corruption fault model: a
    /// corrupted table (see [`swap_patterns`](Self::swap_patterns)) must
    /// never survive a verify.
    pub fn verify(&self) -> Result<(), String> {
        if self.index.len() != self.nodes.len() {
            return Err(format!(
                "index has {} entries for {} nodes",
                self.index.len(),
                self.nodes.len()
            ));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let id = TermId(i as u32);
            if self.index.get(&node.term) != Some(&id) {
                return Err(format!("index does not map {:?} back to {id:?}", node.term));
            }
            if node.hash != term_hash(node.term) {
                return Err(format!("cached hash of {id:?} is stale"));
            }
            match (node.term.is_nontrivial(), node.pattern) {
                (true, Some(p)) => {
                    if self.patterns.get(p.index()) != Some(&id) {
                        return Err(format!(
                            "pattern table entry {p:?} does not point back to {id:?}"
                        ));
                    }
                }
                (true, None) => return Err(format!("non-trivial {id:?} has no pattern id")),
                (false, Some(p)) => return Err(format!("trivial {id:?} claims pattern {p:?}")),
                (false, None) => {}
            }
        }
        Ok(())
    }

    /// Deliberately corrupts the arena by swapping two entries of the dense
    /// pattern table *without* fixing the per-node back-pointers — the
    /// intern-table analogue of the `am-check` `SwapPatternIds` fault.
    /// Every pattern lookup through the table now resolves to the wrong
    /// term. Test-only by intent: [`verify`](Self::verify) must flag the
    /// result, which is exactly what the fault-injection suite asserts.
    pub fn swap_patterns(&mut self, a: PatternId, b: PatternId) {
        self.patterns.swap(a.index(), b.index());
    }
}

impl fmt::Debug for TermArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TermArena")
            .field("terms", &self.nodes.len())
            .field("patterns", &self.patterns.len())
            .finish()
    }
}

struct InstrNode {
    instr: Instr,
    hash: u64,
}

/// A hash-consing interner of [`Instr`]s layered over a [`TermArena`]:
/// instruction hashes are composed from the cached hashes of their interned
/// terms, so re-fingerprinting a program costs one table lookup per
/// instruction instead of a structural re-walk per analysis layer.
#[derive(Default)]
pub struct InstrInterner {
    arena: TermArena,
    nodes: Vec<InstrNode>,
    index: HashMap<Instr, InstrId, FxMapBuild>,
}

impl InstrInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        InstrInterner::default()
    }

    /// Interns `instr`, returning `(id, newly_interned)`. All terms inside
    /// the instruction are interned into the underlying [`TermArena`].
    pub fn intern(&mut self, instr: &Instr) -> (InstrId, bool) {
        if let Some(&id) = self.index.get(instr) {
            return (id, false);
        }
        let hash = self.compose_hash(instr);
        let id = InstrId(u32::try_from(self.nodes.len()).expect("interner fits u32"));
        self.nodes.push(InstrNode {
            instr: instr.clone(),
            hash,
        });
        self.index.insert(instr.clone(), id);
        (id, true)
    }

    /// The instruction hash, composed from cached term hashes (computed
    /// once, at first interning).
    fn compose_hash(&mut self, instr: &Instr) -> u64 {
        match instr {
            Instr::Skip => mix(5, 0),
            Instr::Assign { lhs, rhs } => {
                let rhs = self.arena.intern(*rhs);
                mix(mix(6, lhs.index() as u64), self.arena.hash(rhs))
            }
            Instr::Out(ops) => {
                let mut h = mix(7, ops.len() as u64);
                for &o in ops {
                    h = mix(h, operand_word(o));
                }
                h
            }
            Instr::Branch(c) => {
                let lhs = self.arena.intern(c.lhs);
                let rhs = self.arena.intern(c.rhs);
                mix(
                    mix(mix(8, c.op as u64), self.arena.hash(lhs)),
                    self.arena.hash(rhs),
                )
            }
        }
    }

    /// The instruction behind `id`.
    pub fn instr(&self, id: InstrId) -> &Instr {
        &self.nodes[id.index()].instr
    }

    /// The cached composite hash of `id` — O(1), no re-walk.
    pub fn hash(&self, id: InstrId) -> u64 {
        self.nodes[id.index()].hash
    }

    /// The underlying term arena.
    pub fn arena(&self) -> &TermArena {
        &self.arena
    }

    /// Number of instructions interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl fmt::Debug for InstrInterner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InstrInterner")
            .field("instrs", &self.nodes.len())
            .field("arena", &self.arena)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Cond;
    use crate::term::BinOp;
    use crate::var::VarPool;

    fn pool3() -> (VarPool, crate::var::Var, crate::var::Var, crate::var::Var) {
        let mut p = VarPool::new();
        let x = p.intern("x");
        let y = p.intern("y");
        let z = p.intern("z");
        (p, x, y, z)
    }

    #[test]
    fn interning_is_hash_consing() {
        let (_, x, y, _) = pool3();
        let mut arena = TermArena::new();
        let t1 = arena.intern(Term::binary(BinOp::Add, x, y));
        let t2 = arena.intern(Term::binary(BinOp::Add, x, y));
        let t3 = arena.intern(Term::binary(BinOp::Add, y, x));
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.term(t1), Term::binary(BinOp::Add, x, y));
    }

    #[test]
    fn patterns_are_dense_over_nontrivial_terms_only() {
        let (_, x, y, z) = pool3();
        let mut arena = TermArena::new();
        let trivial = arena.intern(Term::operand(x));
        let p0 = arena.intern(Term::binary(BinOp::Add, x, y));
        let _trivial2 = arena.intern(Term::from(7));
        let p1 = arena.intern(Term::binary(BinOp::Mul, y, z));
        assert_eq!(arena.pattern_of(trivial), None);
        assert_eq!(arena.pattern_of(p0).unwrap().index(), 0);
        assert_eq!(arena.pattern_of(p1).unwrap().index(), 1);
        assert_eq!(arena.pattern_count(), 2);
        assert_eq!(arena.pattern_term(PatternId::from_index(1)), arena.term(p1));
        let listed: Vec<usize> = arena.patterns().map(|(p, _)| p.index()).collect();
        assert_eq!(listed, vec![0, 1]);
    }

    #[test]
    fn cached_hashes_match_fresh_computation() {
        let (_, x, y, _) = pool3();
        let mut arena = TermArena::new();
        for t in [
            Term::operand(x),
            Term::from(-3),
            Term::binary(BinOp::Sub, x, y),
            Term::binary(BinOp::Div, y, 2),
        ] {
            let id = arena.intern(t);
            assert_eq!(arena.hash(id), term_hash(t));
        }
        assert_eq!(arena.verify(), Ok(()));
    }

    #[test]
    fn swap_patterns_is_detected_by_verify() {
        let (_, x, y, z) = pool3();
        let mut arena = TermArena::new();
        arena.intern(Term::binary(BinOp::Add, x, y));
        arena.intern(Term::binary(BinOp::Mul, y, z));
        assert_eq!(arena.verify(), Ok(()));
        arena.swap_patterns(PatternId::from_index(0), PatternId::from_index(1));
        assert!(arena.verify().is_err(), "corruption must not pass an audit");
    }

    #[test]
    fn instr_interner_dedups_and_composes_hashes() {
        let (_, x, y, z) = pool3();
        let mut ii = InstrInterner::new();
        let assign = Instr::assign(x, Term::binary(BinOp::Add, y, z));
        let (i1, new1) = ii.intern(&assign);
        let (i2, new2) = ii.intern(&assign);
        assert!(new1 && !new2);
        assert_eq!(i1, i2);
        assert_eq!(ii.instr(i1), &assign);
        // The rhs term was interned and carries pattern 0.
        assert_eq!(
            ii.arena().pattern_id(&Term::binary(BinOp::Add, y, z)),
            Some(PatternId::from_index(0))
        );
        // Different instructions get different ids (and, here, hashes).
        let (i3, _) = ii.intern(&Instr::Branch(Cond::new(
            BinOp::Gt,
            Term::binary(BinOp::Add, y, z),
            Term::operand(x),
        )));
        assert_ne!(i1, i3);
        assert_ne!(ii.hash(i1), ii.hash(i3));
        let (i4, _) = ii.intern(&Instr::Skip);
        let (i5, _) = ii.intern(&Instr::Out(vec![x.into(), 1.into()]));
        assert_eq!(ii.len(), 4);
        assert_ne!(ii.hash(i4), ii.hash(i5));
    }
}
