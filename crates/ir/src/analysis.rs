//! Structural graph analyses: traversal orders, dominators, reducibility
//! and natural loops.
//!
//! The paper's algorithm itself needs none of these (its analyses are plain
//! fixed points), but the *evaluation* does: Fig. 7 distinguishes reducible
//! from irreducible loop structure, and the complexity study (Sec. 4.5)
//! separates structured from unstructured programs.

use crate::graph::{FlowGraph, NodeId};

/// Nodes of `g` in postorder of a depth-first search from the start node.
pub fn postorder(g: &FlowGraph) -> Vec<NodeId> {
    let n = g.node_count();
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut stack: Vec<(NodeId, usize)> = vec![(g.start(), 0)];
    state[g.start().index()] = 1;
    while let Some(&mut (node, ref mut next)) = stack.last_mut() {
        let succs = g.succs(node);
        if *next < succs.len() {
            let m = succs[*next];
            *next += 1;
            if state[m.index()] == 0 {
                state[m.index()] = 1;
                stack.push((m, 0));
            }
        } else {
            state[node.index()] = 2;
            order.push(node);
            stack.pop();
        }
    }
    order
}

/// Nodes of `g` in reverse postorder (a topological order if `g` is acyclic).
pub fn reverse_postorder(g: &FlowGraph) -> Vec<NodeId> {
    let mut order = postorder(g);
    order.reverse();
    order
}

/// Immediate-dominator tree of a flow graph, computed with the iterative
/// Cooper–Harvey–Kennedy algorithm over reverse postorder.
#[derive(Clone, Debug)]
pub struct Dominators {
    idom: Vec<Option<NodeId>>,
}

impl Dominators {
    /// Computes the dominator tree of `g` rooted at the start node.
    pub fn compute(g: &FlowGraph) -> Self {
        let rpo = reverse_postorder(g);
        let mut rpo_index = vec![usize::MAX; g.node_count()];
        for (i, &n) in rpo.iter().enumerate() {
            rpo_index[n.index()] = i;
        }
        let mut idom: Vec<Option<NodeId>> = vec![None; g.node_count()];
        idom[g.start().index()] = Some(g.start());
        let mut changed = true;
        while changed {
            changed = false;
            for &n in rpo.iter().skip(1) {
                let mut new_idom: Option<NodeId> = None;
                for &p in g.preds(n) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(d) = new_idom {
                    if idom[n.index()] != Some(d) {
                        idom[n.index()] = Some(d);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom }
    }

    /// The immediate dominator of `n` (`None` for the start node and for
    /// nodes unreachable from the start).
    pub fn idom(&self, n: NodeId) -> Option<NodeId> {
        let d = self.idom[n.index()]?;
        if d == n {
            None
        } else {
            Some(d)
        }
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }
}

fn intersect(idom: &[Option<NodeId>], rpo_index: &[usize], mut a: NodeId, mut b: NodeId) -> NodeId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("intersect on unprocessed node");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("intersect on unprocessed node");
        }
    }
    a
}

/// Edges `(m, n)` where the target `n` dominates the source `m` — the back
/// edges of the natural-loop decomposition.
pub fn back_edges(g: &FlowGraph) -> Vec<(NodeId, NodeId)> {
    let dom = Dominators::compute(g);
    let mut edges = Vec::new();
    for m in g.nodes() {
        for &n in g.succs(m) {
            if dom.dominates(n, m) {
                edges.push((m, n));
            }
        }
    }
    edges
}

/// Whether `g` is reducible: deleting all dominator back edges leaves the
/// graph acyclic. Fig. 7's second loop is a standard irreducible construct
/// and fails this test.
pub fn is_reducible(g: &FlowGraph) -> bool {
    let back: std::collections::HashSet<(NodeId, NodeId)> = back_edges(g).into_iter().collect();
    // Kahn-style cycle check on the remaining edges.
    let n = g.node_count();
    let mut indeg = vec![0usize; n];
    for m in g.nodes() {
        for &t in g.succs(m) {
            if !back.contains(&(m, t)) {
                indeg[t.index()] += 1;
            }
        }
    }
    let mut queue: Vec<NodeId> = g.nodes().filter(|x| indeg[x.index()] == 0).collect();
    let mut seen = 0;
    while let Some(m) = queue.pop() {
        seen += 1;
        for &t in g.succs(m) {
            if !back.contains(&(m, t)) {
                indeg[t.index()] -= 1;
                if indeg[t.index()] == 0 {
                    queue.push(t);
                }
            }
        }
    }
    seen == n
}

/// The natural loop of a back edge `(m, h)`: `h` plus all nodes that reach
/// `m` without passing through `h`.
pub fn natural_loop(g: &FlowGraph, tail: NodeId, header: NodeId) -> Vec<NodeId> {
    let mut in_loop = vec![false; g.node_count()];
    in_loop[header.index()] = true;
    let mut stack = Vec::new();
    if !in_loop[tail.index()] {
        in_loop[tail.index()] = true;
        stack.push(tail);
    }
    while let Some(n) = stack.pop() {
        for &p in g.preds(n) {
            if !in_loop[p.index()] {
                in_loop[p.index()] = true;
                stack.push(p);
            }
        }
    }
    let mut result: Vec<NodeId> = g.nodes().filter(|n| in_loop[n.index()]).collect();
    result.sort();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FlowGraph;

    /// s -> a -> b -> e  with loop b -> a.
    fn looped() -> (FlowGraph, [NodeId; 4]) {
        let mut g = FlowGraph::new();
        let s = g.add_node("s");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let e = g.add_node("e");
        g.set_start(s);
        g.set_end(e);
        g.add_edge(s, a);
        g.add_edge(a, b);
        g.add_edge(b, a);
        g.add_edge(b, e);
        (g, [s, a, b, e])
    }

    /// An irreducible graph: s branches to a and b which branch to each
    /// other, both reach e.
    fn irreducible() -> FlowGraph {
        let mut g = FlowGraph::new();
        let s = g.add_node("s");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let e = g.add_node("e");
        g.set_start(s);
        g.set_end(e);
        g.add_edge(s, a);
        g.add_edge(s, b);
        g.add_edge(a, b);
        g.add_edge(b, a);
        g.add_edge(a, e);
        g.add_edge(b, e);
        g
    }

    #[test]
    fn rpo_starts_at_start() {
        let (g, [s, a, b, e]) = looped();
        let rpo = reverse_postorder(&g);
        assert_eq!(rpo[0], s);
        assert_eq!(rpo.len(), 4);
        let pos = |n: NodeId| rpo.iter().position(|&x| x == n).unwrap();
        assert!(pos(s) < pos(a));
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(e) || pos(e) > pos(a)); // e after the loop entry
    }

    #[test]
    fn dominators_of_loop() {
        let (g, [s, a, b, e]) = looped();
        let dom = Dominators::compute(&g);
        assert_eq!(dom.idom(s), None);
        assert_eq!(dom.idom(a), Some(s));
        assert_eq!(dom.idom(b), Some(a));
        assert_eq!(dom.idom(e), Some(b));
        assert!(dom.dominates(a, e));
        assert!(!dom.dominates(b, a));
        assert!(dom.dominates(s, s));
    }

    #[test]
    fn back_edge_of_natural_loop() {
        let (g, [_, a, b, _]) = looped();
        assert_eq!(back_edges(&g), vec![(b, a)]);
        assert_eq!(natural_loop(&g, b, a), vec![a, b]);
    }

    #[test]
    fn reducibility_classification() {
        let (g, _) = looped();
        assert!(is_reducible(&g));
        assert!(!is_reducible(&irreducible()));
    }

    #[test]
    fn diamond_dominators() {
        let mut g = FlowGraph::new();
        let s = g.add_node("s");
        let l = g.add_node("l");
        let r = g.add_node("r");
        let e = g.add_node("e");
        g.set_start(s);
        g.set_end(e);
        g.add_edge(s, l);
        g.add_edge(s, r);
        g.add_edge(l, e);
        g.add_edge(r, e);
        let dom = Dominators::compute(&g);
        assert_eq!(dom.idom(e), Some(s));
        assert!(!dom.dominates(l, e));
        assert!(back_edges(&g).is_empty());
        assert!(is_reducible(&g));
    }
}
