use std::fmt;

use crate::instr::Instr;
use crate::term::Term;
use crate::var::{Var, VarPool};

/// Identifier of a basic block (node) within a [`FlowGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The node's index into the graph's block vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A basic block: a straight-line sequence of instructions.
///
/// A block of a node with several successors contains exactly one
/// [`Instr::Branch`] (or none, in which case the branch is nondeterministic,
/// as in Sec. 2 of the paper). The branch instruction records the *decision
/// point*; instructions may legally follow it — they execute before control
/// transfers, which is how insertions "at the exit of a block" (Table 1's
/// `X-INSERT`) are represented.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Block {
    /// The instruction sequence.
    pub instrs: Vec<Instr>,
}

impl Block {
    /// Creates an empty block.
    pub fn new() -> Self {
        Block::default()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the block contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// A location of an instruction: node plus index within the block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Loc {
    /// The node containing the instruction.
    pub node: NodeId,
    /// The instruction's index within the node's block.
    pub index: usize,
}

/// Structural problems reported by [`FlowGraph::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The start node has incoming edges.
    StartHasPreds,
    /// The end node has outgoing edges.
    EndHasSuccs,
    /// A node is not on any path from start to end.
    Unreachable(NodeId),
    /// A node with at most one successor contains a branch instruction.
    BranchInStraightNode(NodeId),
    /// A node contains more than one branch instruction.
    MultipleBranches(NodeId),
    /// An edge is duplicated.
    DuplicateEdge(NodeId, NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::StartHasPreds => write!(f, "start node has predecessors"),
            GraphError::EndHasSuccs => write!(f, "end node has successors"),
            GraphError::Unreachable(n) => {
                write!(f, "node {n:?} is not on a path from start to end")
            }
            GraphError::BranchInStraightNode(n) => {
                write!(f, "node {n:?} has a branch but at most one successor")
            }
            GraphError::MultipleBranches(n) => {
                write!(f, "node {n:?} has more than one branch instruction")
            }
            GraphError::DuplicateEdge(m, n) => write!(f, "duplicate edge {m:?} -> {n:?}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed flow graph `G = (N, E, s, e)` in the sense of Sec. 2.
///
/// Nodes are basic blocks; edges express the (possibly nondeterministic)
/// branching structure; `s` and `e` are the unique start and end node, which
/// have no predecessors and no successors respectively. Successor lists are
/// *ordered*: for a two-way branch, successor 0 is the "true" edge.
///
/// # Examples
///
/// ```
/// use am_ir::{FlowGraph, Instr, Term, BinOp};
///
/// let mut g = FlowGraph::new();
/// let s = g.add_node("s");
/// let n = g.add_node("1");
/// let e = g.add_node("e");
/// g.set_start(s);
/// g.set_end(e);
/// g.add_edge(s, n);
/// g.add_edge(n, e);
/// let a = g.pool_mut().intern("a");
/// let b = g.pool_mut().intern("b");
/// let x = g.pool_mut().intern("x");
/// g.block_mut(n).instrs.push(Instr::assign(x, Term::binary(BinOp::Add, a, b)));
/// assert!(g.validate().is_ok());
/// ```
#[derive(Clone)]
pub struct FlowGraph {
    pool: VarPool,
    blocks: Vec<Block>,
    labels: Vec<String>,
    synthetic: Vec<bool>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
    start: NodeId,
    end: NodeId,
    /// Monotone mutation counter: bumped by every `&mut self` accessor, so
    /// callers can memoize graph-derived values (content hashes, caches)
    /// and invalidate them exactly when the graph may have changed. Not
    /// part of the graph's value — equality ignores it.
    revision: u64,
}

impl PartialEq for FlowGraph {
    fn eq(&self, other: &Self) -> bool {
        self.pool == other.pool
            && self.blocks == other.blocks
            && self.labels == other.labels
            && self.synthetic == other.synthetic
            && self.succs == other.succs
            && self.preds == other.preds
            && self.start == other.start
            && self.end == other.end
    }
}

impl Eq for FlowGraph {}

impl Default for FlowGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowGraph {
    /// Creates an empty graph. Set start and end before use.
    pub fn new() -> Self {
        FlowGraph {
            pool: VarPool::new(),
            blocks: Vec::new(),
            labels: Vec::new(),
            synthetic: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            start: NodeId(0),
            end: NodeId(0),
            revision: 0,
        }
    }

    /// The graph's mutation revision. Every `&mut self` accessor bumps it
    /// (including [`block_mut`](Self::block_mut), conservatively — taking
    /// the reference counts as a mutation). Two calls returning the same
    /// value guarantee the graph content is unchanged between them; the
    /// converse does not hold.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Adds an empty node with the given display label.
    pub fn add_node(&mut self, label: &str) -> NodeId {
        self.add_node_inner(label, false)
    }

    fn add_node_inner(&mut self, label: &str, synthetic: bool) -> NodeId {
        self.revision += 1;
        let id = NodeId(u32::try_from(self.blocks.len()).expect("too many nodes"));
        self.blocks.push(Block::new());
        self.labels.push(label.to_owned());
        self.synthetic.push(synthetic);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Adds the edge `(m, n)`, appended to `m`'s ordered successor list.
    pub fn add_edge(&mut self, m: NodeId, n: NodeId) {
        self.revision += 1;
        self.succs[m.index()].push(n);
        self.preds[n.index()].push(m);
    }

    /// Removes one occurrence of the edge `(m, n)`, preserving the order of
    /// the remaining successors. Returns whether the edge existed.
    ///
    /// The result may violate structural invariants (e.g. leave `n`
    /// unreachable) — callers probing reductions, like the `am-check`
    /// shrinker, should re-[`validate`](Self::validate).
    pub fn remove_edge(&mut self, m: NodeId, n: NodeId) -> bool {
        self.revision += 1;
        let Some(si) = self.succs[m.index()].iter().position(|&t| t == n) else {
            return false;
        };
        self.succs[m.index()].remove(si);
        let pi = self.preds[n.index()]
            .iter()
            .position(|&p| p == m)
            .expect("edge lists out of sync");
        self.preds[n.index()].remove(pi);
        true
    }

    /// Returns a copy of the graph without node `n`, or `None` when `n` is
    /// the start or end node (those cannot be dropped).
    ///
    /// All edges incident to `n` are removed first; with `bridge`, every
    /// former predecessor is then connected to every former successor
    /// (skipping self-edges and edges that already exist). Node ids are
    /// renumbered; labels and the variable pool are preserved. The result
    /// can be structurally invalid — the delta-debugging shrinker probes
    /// candidates and keeps only those that re-[`validate`](Self::validate).
    pub fn without_node(&self, n: NodeId, bridge: bool) -> Option<FlowGraph> {
        if n == self.start || n == self.end {
            return None;
        }
        let mut g = self.clone();
        let preds: Vec<NodeId> = g.preds(n).iter().copied().filter(|&p| p != n).collect();
        let succs: Vec<NodeId> = g.succs(n).iter().copied().filter(|&s| s != n).collect();
        while let Some(&p) = g.preds[n.index()].first() {
            g.remove_edge(p, n);
        }
        while let Some(&s) = g.succs[n.index()].first() {
            g.remove_edge(n, s);
        }
        if bridge {
            for &p in &preds {
                for &s in &succs {
                    if !g.succs(p).contains(&s) {
                        g.add_edge(p, s);
                    }
                }
            }
        }
        Some(g.compacted(|m| m != n))
    }

    /// Rebuilds the graph keeping only nodes satisfying `keep` (which must
    /// hold for start and end and for every edge endpoint of a kept node).
    /// Node ids are renumbered densely in the original index order.
    fn compacted(&self, keep: impl Fn(NodeId) -> bool) -> FlowGraph {
        let kept: Vec<NodeId> = self.nodes().filter(|&n| keep(n)).collect();
        let mut out = FlowGraph::new();
        *out.pool_mut() = self.pool.clone();
        let mut map = vec![None; self.node_count()];
        for &n in &kept {
            let id = out.add_node_inner(self.label(n), self.is_synthetic(n));
            out.block_mut(id).instrs = self.block(n).instrs.clone();
            map[n.index()] = Some(id);
        }
        for &n in &kept {
            let from = map[n.index()].expect("kept");
            for &m in self.succs(n) {
                let to = map[m.index()].expect("successors of kept nodes are kept");
                out.add_edge(from, to);
            }
        }
        out.set_start(map[self.start.index()].expect("start kept"));
        out.set_end(map[self.end.index()].expect("end kept"));
        out
    }

    /// Declares `n` as the start node `s`.
    pub fn set_start(&mut self, n: NodeId) {
        self.revision += 1;
        self.start = n;
    }

    /// Declares `n` as the end node `e`.
    pub fn set_end(&mut self, n: NodeId) {
        self.revision += 1;
        self.end = n;
    }

    /// The start node.
    pub fn start(&self) -> NodeId {
        self.start
    }

    /// The end node.
    pub fn end(&self) -> NodeId {
        self.end
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of instructions over all blocks.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// Iterates over all node ids in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.blocks.len() as u32).map(NodeId)
    }

    /// Ordered successors of `n`.
    pub fn succs(&self, n: NodeId) -> &[NodeId] {
        &self.succs[n.index()]
    }

    /// Predecessors of `n`.
    pub fn preds(&self, n: NodeId) -> &[NodeId] {
        &self.preds[n.index()]
    }

    /// The block of `n`.
    pub fn block(&self, n: NodeId) -> &Block {
        &self.blocks[n.index()]
    }

    /// Mutable access to the block of `n`.
    pub fn block_mut(&mut self, n: NodeId) -> &mut Block {
        self.revision += 1;
        &mut self.blocks[n.index()]
    }

    /// The display label of `n`.
    pub fn label(&self, n: NodeId) -> &str {
        &self.labels[n.index()]
    }

    /// Whether `n` was introduced by critical-edge splitting.
    pub fn is_synthetic(&self, n: NodeId) -> bool {
        self.synthetic[n.index()]
    }

    /// The graph's variable pool.
    pub fn pool(&self) -> &VarPool {
        &self.pool
    }

    /// Mutable access to the variable pool.
    pub fn pool_mut(&mut self) -> &mut VarPool {
        self.revision += 1;
        &mut self.pool
    }

    /// The unique temporary `h_ε` associated with the non-trivial term `ε`
    /// (Sec. 2: "every expression pattern ε is associated with a unique
    /// temporary h_ε").
    ///
    /// # Panics
    ///
    /// Panics if `term` is trivial.
    pub fn temp_for(&mut self, term: Term) -> Var {
        assert!(
            term.is_nontrivial(),
            "only non-trivial terms own temporaries"
        );
        let name = format!("h<{}>", term.display(&self.pool));
        self.pool.intern_temp(&name)
    }

    /// Iterates over `(Loc, &Instr)` pairs of all instructions in node/index
    /// order.
    pub fn locs(&self) -> impl Iterator<Item = (Loc, &Instr)> {
        self.blocks.iter().enumerate().flat_map(|(b, block)| {
            block.instrs.iter().enumerate().map(move |(i, instr)| {
                (
                    Loc {
                        node: NodeId(b as u32),
                        index: i,
                    },
                    instr,
                )
            })
        })
    }

    /// Whether the edge `(m, n)` is critical: `m` has several successors and
    /// `n` several predecessors (Sec. 2.1).
    pub fn is_critical_edge(&self, m: NodeId, n: NodeId) -> bool {
        self.succs(m).len() > 1 && self.preds(n).len() > 1
    }

    /// Splits every critical edge by inserting a synthetic node (Fig. 10),
    /// returning the number of edges split. Code motion requires this
    /// normalization; all transformation entry points call it implicitly.
    pub fn split_critical_edges(&mut self) -> usize {
        let mut split = 0;
        for m in 0..self.blocks.len() {
            let m = NodeId(m as u32);
            for si in 0..self.succs[m.index()].len() {
                let n = self.succs[m.index()][si];
                if self.is_critical_edge(m, n) {
                    let label = format!("S{},{}", self.labels[m.index()], self.labels[n.index()]);
                    let synth = self.add_node_inner(&label, true);
                    // Redirect m's si-th successor to the synthetic node,
                    // preserving successor order (branch decisions).
                    self.succs[m.index()][si] = synth;
                    let pred_slot = self.preds[n.index()]
                        .iter()
                        .position(|&p| p == m)
                        .expect("edge lists out of sync");
                    self.preds[n.index()][pred_slot] = synth;
                    self.succs[synth.index()].push(n);
                    self.preds[synth.index()].push(m);
                    split += 1;
                }
            }
        }
        split
    }

    /// Checks the structural invariants of Sec. 2 and the branch-placement
    /// rules.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: start/end degree rules, every
    /// node on an `s`–`e` path, branch instructions only in multi-successor
    /// nodes and at most one per node, no duplicate edges.
    pub fn validate(&self) -> Result<(), GraphError> {
        if !self.preds(self.start).is_empty() {
            return Err(GraphError::StartHasPreds);
        }
        if !self.succs(self.end).is_empty() {
            return Err(GraphError::EndHasSuccs);
        }
        let reach_fwd = self.reachable_from(self.start, false);
        let reach_bwd = self.reachable_from(self.end, true);
        for n in self.nodes() {
            if !(reach_fwd[n.index()] && reach_bwd[n.index()]) {
                return Err(GraphError::Unreachable(n));
            }
            let branches = self.blocks[n.index()]
                .instrs
                .iter()
                .filter(|i| matches!(i, Instr::Branch(_)))
                .count();
            if branches > 1 {
                return Err(GraphError::MultipleBranches(n));
            }
            if branches == 1 && self.succs(n).len() <= 1 {
                return Err(GraphError::BranchInStraightNode(n));
            }
            let mut seen = Vec::new();
            for &m in self.succs(n) {
                if seen.contains(&m) {
                    return Err(GraphError::DuplicateEdge(n, m));
                }
                seen.push(m);
            }
        }
        Ok(())
    }

    fn reachable_from(&self, origin: NodeId, backward: bool) -> Vec<bool> {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![origin];
        seen[origin.index()] = true;
        while let Some(n) = stack.pop() {
            let nexts = if backward {
                self.preds(n)
            } else {
                self.succs(n)
            };
            for &m in nexts {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    stack.push(m);
                }
            }
        }
        seen
    }
}

impl fmt::Debug for FlowGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FlowGraph(start={:?}, end={:?})", self.start, self.end)?;
        for n in self.nodes() {
            let succs: Vec<_> = self.succs(n).iter().map(|m| self.label(*m)).collect();
            writeln!(f, "  node {} -> [{}]", self.label(n), succs.join(", "))?;
            for instr in &self.block(n).instrs {
                writeln!(f, "    {}", instr.display(&self.pool))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::BinOp;

    fn diamond() -> (FlowGraph, [NodeId; 4]) {
        let mut g = FlowGraph::new();
        let s = g.add_node("s");
        let l = g.add_node("l");
        let r = g.add_node("r");
        let e = g.add_node("e");
        g.set_start(s);
        g.set_end(e);
        g.add_edge(s, l);
        g.add_edge(s, r);
        g.add_edge(l, e);
        g.add_edge(r, e);
        (g, [s, l, r, e])
    }

    #[test]
    fn diamond_is_valid() {
        let (g, _) = diamond();
        assert_eq!(g.validate(), Ok(()));
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn start_with_preds_is_invalid() {
        let (mut g, [s, l, ..]) = diamond();
        g.add_edge(l, s);
        assert_eq!(g.validate(), Err(GraphError::StartHasPreds));
    }

    #[test]
    fn unreachable_node_is_invalid() {
        let (mut g, _) = diamond();
        g.add_node("island");
        assert!(matches!(g.validate(), Err(GraphError::Unreachable(_))));
    }

    #[test]
    fn node_not_reaching_end_is_invalid() {
        let (mut g, [s, ..]) = diamond();
        let dead = g.add_node("dead");
        g.add_edge(s, dead);
        assert!(matches!(g.validate(), Err(GraphError::Unreachable(n)) if n == dead));
    }

    #[test]
    fn branch_rules_are_checked() {
        let (mut g, [s, l, ..]) = diamond();
        let x = g.pool_mut().intern("x");
        g.block_mut(l)
            .instrs
            .push(Instr::Branch(crate::instr::Cond::truthy(x)));
        assert_eq!(g.validate(), Err(GraphError::BranchInStraightNode(l)));
        g.block_mut(l).instrs.clear();
        g.block_mut(s)
            .instrs
            .push(Instr::Branch(crate::instr::Cond::truthy(x)));
        assert_eq!(g.validate(), Ok(()));
        g.block_mut(s)
            .instrs
            .push(Instr::Branch(crate::instr::Cond::truthy(x)));
        assert_eq!(g.validate(), Err(GraphError::MultipleBranches(s)));
    }

    #[test]
    fn critical_edge_detection_and_splitting() {
        // Fig. 10: node 1 -> 3, node 2 -> {3, elsewhere}; edge (2,3) critical.
        let mut g = FlowGraph::new();
        let s = g.add_node("s");
        let n1 = g.add_node("1");
        let n2 = g.add_node("2");
        let n3 = g.add_node("3");
        let e = g.add_node("e");
        g.set_start(s);
        g.set_end(e);
        g.add_edge(s, n1);
        g.add_edge(s, n2);
        g.add_edge(n1, n3);
        g.add_edge(n2, n3);
        g.add_edge(n2, e);
        g.add_edge(n3, e);
        assert!(g.is_critical_edge(n2, n3));
        assert!(g.is_critical_edge(n2, e)); // e also has two predecessors
        assert!(!g.is_critical_edge(n1, n3));
        let count = g.split_critical_edges();
        assert_eq!(count, 2);
        assert_eq!(g.validate(), Ok(()));
        // n2's first successor is now a synthetic node leading to n3.
        let synth = g.succs(n2)[0];
        assert!(g.is_synthetic(synth));
        assert_eq!(g.succs(synth), [n3]);
        assert_eq!(g.label(synth), "S2,3");
        // No critical edges remain.
        for m in g.nodes() {
            for &n in g.succs(m) {
                assert!(!g.is_critical_edge(m, n));
            }
        }
    }

    #[test]
    fn splitting_preserves_successor_order() {
        let (mut g, [s, l, r, e]) = diamond();
        // Make both diamond edges into critical ones by adding a second
        // entry into l and r.
        let m = g.add_node("m");
        g.add_edge(s, m);
        g.add_edge(m, l);
        g.add_edge(m, r);
        // Avoid duplicate-edge complaints; m joins both sides.
        assert_eq!(g.validate(), Ok(()));
        let order_before: Vec<_> = g.succs(s).to_vec();
        g.split_critical_edges();
        assert_eq!(g.validate(), Ok(()));
        // Successor count and the targets' ultimate destinations preserved.
        assert_eq!(g.succs(s).len(), order_before.len());
        let dest = |g: &FlowGraph, n: NodeId| -> NodeId {
            if g.is_synthetic(n) {
                g.succs(n)[0]
            } else {
                n
            }
        };
        assert_eq!(dest(&g, g.succs(s)[0]), l);
        assert_eq!(dest(&g, g.succs(s)[1]), r);
        assert_eq!(dest(&g, g.succs(s)[2]), m);
        let _ = e;
    }

    #[test]
    fn remove_edge_preserves_order_and_reports_absence() {
        let (mut g, [s, l, r, e]) = diamond();
        assert!(g.remove_edge(s, l));
        assert_eq!(g.succs(s), [r]);
        assert_eq!(g.preds(l), []);
        assert!(!g.remove_edge(s, l), "already gone");
        // l is now unreachable: the graph no longer validates.
        assert!(matches!(g.validate(), Err(GraphError::Unreachable(n)) if n == l));
        let _ = e;
    }

    #[test]
    fn without_node_refuses_start_and_end() {
        let (g, [s, l, _, e]) = diamond();
        assert!(g.without_node(s, true).is_none());
        assert!(g.without_node(e, true).is_none());
        assert!(g.without_node(l, false).is_some());
    }

    #[test]
    fn without_node_bridges_and_renumbers() {
        // Dropping a diamond arm without bridging still validates (the
        // other arm remains); ids are renumbered densely.
        let (g, [_, l, r, _]) = diamond();
        let cut = g.without_node(l, false).unwrap();
        assert_eq!(cut.node_count(), 3);
        assert_eq!(cut.validate(), Ok(()));
        // Dropping a node on the only path requires the bridge.
        let mut chain = FlowGraph::new();
        let s = chain.add_node("s");
        let m = chain.add_node("m");
        let e = chain.add_node("e");
        chain.set_start(s);
        chain.set_end(e);
        chain.add_edge(s, m);
        chain.add_edge(m, e);
        let x = chain.pool_mut().intern("x");
        chain.block_mut(m).instrs.push(Instr::assign(x, 1));
        let unbridged = chain.without_node(m, false).unwrap();
        assert!(unbridged.validate().is_err(), "end became unreachable");
        let bridged = chain.without_node(m, true).unwrap();
        assert_eq!(bridged.validate(), Ok(()));
        assert_eq!(bridged.node_count(), 2);
        assert_eq!(bridged.succs(bridged.start()), [bridged.end()]);
        assert_eq!(bridged.instr_count(), 0, "m's block went with it");
        let _ = r;
    }

    #[test]
    fn without_node_handles_self_loops_and_duplicate_bridges() {
        // m has a self-loop and its pred already reaches its succ: the
        // bridge must not duplicate the existing edge or recreate the loop.
        let mut g = FlowGraph::new();
        let s = g.add_node("s");
        let m = g.add_node("m");
        let e = g.add_node("e");
        g.set_start(s);
        g.set_end(e);
        g.add_edge(s, m);
        g.add_edge(s, e);
        g.add_edge(m, m);
        g.add_edge(m, e);
        let cut = g.without_node(m, true).unwrap();
        assert_eq!(cut.node_count(), 2);
        assert_eq!(cut.validate(), Ok(()));
        assert_eq!(cut.succs(cut.start()), [cut.end()]);
    }

    #[test]
    fn temp_for_is_stable() {
        let mut g = FlowGraph::new();
        let a = g.pool_mut().intern("a");
        let b = g.pool_mut().intern("b");
        let t = Term::binary(BinOp::Add, a, b);
        let h1 = g.temp_for(t);
        let h2 = g.temp_for(t);
        assert_eq!(h1, h2);
        assert!(g.pool().is_temp(h1));
        let other = g.temp_for(Term::binary(BinOp::Mul, a, b));
        assert_ne!(h1, other);
    }

    #[test]
    #[should_panic(expected = "non-trivial")]
    fn temp_for_trivial_panics() {
        let mut g = FlowGraph::new();
        let a = g.pool_mut().intern("a");
        g.temp_for(Term::operand(a));
    }

    #[test]
    fn locs_iterate_in_order() {
        let (mut g, [s, l, ..]) = diamond();
        let x = g.pool_mut().intern("x");
        g.block_mut(s).instrs.push(Instr::assign(x, 1));
        g.block_mut(l).instrs.push(Instr::assign(x, 2));
        let locs: Vec<_> = g.locs().map(|(l, _)| l).collect();
        assert_eq!(
            locs,
            vec![Loc { node: s, index: 0 }, Loc { node: l, index: 0 }]
        );
        assert_eq!(g.instr_count(), 2);
    }
}

impl FlowGraph {
    /// Returns a copy of `g` with contractible synthetic nodes removed.
    ///
    /// Edge splitting introduces synthetic nodes (Sec. 2.1); after
    /// optimization many remain empty. A synthetic node with an empty
    /// block, one predecessor and one successor is contracted when the
    /// bypassing edge would be neither critical nor a duplicate — i.e.
    /// when the node no longer serves its purpose. The result is a fresh
    /// graph (node ids are renumbered); labels and the variable pool are
    /// preserved.
    pub fn simplified(&self) -> FlowGraph {
        let mut g = self.clone();
        // Phase 1: rewire contractible synthetic nodes out of the way.
        loop {
            let candidate = g.nodes().find(|&n| {
                g.is_synthetic(n)
                    && g.block(n).is_empty()
                    && g.preds(n).len() == 1
                    && g.succs(n).len() == 1
                    && {
                        let p = g.preds(n)[0];
                        let s = g.succs(n)[0];
                        p != n
                            && s != n
                            && !g.succs(p).contains(&s) // no duplicate edge
                            // The bypass edge must not be critical.
                            && !(g.succs(p).len() > 1 && g.preds(s).len() > 1)
                    }
            });
            let Some(n) = candidate else { break };
            let p = g.preds(n)[0];
            let s = g.succs(n)[0];
            let slot = g.succs[p.index()]
                .iter()
                .position(|&m| m == n)
                .expect("edge lists in sync");
            g.succs[p.index()][slot] = s;
            let pslot = g.preds[s.index()]
                .iter()
                .position(|&m| m == n)
                .expect("edge lists in sync");
            g.preds[s.index()][pslot] = p;
            g.succs[n.index()].clear();
            g.preds[n.index()].clear();
        }
        // Phase 2: compact, dropping now-disconnected nodes.
        g.compacted(|n| {
            n == g.start() || n == g.end() || !g.preds(n).is_empty() || !g.succs(n).is_empty()
        })
    }
}

#[cfg(test)]
mod simplify_tests {
    use super::*;
    use crate::text::{parse, to_text};

    #[test]
    fn contracts_bypassable_synthetic_nodes() {
        // A synthetic pass-through node on a straight edge (not breaking
        // any critical edge) is contracted away.
        let mut g = FlowGraph::new();
        let s = g.add_node("s");
        let synth = g.add_node_inner("S", true);
        let e = g.add_node("e");
        g.set_start(s);
        g.set_end(e);
        g.add_edge(s, synth);
        g.add_edge(synth, e);
        let x = g.pool_mut().intern("x");
        g.block_mut(s).instrs.push(Instr::assign(x, 1));
        g.block_mut(e).instrs.push(Instr::Out(vec![x.into()]));
        assert_eq!(g.validate(), Ok(()));
        let simplified = g.simplified();
        assert_eq!(simplified.node_count(), 2);
        assert_eq!(simplified.validate(), Ok(()));
        assert_eq!(simplified.succs(simplified.start()), [simplified.end()]);
    }

    #[test]
    fn split_edge_synthetics_on_critical_edges_are_never_contracted() {
        // The synthetic node created by splitting still breaks the
        // critical edge; contracting it would recreate the edge.
        let mut g = parse(
            "start s\nend e\n\
             node s { branch p > 0 }\n\
             node a { x := 1 }\n\
             node e { out(x) }\n\
             edge s -> a, e\nedge a -> e",
        )
        .unwrap();
        let before_nodes = g.node_count();
        g.split_critical_edges(); // splits s -> e
        assert_eq!(g.node_count(), before_nodes + 1);
        let simplified = g.simplified();
        assert_eq!(simplified.node_count(), before_nodes + 1);
        let _ = to_text(&simplified);
        for m in simplified.nodes() {
            for &n in simplified.succs(m) {
                assert!(!simplified.is_critical_edge(m, n));
            }
        }
    }

    #[test]
    fn keeps_synthetic_nodes_with_content() {
        let mut g = parse(
            "start s\nend e\n\
             node s { branch p > 0 }\n\
             node a { x := 1 }\n\
             node e { out(x) }\n\
             edge s -> a, e\nedge a -> e",
        )
        .unwrap();
        g.split_critical_edges();
        let synth = g.nodes().find(|&n| g.is_synthetic(n)).unwrap();
        let x = g.pool().lookup("x").unwrap();
        g.block_mut(synth).instrs.push(Instr::assign(x, 7));
        let simplified = g.simplified();
        assert_eq!(
            simplified.node_count(),
            g.node_count(),
            "nothing contracted"
        );
        assert_eq!(simplified.validate(), Ok(()));
    }

    #[test]
    fn keeps_synthetic_nodes_that_still_break_critical_edges() {
        // Both outgoing edges of the branch land on join nodes: the
        // synthetic nodes are still load-bearing.
        let mut g = parse(
            "start s\nend e\n\
             node s { branch p > 0 }\n\
             node a { skip }\n\
             node j { x := 1 }\n\
             node e { out(x) }\n\
             edge s -> a, j\nedge a -> j\nedge j -> e",
        )
        .unwrap();
        let split = g.split_critical_edges();
        assert_eq!(split, 1);
        let simplified = g.simplified();
        assert_eq!(simplified.node_count(), g.node_count());
        assert_eq!(simplified.validate(), Ok(()));
    }

    #[test]
    fn simplified_preserves_semantics() {
        use crate::interp::{run, Config, Oracle};
        let mut g = parse(
            "start s\nend e\n\
             node s { branch p > 0 }\n\
             node a { x := 1 }\n\
             node e { out(x,p) }\n\
             edge s -> a, e\nedge a -> e",
        )
        .unwrap();
        g.split_critical_edges();
        let simplified = g.simplified();
        for d in [0usize, 1] {
            let cfg = Config {
                oracle: Oracle::Fixed(vec![d]),
                inputs: vec![("p".into(), 5)],
                ..Config::default()
            };
            assert_eq!(
                run(&g, &cfg).observable(),
                run(&simplified, &cfg).observable()
            );
        }
    }
}
