use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::graph::{FlowGraph, NodeId};
use crate::instr::{Cond, Instr};
use crate::term::{BinOp, Operand, Term};
use crate::var::Var;

use super::ast::Expr;
use super::lexer::{lex, Pos, Token};

/// How the parser treats expressions deeper than 3-address form.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Mode {
    /// Reject nested expressions: right-hand sides must contain at most one
    /// operator and condition sides likewise (Sec. 2).
    #[default]
    Strict,
    /// Decompose nested expressions into fresh variables, the canonical
    /// 3-address lowering of Sec. 6 (Fig. 18).
    Decompose,
}

/// A parse failure with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line (0 when no position applies).
    pub line: usize,
    /// 1-based source column (0 when only the line is known).
    pub col: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else if self.col == 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "line {}:{}: {}", self.line, self.col, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// Source positions of the instructions of a parsed flow graph.
///
/// Keys are `(node, instruction index)` pairs — the same addressing as
/// [`Loc`](crate::Loc). A statement that lowers to several instructions
/// (e.g. a decomposed nested expression) maps each of them to the
/// statement's position. Produced by [`parse_with_locations`]; consumed by
/// diagnostics tooling such as `am-lint` to cite findings in the original
/// text.
#[derive(Clone, Debug, Default)]
pub struct SourceMap {
    map: HashMap<(NodeId, usize), Pos>,
}

impl SourceMap {
    /// Position of instruction `index` of `node`, when known.
    pub fn get(&self, node: NodeId, index: usize) -> Option<Pos> {
        self.map.get(&(node, index)).copied()
    }

    /// Number of located instructions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no instruction has a recorded position.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Parses a flow graph in [`Mode::Strict`].
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors, on nested expressions (use
/// [`parse_with_mode`] with [`Mode::Decompose`] to lower them instead) and
/// on structurally invalid graphs (see
/// [`FlowGraph::validate`](crate::FlowGraph::validate)).
pub fn parse(src: &str) -> Result<FlowGraph, ParseError> {
    parse_with_mode(src, Mode::Strict)
}

/// Parses a flow graph, handling nested expressions according to `mode`.
///
/// # Errors
///
/// See [`parse`].
pub fn parse_with_mode(src: &str, mode: Mode) -> Result<FlowGraph, ParseError> {
    parse_with_locations(src, mode).map(|(g, _)| g)
}

/// Like [`parse_with_mode`], but also returns the [`SourceMap`] giving the
/// line/column of every parsed instruction.
///
/// # Errors
///
/// See [`parse`].
pub fn parse_with_locations(src: &str, mode: Mode) -> Result<(FlowGraph, SourceMap), ParseError> {
    let tokens = lex(src).map_err(|e| ParseError {
        line: e.line,
        col: e.col,
        message: e.message,
    })?;
    let taken_names: HashSet<String> = tokens
        .iter()
        .filter_map(|(t, _)| match t {
            Token::Ident(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    Parser {
        tokens,
        pos: 0,
        graph: FlowGraph::new(),
        nodes: HashMap::new(),
        defined: HashSet::new(),
        start: None,
        end: None,
        mode,
        taken_names,
        fresh_counter: 0,
        srcmap: SourceMap::default(),
    }
    .run()
}

struct Parser {
    tokens: Vec<(Token, Pos)>,
    pos: usize,
    graph: FlowGraph,
    nodes: HashMap<String, NodeId>,
    defined: HashSet<String>,
    start: Option<String>,
    end: Option<String>,
    mode: Mode,
    taken_names: HashSet<String>,
    fresh_counter: usize,
    srcmap: SourceMap,
}

impl Parser {
    fn run(mut self) -> Result<(FlowGraph, SourceMap), ParseError> {
        while self.peek().is_some() {
            self.skip_seps();
            let Some(tok) = self.peek().cloned() else {
                break;
            };
            match tok {
                Token::Ident(kw) if kw == "start" => {
                    self.advance();
                    // Resolved lazily so that node ids follow the order of
                    // `node`/`edge` items (canonical temporary numbering
                    // depends on node order).
                    self.start = Some(self.expect_label()?);
                }
                Token::Ident(kw) if kw == "end" => {
                    self.advance();
                    self.end = Some(self.expect_label()?);
                }
                Token::Ident(kw) if kw == "node" => {
                    self.advance();
                    self.parse_node()?;
                }
                Token::Ident(kw) if kw == "edge" => {
                    self.advance();
                    self.parse_edge()?;
                }
                other => {
                    return Err(self.error(format!(
                        "expected 'start', 'end', 'node' or 'edge', found {other}"
                    )));
                }
            }
            self.skip_seps();
        }
        self.finish()
    }

    fn finish(mut self) -> Result<(FlowGraph, SourceMap), ParseError> {
        let start_label = self
            .start
            .take()
            .ok_or_else(|| self.missing("no 'start' declaration"))?;
        let end_label = self
            .end
            .take()
            .ok_or_else(|| self.missing("no 'end' declaration"))?;
        let start = self.node_for(&start_label);
        let end = self.node_for(&end_label);
        for label in self.nodes.keys() {
            if !self.defined.contains(label) {
                return Err(self.missing(&format!("node '{label}' referenced but never defined")));
            }
        }
        self.graph.set_start(start);
        self.graph.set_end(end);
        self.graph.validate().map_err(|e| ParseError {
            line: 0,
            col: 0,
            message: e.to_string(),
        })?;
        Ok((self.graph, self.srcmap))
    }

    fn missing(&self, msg: &str) -> ParseError {
        ParseError {
            line: 0,
            col: 0,
            message: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Position of the current token; at end of input, of the last token.
    fn here(&self) -> Pos {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|(_, p)| *p)
            .unwrap_or_default()
    }

    fn error(&self, message: String) -> ParseError {
        self.error_at(self.here(), message)
    }

    fn error_at(&self, at: Pos, message: String) -> ParseError {
        ParseError {
            line: at.line,
            col: at.col,
            message,
        }
    }

    fn skip_seps(&mut self) {
        while matches!(self.peek(), Some(Token::Sep)) {
            self.advance();
        }
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        let at = self.here();
        match self.advance() {
            Some(ref t) if t == want => Ok(()),
            Some(t) => Err(self.error_at(at, format!("expected {want}, found {t}"))),
            None => Err(self.error_at(at, format!("expected {want}, found end of input"))),
        }
    }

    /// Node labels may be identifiers or bare integers.
    fn expect_label(&mut self) -> Result<String, ParseError> {
        let at = self.here();
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            Some(Token::Int(i)) => Ok(i.to_string()),
            Some(t) => Err(self.error_at(at, format!("expected a node label, found {t}"))),
            None => Err(self.error_at(at, "expected a node label, found end of input".into())),
        }
    }

    fn node_for(&mut self, label: &str) -> NodeId {
        if let Some(&n) = self.nodes.get(label) {
            return n;
        }
        let n = self.graph.add_node(label);
        self.nodes.insert(label.to_owned(), n);
        n
    }

    fn parse_edge(&mut self) -> Result<(), ParseError> {
        let from = self.expect_label()?;
        let from = self.node_for(&from);
        self.expect(&Token::Arrow)?;
        loop {
            let to = self.expect_label()?;
            let to = self.node_for(&to);
            self.graph.add_edge(from, to);
            if matches!(self.peek(), Some(Token::Comma)) {
                self.advance();
            } else {
                break;
            }
        }
        Ok(())
    }

    fn parse_node(&mut self) -> Result<(), ParseError> {
        let opened = self.here();
        let label = self.expect_label()?;
        if !self.defined.insert(label.clone()) {
            return Err(self.error(format!("node '{label}' defined twice")));
        }
        let node = self.node_for(&label);
        self.expect(&Token::LBrace)?;
        loop {
            self.skip_seps();
            if matches!(self.peek(), Some(Token::RBrace)) {
                self.advance();
                break;
            }
            if self.peek().is_none() {
                return Err(self.error(format!(
                    "unterminated body of node '{label}' (opened at line {}, column {}): \
                     expected '}}' before end of input",
                    opened.line, opened.col
                )));
            }
            let at = self.here();
            let instrs = self.parse_stmt()?;
            let base = self.graph.block(node).instrs.len();
            for offset in 0..instrs.len() {
                self.srcmap.map.insert((node, base + offset), at);
            }
            self.graph.block_mut(node).instrs.extend(instrs);
        }
        Ok(())
    }

    fn parse_stmt(&mut self) -> Result<Vec<Instr>, ParseError> {
        match self.peek().cloned() {
            Some(Token::Ident(kw)) if kw == "skip" => {
                self.advance();
                Ok(vec![Instr::Skip])
            }
            Some(Token::Ident(kw)) if kw == "out" => {
                self.advance();
                self.expect(&Token::LParen)?;
                let mut ops = Vec::new();
                if !matches!(self.peek(), Some(Token::RParen)) {
                    loop {
                        ops.push(self.parse_operand()?);
                        if matches!(self.peek(), Some(Token::Comma)) {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Token::RParen)?;
                Ok(vec![Instr::Out(ops)])
            }
            Some(Token::Ident(kw)) if kw == "branch" => {
                self.advance();
                self.parse_branch()
            }
            Some(Token::Ident(name)) => {
                self.advance();
                self.expect(&Token::Assign)?;
                let lhs = self.graph.pool_mut().intern(&name);
                let expr = self.parse_expr(0)?;
                self.lower_assign(lhs, &expr)
            }
            Some(t) => Err(self.error(format!("expected a statement, found {t}"))),
            None => Err(self.error("expected a statement, found end of input".into())),
        }
    }

    fn parse_operand(&mut self) -> Result<Operand, ParseError> {
        let at = self.here();
        match self.advance() {
            Some(Token::Ident(name)) => Ok(Operand::Var(self.graph.pool_mut().intern(&name))),
            Some(Token::Int(i)) => Ok(Operand::Const(i)),
            Some(Token::Minus) => match self.advance() {
                Some(Token::Int(i)) => Ok(Operand::Const(-i)),
                _ => Err(self.error_at(at, "expected an integer after '-'".into())),
            },
            Some(t) => Err(self.error_at(at, format!("expected an operand, found {t}"))),
            None => Err(self.error_at(at, "expected an operand, found end of input".into())),
        }
    }

    /// Precedence-climbing expression parser.
    /// Level 0: relational; level 1: `+`/`-`; level 2: `*`/`/`/`%`.
    fn parse_expr(&mut self, min_level: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_primary()?;
        while let Some((op, level)) = self.peek_binop() {
            if level < min_level {
                break;
            }
            self.advance();
            let rhs = self.parse_expr(level + 1)?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn peek_binop(&self) -> Option<(BinOp, u8)> {
        Some(match self.peek()? {
            Token::Lt => (BinOp::Lt, 0),
            Token::Le => (BinOp::Le, 0),
            Token::Gt => (BinOp::Gt, 0),
            Token::Ge => (BinOp::Ge, 0),
            Token::EqEq => (BinOp::EqOp, 0),
            Token::Ne => (BinOp::Ne, 0),
            Token::Plus => (BinOp::Add, 1),
            Token::Minus => (BinOp::Sub, 1),
            Token::Star => (BinOp::Mul, 2),
            Token::Slash => (BinOp::Div, 2),
            Token::Percent => (BinOp::Mod, 2),
            _ => return None,
        })
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), Some(Token::LParen)) {
            self.advance();
            let e = self.parse_expr(0)?;
            self.expect(&Token::RParen)?;
            return Ok(e);
        }
        Ok(Expr::Operand(self.parse_operand()?))
    }

    fn fresh_var(&mut self) -> Var {
        loop {
            self.fresh_counter += 1;
            let name = format!("t{}", self.fresh_counter);
            if !self.taken_names.contains(&name) {
                return self.graph.pool_mut().intern(&name);
            }
        }
    }

    /// Lowers `lhs := expr` to instructions, decomposing nested expressions
    /// when the mode allows it.
    fn lower_assign(&mut self, lhs: Var, expr: &Expr) -> Result<Vec<Instr>, ParseError> {
        if let Some(term) = expr.as_term() {
            return Ok(vec![Instr::assign(lhs, term)]);
        }
        if self.mode == Mode::Strict {
            return Err(self.error(
                "nested expression requires 3-address form (parse with Mode::Decompose)".into(),
            ));
        }
        let Expr::Binary { op, lhs: l, rhs: r } = expr else {
            unreachable!("operand exprs always convert to terms");
        };
        let mut instrs = Vec::new();
        let lo = self.lower_subexpr(l, &mut instrs);
        let ro = self.lower_subexpr(r, &mut instrs);
        instrs.push(Instr::assign(
            lhs,
            Term::Binary {
                op: *op,
                lhs: lo,
                rhs: ro,
            },
        ));
        Ok(instrs)
    }

    fn lower_subexpr(&mut self, expr: &Expr, instrs: &mut Vec<Instr>) -> Operand {
        match expr {
            Expr::Operand(o) => *o,
            Expr::Binary { op, lhs, rhs } => {
                let lo = self.lower_subexpr(lhs, instrs);
                let ro = self.lower_subexpr(rhs, instrs);
                let v = self.fresh_var();
                instrs.push(Instr::assign(
                    v,
                    Term::Binary {
                        op: *op,
                        lhs: lo,
                        rhs: ro,
                    },
                ));
                Operand::Var(v)
            }
        }
    }

    /// Lowers a side of a branch condition to a 3-address term, emitting
    /// decomposition assignments into `instrs` when needed.
    fn lower_cond_side(
        &mut self,
        expr: &Expr,
        instrs: &mut Vec<Instr>,
    ) -> Result<Term, ParseError> {
        if let Some(t) = expr.as_term() {
            return Ok(t);
        }
        if self.mode == Mode::Strict {
            return Err(self.error(
                "nested condition requires 3-address form (parse with Mode::Decompose)".into(),
            ));
        }
        match expr {
            Expr::Operand(o) => Ok(Term::Operand(*o)),
            Expr::Binary { op, lhs, rhs } => {
                let lo = self.lower_subexpr(lhs, instrs);
                let ro = self.lower_subexpr(rhs, instrs);
                Ok(Term::Binary {
                    op: *op,
                    lhs: lo,
                    rhs: ro,
                })
            }
        }
    }

    fn parse_branch(&mut self) -> Result<Vec<Instr>, ParseError> {
        let expr = self.parse_expr(0)?;
        let mut instrs = Vec::new();
        let cond = match &expr {
            Expr::Binary { op, lhs, rhs } if op.is_relational() => {
                let l = self.lower_cond_side(lhs, &mut instrs)?;
                let r = self.lower_cond_side(rhs, &mut instrs)?;
                Cond {
                    op: *op,
                    lhs: l,
                    rhs: r,
                }
            }
            other => {
                // `branch x` means `branch x != 0`.
                let t = self.lower_cond_side(other, &mut instrs)?;
                Cond {
                    op: BinOp::Ne,
                    lhs: t,
                    rhs: Term::from(0),
                }
            }
        };
        instrs.push(Instr::Branch(cond));
        Ok(instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RUNNING_EXAMPLE: &str = "
        # Fig. 4 of the paper.
        start 1
        end 4
        node 1 { y := c+d }
        node 2 { branch x+z > y+i }
        node 3 { y := c+d; x := y+z; i := i+x }
        node 4 { x := y+z; x := c+d; out(i,x,y) }
        edge 1 -> 2
        edge 2 -> 3, 4
        edge 3 -> 2
    ";

    #[test]
    fn parses_running_example() {
        let g = parse(RUNNING_EXAMPLE).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.instr_count(), 1 + 1 + 3 + 3);
        assert_eq!(g.label(g.start()), "1");
        assert_eq!(g.label(g.end()), "4");
        let n2 = g.nodes().find(|&n| g.label(n) == "2").unwrap();
        assert_eq!(g.succs(n2).len(), 2);
        assert!(matches!(g.block(n2).instrs[0], Instr::Branch(_)));
    }

    #[test]
    fn branch_condition_structure() {
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let n2 = g.nodes().find(|&n| g.label(n) == "2").unwrap();
        let Instr::Branch(c) = &g.block(n2).instrs[0] else {
            panic!("expected branch")
        };
        let x = g.pool().lookup("x").unwrap();
        let z = g.pool().lookup("z").unwrap();
        let y = g.pool().lookup("y").unwrap();
        let i = g.pool().lookup("i").unwrap();
        assert_eq!(c.op, BinOp::Gt);
        assert_eq!(c.lhs, Term::binary(BinOp::Add, x, z));
        assert_eq!(c.rhs, Term::binary(BinOp::Add, y, i));
    }

    #[test]
    fn strict_mode_rejects_nested() {
        let src = "start s\nend e\nnode s { x := a+b+c }\nnode e { out(x) }\nedge s -> e";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("3-address"));
    }

    #[test]
    fn decompose_mode_lowers_nested() {
        // Fig. 18: x := a+b+c  =>  t1 := a+b; x := t1+c.
        let src = "start s\nend e\nnode s { x := a+b+c }\nnode e { out(x) }\nedge s -> e";
        let g = parse_with_mode(src, Mode::Decompose).unwrap();
        let s = g.start();
        let instrs = &g.block(s).instrs;
        assert_eq!(instrs.len(), 2);
        let t1 = g.pool().lookup("t1").unwrap();
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let c = g.pool().lookup("c").unwrap();
        assert_eq!(instrs[0], Instr::assign(t1, Term::binary(BinOp::Add, a, b)));
        let x = g.pool().lookup("x").unwrap();
        assert_eq!(instrs[1], Instr::assign(x, Term::binary(BinOp::Add, t1, c)));
    }

    #[test]
    fn fresh_vars_avoid_source_names() {
        let src =
            "start s\nend e\nnode s { t1 := 5; x := a+b+c }\nnode e { out(x,t1) }\nedge s -> e";
        let g = parse_with_mode(src, Mode::Decompose).unwrap();
        // The decomposition variable must not collide with source t1.
        let instrs = &g.block(g.start()).instrs;
        assert_eq!(instrs.len(), 3);
        let Instr::Assign { lhs, .. } = &instrs[1] else {
            panic!()
        };
        assert_ne!(g.pool().name(*lhs), "t1");
        assert_eq!(g.pool().name(*lhs), "t2");
    }

    #[test]
    fn branch_of_plain_var() {
        let src = "start s\nend e\nnode s { branch p }\nnode a { skip }\nnode e { out() }\nedge s -> a, e\nedge a -> e";
        let g = parse(src).unwrap();
        let Instr::Branch(c) = &g.block(g.start()).instrs[0] else {
            panic!()
        };
        assert_eq!(c.op, BinOp::Ne);
        assert_eq!(c.rhs, Term::from(0));
    }

    #[test]
    fn self_assignment_becomes_skip() {
        let src = "start s\nend e\nnode s { x := x }\nnode e { out() }\nedge s -> e";
        let g = parse(src).unwrap();
        assert_eq!(g.block(g.start()).instrs, vec![Instr::Skip]);
    }

    #[test]
    fn precedence_and_parens() {
        let src = "start s\nend e\nnode s { x := a+b*c }\nnode e { out(x) }\nedge s -> e";
        // a + (b*c) is nested: strict must reject, decompose computes b*c first.
        assert!(parse(src).is_err());
        let g = parse_with_mode(src, Mode::Decompose).unwrap();
        let instrs = &g.block(g.start()).instrs;
        let b = g.pool().lookup("b").unwrap();
        let c = g.pool().lookup("c").unwrap();
        let Instr::Assign { rhs, .. } = &instrs[0] else {
            panic!()
        };
        assert_eq!(*rhs, Term::binary(BinOp::Mul, b, c));
    }

    #[test]
    fn structural_errors_are_reported() {
        // Undefined node referenced in an edge.
        let src =
            "start s\nend e\nnode s { skip }\nnode e { out() }\nedge s -> ghost\nedge ghost -> e";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("ghost"));
        // Missing start.
        let err = parse("end e\nnode e { out() }").unwrap_err();
        assert!(err.message.contains("start"));
        // Duplicate node.
        let err = parse(
            "start s\nend e\nnode s { skip }\nnode s { skip }\nnode e { out() }\nedge s -> e",
        )
        .unwrap_err();
        assert!(err.message.contains("twice"));
        // Invalid graph: unreachable node is caught by validation.
        let err = parse("start s\nend e\nnode s { skip }\nnode x { skip }\nnode e { out() }\nedge s -> e\nedge x -> e").unwrap_err();
        assert!(err.message.contains("path"));
    }

    #[test]
    fn errors_carry_line_and_column() {
        // The stray '*' is on line 3, column 14.
        let src = "start s\nend e\nnode s { x := * }\nnode e { out() }\nedge s -> e";
        let err = parse(src).unwrap_err();
        assert_eq!((err.line, err.col), (3, 15));
        assert!(err.to_string().starts_with("line 3:15: "));
        // Positionless errors render without a bogus "line 0:" prefix.
        let err = parse("end e\nnode e { out() }").unwrap_err();
        assert_eq!((err.line, err.col), (0, 0));
        assert!(err.to_string().starts_with("no 'start'"));
    }

    #[test]
    fn unterminated_node_body_names_the_node() {
        let err = parse("start s\nend e\nnode s {\n  x := 1\n").unwrap_err();
        assert!(err.message.contains("node 's'"), "{}", err.message);
        assert!(err.message.contains("line 3"), "{}", err.message);
        assert!(err.message.contains("unterminated"), "{}", err.message);
        // Same when the body is empty and the header itself dangles.
        let err = parse("start s\nend e\nnode s {").unwrap_err();
        assert!(err.message.contains("node 's'"), "{}", err.message);
    }

    #[test]
    fn source_map_locates_instructions() {
        let src = "start 1\nend 2\n\
                   node 1 {\n  x := a+b\n  y := x\n}\n\
                   node 2 { out(x, y) }\n\
                   edge 1 -> 2";
        let (g, map) = parse_with_locations(src, Mode::Strict).unwrap();
        let n1 = g.start();
        let n2 = g.end();
        assert_eq!(map.get(n1, 0), Some(Pos::new(4, 3)));
        assert_eq!(map.get(n1, 1), Some(Pos::new(5, 3)));
        assert_eq!(map.get(n2, 0), Some(Pos::new(7, 10)));
        assert_eq!(map.len(), 3);
        assert_eq!(map.get(n1, 2), None);
    }

    #[test]
    fn source_map_covers_decomposed_statements() {
        // One statement lowering to two instructions: both share its position.
        let src = "start s\nend e\nnode s { x := a+b+c }\nnode e { out(x) }\nedge s -> e";
        let (g, map) = parse_with_locations(src, Mode::Decompose).unwrap();
        let s = g.start();
        assert_eq!(g.block(s).instrs.len(), 2);
        assert_eq!(map.get(s, 0), map.get(s, 1));
        assert_eq!(map.get(s, 0), Some(Pos::new(3, 10)));
    }

    #[test]
    fn negative_constants() {
        let src =
            "start s\nend e\nnode s { x := -3; y := x + -2 }\nnode e { out(x,y) }\nedge s -> e";
        let g = parse(src).unwrap();
        let instrs = &g.block(g.start()).instrs;
        assert_eq!(instrs.len(), 2);
        let Instr::Assign { rhs, .. } = &instrs[0] else {
            panic!()
        };
        assert_eq!(*rhs, Term::from(-3));
    }
}

/// A tiny cursor for parsing standalone expressions and conditions
/// (used by [`crate::builder`]).
struct ExprCursor<'p> {
    tokens: Vec<(Token, Pos)>,
    pos: usize,
    pool: &'p mut crate::var::VarPool,
}

impl ExprCursor<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: 1,
            col: 0,
            message: message.into(),
        }
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        match self.advance() {
            Some(Token::Ident(name)) => Ok(Operand::Var(self.pool.intern(&name))),
            Some(Token::Int(i)) => Ok(Operand::Const(i)),
            Some(Token::Minus) => match self.advance() {
                Some(Token::Int(i)) => Ok(Operand::Const(-i)),
                _ => Err(self.err("expected an integer after '-'")),
            },
            Some(t) => Err(self.err(format!("expected an operand, found {t}"))),
            None => Err(self.err("expected an operand, found end of input")),
        }
    }

    fn binop(&self) -> Option<(BinOp, u8)> {
        Some(match self.peek()? {
            Token::Lt => (BinOp::Lt, 0),
            Token::Le => (BinOp::Le, 0),
            Token::Gt => (BinOp::Gt, 0),
            Token::Ge => (BinOp::Ge, 0),
            Token::EqEq => (BinOp::EqOp, 0),
            Token::Ne => (BinOp::Ne, 0),
            Token::Plus => (BinOp::Add, 1),
            Token::Minus => (BinOp::Sub, 1),
            Token::Star => (BinOp::Mul, 2),
            Token::Slash => (BinOp::Div, 2),
            Token::Percent => (BinOp::Mod, 2),
            _ => return None,
        })
    }

    fn expr(&mut self, min_level: u8) -> Result<Expr, ParseError> {
        let mut lhs = if matches!(self.peek(), Some(Token::LParen)) {
            self.advance();
            let e = self.expr(0)?;
            match self.advance() {
                Some(Token::RParen) => e,
                _ => return Err(self.err("expected ')'")),
            }
        } else {
            Expr::Operand(self.operand()?)
        };
        while let Some((op, level)) = self.binop() {
            if level < min_level {
                break;
            }
            self.advance();
            let rhs = self.expr(level + 1)?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn finish(&self) -> Result<(), ParseError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(self.err(format!("unexpected trailing {t}"))),
        }
    }
}

fn cursor<'p>(src: &str, pool: &'p mut crate::var::VarPool) -> Result<ExprCursor<'p>, ParseError> {
    let tokens = lex(src).map_err(|e| ParseError {
        line: e.line,
        col: e.col,
        message: e.message,
    })?;
    Ok(ExprCursor {
        tokens,
        pos: 0,
        pool,
    })
}

/// Parses a standalone 3-address term, e.g. `"a+b"`, `"x"`, `"-3"`.
/// Variables are interned into `pool`.
///
/// # Errors
///
/// Rejects nested expressions (`"a+b+c"`) and syntax errors.
pub fn parse_expr_str(src: &str, pool: &mut crate::var::VarPool) -> Result<Term, ParseError> {
    let mut c = cursor(src, pool)?;
    let expr = c.expr(0)?;
    c.finish()?;
    expr.as_term().ok_or_else(|| ParseError {
        line: 1,
        col: 0,
        message: "nested expression requires 3-address form".into(),
    })
}

/// Parses a standalone branch condition, e.g. `"x+z > y+i"` or `"p"`
/// (shorthand for `p != 0`). Sides must be 3-address terms.
///
/// # Errors
///
/// Rejects sides deeper than one operator and syntax errors.
pub fn parse_cond_str(src: &str, pool: &mut crate::var::VarPool) -> Result<Cond, ParseError> {
    let mut c = cursor(src, pool)?;
    let expr = c.expr(0)?;
    c.finish()?;
    let side = |e: &Expr| {
        e.as_term().ok_or_else(|| ParseError {
            line: 1,
            col: 0,
            message: "condition side requires 3-address form".into(),
        })
    };
    match &expr {
        Expr::Binary { op, lhs, rhs } if op.is_relational() => Ok(Cond {
            op: *op,
            lhs: side(lhs)?,
            rhs: side(rhs)?,
        }),
        other => Ok(Cond {
            op: BinOp::Ne,
            lhs: side(other)?,
            rhs: Term::from(0),
        }),
    }
}

#[cfg(test)]
mod expr_str_tests {
    use super::*;
    use crate::var::VarPool;

    #[test]
    fn parses_terms() {
        let mut pool = VarPool::new();
        let t = parse_expr_str("a+b", &mut pool).unwrap();
        assert!(t.is_nontrivial());
        assert_eq!(parse_expr_str("5", &mut pool).unwrap(), Term::from(5));
        assert_eq!(parse_expr_str("-5", &mut pool).unwrap(), Term::from(-5));
        assert!(parse_expr_str("a+b+c", &mut pool).is_err());
        assert!(parse_expr_str("a +", &mut pool).is_err());
        assert!(parse_expr_str("a b", &mut pool).is_err());
    }

    #[test]
    fn parses_conditions() {
        let mut pool = VarPool::new();
        let c = parse_cond_str("x+z > y+i", &mut pool).unwrap();
        assert_eq!(c.op, BinOp::Gt);
        assert!(c.lhs.is_nontrivial() && c.rhs.is_nontrivial());
        let truthy = parse_cond_str("p", &mut pool).unwrap();
        assert_eq!(truthy.op, BinOp::Ne);
        assert!(parse_cond_str("(a+b)*2 > 0", &mut pool).is_err());
    }
}
