//! Textual IR: a small language for writing flow graphs, plus the
//! pretty-printer that round-trips it.
//!
//! # Syntax
//!
//! ```text
//! # The running example of the paper (Fig. 4).
//! start 1
//! end 4
//! node 1 { y := c+d }
//! node 2 { branch x+z > y+i }
//! node 3 { y := c+d; x := y+z; i := i+x }
//! node 4 { x := y+z; x := c+d; out(i,x,y) }
//! edge 1 -> 2
//! edge 2 -> 3, 4
//! edge 3 -> 2
//! ```
//!
//! Statements are separated by `;` or newlines; `#` starts a line comment.
//! Right-hand sides may be arbitrarily nested expressions; parsing in
//! [`Mode::Strict`] rejects anything deeper than 3-address form, while
//! [`Mode::Decompose`] performs the canonical decomposition of Sec. 6
//! (Fig. 18: `x := a+b+c` becomes `t1 := a+b; x := t1+c`).
//!
//! # Examples
//!
//! ```
//! use am_ir::text::{parse, to_text};
//!
//! let g = parse("start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e\n")?;
//! assert_eq!(g.node_count(), 2);
//! let round = parse(&to_text(&g))?;
//! assert_eq!(to_text(&round), to_text(&g));
//! # Ok::<(), am_ir::text::ParseError>(())
//! ```

mod ast;
mod lexer;
mod parser;
mod printer;

pub use ast::Expr;
pub use lexer::{lex, LexError, Pos, Token};
pub use parser::{
    parse, parse_cond_str, parse_expr_str, parse_with_locations, parse_with_mode, Mode, ParseError,
    SourceMap,
};
pub use printer::{node_summary, to_text};
