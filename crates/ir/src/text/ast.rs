use crate::term::{BinOp, Operand, Term};
use crate::var::VarPool;

/// A surface expression: arbitrarily nested, as written in source text.
///
/// The core IR only admits 3-address terms; [`Expr::depth`] distinguishes
/// expressions that fit directly from those needing the Sec. 6
/// decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A variable or constant leaf.
    Operand(Operand),
    /// `lhs op rhs`.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left subexpression.
        lhs: Box<Expr>,
        /// Right subexpression.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Builds a binary node.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Operator nesting depth: 0 for a leaf, 1 for `a+b`, 2 for `a+b+c`, …
    pub fn depth(&self) -> usize {
        match self {
            Expr::Operand(_) => 0,
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.depth().max(rhs.depth()),
        }
    }

    /// Converts to a 3-address [`Term`] if the expression is shallow enough.
    pub fn as_term(&self) -> Option<Term> {
        match self {
            Expr::Operand(o) => Some(Term::Operand(*o)),
            Expr::Binary { op, lhs, rhs } => match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Operand(l), Expr::Operand(r)) => Some(Term::Binary {
                    op: *op,
                    lhs: *l,
                    rhs: *r,
                }),
                _ => None,
            },
        }
    }

    /// Flattens the expression into 3-address form (Sec. 6, Fig. 18):
    /// every nested subexpression is assigned to a fresh variable drawn from
    /// `fresh`, the generated `(var, term)` assignments are appended to
    /// `emitted` in evaluation order, and the resulting operand is returned.
    pub fn decompose(
        &self,
        pool: &mut VarPool,
        fresh: &mut dyn FnMut(&mut VarPool) -> crate::var::Var,
        emitted: &mut Vec<(crate::var::Var, Term)>,
    ) -> Operand {
        match self {
            Expr::Operand(o) => *o,
            Expr::Binary { op, lhs, rhs } => {
                let l = lhs.decompose(pool, fresh, emitted);
                let r = rhs.decompose(pool, fresh, emitted);
                let v = fresh(pool);
                emitted.push((
                    v,
                    Term::Binary {
                        op: *op,
                        lhs: l,
                        rhs: r,
                    },
                ));
                Operand::Var(v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::Var;

    fn leaf(pool: &mut VarPool, name: &str) -> Expr {
        Expr::Operand(Operand::Var(pool.intern(name)))
    }

    #[test]
    fn depth_and_as_term() {
        let mut pool = VarPool::new();
        let a = leaf(&mut pool, "a");
        let b = leaf(&mut pool, "b");
        let c = leaf(&mut pool, "c");
        assert_eq!(a.depth(), 0);
        let ab = Expr::binary(BinOp::Add, a.clone(), b.clone());
        assert_eq!(ab.depth(), 1);
        assert!(ab.as_term().is_some());
        let abc = Expr::binary(BinOp::Add, ab.clone(), c);
        assert_eq!(abc.depth(), 2);
        assert!(abc.as_term().is_none());
        assert_eq!(a.as_term(), Some(Term::operand(pool.lookup("a").unwrap())));
    }

    #[test]
    fn decompose_emits_in_evaluation_order() {
        // (a+b)+c  =>  t1 := a+b ; result term t1+c
        let mut pool = VarPool::new();
        let a = leaf(&mut pool, "a");
        let b = leaf(&mut pool, "b");
        let c = leaf(&mut pool, "c");
        let abc = Expr::binary(BinOp::Add, Expr::binary(BinOp::Add, a, b), c);
        let mut counter = 0;
        let mut fresh = |pool: &mut VarPool| -> Var {
            counter += 1;
            pool.intern(&format!("t{counter}"))
        };
        let mut emitted = Vec::new();
        let result = abc.decompose(&mut pool, &mut fresh, &mut emitted);
        assert_eq!(emitted.len(), 2);
        let t1 = pool.lookup("t1").unwrap();
        let t2 = pool.lookup("t2").unwrap();
        let (v1, term1) = emitted[0];
        assert_eq!(v1, t1);
        assert_eq!(
            term1,
            Term::binary(
                BinOp::Add,
                pool.lookup("a").unwrap(),
                pool.lookup("b").unwrap()
            )
        );
        let (v2, term2) = emitted[1];
        assert_eq!(v2, t2);
        assert_eq!(
            term2,
            Term::binary(BinOp::Add, t1, pool.lookup("c").unwrap())
        );
        assert_eq!(result, Operand::Var(t2));
    }
}
