use std::fmt;

/// A token of the textual IR language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `:=`
    Assign,
    /// `->`
    Arrow,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;` or a newline — statement separator.
    Sep,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Assign => write!(f, ":="),
            Token::Arrow => write!(f, "->"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Sep => write!(f, "';'"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
        }
    }
}

/// A 1-based line/column source position.
///
/// Every token carries the position of its first character, and the parser
/// propagates statement positions onto the instructions it produces (see
/// [`SourceMap`](super::SourceMap)) so downstream tooling — notably the
/// `am-lint` diagnostics — can cite the exact source location of a finding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pos {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (in characters).
    pub col: usize,
}

impl Pos {
    /// Builds a position from 1-based line and column.
    pub fn new(line: usize, col: usize) -> Pos {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexing failure with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (0 when unknown).
    pub col: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col == 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "line {}:{}: {}", self.line, self.col, self.message)
        }
    }
}

impl std::error::Error for LexError {}

/// Character cursor that tracks the current line and column.
struct Scan<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    col: usize,
}

impl Scan<'_> {
    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        match c {
            Some('\n') => {
                self.line += 1;
                self.col = 1;
            }
            Some(_) => self.col += 1,
            None => {}
        }
        c
    }

    /// Position of the next (unconsumed) character.
    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }
}

/// Tokenizes `src`, returning `(token, position)` pairs; the position is
/// that of the token's first character.
///
/// Newlines outside parentheses are emitted as [`Token::Sep`]; consecutive
/// separators are collapsed. `#` and `//` start comments running to the end
/// of the line.
///
/// # Errors
///
/// Returns a [`LexError`] on unknown characters or malformed numbers.
pub fn lex(src: &str) -> Result<Vec<(Token, Pos)>, LexError> {
    let mut out: Vec<(Token, Pos)> = Vec::new();
    let mut s = Scan {
        chars: src.chars().peekable(),
        line: 1,
        col: 1,
    };
    let mut paren_depth = 0usize;
    let err = |at: Pos, message: String| LexError {
        line: at.line,
        col: at.col,
        message,
    };

    let push_sep = |out: &mut Vec<(Token, Pos)>, at: Pos| {
        if !matches!(out.last(), Some((Token::Sep, _)) | None) {
            out.push((Token::Sep, at));
        }
    };

    while let Some(c) = s.peek() {
        let at = s.pos();
        match c {
            '\n' => {
                s.bump();
                if paren_depth == 0 {
                    push_sep(&mut out, at);
                }
            }
            c if c.is_whitespace() => {
                s.bump();
            }
            '#' => {
                while let Some(c) = s.peek() {
                    if c == '\n' {
                        break;
                    }
                    s.bump();
                }
            }
            '/' => {
                s.bump();
                if s.peek() == Some('/') {
                    while let Some(c) = s.peek() {
                        if c == '\n' {
                            break;
                        }
                        s.bump();
                    }
                } else {
                    out.push((Token::Slash, at));
                }
            }
            ';' => {
                s.bump();
                push_sep(&mut out, at);
            }
            '{' => {
                s.bump();
                out.push((Token::LBrace, at));
            }
            '}' => {
                s.bump();
                // A closing brace also terminates the statement before it.
                push_sep(&mut out, at);
                // Replace the separator ordering: Sep then RBrace reads
                // naturally for the parser.
                out.push((Token::RBrace, at));
            }
            '(' => {
                s.bump();
                paren_depth += 1;
                out.push((Token::LParen, at));
            }
            ')' => {
                s.bump();
                paren_depth = paren_depth.saturating_sub(1);
                out.push((Token::RParen, at));
            }
            ',' => {
                s.bump();
                out.push((Token::Comma, at));
            }
            '+' => {
                s.bump();
                out.push((Token::Plus, at));
            }
            '*' => {
                s.bump();
                out.push((Token::Star, at));
            }
            '%' => {
                s.bump();
                out.push((Token::Percent, at));
            }
            '-' => {
                s.bump();
                if s.peek() == Some('>') {
                    s.bump();
                    out.push((Token::Arrow, at));
                } else {
                    out.push((Token::Minus, at));
                }
            }
            ':' => {
                s.bump();
                if s.peek() == Some('=') {
                    s.bump();
                    out.push((Token::Assign, at));
                } else {
                    return Err(err(at, "expected ':='".into()));
                }
            }
            '<' => {
                s.bump();
                if s.peek() == Some('=') {
                    s.bump();
                    out.push((Token::Le, at));
                } else {
                    out.push((Token::Lt, at));
                }
            }
            '>' => {
                s.bump();
                if s.peek() == Some('=') {
                    s.bump();
                    out.push((Token::Ge, at));
                } else {
                    out.push((Token::Gt, at));
                }
            }
            '=' => {
                s.bump();
                if s.peek() == Some('=') {
                    s.bump();
                    out.push((Token::EqEq, at));
                } else {
                    return Err(err(at, "expected '=='".into()));
                }
            }
            '!' => {
                s.bump();
                if s.peek() == Some('=') {
                    s.bump();
                    out.push((Token::Ne, at));
                } else {
                    return Err(err(at, "expected '!='".into()));
                }
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(c) = s.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        s.bump();
                    } else {
                        break;
                    }
                }
                let value: i64 = text
                    .parse()
                    .map_err(|_| err(at, format!("integer literal '{text}' out of range")))?;
                out.push((Token::Int(value), at));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(c) = s.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '\'' {
                        text.push(c);
                        s.bump();
                    } else {
                        break;
                    }
                }
                out.push((Token::Ident(text), at));
            }
            other => {
                return Err(err(at, format!("unexpected character '{other}'")));
            }
        }
    }
    // Drop leading/trailing separators for convenience.
    while matches!(out.last(), Some((Token::Sep, _))) {
        out.pop();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn lexes_assignment() {
        assert_eq!(
            toks("x := a+b"),
            vec![
                Token::Ident("x".into()),
                Token::Assign,
                Token::Ident("a".into()),
                Token::Plus,
                Token::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn newlines_and_semicolons_collapse() {
        assert_eq!(
            toks("a := 1\n\n;;\nb := 2"),
            vec![
                Token::Ident("a".into()),
                Token::Assign,
                Token::Int(1),
                Token::Sep,
                Token::Ident("b".into()),
                Token::Assign,
                Token::Int(2),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("x := 1 # trailing\n// whole line\ny := 2"),
            vec![
                Token::Ident("x".into()),
                Token::Assign,
                Token::Int(1),
                Token::Sep,
                Token::Ident("y".into()),
                Token::Assign,
                Token::Int(2),
            ]
        );
    }

    #[test]
    fn newlines_inside_parens_are_ignored() {
        assert_eq!(
            toks("out(x,\n y)"),
            vec![
                Token::Ident("out".into()),
                Token::LParen,
                Token::Ident("x".into()),
                Token::Comma,
                Token::Ident("y".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            toks("a <= b >= c == d != e -> f"),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Ge,
                Token::Ident("c".into()),
                Token::EqEq,
                Token::Ident("d".into()),
                Token::Ne,
                Token::Ident("e".into()),
                Token::Arrow,
                Token::Ident("f".into()),
            ]
        );
    }

    #[test]
    fn bad_character_is_reported_with_line() {
        let e = lex("x := 1\ny ?= 2").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 3);
        assert!(e.message.contains('?'));
        assert_eq!(e.to_string(), "line 2:3: unexpected character '?'");
    }

    #[test]
    fn tokens_carry_line_and_column() {
        let toks = lex("x := 1\n  y := 42").unwrap();
        let find = |name: &str| {
            toks.iter()
                .find(|(t, _)| matches!(t, Token::Ident(s) if s == name))
                .map(|(_, p)| *p)
                .unwrap()
        };
        assert_eq!(find("x"), Pos::new(1, 1));
        assert_eq!(find("y"), Pos::new(2, 3));
        // Multi-character tokens are positioned at their first character.
        let assign = toks
            .iter()
            .rfind(|(t, _)| matches!(t, Token::Assign))
            .map(|(_, p)| *p)
            .unwrap();
        assert_eq!(assign, Pos::new(2, 5));
        let int = toks
            .iter()
            .find(|(t, _)| matches!(t, Token::Int(42)))
            .map(|(_, p)| *p)
            .unwrap();
        assert_eq!(int, Pos::new(2, 8));
    }

    #[test]
    fn lone_colon_is_an_error() {
        assert!(lex("x : 1").is_err());
        assert!(lex("x = 1").is_err());
        assert!(lex("x != ").is_ok());
        assert!(lex("x !").is_err());
    }
}
