use std::fmt;

/// A token of the textual IR language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `:=`
    Assign,
    /// `->`
    Arrow,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;` or a newline — statement separator.
    Sep,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Assign => write!(f, ":="),
            Token::Arrow => write!(f, "->"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Sep => write!(f, "';'"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
        }
    }
}

/// A lexing failure with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`, returning `(token, line)` pairs.
///
/// Newlines outside parentheses are emitted as [`Token::Sep`]; consecutive
/// separators are collapsed. `#` and `//` start comments running to the end
/// of the line.
///
/// # Errors
///
/// Returns a [`LexError`] on unknown characters or malformed numbers.
pub fn lex(src: &str) -> Result<Vec<(Token, usize)>, LexError> {
    let mut out: Vec<(Token, usize)> = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1usize;
    let mut paren_depth = 0usize;
    let err = |line: usize, message: String| LexError { line, message };

    let push_sep = |out: &mut Vec<(Token, usize)>, line: usize| {
        if !matches!(out.last(), Some((Token::Sep, _)) | None) {
            out.push((Token::Sep, line));
        }
    };

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                chars.next();
                if paren_depth == 0 {
                    push_sep(&mut out, line);
                }
                line += 1;
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                }
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        chars.next();
                    }
                } else {
                    out.push((Token::Slash, line));
                }
            }
            ';' => {
                chars.next();
                push_sep(&mut out, line);
            }
            '{' => {
                chars.next();
                out.push((Token::LBrace, line));
            }
            '}' => {
                chars.next();
                // A closing brace also terminates the statement before it.
                push_sep(&mut out, line);
                // Replace the separator ordering: Sep then RBrace reads
                // naturally for the parser.
                out.push((Token::RBrace, line));
            }
            '(' => {
                chars.next();
                paren_depth += 1;
                out.push((Token::LParen, line));
            }
            ')' => {
                chars.next();
                paren_depth = paren_depth.saturating_sub(1);
                out.push((Token::RParen, line));
            }
            ',' => {
                chars.next();
                out.push((Token::Comma, line));
            }
            '+' => {
                chars.next();
                out.push((Token::Plus, line));
            }
            '*' => {
                chars.next();
                out.push((Token::Star, line));
            }
            '%' => {
                chars.next();
                out.push((Token::Percent, line));
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    out.push((Token::Arrow, line));
                } else {
                    out.push((Token::Minus, line));
                }
            }
            ':' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push((Token::Assign, line));
                } else {
                    return Err(err(line, "expected ':='".into()));
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push((Token::Le, line));
                } else {
                    out.push((Token::Lt, line));
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push((Token::Ge, line));
                } else {
                    out.push((Token::Gt, line));
                }
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push((Token::EqEq, line));
                } else {
                    return Err(err(line, "expected '=='".into()));
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push((Token::Ne, line));
                } else {
                    return Err(err(line, "expected '!='".into()));
                }
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value: i64 = text
                    .parse()
                    .map_err(|_| err(line, format!("integer literal '{text}' out of range")))?;
                out.push((Token::Int(value), line));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '\'' {
                        text.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Token::Ident(text), line));
            }
            other => {
                return Err(err(line, format!("unexpected character '{other}'")));
            }
        }
    }
    // Drop leading/trailing separators for convenience.
    while matches!(out.last(), Some((Token::Sep, _))) {
        out.pop();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn lexes_assignment() {
        assert_eq!(
            toks("x := a+b"),
            vec![
                Token::Ident("x".into()),
                Token::Assign,
                Token::Ident("a".into()),
                Token::Plus,
                Token::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn newlines_and_semicolons_collapse() {
        assert_eq!(
            toks("a := 1\n\n;;\nb := 2"),
            vec![
                Token::Ident("a".into()),
                Token::Assign,
                Token::Int(1),
                Token::Sep,
                Token::Ident("b".into()),
                Token::Assign,
                Token::Int(2),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("x := 1 # trailing\n// whole line\ny := 2"),
            vec![
                Token::Ident("x".into()),
                Token::Assign,
                Token::Int(1),
                Token::Sep,
                Token::Ident("y".into()),
                Token::Assign,
                Token::Int(2),
            ]
        );
    }

    #[test]
    fn newlines_inside_parens_are_ignored() {
        assert_eq!(
            toks("out(x,\n y)"),
            vec![
                Token::Ident("out".into()),
                Token::LParen,
                Token::Ident("x".into()),
                Token::Comma,
                Token::Ident("y".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            toks("a <= b >= c == d != e -> f"),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Ge,
                Token::Ident("c".into()),
                Token::EqEq,
                Token::Ident("d".into()),
                Token::Ne,
                Token::Ident("e".into()),
                Token::Arrow,
                Token::Ident("f".into()),
            ]
        );
    }

    #[test]
    fn bad_character_is_reported_with_line() {
        let e = lex("x := 1\ny ?= 2").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains('?'));
    }

    #[test]
    fn lone_colon_is_an_error() {
        assert!(lex("x : 1").is_err());
        assert!(lex("x = 1").is_err());
        assert!(lex("x != ").is_ok());
        assert!(lex("x !").is_err());
    }
}
