use crate::graph::{FlowGraph, NodeId};

/// Renders `g` in the textual IR syntax accepted by [`parse`](super::parse).
///
/// Nodes are printed in index order with one instruction per line, followed
/// by the edge list. The output round-trips: parsing it yields a graph that
/// prints identically.
pub fn to_text(g: &FlowGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!("start {}\n", g.label(g.start())));
    out.push_str(&format!("end {}\n", g.label(g.end())));
    for n in g.nodes() {
        out.push_str(&format!("node {} {{\n", g.label(n)));
        for instr in &g.block(n).instrs {
            out.push_str(&format!("  {}\n", instr.display(g.pool())));
        }
        out.push_str("}\n");
    }
    for n in g.nodes() {
        if !g.succs(n).is_empty() {
            let targets: Vec<&str> = g.succs(n).iter().map(|&m| g.label(m)).collect();
            out.push_str(&format!("edge {} -> {}\n", g.label(n), targets.join(", ")));
        }
    }
    out
}

/// A one-line summary of a node: `label[instr; instr; ...]`.
///
/// Handy for assertions about individual blocks in tests and for compact
/// figure output.
pub fn node_summary(g: &FlowGraph, n: NodeId) -> String {
    let body: Vec<String> = g
        .block(n)
        .instrs
        .iter()
        .map(|i| i.display(g.pool()))
        .collect();
    format!("{}[{}]", g.label(n), body.join("; "))
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse;
    use super::*;

    const SRC: &str = "
        start 1
        end 4
        node 1 { y := c+d }
        node 2 { branch x+z > y+i }
        node 3 { y := c+d; x := y+z; i := i+x }
        node 4 { x := y+z; x := c+d; out(i,x,y) }
        edge 1 -> 2
        edge 2 -> 3, 4
        edge 3 -> 2
    ";

    #[test]
    fn round_trip_is_stable() {
        let g = parse(SRC).unwrap();
        let text = to_text(&g);
        let g2 = parse(&text).unwrap();
        assert_eq!(to_text(&g2), text);
    }

    #[test]
    fn printed_text_contains_everything() {
        let g = parse(SRC).unwrap();
        let text = to_text(&g);
        assert!(text.contains("start 1"));
        assert!(text.contains("end 4"));
        assert!(text.contains("branch x+z > y+i"));
        assert!(text.contains("edge 2 -> 3, 4"));
        assert!(text.contains("out(i,x,y)"));
    }

    #[test]
    fn node_summary_format() {
        let g = parse(SRC).unwrap();
        let n3 = g.nodes().find(|&n| g.label(n) == "3").unwrap();
        assert_eq!(node_summary(&g, n3), "3[y := c+d; x := y+z; i := i+x]");
        let n1 = g.nodes().find(|&n| g.label(n) == "1").unwrap();
        assert_eq!(node_summary(&g, n1), "1[y := c+d]");
    }
}
