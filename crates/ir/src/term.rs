use std::fmt;

use crate::var::{Var, VarPool};

/// An atomic operand: a variable or an integer constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A program variable.
    Var(Var),
    /// An integer literal.
    Const(i64),
}

impl Operand {
    /// The variable inside this operand, if any.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Operand::Var(v) => Some(v),
            Operand::Const(_) => None,
        }
    }
}

impl From<Var> for Operand {
    fn from(v: Var) -> Self {
        Operand::Var(v)
    }
}

impl From<i64> for Operand {
    fn from(c: i64) -> Self {
        Operand::Const(c)
    }
}

/// Binary operators of the term language.
///
/// Arithmetic operators wrap on overflow; relational operators yield `0`/`1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Addition `+`.
    Add,
    /// Subtraction `-`.
    Sub,
    /// Multiplication `*`.
    Mul,
    /// Division `/` (traps on zero).
    Div,
    /// Remainder `%` (traps on zero).
    Mod,
    /// Less-than `<`.
    Lt,
    /// Less-or-equal `<=`.
    Le,
    /// Greater-than `>`.
    Gt,
    /// Greater-or-equal `>=`.
    Ge,
    /// Equality `==` (named to avoid clashing with `Eq`).
    EqOp,
    /// Inequality `!=`.
    Ne,
}

impl BinOp {
    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::EqOp => "==",
            BinOp::Ne => "!=",
        }
    }

    /// Whether the operator is relational (yields a truth value).
    pub fn is_relational(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::EqOp | BinOp::Ne
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A 3-address term: an operand, or a single operator applied to two
/// operands.
///
/// Following Sec. 2 of the paper, right-hand sides contain *at most one*
/// operator symbol; the [frontend](crate::text) decomposes nested
/// expressions into sequences of such terms (Sec. 6). A term with an
/// operator is *non-trivial* and constitutes an expression pattern.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A trivial term: a bare operand (`x := y`, `x := 5`).
    Operand(Operand),
    /// A non-trivial term with exactly one operator (`x := a + b`).
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
}

impl Term {
    /// Builds a binary term.
    pub fn binary(op: BinOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Self {
        Term::Binary {
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        }
    }

    /// Builds a trivial term from an operand.
    pub fn operand(o: impl Into<Operand>) -> Self {
        Term::Operand(o.into())
    }

    /// Whether the term contains an operator (is an expression pattern).
    pub fn is_nontrivial(self) -> bool {
        matches!(self, Term::Binary { .. })
    }

    /// Calls `f` on every variable occurring in the term.
    pub fn for_each_var(self, mut f: impl FnMut(Var)) {
        match self {
            Term::Operand(o) => {
                if let Some(v) = o.as_var() {
                    f(v);
                }
            }
            Term::Binary { lhs, rhs, .. } => {
                if let Some(v) = lhs.as_var() {
                    f(v);
                }
                if let Some(v) = rhs.as_var() {
                    f(v);
                }
            }
        }
    }

    /// Whether `v` occurs in the term.
    pub fn mentions(self, v: Var) -> bool {
        let mut found = false;
        self.for_each_var(|u| found |= u == v);
        found
    }

    /// Rewrites every variable through `f`.
    pub fn map_vars(self, mut f: impl FnMut(Var) -> Var) -> Term {
        let map_op = |o: Operand, f: &mut dyn FnMut(Var) -> Var| match o {
            Operand::Var(v) => Operand::Var(f(v)),
            c => c,
        };
        match self {
            Term::Operand(o) => Term::Operand(map_op(o, &mut f)),
            Term::Binary { op, lhs, rhs } => Term::Binary {
                op,
                lhs: map_op(lhs, &mut f),
                rhs: map_op(rhs, &mut f),
            },
        }
    }

    /// Renders the term with variable names from `pool`.
    pub fn display(self, pool: &VarPool) -> String {
        let op_str = |o: Operand| match o {
            Operand::Var(v) => pool.name(v).to_owned(),
            Operand::Const(c) => c.to_string(),
        };
        match self {
            Term::Operand(o) => op_str(o),
            Term::Binary { op, lhs, rhs } => {
                format!("{}{}{}", op_str(lhs), op.symbol(), op_str(rhs))
            }
        }
    }
}

impl From<Operand> for Term {
    fn from(o: Operand) -> Self {
        Term::Operand(o)
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Operand(Operand::Var(v))
    }
}

impl From<i64> for Term {
    fn from(c: i64) -> Self {
        Term::Operand(Operand::Const(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_xy() -> (VarPool, Var, Var) {
        let mut pool = VarPool::new();
        let x = pool.intern("x");
        let y = pool.intern("y");
        (pool, x, y)
    }

    #[test]
    fn nontriviality() {
        let (_, x, y) = pool_xy();
        assert!(!Term::operand(x).is_nontrivial());
        assert!(!Term::from(3).is_nontrivial());
        assert!(Term::binary(BinOp::Add, x, y).is_nontrivial());
    }

    #[test]
    fn mentions_finds_both_sides() {
        let (_, x, y) = pool_xy();
        let t = Term::binary(BinOp::Mul, x, y);
        assert!(t.mentions(x));
        assert!(t.mentions(y));
        let t2 = Term::binary(BinOp::Mul, x, 3);
        assert!(!t2.mentions(y));
    }

    #[test]
    fn display_uses_names() {
        let (pool, x, y) = pool_xy();
        assert_eq!(Term::binary(BinOp::Add, x, y).display(&pool), "x+y");
        assert_eq!(Term::binary(BinOp::Le, x, 5).display(&pool), "x<=5");
        assert_eq!(Term::operand(y).display(&pool), "y");
        assert_eq!(Term::from(-2).display(&pool), "-2");
    }

    #[test]
    fn map_vars_rewrites() {
        let (mut pool, x, y) = pool_xy();
        let z = pool.intern("z");
        let t = Term::binary(BinOp::Sub, x, y);
        let t2 = t.map_vars(|v| if v == x { z } else { v });
        assert_eq!(t2, Term::binary(BinOp::Sub, z, y));
    }

    #[test]
    fn relational_classification() {
        assert!(BinOp::Lt.is_relational());
        assert!(BinOp::EqOp.is_relational());
        assert!(!BinOp::Add.is_relational());
        assert!(!BinOp::Mod.is_relational());
    }
}
