use std::collections::HashMap;
use std::fmt;

/// An interned program variable.
///
/// A `Var` is an index into the [`VarPool`] of the flow graph it belongs to.
/// Two `Var`s from the same pool are the same variable exactly when they are
/// equal. Temporaries introduced by the optimizer (the `h_ε` variables of the
/// paper) are ordinary variables flagged as temporaries in the pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The pool index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The variable table of a flow graph: names, and which variables are
/// optimizer-introduced temporaries.
///
/// # Examples
///
/// ```
/// use am_ir::VarPool;
///
/// let mut pool = VarPool::new();
/// let x = pool.intern("x");
/// assert_eq!(pool.intern("x"), x);
/// assert_eq!(pool.name(x), "x");
/// assert!(!pool.is_temp(x));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VarPool {
    names: Vec<String>,
    temps: Vec<bool>,
    index: HashMap<String, Var>,
}

impl VarPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        VarPool::default()
    }

    /// Interns `name` as a (non-temporary) variable, returning the existing
    /// variable if the name is already known.
    pub fn intern(&mut self, name: &str) -> Var {
        if let Some(&v) = self.index.get(name) {
            return v;
        }
        self.push(name.to_owned(), false)
    }

    /// Interns `name` as a temporary variable.
    ///
    /// Temporaries are the `h_ε` variables of the paper: each expression
    /// pattern ε owns a unique temporary, identified by a canonical name
    /// derived from ε. If the name already exists its temporary flag is
    /// retained.
    pub fn intern_temp(&mut self, name: &str) -> Var {
        if let Some(&v) = self.index.get(name) {
            return v;
        }
        self.push(name.to_owned(), true)
    }

    fn push(&mut self, name: String, temp: bool) -> Var {
        let v = Var(u32::try_from(self.names.len()).expect("too many variables"));
        self.index.insert(name.clone(), v);
        self.names.push(name);
        self.temps.push(temp);
        v
    }

    /// The source name of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this pool.
    pub fn name(&self, v: Var) -> &str {
        &self.names[v.index()]
    }

    /// Whether `v` is an optimizer-introduced temporary.
    pub fn is_temp(&self, v: Var) -> bool {
        self.temps[v.index()]
    }

    /// Looks up a variable by name without interning.
    pub fn lookup(&self, name: &str) -> Option<Var> {
        self.index.get(name).copied()
    }

    /// Number of variables in the pool.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` when the pool holds no variables.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over every variable in the pool.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.names.len() as u32).map(Var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut pool = VarPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        assert_ne!(a, b);
        assert_eq!(pool.intern("a"), a);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn temp_flag_is_tracked() {
        let mut pool = VarPool::new();
        let x = pool.intern("x");
        let h = pool.intern_temp("h<a+b>");
        assert!(!pool.is_temp(x));
        assert!(pool.is_temp(h));
        // Re-interning an existing temp keeps the flag.
        assert_eq!(pool.intern_temp("h<a+b>"), h);
        assert!(pool.is_temp(h));
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut pool = VarPool::new();
        assert_eq!(pool.lookup("x"), None);
        let x = pool.intern("x");
        assert_eq!(pool.lookup("x"), Some(x));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn iter_yields_all_vars_in_order() {
        let mut pool = VarPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        assert_eq!(pool.iter().collect::<Vec<_>>(), vec![a, b]);
    }
}
