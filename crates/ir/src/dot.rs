//! Graphviz export of flow graphs — paper-style figures from any program.
//!
//! ```sh
//! cargo run --example optimize_file -- --pass full program.ir | ...
//! ```
//!
//! # Examples
//!
//! ```
//! use am_ir::text::parse;
//! use am_ir::dot::to_dot;
//!
//! let g = parse("start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e")?;
//! let dot = to_dot(&g);
//! assert!(dot.starts_with("digraph flowgraph {"));
//! assert!(dot.contains("x := a+b"));
//! # Ok::<(), am_ir::text::ParseError>(())
//! ```

use std::fmt::Write as _;

use crate::graph::{FlowGraph, NodeId};

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders `g` as a Graphviz `digraph`: one record-shaped node per basic
/// block (label plus instructions), ordered out-edges annotated with their
/// successor index for branch nodes, synthetic nodes dashed.
pub fn to_dot(g: &FlowGraph) -> String {
    to_dot_with(g, |_| None)
}

/// [`to_dot`] with a per-node attribute overlay: `extra` may return
/// additional Graphviz attributes (e.g. `style=filled, fillcolor="#fff"`)
/// appended to the node's attribute list — later attributes win, so
/// overlays can restyle nodes. Tools layer analysis results onto the
/// rendering this way (`amlint --dot` colors nodes by finding severity).
pub fn to_dot_with(g: &FlowGraph, extra: impl Fn(NodeId) -> Option<String>) -> String {
    let mut out = String::from("digraph flowgraph {\n");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for n in g.nodes() {
        let mut label = format!("{}\\n", escape(g.label(n)));
        for instr in &g.block(n).instrs {
            let _ = write!(label, "{}\\l", escape(&instr.display(g.pool())));
        }
        let mut attrs = format!("label=\"{label}\"");
        if n == g.start() {
            attrs.push_str(", penwidth=2");
        }
        if n == g.end() {
            attrs.push_str(", peripheries=2");
        }
        if g.is_synthetic(n) {
            attrs.push_str(", style=dashed");
        }
        if let Some(more) = extra(n) {
            attrs.push_str(", ");
            attrs.push_str(&more);
        }
        let _ = writeln!(out, "  n{} [{attrs}];", n.index());
    }
    for n in g.nodes() {
        let succs = g.succs(n);
        for (i, &m) in succs.iter().enumerate() {
            if succs.len() > 1 {
                let _ = writeln!(out, "  n{} -> n{} [label=\"{i}\"];", n.index(), m.index());
            } else {
                let _ = writeln!(out, "  n{} -> n{};", n.index(), m.index());
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::parse;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = parse(
            "start s\nend e\n\
             node s { branch p > 0 }\n\
             node a { x := 1 }\n\
             node b { x := 2 }\n\
             node e { out(x) }\n\
             edge s -> a, b\nedge a -> e\nedge b -> e",
        )
        .unwrap();
        let dot = to_dot(&g);
        assert_eq!(dot.matches("shape=box").count(), 1);
        assert_eq!(dot.matches(" -> ").count(), 4);
        // Branch out-edges are indexed.
        assert!(dot.contains("[label=\"0\"]"));
        assert!(dot.contains("[label=\"1\"]"));
        assert!(dot.contains("branch p > 0"));
        assert!(dot.contains("penwidth=2"));
        assert!(dot.contains("peripheries=2"));
    }

    #[test]
    fn synthetic_nodes_are_dashed() {
        let mut g = parse(
            "start s\nend e\n\
             node s { branch p > 0 }\n\
             node a { skip }\n\
             node e { out() }\n\
             edge s -> a, e\nedge a -> e",
        )
        .unwrap();
        g.split_critical_edges();
        let dot = to_dot(&g);
        assert!(dot.contains("style=dashed"), "{dot}");
    }

    #[test]
    fn overlay_attributes_are_appended() {
        let g = parse("start s\nend e\nnode s { skip }\nnode e { out() }\nedge s -> e").unwrap();
        let dot = to_dot_with(&g, |n| {
            (n == g.start()).then(|| "style=filled, fillcolor=\"#f4cccc\"".to_owned())
        });
        assert!(
            dot.contains("penwidth=2, style=filled, fillcolor=\"#f4cccc\""),
            "{dot}"
        );
        // Non-selected nodes are untouched.
        assert_eq!(dot.matches("fillcolor").count(), 1);
    }

    #[test]
    fn quotes_are_escaped() {
        let g = parse("start s\nend e\nnode s { skip }\nnode e { out() }\nedge s -> e").unwrap();
        let dot = to_dot(&g);
        assert!(!dot.contains("\"\""), "{dot}");
    }
}
