//! A counting interpreter for flow graphs.
//!
//! The paper's optimality notions (Def. 3.8) compare *runs*: the number of
//! expression evaluations, assignment executions and temporary assignments
//! along corresponding paths of two programs. This interpreter makes those
//! quantities measurable:
//!
//! * branching is **oracle-driven** (Sec. 2 treats the branching structure
//!   as nondeterministic) — two programs run against the same
//!   [`Oracle::Fixed`] decision sequence traverse *corresponding* paths,
//!   which is exactly the alignment the definitions quantify over;
//! * every evaluation of a non-trivial term is counted (these are the
//!   expression-pattern evaluations EM can affect; the fixed top-level
//!   comparison of a branch is control and is not counted — it is identical
//!   in every program of the universe `G`);
//! * `out(...)` values and traps form the observable behaviour, so
//!   semantics preservation is testable; note that eliminating "dead" code
//!   may *reduce* traps, which is why the paper forbids it (Sec. 3) and why
//!   traps are part of our equivalence.
//!
//! # Examples
//!
//! ```
//! use am_ir::text::parse;
//! use am_ir::interp::{run, Config, Oracle, StopReason};
//!
//! let g = parse("start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e")?;
//! let result = run(&g, &Config::with_inputs(vec![("a", 2), ("b", 3)]));
//! assert_eq!(result.stop, StopReason::ReachedEnd);
//! assert_eq!(result.outputs, vec![vec![5]]);
//! assert_eq!(result.expr_evals, 1);
//! # Ok::<(), am_ir::text::ParseError>(())
//! ```

use std::collections::HashMap;

use crate::graph::{FlowGraph, NodeId};
use crate::instr::{Cond, Instr};
use crate::term::{BinOp, Operand, Term};
use crate::var::Var;

/// A runtime trap. Traps are observable behaviour: a transformation that
/// removes or adds one is not semantics-preserving.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trap {
    /// Division or remainder by zero.
    DivByZero,
}

/// Source of branch decisions.
#[derive(Clone, Debug)]
pub enum Oracle {
    /// A pre-committed decision sequence. Decision `d` at a node with `k`
    /// successors selects successor `d % k`. When the sequence is exhausted
    /// the run stops with [`StopReason::OracleExhausted`] — this keeps runs
    /// of different programs aligned on a common path prefix.
    Fixed(Vec<usize>),
    /// Use the node's branch condition: true selects successor 0, false
    /// successor 1. Multi-successor nodes without a branch instruction take
    /// successor 0.
    Deterministic,
}

impl Oracle {
    /// A pseudo-random fixed oracle of `len` decisions derived from `seed`
    /// (an xorshift generator — reproducible and dependency-free).
    pub fn random(seed: u64, len: usize) -> Oracle {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            v.push((state >> 33) as usize);
        }
        Oracle::Fixed(v)
    }
}

/// Interpreter configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Branch decision source.
    pub oracle: Oracle,
    /// Hard bound on executed instructions (safety net).
    pub max_steps: u64,
    /// Initial values, by variable name. Unlisted variables start at 0.
    pub inputs: Vec<(String, i64)>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            oracle: Oracle::Fixed(Vec::new()),
            max_steps: 100_000,
            inputs: Vec::new(),
        }
    }
}

impl Config {
    /// A deterministic-branching configuration with the given inputs.
    pub fn with_inputs(inputs: Vec<(&str, i64)>) -> Config {
        Config {
            oracle: Oracle::Deterministic,
            inputs: inputs.into_iter().map(|(n, v)| (n.to_owned(), v)).collect(),
            ..Config::default()
        }
    }

    /// A fixed-oracle configuration with the given decisions and inputs.
    pub fn with_oracle(decisions: Vec<usize>, inputs: Vec<(&str, i64)>) -> Config {
        Config {
            oracle: Oracle::Fixed(decisions),
            inputs: inputs.into_iter().map(|(n, v)| (n.to_owned(), v)).collect(),
            ..Config::default()
        }
    }
}

/// Why a run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The end node finished executing.
    ReachedEnd,
    /// A fixed oracle ran out of decisions at a branch.
    OracleExhausted,
    /// A trap occurred (see [`RunResult::trap`]).
    Trapped,
    /// `max_steps` was reached.
    StepLimit,
}

/// The outcome and cost profile of one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// Values written by each executed `out(...)`.
    pub outputs: Vec<Vec<i64>>,
    /// The trap, if one occurred.
    pub trap: Option<Trap>,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Instructions executed.
    pub steps: u64,
    /// Evaluations of non-trivial terms — the quantity of Def. 3.8(1).
    pub expr_evals: u64,
    /// Evaluations broken down by expression pattern (Def. 3.8 compares
    /// occurrence counts *per pattern*; the aggregate is the sum).
    pub expr_evals_by_pattern: HashMap<Term, u64>,
    /// Executed assignments — the quantity of Def. 3.8(2).
    pub assign_execs: u64,
    /// Executed assignments whose left-hand side is a temporary — part of
    /// the quantity of Def. 3.8(3).
    pub temp_assign_execs: u64,
    /// Branch decisions consumed.
    pub decisions: u64,
    /// Basic blocks entered.
    pub nodes_visited: u64,
    /// The sequence of visited nodes.
    pub path: Vec<NodeId>,
}

impl RunResult {
    /// The observable behaviour: outputs plus trap. Two semantically
    /// equivalent programs produce equal observables on equal oracles.
    pub fn observable(&self) -> (&[Vec<i64>], Option<Trap>) {
        (&self.outputs, self.trap)
    }
}

/// One step of a traced execution (see [`run_traced`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Control entered a node.
    Enter(NodeId),
    /// An assignment executed, writing `value` to `var`.
    Wrote {
        /// Location of the instruction.
        loc: crate::Loc,
        /// The assigned variable.
        var: Var,
        /// The value written.
        value: i64,
    },
    /// An `out(...)` emitted these values.
    Emitted(Vec<i64>),
    /// A branch decision chose the successor with this index.
    Decided(usize),
    /// Execution trapped.
    Trapped(Trap),
}

struct Machine {
    env: HashMap<Var, i64>,
    result: RunResult,
}

impl Machine {
    fn read(&self, o: Operand) -> i64 {
        match o {
            Operand::Const(c) => c,
            Operand::Var(v) => self.env.get(&v).copied().unwrap_or(0),
        }
    }

    fn apply(&self, op: BinOp, l: i64, r: i64) -> Result<i64, Trap> {
        Ok(match op {
            BinOp::Add => l.wrapping_add(r),
            BinOp::Sub => l.wrapping_sub(r),
            BinOp::Mul => l.wrapping_mul(r),
            BinOp::Div => {
                if r == 0 {
                    return Err(Trap::DivByZero);
                }
                l.wrapping_div(r)
            }
            BinOp::Mod => {
                if r == 0 {
                    return Err(Trap::DivByZero);
                }
                l.wrapping_rem(r)
            }
            BinOp::Lt => i64::from(l < r),
            BinOp::Le => i64::from(l <= r),
            BinOp::Gt => i64::from(l > r),
            BinOp::Ge => i64::from(l >= r),
            BinOp::EqOp => i64::from(l == r),
            BinOp::Ne => i64::from(l != r),
        })
    }

    /// Evaluates a term, counting non-trivial evaluations.
    fn eval_term(&mut self, t: Term) -> Result<i64, Trap> {
        match t {
            Term::Operand(o) => Ok(self.read(o)),
            Term::Binary { op, lhs, rhs } => {
                self.result.expr_evals += 1;
                *self.result.expr_evals_by_pattern.entry(t).or_insert(0) += 1;
                self.apply(op, self.read(lhs), self.read(rhs))
            }
        }
    }

    /// Evaluates a branch condition. The side terms count; the fixed
    /// top-level comparison does not (it exists identically in every
    /// program of the universe).
    fn eval_cond(&mut self, c: Cond) -> Result<bool, Trap> {
        let l = self.eval_term(c.lhs)?;
        let r = self.eval_term(c.rhs)?;
        Ok(self.apply(c.op, l, r)? != 0)
    }
}

/// Runs `g` under `config`.
///
/// Variables not listed in `config.inputs` start at 0. The run stops when
/// the end node completes, a trap occurs, the oracle is exhausted, or the
/// step limit is hit.
pub fn run(g: &FlowGraph, config: &Config) -> RunResult {
    run_impl(g, config, &mut |_| {})
}

/// Runs `g` like [`run`] while recording a step-by-step [`TraceEvent`]
/// stream — the tool for pinpointing where two program versions diverge
/// (see `am-core`'s verification helpers).
///
/// # Examples
///
/// ```
/// use am_ir::text::parse;
/// use am_ir::interp::{run_traced, Config, TraceEvent};
///
/// let g = parse("start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e")?;
/// let (_, trace) = run_traced(&g, &Config::with_inputs(vec![("a", 1), ("b", 2)]));
/// assert!(trace.iter().any(|e| matches!(e, TraceEvent::Wrote { value: 3, .. })));
/// assert!(trace.iter().any(|e| matches!(e, TraceEvent::Emitted(v) if v == &vec![3])));
/// # Ok::<(), am_ir::text::ParseError>(())
/// ```
pub fn run_traced(g: &FlowGraph, config: &Config) -> (RunResult, Vec<TraceEvent>) {
    let mut events = Vec::new();
    let result = run_impl(g, config, &mut |e| events.push(e));
    (result, events)
}

fn run_impl(g: &FlowGraph, config: &Config, sink: &mut dyn FnMut(TraceEvent)) -> RunResult {
    let mut machine = Machine {
        env: HashMap::new(),
        result: RunResult {
            outputs: Vec::new(),
            trap: None,
            stop: StopReason::ReachedEnd,
            steps: 0,
            expr_evals: 0,
            expr_evals_by_pattern: HashMap::new(),
            assign_execs: 0,
            temp_assign_execs: 0,
            decisions: 0,
            nodes_visited: 0,
            path: Vec::new(),
        },
    };
    for (name, value) in &config.inputs {
        if let Some(v) = g.pool().lookup(name) {
            machine.env.insert(v, *value);
        }
    }

    // Reason to unwind out of the block-execution loop.
    enum Halt {
        Trap(Trap),
        OracleExhausted,
        StepLimit,
    }

    // Picks the next-successor index at a decision point.
    let decide =
        |machine: &mut Machine, truth: Option<bool>, fanout: usize| -> Result<usize, Halt> {
            let choice = match &config.oracle {
                Oracle::Deterministic => match truth {
                    Some(true) => 0,
                    Some(false) => 1.min(fanout - 1),
                    None => 0,
                },
                Oracle::Fixed(decisions) => {
                    let i = machine.result.decisions as usize;
                    match decisions.get(i) {
                        Some(&d) => d % fanout,
                        None => return Err(Halt::OracleExhausted),
                    }
                }
            };
            machine.result.decisions += 1;
            Ok(choice)
        };

    let mut node = g.start();
    let halt: Option<Halt> = 'outer: loop {
        // Entering a node counts as progress against the step bound: a
        // cycle of empty blocks executes no instructions, so the per-
        // instruction check alone would spin forever.
        if machine.result.nodes_visited >= config.max_steps {
            break 'outer Some(Halt::StepLimit);
        }
        machine.result.nodes_visited += 1;
        machine.result.path.push(node);
        sink(TraceEvent::Enter(node));
        // The branch decision is taken when the Branch instruction runs;
        // instructions after it still execute before control transfers.
        let mut taken: Option<usize> = None;
        for idx in 0..g.block(node).instrs.len() {
            if machine.result.steps >= config.max_steps {
                break 'outer Some(Halt::StepLimit);
            }
            machine.result.steps += 1;
            match g.block(node).instrs[idx].clone() {
                Instr::Skip => {}
                Instr::Assign { lhs, rhs } => match machine.eval_term(rhs) {
                    Ok(value) => {
                        machine.result.assign_execs += 1;
                        if g.pool().is_temp(lhs) {
                            machine.result.temp_assign_execs += 1;
                        }
                        machine.env.insert(lhs, value);
                        sink(TraceEvent::Wrote {
                            loc: crate::Loc { node, index: idx },
                            var: lhs,
                            value,
                        });
                    }
                    Err(trap) => break 'outer Some(Halt::Trap(trap)),
                },
                Instr::Out(ops) => {
                    let values: Vec<i64> = ops.iter().map(|&o| machine.read(o)).collect();
                    sink(TraceEvent::Emitted(values.clone()));
                    machine.result.outputs.push(values);
                }
                Instr::Branch(c) => {
                    let truth = match machine.eval_cond(c) {
                        Ok(t) => t,
                        Err(trap) => break 'outer Some(Halt::Trap(trap)),
                    };
                    let fanout = g.succs(node).len();
                    match decide(&mut machine, Some(truth), fanout) {
                        Ok(i) => {
                            sink(TraceEvent::Decided(i));
                            taken = Some(i);
                        }
                        Err(h) => break 'outer Some(h),
                    }
                }
            }
        }
        if node == g.end() {
            break None;
        }
        let succs = g.succs(node);
        node = match succs.len() {
            0 => break None, // only the end node lacks successors
            1 => succs[0],
            fanout => {
                let i = match taken {
                    Some(i) => i,
                    // Multi-way node without a Branch instruction: consume
                    // an oracle decision directly (nondeterministic branch).
                    None => match decide(&mut machine, None, fanout) {
                        Ok(i) => {
                            sink(TraceEvent::Decided(i));
                            i
                        }
                        Err(h) => break 'outer Some(h),
                    },
                };
                succs[i]
            }
        };
    };
    machine.result.stop = match halt {
        None => StopReason::ReachedEnd,
        Some(Halt::Trap(t)) => {
            sink(TraceEvent::Trapped(t));
            machine.result.trap = Some(t);
            StopReason::Trapped
        }
        Some(Halt::OracleExhausted) => StopReason::OracleExhausted,
        Some(Halt::StepLimit) => StopReason::StepLimit,
    };
    machine.result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::parse;

    const LOOP_SRC: &str = "
        start 1
        end 4
        node 1 { i := 0 }
        node 2 { branch i < n }
        node 3 { s := s + i; i := i + 1 }
        node 4 { out(s) }
        edge 1 -> 2
        edge 2 -> 3, 4
        edge 3 -> 2
    ";

    #[test]
    fn straight_line_arithmetic() {
        let g = parse(
            "start s\nend e\nnode s { x := a*b; y := x-1 }\nnode e { out(x,y) }\nedge s -> e",
        )
        .unwrap();
        let r = run(&g, &Config::with_inputs(vec![("a", 4), ("b", 5)]));
        assert_eq!(r.stop, StopReason::ReachedEnd);
        assert_eq!(r.outputs, vec![vec![20, 19]]);
        assert_eq!(r.expr_evals, 2);
        assert_eq!(r.assign_execs, 2);
        assert_eq!(r.decisions, 0);
    }

    #[test]
    fn deterministic_loop_sums() {
        let g = parse(LOOP_SRC).unwrap();
        let r = run(&g, &Config::with_inputs(vec![("n", 5)]));
        assert_eq!(r.stop, StopReason::ReachedEnd);
        assert_eq!(r.outputs, vec![vec![10]]); // 0+1+2+3+4
                                               // The condition's sides are trivial operands, so only the two
                                               // body assignments evaluate non-trivial terms: 2 per iteration.
        assert_eq!(r.expr_evals, 10);
        assert_eq!(r.decisions, 6);
    }

    #[test]
    fn fixed_oracle_overrides_condition() {
        let g = parse(LOOP_SRC).unwrap();
        // Successor 0 = node 3 (loop body), successor 1 = node 4 (exit).
        // Take the body twice, then exit.
        let r = run(&g, &Config::with_oracle(vec![0, 0, 1], vec![("n", 100)]));
        assert_eq!(r.stop, StopReason::ReachedEnd);
        assert_eq!(r.outputs, vec![vec![1]]); // 0+1
        assert_eq!(r.decisions, 3);
    }

    #[test]
    fn oracle_exhaustion_stops_cleanly() {
        let g = parse(LOOP_SRC).unwrap();
        let r = run(&g, &Config::with_oracle(vec![0], vec![("n", 100)]));
        assert_eq!(r.stop, StopReason::OracleExhausted);
        // One full body execution happened before the second decision.
        assert_eq!(r.outputs, Vec::<Vec<i64>>::new());
        assert_eq!(r.decisions, 1);
    }

    #[test]
    fn division_by_zero_traps() {
        let g =
            parse("start s\nend e\nnode s { x := a/b }\nnode e { out(x) }\nedge s -> e").unwrap();
        let r = run(&g, &Config::with_inputs(vec![("a", 1), ("b", 0)]));
        assert_eq!(r.stop, StopReason::Trapped);
        assert_eq!(r.trap, Some(Trap::DivByZero));
        assert!(r.outputs.is_empty());
        let ok = run(&g, &Config::with_inputs(vec![("a", 9), ("b", 3)]));
        assert_eq!(ok.trap, None);
        assert_eq!(ok.outputs, vec![vec![3]]);
    }

    #[test]
    fn trap_in_condition_is_observed() {
        let g = parse("start s\nend e\nnode s { branch a/b > 0 }\nnode t { skip }\nnode e { out() }\nedge s -> t, e\nedge t -> e").unwrap();
        let r = run(&g, &Config::with_inputs(vec![("b", 0)]));
        assert_eq!(r.stop, StopReason::Trapped);
        assert_eq!(r.trap, Some(Trap::DivByZero));
    }

    #[test]
    fn step_limit_halts_infinite_loops() {
        // A loop that the deterministic oracle never exits.
        let g = parse("start 1\nend 4\nnode 1 { skip }\nnode 2 { branch 1 > 0 }\nnode 3 { skip }\nnode 4 { out() }\nedge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2").unwrap();
        let mut cfg = Config::with_inputs(vec![]);
        cfg.max_steps = 50;
        let r = run(&g, &cfg);
        assert_eq!(r.stop, StopReason::StepLimit);
        assert_eq!(r.steps, 50);
    }

    #[test]
    fn temp_assignments_are_counted_separately() {
        let mut g =
            parse("start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e").unwrap();
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let t = Term::binary(BinOp::Add, a, b);
        let h = g.temp_for(t);
        let x = g.pool().lookup("x").unwrap();
        g.block_mut(g.start()).instrs.clear();
        let start = g.start();
        g.block_mut(start).instrs.push(Instr::assign(h, t));
        g.block_mut(start).instrs.push(Instr::assign(x, h));
        let r = run(&g, &Config::with_inputs(vec![("a", 2), ("b", 3)]));
        assert_eq!(r.outputs, vec![vec![5]]);
        assert_eq!(r.assign_execs, 2);
        assert_eq!(r.temp_assign_execs, 1);
        assert_eq!(r.expr_evals, 1);
    }

    #[test]
    fn uninitialized_variables_read_zero() {
        let g =
            parse("start s\nend e\nnode s { x := q+1 }\nnode e { out(x,q) }\nedge s -> e").unwrap();
        let r = run(&g, &Config::with_inputs(vec![]));
        assert_eq!(r.outputs, vec![vec![1, 0]]);
    }

    #[test]
    fn nondeterministic_node_without_branch_instr() {
        let g = parse("start s\nend e\nnode s { skip }\nnode a { x := 1 }\nnode b { x := 2 }\nnode e { out(x) }\nedge s -> a, b\nedge a -> e\nedge b -> e").unwrap();
        let r0 = run(&g, &Config::with_oracle(vec![0], vec![]));
        assert_eq!(r0.outputs, vec![vec![1]]);
        let r1 = run(&g, &Config::with_oracle(vec![1], vec![]));
        assert_eq!(r1.outputs, vec![vec![2]]);
        // Modulo wrapping of large decisions.
        let r2 = run(&g, &Config::with_oracle(vec![7], vec![]));
        assert_eq!(r2.outputs, vec![vec![2]]);
    }

    #[test]
    fn random_oracle_is_reproducible() {
        let Oracle::Fixed(a) = Oracle::random(42, 16) else {
            panic!()
        };
        let Oracle::Fixed(b) = Oracle::random(42, 16) else {
            panic!()
        };
        let Oracle::Fixed(c) = Oracle::random(43, 16) else {
            panic!()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn wrapping_arithmetic_does_not_panic() {
        let g =
            parse("start s\nend e\nnode s { x := a*a; y := x+a }\nnode e { out(y) }\nedge s -> e")
                .unwrap();
        let r = run(&g, &Config::with_inputs(vec![("a", i64::MAX)]));
        assert_eq!(r.stop, StopReason::ReachedEnd);
    }

    #[test]
    fn path_records_visited_nodes() {
        let g = parse(LOOP_SRC).unwrap();
        let r = run(&g, &Config::with_inputs(vec![("n", 1)]));
        let labels: Vec<&str> = r.path.iter().map(|&n| g.label(n)).collect();
        assert_eq!(labels, vec!["1", "2", "3", "2", "4"]);
    }

    #[test]
    fn a_cycle_of_empty_blocks_hits_the_step_limit() {
        // Zero instructions executed, so only the node-entry guard can
        // stop this; a deterministic oracle always re-enters the loop.
        let g = parse(
            "start s\nend e\nnode s { }\nnode b { }\nnode e { }\n\
             edge s -> b\nedge b -> b, e",
        )
        .unwrap();
        let cfg = Config {
            max_steps: 50,
            ..Config::with_inputs(vec![])
        };
        let r = run(&g, &cfg);
        assert_eq!(r.stop, StopReason::StepLimit);
        assert!(r.nodes_visited <= 50);
    }
}
