//! Assignment and expression pattern universes (Sec. 2) and the local
//! blocking/transparency predicates every analysis of the paper is built on.

use std::collections::HashMap;
use std::fmt;

use crate::graph::FlowGraph;
use crate::instr::Instr;
use crate::intern::{FxMapBuild, PatternId, TermArena};
use crate::term::Term;
use crate::var::{Var, VarPool};

/// An assignment pattern `v := t`: the *shape* of an assignment, of which a
/// program may contain many occurrences.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AssignPattern {
    /// Left-hand side variable.
    pub lhs: Var,
    /// Right-hand side 3-address term.
    pub rhs: Term,
}

impl AssignPattern {
    /// Builds a pattern.
    pub fn new(lhs: Var, rhs: impl Into<Term>) -> Self {
        AssignPattern {
            lhs,
            rhs: rhs.into(),
        }
    }

    /// Whether the left-hand side occurs among the right-hand side operands
    /// (`x := x + 1`). Such patterns can never be redundant: re-executing
    /// them changes the state (Table 2's side condition).
    pub fn is_self_referential(&self) -> bool {
        self.rhs.mentions(self.lhs)
    }

    /// Whether `instr` is an occurrence of this pattern (Table 2's
    /// `EXECUTED`).
    pub fn executed_by(&self, instr: &Instr) -> bool {
        matches!(instr, Instr::Assign { lhs, rhs } if *lhs == self.lhs && *rhs == self.rhs)
    }

    /// Whether `instr` blocks *hoisting* this pattern (Def. 3.2): it
    /// modifies an operand of `t`, or uses or modifies `x`.
    pub fn blocked_by(&self, instr: &Instr) -> bool {
        if let Some(d) = instr.def() {
            if d == self.lhs || self.rhs.mentions(d) {
                return true;
            }
        }
        instr.uses(self.lhs)
    }

    /// Whether `instr` is *transparent* for the pattern's value relation
    /// (Table 2's `ASS-TRANSP`): it modifies neither `v` nor an operand of
    /// `t`. An occurrence of the pattern itself is treated as transparent —
    /// it re-establishes rather than destroys the relation (see DESIGN.md).
    pub fn transparent_for(&self, instr: &Instr) -> bool {
        if self.executed_by(instr) {
            return true;
        }
        match instr.def() {
            Some(d) => d != self.lhs && !self.rhs.mentions(d),
            None => true,
        }
    }

    /// Renders the pattern with names from `pool`.
    pub fn display(&self, pool: &VarPool) -> String {
        format!("{} := {}", pool.name(self.lhs), self.rhs.display(pool))
    }
}

/// The pattern universes of a program: all assignment patterns `AP` and all
/// (non-trivial) expression patterns `EP`, numbered densely so analyses can
/// use one bit per pattern.
///
/// Pattern indices are assigned in order of first occurrence in node/index
/// order, which makes analysis results reproducible. The expression side is
/// backed by a hash-consing [`TermArena`]: expression index `i` *is* the
/// dense [`PatternId`] `i` of the arena, each term's structural hash is
/// computed once at interning, and [`extend`](Self::extend) grows the
/// universe over a changed program without renumbering existing patterns —
/// which is what lets the motion engine refresh in place instead of
/// rebuilding per round.
pub struct PatternUniverse {
    assigns: Vec<AssignPattern>,
    assign_index: HashMap<AssignPattern, usize, FxMapBuild>,
    arena: TermArena,
}

impl PatternUniverse {
    /// Collects the pattern universes of `g`.
    pub fn collect(g: &FlowGraph) -> Self {
        let mut u = PatternUniverse {
            assigns: Vec::new(),
            assign_index: HashMap::default(),
            arena: TermArena::new(),
        };
        u.extend(g);
        u
    }

    /// Interns every pattern of `g` that is not already known, keeping all
    /// existing indices stable (the universe only ever grows, and new
    /// patterns take the next free indices in `g`'s first-occurrence
    /// order). Per-bit independence of the gen/kill analyses makes a
    /// superset universe safe; stable numbering keeps cached rows and
    /// solver solutions indexed by pattern valid across the extension.
    pub fn extend(&mut self, g: &FlowGraph) {
        for (_, instr) in g.locs() {
            if let Instr::Assign { lhs, rhs } = instr {
                self.intern_assign(AssignPattern::new(*lhs, *rhs));
            }
            instr.for_each_expr_occurrence(|t| {
                self.intern_expr(t);
            });
        }
    }

    /// Whether every assignment and expression pattern of `g` is known.
    pub fn covers(&self, g: &FlowGraph) -> bool {
        let mut ok = true;
        for (_, instr) in g.locs() {
            if let Instr::Assign { lhs, rhs } = instr {
                ok &= self.assign_id(&AssignPattern::new(*lhs, *rhs)).is_some();
            }
            instr.for_each_expr_occurrence(|t| ok &= self.expr_id(&t).is_some());
        }
        ok
    }

    fn intern_assign(&mut self, p: AssignPattern) -> usize {
        if let Some(&i) = self.assign_index.get(&p) {
            return i;
        }
        let i = self.assigns.len();
        self.assigns.push(p);
        self.assign_index.insert(p, i);
        i
    }

    fn intern_expr(&mut self, t: Term) -> usize {
        debug_assert!(t.is_nontrivial());
        let id = self.arena.intern(t);
        self.arena
            .pattern_of(id)
            .expect("non-trivial terms carry a pattern id")
            .index()
    }

    /// Number of assignment patterns.
    pub fn assign_count(&self) -> usize {
        self.assigns.len()
    }

    /// Number of expression patterns.
    pub fn expr_count(&self) -> usize {
        self.arena.pattern_count()
    }

    /// The assignment pattern with index `i`.
    pub fn assign(&self, i: usize) -> AssignPattern {
        self.assigns[i]
    }

    /// The expression pattern with index `i`.
    pub fn expr(&self, i: usize) -> Term {
        self.arena.pattern_term(PatternId::from_index(i))
    }

    /// The index of an assignment pattern, if it occurs in the program.
    pub fn assign_id(&self, p: &AssignPattern) -> Option<usize> {
        self.assign_index.get(p).copied()
    }

    /// The index of an expression pattern, if it occurs in the program.
    pub fn expr_id(&self, t: &Term) -> Option<usize> {
        self.arena.pattern_id(t).map(PatternId::index)
    }

    /// Iterates over `(index, pattern)` for all assignment patterns.
    pub fn assign_patterns(&self) -> impl Iterator<Item = (usize, AssignPattern)> + '_ {
        self.assigns.iter().copied().enumerate()
    }

    /// Iterates over `(index, term)` for all expression patterns.
    pub fn expr_patterns(&self) -> impl Iterator<Item = (usize, Term)> + '_ {
        self.arena.patterns().map(|(p, t)| (p.index(), t))
    }

    /// The hash-consing arena backing the expression universe.
    pub fn arena(&self) -> &TermArena {
        &self.arena
    }
}

impl fmt::Debug for PatternUniverse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PatternUniverse")
            .field("assigns", &self.assigns)
            .field(
                "exprs",
                &self.arena.patterns().map(|(_, t)| t).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// The structural reference implementation of universe collection: the same
/// first-occurrence numbering, computed with plain vectors and linear-scan
/// deduplication — no arena, no hash table, no cached hashes. The
/// differential oracle compares [`PatternUniverse::collect`] against this
/// on every corpus program; a bug shared by both implementations would have
/// to survive two unrelated algorithms.
pub fn reference_universe(g: &FlowGraph) -> (Vec<AssignPattern>, Vec<Term>) {
    let mut assigns: Vec<AssignPattern> = Vec::new();
    let mut exprs: Vec<Term> = Vec::new();
    for (_, instr) in g.locs() {
        if let Instr::Assign { lhs, rhs } = instr {
            let p = AssignPattern::new(*lhs, *rhs);
            if !assigns.contains(&p) {
                assigns.push(p);
            }
        }
        instr.for_each_expr_occurrence(|t| {
            if !exprs.contains(&t) {
                exprs.push(t);
            }
        });
    }
    (assigns, exprs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Cond;
    use crate::term::BinOp;

    fn sample_graph() -> FlowGraph {
        let mut g = FlowGraph::new();
        let s = g.add_node("s");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let e = g.add_node("e");
        g.set_start(s);
        g.set_end(e);
        g.add_edge(s, a);
        g.add_edge(s, b);
        g.add_edge(a, e);
        g.add_edge(b, e);
        let x = g.pool_mut().intern("x");
        let y = g.pool_mut().intern("y");
        let z = g.pool_mut().intern("z");
        let add = Term::binary(BinOp::Add, y, z);
        g.block_mut(s).instrs.push(Instr::Branch(Cond::new(
            BinOp::Gt,
            Term::binary(BinOp::Add, x, z),
            Term::operand(y),
        )));
        g.block_mut(a).instrs.push(Instr::assign(x, add));
        g.block_mut(b).instrs.push(Instr::assign(x, add));
        g.block_mut(b).instrs.push(Instr::assign(y, 1));
        g
    }

    #[test]
    fn collect_dedups_patterns() {
        let g = sample_graph();
        let u = PatternUniverse::collect(&g);
        // x := y+z (twice, one pattern) and y := 1.
        assert_eq!(u.assign_count(), 2);
        // x+z (condition side) and y+z.
        assert_eq!(u.expr_count(), 2);
        let y = g.pool().lookup("y").unwrap();
        let z = g.pool().lookup("z").unwrap();
        let x = g.pool().lookup("x").unwrap();
        let p = AssignPattern::new(x, Term::binary(BinOp::Add, y, z));
        assert!(u.assign_id(&p).is_some());
        assert_eq!(u.assign(u.assign_id(&p).unwrap()), p);
        assert!(u.expr_id(&Term::binary(BinOp::Add, x, z)).is_some());
        assert_eq!(u.expr_id(&Term::binary(BinOp::Mul, x, z)), None);
    }

    #[test]
    fn indices_follow_first_occurrence() {
        let g = sample_graph();
        let u = PatternUniverse::collect(&g);
        // The branch condition in node s is first, so x+z is expression 0.
        let x = g.pool().lookup("x").unwrap();
        let z = g.pool().lookup("z").unwrap();
        assert_eq!(u.expr_id(&Term::binary(BinOp::Add, x, z)), Some(0));
    }

    #[test]
    fn extend_keeps_existing_indices_stable() {
        let g = sample_graph();
        let mut u = PatternUniverse::collect(&g);
        let before: Vec<(usize, Term)> = u.expr_patterns().collect();
        let before_assigns: Vec<(usize, AssignPattern)> = u.assign_patterns().collect();
        assert!(u.covers(&g));

        // A second program introduces one new expression and one new
        // assignment pattern; the old indices must not move.
        let mut g2 = g.clone();
        let w = g2.pool_mut().intern("w");
        let y = g2.pool().lookup("y").unwrap();
        let n = g2.start();
        g2.block_mut(n)
            .instrs
            .push(Instr::assign(w, Term::binary(BinOp::Mul, y, w)));
        assert!(!u.covers(&g2));
        u.extend(&g2);
        assert!(u.covers(&g2));
        assert_eq!(
            &u.expr_patterns().collect::<Vec<_>>()[..before.len()],
            &before[..]
        );
        assert_eq!(
            &u.assign_patterns().collect::<Vec<_>>()[..before_assigns.len()],
            &before_assigns[..]
        );
        assert_eq!(u.expr_count(), before.len() + 1);
        assert_eq!(
            u.expr_id(&Term::binary(BinOp::Mul, y, w)),
            Some(before.len())
        );
    }

    #[test]
    fn reference_universe_matches_collect() {
        let g = sample_graph();
        let u = PatternUniverse::collect(&g);
        let (assigns, exprs) = reference_universe(&g);
        assert_eq!(
            u.assign_patterns().map(|(_, p)| p).collect::<Vec<_>>(),
            assigns
        );
        assert_eq!(u.expr_patterns().map(|(_, t)| t).collect::<Vec<_>>(), exprs);
    }

    #[test]
    fn blocking_predicate() {
        let mut pool = VarPool::new();
        let x = pool.intern("x");
        let y = pool.intern("y");
        let z = pool.intern("z");
        let p = AssignPattern::new(x, Term::binary(BinOp::Add, y, z));
        // Modifying an operand blocks.
        assert!(p.blocked_by(&Instr::assign(y, 0)));
        // Modifying the lhs blocks.
        assert!(p.blocked_by(&Instr::assign(x, 0)));
        // Using the lhs blocks.
        assert!(p.blocked_by(&Instr::Out(vec![x.into()])));
        assert!(p.blocked_by(&Instr::assign(z, Term::binary(BinOp::Mul, x, x))));
        // Unrelated instructions do not block.
        let w = pool.intern("w");
        assert!(!p.blocked_by(&Instr::assign(w, y)));
        assert!(!p.blocked_by(&Instr::Skip));
        assert!(!p.blocked_by(&Instr::Out(vec![y.into()])));
    }

    #[test]
    fn transparency_predicate() {
        let mut pool = VarPool::new();
        let x = pool.intern("x");
        let y = pool.intern("y");
        let p = AssignPattern::new(x, Term::binary(BinOp::Add, y, 1));
        // The pattern's own occurrence is transparent (re-establishes it).
        assert!(p.transparent_for(&Instr::assign(x, Term::binary(BinOp::Add, y, 1))));
        // A different assignment to x destroys it.
        assert!(!p.transparent_for(&Instr::assign(x, 0)));
        // Writing an operand destroys it.
        assert!(!p.transparent_for(&Instr::assign(y, 0)));
        // Reads are harmless.
        assert!(p.transparent_for(&Instr::Out(vec![x.into(), y.into()])));
    }

    #[test]
    fn self_referential_detection() {
        let mut pool = VarPool::new();
        let x = pool.intern("x");
        let y = pool.intern("y");
        assert!(AssignPattern::new(x, Term::binary(BinOp::Add, x, 1)).is_self_referential());
        assert!(!AssignPattern::new(x, Term::binary(BinOp::Add, y, 1)).is_self_referential());
    }

    #[test]
    fn executed_by_is_exact() {
        let mut pool = VarPool::new();
        let x = pool.intern("x");
        let y = pool.intern("y");
        let p = AssignPattern::new(x, Term::binary(BinOp::Add, y, 1));
        assert!(p.executed_by(&Instr::assign(x, Term::binary(BinOp::Add, y, 1))));
        assert!(!p.executed_by(&Instr::assign(y, Term::binary(BinOp::Add, y, 1))));
        assert!(!p.executed_by(&Instr::assign(x, Term::binary(BinOp::Add, y, 2))));
        assert!(!p.executed_by(&Instr::Skip));
    }
}
