use crate::term::{BinOp, Operand, Term};
use crate::var::{Var, VarPool};

/// A branch condition: a relational operator applied to two 3-address terms.
///
/// The paper's programs contain conditions such as `x+z > y+i?` (Fig. 4):
/// one top-level comparison whose sides may each be a non-trivial term. The
/// side terms are ordinary expression patterns and participate in motion;
/// the top-level comparison itself is control and never moves.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Cond {
    /// The top-level comparison operator.
    pub op: BinOp,
    /// Left side term.
    pub lhs: Term,
    /// Right side term.
    pub rhs: Term,
}

impl Cond {
    /// Builds a comparison condition.
    pub fn new(op: BinOp, lhs: impl Into<Term>, rhs: impl Into<Term>) -> Self {
        Cond {
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        }
    }

    /// The condition "`v` is true", encoded as `v != 0`.
    pub fn truthy(v: Var) -> Self {
        Cond::new(BinOp::Ne, v, 0)
    }

    /// Calls `f` on every variable used by the condition.
    pub fn for_each_var(self, mut f: impl FnMut(Var)) {
        self.lhs.for_each_var(&mut f);
        self.rhs.for_each_var(&mut f);
    }

    /// Calls `f` on each non-trivial side term (each expression pattern
    /// occurrence inside the condition).
    pub fn for_each_subterm(self, mut f: impl FnMut(Term)) {
        if self.lhs.is_nontrivial() {
            f(self.lhs);
        }
        if self.rhs.is_nontrivial() {
            f(self.rhs);
        }
    }

    /// Renders the condition with names from `pool`.
    pub fn display(self, pool: &VarPool) -> String {
        format!(
            "{} {} {}",
            self.lhs.display(pool),
            self.op.symbol(),
            self.rhs.display(pool)
        )
    }
}

/// One instruction of a basic block.
///
/// Instructions follow Sec. 2 of the paper: assignments (including the empty
/// statement `skip`), write statements `out(...)`, and Boolean branch
/// conditions (only as the final instruction of a node with several
/// successors).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// The empty statement. Assignments of the form `x := x` are identified
    /// with `skip` (Sec. 2 footnote).
    Skip,
    /// `lhs := rhs`.
    Assign {
        /// Assigned variable.
        lhs: Var,
        /// 3-address right-hand side.
        rhs: Term,
    },
    /// `out(o_1, ..., o_k)` — observable output.
    Out(Vec<Operand>),
    /// A branch condition guarding a multi-successor node.
    Branch(Cond),
}

impl Instr {
    /// Builds an assignment, normalizing `x := x` to `skip`.
    pub fn assign(lhs: Var, rhs: impl Into<Term>) -> Instr {
        let rhs = rhs.into();
        if rhs == Term::Operand(Operand::Var(lhs)) {
            Instr::Skip
        } else {
            Instr::Assign { lhs, rhs }
        }
    }

    /// The variable this instruction modifies, if any.
    pub fn def(&self) -> Option<Var> {
        match self {
            Instr::Assign { lhs, .. } => Some(*lhs),
            _ => None,
        }
    }

    /// Calls `f` on every variable the instruction uses (reads).
    pub fn for_each_use(&self, mut f: impl FnMut(Var)) {
        match self {
            Instr::Skip => {}
            Instr::Assign { rhs, .. } => rhs.for_each_var(f),
            Instr::Out(ops) => {
                for o in ops {
                    if let Some(v) = o.as_var() {
                        f(v);
                    }
                }
            }
            Instr::Branch(c) => c.for_each_var(f),
        }
    }

    /// Whether the instruction uses (reads) `v`.
    pub fn uses(&self, v: Var) -> bool {
        let mut found = false;
        self.for_each_use(|u| found |= u == v);
        found
    }

    /// Whether the instruction modifies `v`.
    pub fn modifies(&self, v: Var) -> bool {
        self.def() == Some(v)
    }

    /// Calls `f` on each non-trivial term occurrence in the instruction:
    /// a binary assignment right-hand side, or a binary side of a branch
    /// condition. These are exactly the expression pattern occurrences.
    pub fn for_each_expr_occurrence(&self, mut f: impl FnMut(Term)) {
        match self {
            Instr::Assign { rhs, .. } if rhs.is_nontrivial() => f(*rhs),
            Instr::Branch(c) => c.for_each_subterm(f),
            _ => {}
        }
    }

    /// Renders the instruction with names from `pool`.
    pub fn display(&self, pool: &VarPool) -> String {
        match self {
            Instr::Skip => "skip".to_owned(),
            Instr::Assign { lhs, rhs } => {
                format!("{} := {}", pool.name(*lhs), rhs.display(pool))
            }
            Instr::Out(ops) => {
                let args: Vec<String> = ops
                    .iter()
                    .map(|o| match o {
                        Operand::Var(v) => pool.name(*v).to_owned(),
                        Operand::Const(c) => c.to_string(),
                    })
                    .collect();
                format!("out({})", args.join(","))
            }
            Instr::Branch(c) => format!("branch {}", c.display(pool)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool3() -> (VarPool, Var, Var, Var) {
        let mut p = VarPool::new();
        let x = p.intern("x");
        let y = p.intern("y");
        let z = p.intern("z");
        (p, x, y, z)
    }

    #[test]
    fn self_assignment_is_skip() {
        let (_, x, _, _) = pool3();
        assert_eq!(Instr::assign(x, x), Instr::Skip);
        assert!(matches!(Instr::assign(x, 3), Instr::Assign { .. }));
    }

    #[test]
    fn def_and_uses() {
        let (_, x, y, z) = pool3();
        let i = Instr::assign(x, Term::binary(BinOp::Add, y, z));
        assert_eq!(i.def(), Some(x));
        assert!(i.uses(y));
        assert!(i.uses(z));
        assert!(!i.uses(x));
        assert!(i.modifies(x));
        assert!(!i.modifies(y));
    }

    #[test]
    fn out_uses_vars() {
        let (_, x, y, _) = pool3();
        let i = Instr::Out(vec![x.into(), Operand::Const(1), y.into()]);
        assert!(i.uses(x) && i.uses(y));
        assert_eq!(i.def(), None);
    }

    #[test]
    fn branch_uses_all_condition_vars() {
        let (_, x, y, z) = pool3();
        let c = Cond::new(BinOp::Gt, Term::binary(BinOp::Add, x, z), Term::operand(y));
        let i = Instr::Branch(c);
        assert!(i.uses(x) && i.uses(y) && i.uses(z));
        let mut subterms = Vec::new();
        i.for_each_expr_occurrence(|t| subterms.push(t));
        assert_eq!(subterms, vec![Term::binary(BinOp::Add, x, z)]);
    }

    #[test]
    fn expr_occurrences_of_assign() {
        let (_, x, y, z) = pool3();
        let mut ts = Vec::new();
        Instr::assign(x, Term::binary(BinOp::Mul, y, z)).for_each_expr_occurrence(|t| ts.push(t));
        assert_eq!(ts.len(), 1);
        ts.clear();
        Instr::assign(x, y).for_each_expr_occurrence(|t| ts.push(t));
        assert!(ts.is_empty());
    }

    #[test]
    fn display_forms() {
        let (p, x, y, z) = pool3();
        assert_eq!(Instr::Skip.display(&p), "skip");
        assert_eq!(
            Instr::assign(x, Term::binary(BinOp::Add, y, z)).display(&p),
            "x := y+z"
        );
        assert_eq!(Instr::Out(vec![x.into(), y.into()]).display(&p), "out(x,y)");
        let c = Cond::new(BinOp::Gt, Term::binary(BinOp::Add, x, z), Term::operand(y));
        assert_eq!(Instr::Branch(c).display(&p), "branch x+z > y");
    }

    #[test]
    fn truthy_condition() {
        let (p, x, _, _) = pool3();
        assert_eq!(Cond::truthy(x).display(&p), "x != 0");
    }
}
