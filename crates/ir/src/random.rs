//! Random program generators for property tests and the complexity study.
//!
//! Two families mirror the distinction of Sec. 4.5:
//!
//! * [`structured`] generates programs from a statement grammar (sequence /
//!   if / while), producing reducible flow graphs — the "realistic
//!   structured programs" for which the paper claims essentially quadratic
//!   behaviour;
//! * [`unstructured`] wires random edges (possibly irreducible), probing the
//!   unrestricted worst case.

use crate::graph::{FlowGraph, NodeId};
use crate::instr::{Cond, Instr};
pub use crate::rng::SplitMix64;
use crate::term::{BinOp, Operand, Term};
use crate::var::Var;

/// Parameters for [`structured`].
#[derive(Clone, Debug)]
pub struct StructuredConfig {
    /// Maximum nesting depth of if/while constructs.
    pub max_depth: usize,
    /// Statements per sequence (upper bound).
    pub max_stmts: usize,
    /// Number of program variables (`v0`, `v1`, …).
    pub num_vars: usize,
    /// Whether `/` and `%` may appear (introduces trap behaviour).
    pub allow_div: bool,
}

impl Default for StructuredConfig {
    fn default() -> Self {
        StructuredConfig {
            max_depth: 3,
            max_stmts: 4,
            num_vars: 5,
            allow_div: false,
        }
    }
}

/// Parameters for [`unstructured`].
#[derive(Clone, Debug)]
pub struct UnstructuredConfig {
    /// Number of nodes, including start and end (minimum 2).
    pub nodes: usize,
    /// Additional random edges beyond the connecting skeleton.
    pub extra_edges: usize,
    /// Maximum instructions per node.
    pub max_instrs: usize,
    /// Number of program variables.
    pub num_vars: usize,
    /// Whether `/` and `%` may appear.
    pub allow_div: bool,
}

impl Default for UnstructuredConfig {
    fn default() -> Self {
        UnstructuredConfig {
            nodes: 12,
            extra_edges: 6,
            max_instrs: 3,
            num_vars: 5,
            allow_div: false,
        }
    }
}

struct Ctx<'a> {
    rng: &'a mut SplitMix64,
    vars: Vec<Var>,
    allow_div: bool,
}

impl Ctx<'_> {
    fn var(&mut self) -> Var {
        self.vars[self.rng.gen_range(0..self.vars.len())]
    }

    fn operand(&mut self) -> Operand {
        if self.rng.gen_bool(0.25) {
            Operand::Const(self.rng.gen_range(-4i64..=9))
        } else {
            Operand::Var(self.var())
        }
    }

    fn arith_op(&mut self) -> BinOp {
        let ops: &[BinOp] = if self.allow_div {
            &[BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Mod]
        } else {
            &[BinOp::Add, BinOp::Sub, BinOp::Mul]
        };
        ops[self.rng.gen_range(0..ops.len())]
    }

    fn rel_op(&mut self) -> BinOp {
        let ops = [
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::EqOp,
            BinOp::Ne,
        ];
        ops[self.rng.gen_range(0..ops.len())]
    }

    fn term(&mut self) -> Term {
        if self.rng.gen_bool(0.75) {
            Term::Binary {
                op: self.arith_op(),
                lhs: self.operand(),
                rhs: self.operand(),
            }
        } else {
            Term::Operand(self.operand())
        }
    }

    fn assign(&mut self) -> Instr {
        Instr::assign(self.var(), self.term())
    }

    fn cond(&mut self) -> Cond {
        // Occasionally use a non-trivial side, as in Fig. 4's `x+z > y+i`.
        let side = |ctx: &mut Self| {
            if ctx.rng.gen_bool(0.4) {
                Term::Binary {
                    op: ctx.arith_op(),
                    lhs: ctx.operand(),
                    rhs: ctx.operand(),
                }
            } else {
                Term::Operand(ctx.operand())
            }
        };
        Cond {
            op: self.rel_op(),
            lhs: side(self),
            rhs: side(self),
        }
    }
}

enum Stmt {
    Assign,
    Out,
    If(Vec<Stmt>, Vec<Stmt>),
    While(Vec<Stmt>),
}

fn gen_seq(rng: &mut SplitMix64, cfg: &StructuredConfig, depth: usize) -> Vec<Stmt> {
    let n = rng.gen_range(1..=cfg.max_stmts);
    (0..n)
        .map(|_| {
            let roll: f64 = rng.gen_f64();
            if depth < cfg.max_depth && roll < 0.18 {
                Stmt::If(gen_seq(rng, cfg, depth + 1), gen_seq(rng, cfg, depth + 1))
            } else if depth < cfg.max_depth && roll < 0.32 {
                Stmt::While(gen_seq(rng, cfg, depth + 1))
            } else if roll < 0.40 {
                Stmt::Out
            } else {
                Stmt::Assign
            }
        })
        .collect()
}

/// Generates a random *structured* (reducible) program.
///
/// The generated graph is valid (see
/// [`FlowGraph::validate`](crate::FlowGraph::validate)); critical edges may
/// be present and should be split before applying code motion. The end node
/// outputs every variable, so any semantic difference between the program
/// and a transformed version is observable.
pub fn structured(rng: &mut SplitMix64, cfg: &StructuredConfig) -> FlowGraph {
    let mut g = FlowGraph::new();
    let vars: Vec<Var> = (0..cfg.num_vars.max(2))
        .map(|i| g.pool_mut().intern(&format!("v{i}")))
        .collect();
    let mut ctx = Ctx {
        rng,
        vars: vars.clone(),
        allow_div: cfg.allow_div,
    };
    let start = g.add_node("s");
    g.set_start(start);
    let seq = gen_seq(ctx.rng, cfg, 0);
    let last = lower_seq(&mut g, &mut ctx, &seq, start, &mut 0);
    let end = g.add_node("e");
    g.set_end(end);
    g.add_edge(last, end);
    g.block_mut(end)
        .instrs
        .push(Instr::Out(vars.iter().map(|&v| Operand::Var(v)).collect()));
    debug_assert_eq!(g.validate(), Ok(()));
    g
}

fn fresh_node(g: &mut FlowGraph, counter: &mut usize) -> NodeId {
    *counter += 1;
    g.add_node(&format!("b{counter}"))
}

/// Lowers a statement sequence starting in `cur`; returns the node where
/// control continues.
fn lower_seq(
    g: &mut FlowGraph,
    ctx: &mut Ctx<'_>,
    seq: &[Stmt],
    mut cur: NodeId,
    counter: &mut usize,
) -> NodeId {
    for stmt in seq {
        match stmt {
            Stmt::Assign => g.block_mut(cur).instrs.push(ctx.assign()),
            Stmt::Out => {
                let ops = vec![Operand::Var(ctx.var()), Operand::Var(ctx.var())];
                g.block_mut(cur).instrs.push(Instr::Out(ops));
            }
            Stmt::If(then_seq, else_seq) => {
                let cond_node = fresh_node(g, counter);
                g.add_edge(cur, cond_node);
                g.block_mut(cond_node)
                    .instrs
                    .push(Instr::Branch(ctx.cond()));
                let then_entry = fresh_node(g, counter);
                let else_entry = fresh_node(g, counter);
                g.add_edge(cond_node, then_entry);
                g.add_edge(cond_node, else_entry);
                let then_exit = lower_seq(g, ctx, then_seq, then_entry, counter);
                let else_exit = lower_seq(g, ctx, else_seq, else_entry, counter);
                let join = fresh_node(g, counter);
                g.add_edge(then_exit, join);
                g.add_edge(else_exit, join);
                cur = join;
            }
            Stmt::While(body) => {
                let header = fresh_node(g, counter);
                g.add_edge(cur, header);
                g.block_mut(header).instrs.push(Instr::Branch(ctx.cond()));
                let body_entry = fresh_node(g, counter);
                let exit = fresh_node(g, counter);
                g.add_edge(header, body_entry);
                g.add_edge(header, exit);
                let body_exit = lower_seq(g, ctx, body, body_entry, counter);
                g.add_edge(body_exit, header);
                cur = exit;
            }
        }
    }
    cur
}

/// Generates a random *unstructured* program: a forward skeleton keeps every
/// node on a start–end path, and `extra_edges` random edges (including
/// backward ones) add loops, joins and — frequently — irreducible regions.
pub fn unstructured(rng: &mut SplitMix64, cfg: &UnstructuredConfig) -> FlowGraph {
    let n = cfg.nodes.max(2);
    let mut g = FlowGraph::new();
    let vars: Vec<Var> = (0..cfg.num_vars.max(2))
        .map(|i| g.pool_mut().intern(&format!("v{i}")))
        .collect();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| {
            if i == 0 {
                g.add_node("s")
            } else if i == n - 1 {
                g.add_node("e")
            } else {
                g.add_node(&format!("b{i}"))
            }
        })
        .collect();
    g.set_start(nodes[0]);
    g.set_end(nodes[n - 1]);

    let has_edge = |g: &FlowGraph, m: NodeId, t: NodeId| g.succs(m).contains(&t);

    // Forward skeleton: every node reaches the end and is reached from the
    // start.
    for i in 0..n - 1 {
        let j = rng.gen_range(i + 1..n);
        if !has_edge(&g, nodes[i], nodes[j]) {
            g.add_edge(nodes[i], nodes[j]);
        }
    }
    for i in 1..n {
        if g.preds(nodes[i]).is_empty() {
            let j = rng.gen_range(0..i);
            if !has_edge(&g, nodes[j], nodes[i]) {
                g.add_edge(nodes[j], nodes[i]);
            } else if i > 1 {
                // The skeleton edge already exists; connect from start.
                if !has_edge(&g, nodes[0], nodes[i]) {
                    g.add_edge(nodes[0], nodes[i]);
                }
            }
        }
    }
    // Random extra edges; backward ones create loops.
    for _ in 0..cfg.extra_edges {
        let m = rng.gen_range(0..n - 1);
        let t = rng.gen_range(1..n);
        if m == t || (m == 0 && t == n - 1) {
            continue;
        }
        if !has_edge(&g, nodes[m], nodes[t]) && !g.preds(nodes[t]).is_empty() {
            g.add_edge(nodes[m], nodes[t]);
        }
    }

    // Fill blocks.
    let mut ctx = Ctx {
        rng,
        vars: vars.clone(),
        allow_div: cfg.allow_div,
    };
    for (i, &node) in nodes.iter().enumerate() {
        let k = ctx.rng.gen_range(0..=cfg.max_instrs);
        for _ in 0..k {
            let instr = if ctx.rng.gen_bool(0.12) {
                Instr::Out(vec![Operand::Var(ctx.var())])
            } else {
                ctx.assign()
            };
            g.block_mut(node).instrs.push(instr);
        }
        // Branch instruction for most multi-successor nodes; the rest stay
        // nondeterministic.
        if g.succs(node).len() > 1 && ctx.rng.gen_bool(0.7) {
            let cond = ctx.cond();
            g.block_mut(node).instrs.push(Instr::Branch(cond));
        }
        if i == n - 1 {
            g.block_mut(node)
                .instrs
                .push(Instr::Out(vars.iter().map(|&v| Operand::Var(v)).collect()));
        }
    }
    debug_assert_eq!(g.validate(), Ok(()), "{g:?}");
    g
}

/// The repository's canonical 80-program corpus: 40 structured and 40
/// unstructured seeded programs, interleaved per seed.
///
/// This is the fixed batch shared by the text round-trip tests, the
/// `am-lint` self-audit (`amlint --corpus`) and CI, so "the corpus" always
/// means the same programs everywhere. Deterministic: the same seeds and
/// configurations on every call.
pub fn corpus80() -> Vec<(String, FlowGraph)> {
    let mut programs = Vec::new();
    for seed in 0..40u64 {
        let mut rng = SplitMix64::new(seed);
        programs.push((
            format!("structured/{seed}"),
            structured(
                &mut rng,
                &StructuredConfig {
                    allow_div: seed % 2 == 1,
                    max_depth: 3 + (seed as usize % 2),
                    ..Default::default()
                },
            ),
        ));
        let mut rng = SplitMix64::new(seed ^ 0xDEAD);
        programs.push((
            format!("unstructured/{seed}"),
            unstructured(
                &mut rng,
                &UnstructuredConfig {
                    nodes: 4 + (seed as usize % 14),
                    extra_edges: 2 + (seed as usize % 9),
                    max_instrs: 4,
                    num_vars: 6,
                    allow_div: seed % 3 == 0,
                },
            ),
        ));
    }
    programs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::is_reducible;
    use crate::interp::{run, Config, Oracle};

    #[test]
    fn structured_programs_are_valid_and_reducible() {
        for seed in 0..40 {
            let mut rng = SplitMix64::new(seed);
            let g = structured(&mut rng, &StructuredConfig::default());
            assert_eq!(g.validate(), Ok(()), "seed {seed}");
            assert!(is_reducible(&g), "seed {seed} produced irreducible graph");
        }
    }

    #[test]
    fn unstructured_programs_are_valid() {
        for seed in 0..40 {
            let mut rng = SplitMix64::new(seed);
            let g = unstructured(&mut rng, &UnstructuredConfig::default());
            assert_eq!(g.validate(), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn some_unstructured_programs_are_irreducible() {
        let mut found = false;
        for seed in 0..60 {
            let mut rng = SplitMix64::new(seed);
            let g = unstructured(&mut rng, &UnstructuredConfig::default());
            if !is_reducible(&g) {
                found = true;
                break;
            }
        }
        assert!(found, "no irreducible graph in 60 seeds");
    }

    #[test]
    fn generated_programs_run() {
        for seed in 0..20 {
            let mut rng = SplitMix64::new(seed);
            let g = structured(&mut rng, &StructuredConfig::default());
            let cfg = Config {
                oracle: Oracle::random(seed, 32),
                inputs: vec![("v0".into(), 3), ("v1".into(), -1)],
                ..Config::default()
            };
            let r = run(&g, &cfg);
            // Runs end for one of the sanctioned reasons, never panic.
            assert!(r.steps <= cfg.max_steps);
        }
    }

    #[test]
    fn splitting_generated_graphs_keeps_them_valid() {
        for seed in 0..20 {
            let mut rng = SplitMix64::new(seed);
            let mut g = unstructured(&mut rng, &UnstructuredConfig::default());
            g.split_critical_edges();
            assert_eq!(g.validate(), Ok(()), "seed {seed}");
            for m in g.nodes() {
                for &t in g.succs(m) {
                    assert!(!g.is_critical_edge(m, t));
                }
            }
        }
    }

    #[test]
    fn size_scales_with_config() {
        let mut rng = SplitMix64::new(7);
        let big = structured(
            &mut rng,
            &StructuredConfig {
                max_depth: 5,
                max_stmts: 6,
                ..StructuredConfig::default()
            },
        );
        let mut rng = SplitMix64::new(7);
        let small = structured(
            &mut rng,
            &StructuredConfig {
                max_depth: 1,
                max_stmts: 2,
                ..StructuredConfig::default()
            },
        );
        assert!(big.node_count() >= small.node_count());
    }
}
