//! A small, dependency-free, deterministic PRNG for program generation,
//! property tests and benchmarks.
//!
//! The workspace must build and test with no network access, so it cannot
//! pull in the `rand` crate. [`SplitMix64`] (Steele, Lea & Flood, OOPSLA'14)
//! is tiny, passes BigCrush for this use, and — crucially — is *stable*:
//! the same seed produces the same program forever, so seed-pinned tests
//! and golden files stay reproducible across toolchains and platforms.

use std::ops::{Range, RangeInclusive};

/// A SplitMix64 pseudo-random generator. Deterministic for a given seed.
///
/// # Examples
///
/// ```
/// use am_ir::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let d = a.gen_range(0..6usize);
/// assert!(d < 6);
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from `seed`. Distinct seeds give independent
    /// streams (the output function is a strong bit mixer).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform sample from `range`. Supports `usize` and `i64` ranges,
    /// both half-open (`a..b`) and inclusive (`a..=b`); panics on empty
    /// ranges, mirroring `rand`.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(0..items.len())]
    }

    // Uniform u64 in [0, bound) by rejection from the top of the range —
    // no modulo bias.
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Range types [`SplitMix64::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut SplitMix64) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SplitMix64) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SplitMix64) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return rng.next_u64() as usize;
        }
        lo + rng.below(span + 1) as usize
    }
}

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample(self, rng: &mut SplitMix64) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl SampleRange for RangeInclusive<i64> {
    type Output = i64;
    fn sample(self, rng: &mut SplitMix64) -> i64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return rng.next_u64() as i64;
        }
        lo.wrapping_add(rng.below(span + 1) as i64)
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SplitMix64) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.below(self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn known_vector() {
        // Reference values of SplitMix64 with seed 1234567 (from the
        // published C implementation); pins the stream across releases.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 6];
        for _ in 0..400 {
            let v = r.gen_range(0..6usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 appear");
        for _ in 0..400 {
            let v = r.gen_range(-4i64..=9);
            assert!((-4..=9).contains(&v));
        }
        for _ in 0..400 {
            let v = r.gen_range(5..=5usize);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn gen_bool_frequency_is_sane() {
        let mut r = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.1)));
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1_000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
