//! Flow-graph intermediate representation for assignment and expression
//! motion.
//!
//! This crate is the program substrate of the workspace: everything the
//! PLDI'95 algorithm *The Power of Assignment Motion* (Knoop, Rüthing,
//! Steffen) operates on, built from scratch:
//!
//! * [`FlowGraph`] — directed flow graphs `G = (N, E, s, e)` over basic
//!   blocks of 3-address instructions (Sec. 2 of the paper), with critical
//!   edge splitting (Sec. 2.1);
//! * [`Term`], [`Instr`], [`Cond`] — the 3-address term and instruction
//!   language, including write statements and branch conditions;
//! * [`patterns`] — assignment/expression pattern universes and the local
//!   blocking and transparency predicates of Tables 1–3;
//! * [`text`] — a textual syntax with parser and printer, including the
//!   nested-expression frontend and its 3-address decomposition (Sec. 6);
//! * [`interp`] — a counting interpreter that makes the paper's run-cost
//!   comparisons (Def. 3.8) measurable;
//! * [`analysis`] — dominators, reducibility, natural loops;
//! * [`random`] — structured/unstructured program generators;
//! * [`alpha`] — alpha-equivalence modulo temporary names, for pinning
//!   transformed programs against the paper's figures.
//!
//! # Examples
//!
//! ```
//! use am_ir::text::parse;
//! use am_ir::interp::{run, Config};
//!
//! // The running example of the paper (Fig. 4).
//! let g = parse(
//!     "start 1\nend 4\n\
//!      node 1 { y := c+d }\n\
//!      node 2 { branch x+z > y+i }\n\
//!      node 3 { y := c+d; x := y+z; i := i+x }\n\
//!      node 4 { x := y+z; x := c+d; out(i,x,y) }\n\
//!      edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2",
//! )?;
//! let result = run(&g, &Config::with_inputs(vec![("c", 1), ("d", 2)]));
//! assert_eq!(result.outputs.len(), 1);
//! # Ok::<(), am_ir::text::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod alpha;
pub mod analysis;
pub mod builder;
pub mod dot;
mod graph;
mod instr;
pub mod intern;
pub mod interp;
pub mod patterns;
pub mod random;
pub mod rng;
mod term;
pub mod text;
mod var;

pub use graph::{Block, FlowGraph, GraphError, Loc, NodeId};
pub use instr::{Cond, Instr};
pub use intern::{InstrId, InstrInterner, PatternId, TermArena, TermId};
pub use patterns::{reference_universe, AssignPattern, PatternUniverse};
pub use term::{BinOp, Operand, Term};
pub use var::{Var, VarPool};
