//! Prints a phase-by-phase proof transcript for one random program —
//! handy when diagnosing an Inconclusive verdict: failing pairs are
//! dumped in full so the mismatch in the reason string can be traced.
//!
//! Usage: `cargo run --example debug_seed -p am-prove -- <seed>`
//! (even seeds draw a structured program, odd seeds an unstructured one,
//! matching the test-suite convention).

use am_core::global::{optimize_hooked, GlobalConfig};
use am_ir::random::{structured, unstructured, SplitMix64, StructuredConfig, UnstructuredConfig};
use am_ir::text::to_text;
use am_ir::FlowGraph;
use am_prove::{prove_pair, ProveConfig, Verdict};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mut rng = SplitMix64::new(seed);
    let g = if seed.is_multiple_of(2) {
        structured(&mut rng, &StructuredConfig::default())
    } else {
        unstructured(&mut rng, &UnstructuredConfig::default())
    };
    let mut snaps: Vec<(String, FlowGraph)> = Vec::new();
    optimize_hooked(&g, &GlobalConfig::default(), &mut |p, prog| {
        snaps.push((p.to_string(), prog.clone()));
    });
    let cfg = ProveConfig::default();
    let mut prev = g.clone();
    let mut prev_name = "input".to_owned();
    for (name, snap) in snaps {
        let o = prove_pair(&prev, &snap, &cfg);
        println!("{prev_name} -> {name}: {} ({})", o.verdict, o.reason);
        if o.verdict != Verdict::Proved {
            println!("==== LEFT ({prev_name}) ====\n{}", to_text(&prev));
            println!("==== RIGHT ({name}) ====\n{}", to_text(&snap));
        }
        prev = snap;
        prev_name = name;
    }
}
