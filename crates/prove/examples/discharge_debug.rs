//! Dumps the pre-round snapshot and failing-site context for one
//! corpus program whose provenance discharge fails.
use am_core::global::{optimize_hooked, GlobalConfig, PhaseId};
use am_ir::random::corpus80;
use am_ir::text::to_text;
use am_ir::FlowGraph;
use am_prove::{discharge_provenance, DischargeStatus, ProveConfig};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "structured/37".into());
    let (_, g) = corpus80().into_iter().find(|(n, _)| *n == name).unwrap();
    let r = discharge_provenance(&g, None, &ProveConfig::default());
    for s in &r.sites {
        if s.status == DischargeStatus::Failed {
            println!(
                "FAILED round {} {}[{}] {}",
                s.round, s.node, s.index, s.instr
            );
        }
    }
    let mut snaps: Vec<(PhaseId, FlowGraph)> = Vec::new();
    optimize_hooked(&g, &GlobalConfig::default(), &mut |p, prog| {
        snaps.push((p, prog.clone()));
    });
    for (p, s) in &snaps {
        if matches!(p, PhaseId::MotionRound(1)) {
            println!("==== MotionRound(1) snapshot ====\n{}", to_text(s));
        }
    }
}
