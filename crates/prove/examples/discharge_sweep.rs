//! Sweeps discharge_provenance over corpus80 + 60 random seeds.
use am_ir::random::{
    corpus80, structured, unstructured, SplitMix64, StructuredConfig, UnstructuredConfig,
};
use am_prove::{discharge_provenance, ProveConfig};
fn main() {
    let cfg = ProveConfig::default();
    let (mut elim, mut disc, mut fail, mut inconclusive) = (0usize, 0usize, 0usize, 0usize);
    let mut programs = corpus80();
    for seed in 0..60u64 {
        let mut rng = SplitMix64::new(seed);
        let g = if seed % 2 == 0 {
            structured(&mut rng, &StructuredConfig::default())
        } else {
            unstructured(&mut rng, &UnstructuredConfig::default())
        };
        programs.push((format!("random-{seed}"), g));
    }
    for (name, g) in &programs {
        let r = discharge_provenance(g, None, &cfg);
        elim += r.eliminations;
        disc += r.discharged;
        fail += r.failed;
        for s in &r.sites {
            if s.status == am_prove::DischargeStatus::Inconclusive {
                inconclusive += 1;
            }
            if s.status == am_prove::DischargeStatus::Failed {
                println!(
                    "FAILED {name}: round {} {}[{}] {}",
                    s.round, s.node, s.index, s.instr
                );
            }
        }
    }
    println!(
        "eliminations {elim}, discharged {disc}, failed {fail}, inconclusive-sites {inconclusive}"
    );
}
