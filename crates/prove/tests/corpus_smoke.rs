//! Fast prover smoke test over a slice of the corpus (the full
//! corpus + 200-seed sweep lives in the workspace-level property suite).

use am_ir::random::{
    corpus80, structured, unstructured, SplitMix64, StructuredConfig, UnstructuredConfig,
};
use am_prove::{prove_optimization, ProveConfig, ProveStats};

#[test]
fn corpus_slice_proves_every_phase() {
    let cfg = ProveConfig::default();
    let mut stats = ProveStats::default();
    let mut bad: Vec<String> = Vec::new();
    for (name, g) in corpus80().into_iter().take(20) {
        let outcome = prove_optimization(&g, None, &cfg);
        stats.accumulate(&outcome.stats);
        for (stage, o) in &outcome.stages {
            if o.verdict != am_prove::Verdict::Proved {
                bad.push(format!("{name}/{stage}: {} ({})", o.verdict, o.reason));
            }
        }
    }
    assert_eq!(stats.refuted, 0, "{bad:?}");
    assert!(
        stats.inconclusive * 20 <= stats.total(),
        "inconclusive rate above 5%: {stats} — {bad:?}"
    );
}

#[test]
fn random_program_slice_proves_every_phase() {
    let cfg = ProveConfig::default();
    let mut stats = ProveStats::default();
    let mut bad: Vec<String> = Vec::new();
    for seed in 0..20u64 {
        let mut rng = SplitMix64::new(seed);
        let g = if seed % 2 == 0 {
            structured(&mut rng, &StructuredConfig::default())
        } else {
            unstructured(&mut rng, &UnstructuredConfig::default())
        };
        let outcome = prove_optimization(&g, None, &cfg);
        stats.accumulate(&outcome.stats);
        for (stage, o) in &outcome.stages {
            if o.verdict != am_prove::Verdict::Proved {
                bad.push(format!("seed {seed}/{stage}: {} ({})", o.verdict, o.reason));
            }
        }
    }
    assert_eq!(stats.refuted, 0, "{bad:?}");
    assert!(
        stats.inconclusive * 20 <= stats.total(),
        "inconclusive rate above 5%: {stats} — {bad:?}"
    );
}
