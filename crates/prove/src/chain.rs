//! Proving a whole optimization run: every phase transition of
//! `optimize_hooked` (split / init / each motion round / flush), plus the
//! end-to-end pair (input program vs. final program).

use am_core::global::{optimize_hooked, GlobalConfig, PhaseId};
use am_ir::FlowGraph;

use crate::engine::{prove_pair, PairOutcome, ProveConfig, Verdict};

/// Aggregate verdict counts over a set of proof attempts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProveStats {
    /// Pairs statically proved.
    pub proved: usize,
    /// Pairs refuted with a confirmed witness.
    pub refuted: usize,
    /// Pairs the prover gave up on.
    pub inconclusive: usize,
}

impl ProveStats {
    /// Folds one verdict in.
    pub fn add(&mut self, v: Verdict) {
        match v {
            Verdict::Proved => self.proved += 1,
            Verdict::Refuted => self.refuted += 1,
            Verdict::Inconclusive => self.inconclusive += 1,
        }
    }

    /// Component-wise sum.
    pub fn accumulate(&mut self, other: &ProveStats) {
        self.proved += other.proved;
        self.refuted += other.refuted;
        self.inconclusive += other.inconclusive;
    }

    /// Total attempts counted.
    pub fn total(&self) -> usize {
        self.proved + self.refuted + self.inconclusive
    }
}

impl std::fmt::Display for ProveStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} proved, {} refuted, {} inconclusive",
            self.proved, self.refuted, self.inconclusive
        )
    }
}

/// The proof outcome of one optimization run.
#[derive(Debug)]
pub struct ChainOutcome {
    /// One outcome per phase transition, labelled with the phase it
    /// leads *into* (`"split"`, `"init"`, `"motion round N"`, `"flush"`,
    /// and the end-to-end `"final"` pair).
    pub stages: Vec<(String, PairOutcome)>,
    /// Aggregate verdict counts.
    pub stats: ProveStats,
}

impl ChainOutcome {
    /// Whether every transition was statically proved.
    pub fn all_proved(&self) -> bool {
        self.stats.refuted == 0 && self.stats.inconclusive == 0
    }
}

/// Runs the optimizer on `g` and proves every phase transition, plus the
/// end-to-end pair. Consecutive identical snapshots (motion rounds that
/// changed nothing) prove trivially via the identical-graph shortcut.
pub fn prove_optimization(
    g: &FlowGraph,
    max_motion_rounds: Option<usize>,
    cfg: &ProveConfig,
) -> ChainOutcome {
    let mut snapshots: Vec<(PhaseId, FlowGraph)> = Vec::new();
    let global = GlobalConfig {
        max_motion_rounds,
        keep_snapshots: false,
        tracer: cfg.tracer.clone(),
        ..Default::default()
    };
    optimize_hooked(g, &global, &mut |phase, prog| {
        snapshots.push((phase, prog.clone()));
    });
    let mut stages = Vec::new();
    let mut stats = ProveStats::default();
    let mut prev: &FlowGraph = g;
    for (phase, snap) in &snapshots {
        let out = prove_pair(prev, snap, cfg);
        stats.add(out.verdict);
        stages.push((phase.to_string(), out));
        prev = snap;
    }
    if let Some((_, last)) = snapshots.last() {
        let out = prove_pair(g, last, cfg);
        stats.add(out.verdict);
        stages.push(("final".to_owned(), out));
    }
    ChainOutcome { stages, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::text::parse;

    #[test]
    fn the_paper_running_example_is_proved_end_to_end() {
        let g = parse(
            "start 1\nend 4\nnode 1 { y := c+d }\nnode 2 { branch x+z > y+i }\nnode 3 { y := c+d; x := y+z; i := i+x }\nnode 4 { x := y+z; x := c+d; out(i,x,y) }\nedge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2",
        )
        .unwrap();
        let outcome = prove_optimization(&g, None, &ProveConfig::default());
        assert!(
            outcome.all_proved(),
            "{:?}",
            outcome
                .stages
                .iter()
                .map(|(s, o)| format!("{s}: {} ({})", o.verdict, o.reason))
                .collect::<Vec<_>>()
        );
        assert!(outcome.stats.total() >= 4);
    }
}
