//! The hash-consed symbolic value domain.
//!
//! A [`ValId`] names one symbolic value in a [`ValueArena`]; structurally
//! equal values (after normalization) always receive the same id, so the
//! prover's "do these two programs compute the same thing?" question
//! reduces to `u32` equality. The smart constructor [`ValueArena::bin`]
//! performs GVN-style normalization — exact constant folding with the
//! interpreter's wrapping semantics, algebraic identities, and a canonical
//! argument order for commutative operators — which is what lets
//! `h := a+b; x := h` and `x := a+b` produce the *same* value for `x`.

use std::collections::HashMap;

use am_ir::BinOp;

/// A hash-consed symbolic value: an index into a [`ValueArena`].
///
/// Ids are only meaningful relative to the arena that produced them.
/// Equal ids denote identical values on every input; distinct ids may
/// still coincide on some (or even all) inputs — the prover treats id
/// inequality as a *refutation candidate* to be confirmed dynamically,
/// never as proof of difference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ValId(u32);

impl ValId {
    /// The arena index of this value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The shape of one symbolic value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ValNode {
    /// The initial value of a joint variable at program entry (the input
    /// seeded by name, or 0 for unseeded variables — identical for both
    /// programs of a pair, which is why one symbol serves both sides).
    Init(u32),
    /// A compile-time constant.
    Const(i64),
    /// An uninterpreted application of a binary operator.
    Bin(BinOp, ValId, ValId),
    /// A widening symbol introduced at a control-flow join whose incoming
    /// values disagree. The payload is a serial number; the arena keys the
    /// symbol on `(state, variable, side)` so re-computing a join meet
    /// yields the same symbol and the fixpoint terminates.
    Widen(u32),
}

/// An arena of hash-consed, normalized symbolic values.
#[derive(Default)]
pub struct ValueArena {
    nodes: Vec<ValNode>,
    index: HashMap<ValNode, ValId>,
    widen_index: HashMap<(u64, u32, u8), ValId>,
}

/// Constant-folds `op` with the interpreter's exact wrapping semantics.
/// Returns `None` for division or remainder by zero (the trapping cases,
/// which must stay symbolic so the trap-candidate machinery sees them).
pub fn fold(op: BinOp, l: i64, r: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => l.wrapping_add(r),
        BinOp::Sub => l.wrapping_sub(r),
        BinOp::Mul => l.wrapping_mul(r),
        BinOp::Div => {
            if r == 0 {
                return None;
            }
            l.wrapping_div(r)
        }
        BinOp::Mod => {
            if r == 0 {
                return None;
            }
            l.wrapping_rem(r)
        }
        BinOp::Lt => i64::from(l < r),
        BinOp::Le => i64::from(l <= r),
        BinOp::Gt => i64::from(l > r),
        BinOp::Ge => i64::from(l >= r),
        BinOp::EqOp => i64::from(l == r),
        BinOp::Ne => i64::from(l != r),
    })
}

impl ValueArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        ValueArena::default()
    }

    /// Number of distinct values interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind `v`.
    pub fn node(&self, v: ValId) -> ValNode {
        self.nodes[v.index()]
    }

    /// Interns `node` verbatim (no normalization).
    pub fn intern(&mut self, node: ValNode) -> ValId {
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let id = ValId(u32::try_from(self.nodes.len()).expect("value arena overflow"));
        self.nodes.push(node);
        self.index.insert(node, id);
        id
    }

    /// The initial-value symbol of joint variable `v`.
    pub fn init(&mut self, v: u32) -> ValId {
        self.intern(ValNode::Init(v))
    }

    /// The constant `c`.
    pub fn constant(&mut self, c: i64) -> ValId {
        self.intern(ValNode::Const(c))
    }

    /// The widening symbol for `(state, var, side)`. Repeated calls with
    /// the same key return the same symbol.
    pub fn widen(&mut self, state: u64, var: u32, side: u8) -> ValId {
        if let Some(&id) = self.widen_index.get(&(state, var, side)) {
            return id;
        }
        let serial = u32::try_from(self.widen_index.len()).expect("widen overflow");
        let id = self.intern(ValNode::Widen(serial));
        self.widen_index.insert((state, var, side), id);
        id
    }

    /// If `v` is a constant, its value.
    pub fn as_const(&self, v: ValId) -> Option<i64> {
        match self.node(v) {
            ValNode::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Builds (and normalizes) `op(l, r)`.
    ///
    /// All rewrites are exact under the interpreter's wrapping semantics
    /// for *every* i64 value of the symbolic arguments; the trapping
    /// `x/0` / `x%0` cases never fold (they stay symbolic `Bin` nodes so
    /// the caller's trap-candidate analysis can see the division). `x/x`
    /// and `x%x` fold because the value of a division is only observable
    /// on runs where it did not trap, i.e. where `x != 0`.
    pub fn bin(&mut self, op: BinOp, l: ValId, r: ValId) -> ValId {
        // Exact constant folding (except the trapping cases).
        if let (Some(a), Some(b)) = (self.as_const(l), self.as_const(r)) {
            if let Some(c) = fold(op, a, b) {
                return self.constant(c);
            }
        }
        let lc = self.as_const(l);
        let rc = self.as_const(r);
        match op {
            BinOp::Add => {
                if rc == Some(0) {
                    return l;
                }
                if lc == Some(0) {
                    return r;
                }
            }
            BinOp::Sub => {
                if rc == Some(0) {
                    return l;
                }
                if l == r {
                    return self.constant(0);
                }
            }
            BinOp::Mul => {
                if rc == Some(1) {
                    return l;
                }
                if lc == Some(1) {
                    return r;
                }
                if rc == Some(0) || lc == Some(0) {
                    return self.constant(0);
                }
            }
            BinOp::Div => {
                if rc == Some(1) {
                    return l;
                }
                if l == r && rc != Some(0) {
                    return self.constant(1);
                }
            }
            BinOp::Mod => {
                if rc == Some(1) {
                    return self.constant(0);
                }
                if l == r && rc != Some(0) {
                    return self.constant(0);
                }
            }
            BinOp::Lt | BinOp::Gt => {
                if l == r {
                    return self.constant(0);
                }
            }
            BinOp::Le | BinOp::Ge | BinOp::EqOp => {
                if l == r {
                    return self.constant(1);
                }
            }
            BinOp::Ne => {
                if l == r {
                    return self.constant(0);
                }
            }
        }
        // Canonical shapes: sort commutative arguments, mirror > / >= onto
        // < / <= so both spellings of a comparison meet in one node.
        let (op, l, r) = match op {
            BinOp::Add | BinOp::Mul | BinOp::EqOp | BinOp::Ne if r < l => (op, r, l),
            BinOp::Gt => (BinOp::Lt, r, l),
            BinOp::Ge => (BinOp::Le, r, l),
            _ => (op, l, r),
        };
        self.intern(ValNode::Bin(op, l, r))
    }

    /// Renders `v` for diagnostics.
    pub fn display(&self, v: ValId) -> String {
        match self.node(v) {
            ValNode::Init(x) => format!("init#{x}"),
            ValNode::Const(c) => c.to_string(),
            ValNode::Bin(op, l, r) => {
                format!("({} {} {})", self.display(l), op.symbol(), self.display(r))
            }
            ValNode::Widen(s) => format!("join#{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_is_stable() {
        let mut a = ValueArena::new();
        let x = a.init(0);
        let y = a.init(1);
        let s1 = a.bin(BinOp::Add, x, y);
        let s2 = a.bin(BinOp::Add, x, y);
        assert_eq!(s1, s2);
        assert_eq!(a.init(0), x);
    }

    #[test]
    fn commutative_arguments_are_sorted() {
        let mut a = ValueArena::new();
        let x = a.init(0);
        let y = a.init(1);
        assert_eq!(a.bin(BinOp::Add, x, y), a.bin(BinOp::Add, y, x));
        assert_eq!(a.bin(BinOp::Mul, x, y), a.bin(BinOp::Mul, y, x));
        // Non-commutative operators keep their order.
        assert_ne!(a.bin(BinOp::Sub, x, y), a.bin(BinOp::Sub, y, x));
    }

    #[test]
    fn comparisons_mirror_onto_lt_le() {
        let mut a = ValueArena::new();
        let x = a.init(0);
        let y = a.init(1);
        assert_eq!(a.bin(BinOp::Gt, x, y), a.bin(BinOp::Lt, y, x));
        assert_eq!(a.bin(BinOp::Ge, x, y), a.bin(BinOp::Le, y, x));
    }

    #[test]
    fn constants_fold_with_wrapping_semantics() {
        let mut a = ValueArena::new();
        let big = a.constant(i64::MAX);
        let one = a.constant(1);
        let wrapped = a.bin(BinOp::Add, big, one);
        assert_eq!(a.as_const(wrapped), Some(i64::MIN));
        let six = a.constant(6);
        let three = a.constant(3);
        let quot = a.bin(BinOp::Div, six, three);
        assert_eq!(a.as_const(quot), Some(2));
        // Division by a constant zero must *not* fold — it traps.
        let zero = a.constant(0);
        let d = a.bin(BinOp::Div, six, zero);
        assert!(matches!(a.node(d), ValNode::Bin(BinOp::Div, _, _)));
    }

    #[test]
    fn algebraic_identities() {
        let mut a = ValueArena::new();
        let x = a.init(0);
        let zero = a.constant(0);
        let one = a.constant(1);
        assert_eq!(a.bin(BinOp::Add, x, zero), x);
        assert_eq!(a.bin(BinOp::Sub, x, zero), x);
        assert_eq!(a.bin(BinOp::Sub, x, x), zero);
        assert_eq!(a.bin(BinOp::Mul, x, one), x);
        assert_eq!(a.bin(BinOp::Mul, zero, x), zero);
        assert_eq!(a.bin(BinOp::Div, x, one), x);
        assert_eq!(a.bin(BinOp::Mod, x, one), zero);
        assert_eq!(a.bin(BinOp::EqOp, x, x), one);
        assert_eq!(a.bin(BinOp::Lt, x, x), zero);
    }

    #[test]
    fn widen_symbols_are_keyed() {
        let mut a = ValueArena::new();
        let w1 = a.widen(7, 3, 0);
        let w2 = a.widen(7, 3, 0);
        let w3 = a.widen(7, 3, 1);
        assert_eq!(w1, w2);
        assert_ne!(w1, w3);
    }
}
