//! The pair prover: a product-program fixpoint over symbolic segments.
//!
//! Two programs run side by side, aligned on *decision indices* — the same
//! alignment `am-check`'s fixed-oracle corresponding runs use. A product
//! state is a pair of cutpoints (one per side); an edge is one decision
//! value applied at a state, simulated symbolically to the next pair of
//! cutpoints. Joins widen disagreeing stores with keyed symbols on a
//! sticky three-level lattice (concrete ⊏ shared ⊏ split), so the
//! fixpoint terminates; possible one-sided traps are tracked as pending
//! obligations that must be matched by a division on the other side.
//!
//! The outcome is three-valued. **Proved** means: on every oracle and
//! every input, the two programs are corresponding-equivalent (identical
//! observables, modulo the trap/truncation skew the checker accepts) and
//! the right program never evaluates more non-trivial terms than the left
//! on a terminating pair of runs. **Refuted** carries a concrete witness
//! (decision sequence + inputs) that the interpreter has already
//! confirmed. Everything else is **Inconclusive** — never a claim, so
//! callers fall back to the dynamic oracle.

use std::collections::{HashMap, HashSet, VecDeque};

use am_core::verify::weakly_equivalent;
use am_ir::interp::{self, Oracle, RunResult, StopReason};
use am_ir::FlowGraph;
use am_trace::Tracer;

use crate::sim::{run_segment, JointVars, Probe, SegCtx, SegEnd, Side, SideKey};
use crate::value::{ValId, ValNode, ValueArena};

/// Prover tuning knobs and the input sets used to confirm refutations.
#[derive(Clone, Debug)]
pub struct ProveConfig {
    /// Product-state budget; exceeding it yields Inconclusive.
    pub max_states: usize,
    /// Segment-simulation budget; exceeding it yields Inconclusive.
    pub max_simulations: usize,
    /// Cap on pending one-sided trap obligations per state.
    pub max_pending: usize,
    /// Cap on the decision range (lcm of the two fanouts) per state.
    pub max_fanout_lcm: usize,
    /// Primary input set for confirming refutation witnesses (the same
    /// defaults `am-check` campaigns use).
    pub inputs: Vec<(String, i64)>,
    /// Trace sink; `prove/*` spans and counters land here.
    pub tracer: Tracer,
}

impl Default for ProveConfig {
    fn default() -> Self {
        ProveConfig {
            max_states: 1024,
            max_simulations: 100_000,
            max_pending: 64,
            max_fanout_lcm: 16,
            inputs: vec![
                ("v0".to_owned(), 3),
                ("v1".to_owned(), 2),
                ("v2".to_owned(), -5),
                ("v3".to_owned(), 1),
            ],
            tracer: Tracer::disabled(),
        }
    }
}

/// The three-valued outcome of a proof attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Statically proved equivalent (and cost-optimal) on every path.
    Proved,
    /// A concrete, interpreter-confirmed counterexample exists.
    Refuted,
    /// The prover could not decide; fall back to the dynamic oracle.
    Inconclusive,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Proved => write!(f, "proved"),
            Verdict::Refuted => write!(f, "refuted"),
            Verdict::Inconclusive => write!(f, "inconclusive"),
        }
    }
}

/// What property a refutation witnesses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RefuteKind {
    /// The observable behaviours differ.
    Semantic,
    /// The transformed program evaluates strictly more non-trivial terms
    /// on some terminating pair of corresponding runs.
    Optimality,
}

/// A confirmed counterexample: replaying both programs with this oracle
/// and these inputs demonstrates the divergence.
#[derive(Clone, Debug)]
pub struct Refutation {
    /// Which property fails.
    pub kind: RefuteKind,
    /// The witness decision sequence (a fixed oracle).
    pub decisions: Vec<usize>,
    /// Inputs under which the interpreter confirmed the divergence.
    pub inputs: Vec<(String, i64)>,
    /// Human-readable description of the divergence.
    pub detail: String,
}

/// The result of proving one program pair.
#[derive(Clone, Debug)]
pub struct PairOutcome {
    /// The verdict.
    pub verdict: Verdict,
    /// The confirmed counterexample, when refuted.
    pub refutation: Option<Refutation>,
    /// Why the verdict is what it is (the Inconclusive reason, or a short
    /// proof summary).
    pub reason: String,
    /// Product states explored.
    pub states: usize,
    /// Segment simulations performed.
    pub simulations: usize,
}

// ---------------------------------------------------------------------------
// Internal machinery.

/// `None` is the entry edge (program start, before any decision);
/// `Some((state, d))` applies raw decision `d` at a product state.
type EdgeKey = Option<(usize, usize)>;

/// A confirmed refutation witness: the oracle decision sequence and the
/// input assignment that reproduce the divergence concretely.
type Witness = (Vec<usize>, Vec<(String, i64)>);

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EdgeTarget {
    State(usize),
    End,
    Trap,
}

#[derive(Clone, PartialEq, Eq)]
struct SymState {
    store_a: Vec<ValId>,
    store_b: Vec<ValId>,
    nonzero_a: HashSet<ValId>,
    nonzero_b: HashSet<ValId>,
    pending_a: HashSet<ValId>,
    pending_b: HashSet<ValId>,
}

struct EdgeOut {
    target: EdgeTarget,
    sym: SymState,
    delta: i64,
}

struct State {
    key: (SideKey, SideKey),
    /// The edge that first reached this state (witness backpointer).
    reach: EdgeKey,
    in_edges: Vec<EdgeKey>,
    /// Sticky per-side widening bits per joint variable. A bit only ever
    /// turns on, which bounds the number of invariant escalations and
    /// makes the fixpoint terminate.
    widened: Vec<(bool, bool)>,
    inv: Option<SymState>,
    /// Decision range: lcm of the two fanouts.
    range: usize,
}

enum Flow {
    /// Keep processing the worklist.
    Continue,
    /// Stop with this outcome.
    Done(PairOutcome),
}

struct Prover<'a> {
    ga: &'a FlowGraph,
    gb: &'a FlowGraph,
    cfg: &'a ProveConfig,
    joint: JointVars,
    arena: ValueArena,
    states: Vec<State>,
    state_index: HashMap<(SideKey, SideKey), usize>,
    edges: HashMap<EdgeKey, EdgeOut>,
    worklist: VecDeque<EdgeKey>,
    queued: HashSet<EdgeKey>,
    simulations: usize,
    probes: &'a [Probe],
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

fn prefix_related<T: PartialEq>(a: &[T], b: &[T]) -> bool {
    let n = a.len().min(b.len());
    a[..n] == b[..n]
}

/// Tries to express variable `v`'s met value *functionally* instead of
/// widening it opaquely. Assignment motion hoists `h := a+b` above a
/// join, so `h` disagrees across the in-edges — but on every in-edge the
/// relation `h == a+b` (over that edge's own store) still holds, and the
/// relation survives the meet: rebuilding `a+b` over the *met* values of
/// `a` and `b` is a sound description of `h` after the join. Without this
/// the opaque symbol destroys exactly the equality the other side later
/// recomputes. Candidates are: another variable whose value coincides
/// with `v` on every edge (a copy), or the edge-0 operator applied to
/// operands that are each either edge-invariant or tracked by a variable
/// on every edge. Validation rebuilds through [`ValueArena::bin`] so
/// normalization (commutative sorting, folding) is respected. Returns
/// `None` when no relation explains all edges.
/// The copy half of the reconstruction meet: if a lower-indexed variable
/// holds the same value as `v` on every in-edge, `v` meets to that
/// variable's (already canonicalized) met value. Restricting to `p < v`
/// makes the lowest member of an equality group its representative —
/// without the restriction two equal variables would swap each other's
/// symbols and the group's internal equality would still be lost.
fn reconstruct_copy(stores: &[Vec<ValId>], v: usize, met: &[ValId]) -> Option<ValId> {
    'copy: for p in 0..v {
        for s in stores {
            if s[p] != s[v] {
                continue 'copy;
            }
        }
        return Some(met[p]);
    }
    None
}

fn reconstruct(
    arena: &mut ValueArena,
    stores: &[Vec<ValId>],
    v: usize,
    met: &[ValId],
) -> Option<ValId> {
    // An operator relation, templated on each in-edge's shape in turn:
    // constant folding can collapse the defining expression on some edges
    // (e.g. `h := v1-2` where v1 happens to be constant there), so any
    // edge that kept the Bin shape may supply the template.
    let mut tried: Vec<ValId> = Vec::new();
    for te in stores {
        let tv = te[v];
        if tried.contains(&tv) {
            continue;
        }
        tried.push(tv);
        let ValNode::Bin(op, l0, r0) = arena.node(tv) else {
            continue;
        };
        // An operand source is either the template edge's value taken
        // literally (valid only if edge-invariant) or a tracking variable.
        let sources = |o: ValId| -> Vec<Option<usize>> {
            let mut c: Vec<Option<usize>> = vec![None];
            for (p, &t) in te.iter().enumerate() {
                if t == o {
                    c.push(Some(p));
                }
            }
            c.truncate(6);
            c
        };
        let lc = sources(l0);
        let rc = sources(r0);
        for &sl in &lc {
            'pair: for &sr in &rc {
                for s in stores {
                    let lv = sl.map_or(l0, |p| s[p]);
                    let rv = sr.map_or(r0, |p| s[p]);
                    if arena.bin(op, lv, rv) != s[v] {
                        continue 'pair;
                    }
                }
                let lm = sl.map_or(l0, |p| met[p]);
                let rm = sr.map_or(r0, |p| met[p]);
                return Some(arena.bin(op, lm, rm));
            }
        }
    }
    None
}

/// The equivalence the dynamic checker accepts for corresponding runs:
/// weak equivalence, or the benign skew where one run trapped and the
/// other was merely truncated (oracle exhausted / step limit) on a
/// consistent output prefix. Reimplemented here because `am-check`
/// depends on `am-prove`, not the other way around.
fn corresponding_equivalent(a: &RunResult, b: &RunResult) -> bool {
    fn skew(truncated: &RunResult, trapped: &RunResult) -> bool {
        truncated.trap.is_none()
            && matches!(
                truncated.stop,
                StopReason::OracleExhausted | StopReason::StepLimit
            )
            && trapped.trap.is_some()
            && prefix_related(&truncated.outputs, &trapped.outputs)
    }
    weakly_equivalent(a, b) || skew(a, b) || skew(b, a)
}

impl<'a> Prover<'a> {
    fn new(
        ga: &'a FlowGraph,
        gb: &'a FlowGraph,
        cfg: &'a ProveConfig,
        probes: &'a [Probe],
    ) -> Prover<'a> {
        Prover {
            ga,
            gb,
            cfg,
            joint: JointVars::build(ga.pool(), gb.pool()),
            arena: ValueArena::new(),
            states: Vec::new(),
            state_index: HashMap::new(),
            edges: HashMap::new(),
            worklist: VecDeque::new(),
            queued: HashSet::new(),
            simulations: 0,
            probes,
        }
    }

    fn enqueue(&mut self, ek: EdgeKey) {
        if self.queued.insert(ek) {
            self.worklist.push_back(ek);
        }
    }

    fn inconclusive(&self, reason: impl Into<String>) -> PairOutcome {
        PairOutcome {
            verdict: Verdict::Inconclusive,
            refutation: None,
            reason: reason.into(),
            states: self.states.len(),
            simulations: self.simulations,
        }
    }

    fn witness_of(&self, ek: EdgeKey) -> Vec<usize> {
        let mut ds = Vec::new();
        let mut cur = ek;
        while let Some((s, d)) = cur {
            ds.push(d);
            cur = self.states[s].reach;
        }
        ds.reverse();
        ds
    }

    /// Candidate input sets for confirming a witness: the configured
    /// campaign inputs first, then uniform and enumerated assignments of
    /// every non-temporary variable of either program.
    fn input_sets(&self) -> Vec<Vec<(String, i64)>> {
        let mut names: Vec<String> = Vec::new();
        for v in 0..self.joint.len() as u32 {
            if !self.joint.is_temp(v) {
                names.push(self.joint.name(v).to_owned());
            }
        }
        names.sort();
        let mut sets = vec![self.cfg.inputs.clone()];
        for fill in [3i64, 1, -7] {
            sets.push(names.iter().map(|n| (n.clone(), fill)).collect());
        }
        sets.push(
            names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), (i as i64 % 11) - 5))
                .collect(),
        );
        sets
    }

    /// Tries to confirm a semantic divergence by concrete replay. Returns
    /// the confirming (decisions, inputs) or `None`.
    fn confirm_semantic(&self, witness: &[usize]) -> Option<Witness> {
        for pad in [0usize, 8] {
            let mut decisions = witness.to_vec();
            decisions.extend(std::iter::repeat_n(0, pad));
            for inputs in self.input_sets() {
                let cfg = interp::Config {
                    oracle: Oracle::Fixed(decisions.clone()),
                    inputs: inputs.clone(),
                    ..Default::default()
                };
                let ra = interp::run(self.ga, &cfg);
                let rb = interp::run(self.gb, &cfg);
                if !corresponding_equivalent(&ra, &rb) {
                    return Some((decisions, inputs));
                }
            }
        }
        None
    }

    /// Tries to confirm an optimality regression: both runs must reach
    /// the end and the right program must evaluate strictly more.
    fn confirm_optimality(&self, witness: &[usize]) -> Option<Witness> {
        for inputs in self.input_sets() {
            let cfg = interp::Config {
                oracle: Oracle::Fixed(witness.to_vec()),
                inputs: inputs.clone(),
                ..Default::default()
            };
            let ra = interp::run(self.ga, &cfg);
            let rb = interp::run(self.gb, &cfg);
            if ra.stop == StopReason::ReachedEnd
                && rb.stop == StopReason::ReachedEnd
                && rb.expr_evals > ra.expr_evals
            {
                return Some((witness.to_vec(), inputs));
            }
        }
        None
    }

    /// Resolves a refutation candidate: confirmed → Refuted with the
    /// witness; unconfirmed → Inconclusive (the symbolic disagreement may
    /// be a widening artefact, so it is never reported as a failure).
    fn refute_or_inconclusive(&self, witness: Vec<usize>, detail: String) -> PairOutcome {
        match self.confirm_semantic(&witness) {
            Some((decisions, inputs)) => PairOutcome {
                verdict: Verdict::Refuted,
                refutation: Some(Refutation {
                    kind: RefuteKind::Semantic,
                    decisions,
                    inputs,
                    detail: detail.clone(),
                }),
                reason: detail,
                states: self.states.len(),
                simulations: self.simulations,
            },
            None => self.inconclusive(format!("unconfirmed refutation candidate: {detail}")),
        }
    }

    /// Renders the first symbolic disagreement between two out lists for
    /// diagnostics.
    fn out_mismatch(&self, a: &[Vec<ValId>], b: &[Vec<ValId>]) -> String {
        for (i, (xa, xb)) in a.iter().zip(b.iter()).enumerate() {
            if xa == xb {
                continue;
            }
            for (j, (va, vb)) in xa.iter().zip(xb.iter()).enumerate() {
                if va != vb {
                    return format!(
                        " (out {i} value {j}: {} vs {})",
                        self.arena.display(*va),
                        self.arena.display(*vb)
                    );
                }
            }
            return format!(" (out {i} arity: {} vs {})", xa.len(), xb.len());
        }
        format!(" (out count: {} vs {})", a.len(), b.len())
    }

    /// Matches this segment pair's new trap candidates against each
    /// other and against carried obligations. Mutates `sym` in place;
    /// returns false when a pending cap is exceeded.
    fn discharge(
        &self,
        sym: &mut SymState,
        start_nonzero_a: &HashSet<ValId>,
        start_nonzero_b: &HashSet<ValId>,
        cands_a: &[ValId],
        cands_b: &[ValId],
    ) -> bool {
        let set_a: HashSet<ValId> = cands_a.iter().copied().collect();
        let set_b: HashSet<ValId> = cands_b.iter().copied().collect();
        for &v in cands_a {
            if set_b.contains(&v) || sym.pending_b.remove(&v) || start_nonzero_b.contains(&v) {
                continue;
            }
            sym.pending_a.insert(v);
        }
        for &v in cands_b {
            if set_a.contains(&v) || sym.pending_a.remove(&v) || start_nonzero_a.contains(&v) {
                continue;
            }
            sym.pending_b.insert(v);
        }
        sym.pending_a.len() <= self.cfg.max_pending && sym.pending_b.len() <= self.cfg.max_pending
    }

    /// Looks up or creates the product state for a pair of pause keys.
    fn state_for(
        &mut self,
        key: (SideKey, SideKey),
        reach: EdgeKey,
    ) -> Result<usize, Box<PairOutcome>> {
        if let Some(&s) = self.state_index.get(&key) {
            return Ok(s);
        }
        if self.states.len() >= self.cfg.max_states {
            return Err(Box::new(self.inconclusive("state budget exceeded")));
        }
        let fa = key.0.fanout(self.ga);
        let fb = key.1.fanout(self.gb);
        let range = lcm(fa.max(1), fb.max(1));
        if range > self.cfg.max_fanout_lcm {
            return Err(Box::new(self.inconclusive(format!(
                "decision fanout lcm {range} exceeds the cap"
            ))));
        }
        let s = self.states.len();
        self.states.push(State {
            key,
            reach,
            in_edges: Vec::new(),
            widened: vec![(false, false); self.joint.len()],
            inv: None,
            range,
        });
        self.state_index.insert(key, s);
        Ok(s)
    }

    /// Recomputes state `t`'s invariant as the meet over its in-edges'
    /// latest outputs; re-enqueues `t`'s out-edges when it changed.
    fn refresh_invariant(&mut self, t: usize) -> Result<(), Box<PairOutcome>> {
        let ins: Vec<EdgeKey> = self.states[t]
            .in_edges
            .iter()
            .copied()
            .filter(|k| {
                self.edges
                    .get(k)
                    .is_some_and(|e| e.target == EdgeTarget::State(t))
            })
            .collect();
        if ins.is_empty() {
            return Ok(());
        }
        let n = self.joint.len();
        let stores_a: Vec<Vec<ValId>> = ins
            .iter()
            .map(|k| self.edges[k].sym.store_a.clone())
            .collect();
        let stores_b: Vec<Vec<ValId>> = ins
            .iter()
            .map(|k| self.edges[k].sym.store_b.clone())
            .collect();
        // Pass 1 — the baseline meet. Widen each side independently: a
        // side whose value agrees on every in-edge keeps it precisely —
        // assignment motion makes stores legitimately diverge mid-flight
        // (a hoisted `x := t` changes x early on one side), and widening
        // the still-consistent side would destroy the value the other
        // side later recomputes. When the two sides agree pairwise on
        // every edge, one shared symbol preserves that equality through
        // the join.
        let mut base_a = Vec::with_capacity(n);
        let mut base_b = Vec::with_capacity(n);
        let mut shared = vec![false; n];
        for v in 0..n {
            let a0 = stores_a[0][v];
            let b0 = stores_b[0][v];
            let mut all_a_eq = true;
            let mut all_b_eq = true;
            let mut pairwise_eq = true;
            for i in 0..ins.len() {
                all_a_eq &= stores_a[i][v] == a0;
                all_b_eq &= stores_b[i][v] == b0;
                pairwise_eq &= stores_a[i][v] == stores_b[i][v];
            }
            let (mut wa, mut wb) = self.states[t].widened[v];
            wa |= !all_a_eq;
            wb |= !all_b_eq;
            let (va, vb) = if pairwise_eq && (wa || wb) {
                wa = true;
                wb = true;
                shared[v] = true;
                let w = self.arena.widen(t as u64, v as u32, 2);
                (w, w)
            } else {
                let va = if wa {
                    self.arena.widen(t as u64, v as u32, 0)
                } else {
                    a0
                };
                let vb = if wb {
                    self.arena.widen(t as u64, v as u32, 1)
                } else {
                    b0
                };
                (va, vb)
            };
            self.states[t].widened[v] = (wa, wb);
            base_a.push(va);
            base_b.push(vb);
        }
        // Pass 2 — the reconstruction meet: replace opaque widen symbols
        // with functional descriptions over the baseline where the
        // in-edges support one. Copies canonicalize first (an equality
        // group collapses onto its lowest member's symbol), then operator
        // templates rebuild over the canonicalized store, so `h := a+b`
        // hoisted above the join and `x := a+b` recomputed below it meet
        // in the same value. A pairwise-shared symbol is only traded for
        // reconstructions that agree on both sides (otherwise the
        // cross-side equality the shared symbol encodes would be lost).
        let mut store_a = base_a.clone();
        let mut store_b = base_b.clone();
        for v in 0..n {
            let (wa, wb) = self.states[t].widened[v];
            if shared[v] {
                let ra = reconstruct_copy(&stores_a, v, &store_a);
                let rb = reconstruct_copy(&stores_b, v, &store_b);
                if let (Some(x), Some(y)) = (ra, rb) {
                    if x == y {
                        store_a[v] = x;
                        store_b[v] = y;
                    }
                }
            } else {
                if wa {
                    if let Some(x) = reconstruct_copy(&stores_a, v, &store_a) {
                        store_a[v] = x;
                    }
                }
                if wb {
                    if let Some(y) = reconstruct_copy(&stores_b, v, &store_b) {
                        store_b[v] = y;
                    }
                }
            }
        }
        let canon_a = store_a.clone();
        let canon_b = store_b.clone();
        for v in 0..n {
            let (wa, wb) = self.states[t].widened[v];
            if shared[v] {
                if store_a[v] != base_a[v] {
                    continue; // already canonicalized as a copy
                }
                let ra = reconstruct(&mut self.arena, &stores_a, v, &canon_a);
                let rb = reconstruct(&mut self.arena, &stores_b, v, &canon_b);
                if let (Some(x), Some(y)) = (ra, rb) {
                    if x == y {
                        store_a[v] = x;
                        store_b[v] = y;
                    }
                }
            } else {
                if wa && store_a[v] == base_a[v] {
                    if let Some(x) = reconstruct(&mut self.arena, &stores_a, v, &canon_a) {
                        store_a[v] = x;
                    }
                }
                if wb && store_b[v] == base_b[v] {
                    if let Some(y) = reconstruct(&mut self.arena, &stores_b, v, &canon_b) {
                        store_b[v] = y;
                    }
                }
            }
        }
        // Pass 3 — carry trap facts across the widening. A nonzero fact
        // or pending obligation names a *value*; when that value is held
        // by joint variable j on an in-edge, the met store's value for j
        // denotes the same runtime value on every run through that edge,
        // so the fact transfers to the met id. Without this, a join
        // between a hoisted division and its original site strands the
        // obligation on a pre-widening id that nothing downstream can
        // ever discharge.
        let transfer = |p: ValId, edge_store: &[ValId], met_store: &[ValId]| -> ValId {
            let mut remapped = None;
            for (j, &x) in edge_store.iter().enumerate() {
                if x != p {
                    continue;
                }
                if met_store[j] == p {
                    return p; // the id survived the meet untouched
                }
                remapped.get_or_insert(met_store[j]);
            }
            remapped.unwrap_or(p)
        };
        let extend = |facts: &HashSet<ValId>, edge_store: &[ValId], met_store: &[ValId]| {
            let mut out: HashSet<ValId> = facts.clone();
            out.extend(facts.iter().map(|&p| transfer(p, edge_store, met_store)));
            out
        };
        let first = &self.edges[&ins[0]].sym;
        let mut nonzero_a = extend(&first.nonzero_a, &first.store_a, &store_a);
        let mut nonzero_b = extend(&first.nonzero_b, &first.store_b, &store_b);
        let mut pending_a = HashSet::new();
        let mut pending_b = HashSet::new();
        for k in &ins {
            let e = &self.edges[k].sym;
            let ext_a = extend(&e.nonzero_a, &e.store_a, &store_a);
            let ext_b = extend(&e.nonzero_b, &e.store_b, &store_b);
            nonzero_a.retain(|v| ext_a.contains(v));
            nonzero_b.retain(|v| ext_b.contains(v));
            pending_a.extend(
                e.pending_a
                    .iter()
                    .map(|&p| transfer(p, &e.store_a, &store_a)),
            );
            pending_b.extend(
                e.pending_b
                    .iter()
                    .map(|&p| transfer(p, &e.store_b, &store_b)),
            );
        }
        if pending_a.len() > self.cfg.max_pending || pending_b.len() > self.cfg.max_pending {
            return Err(Box::new(
                self.inconclusive("pending trap obligations exceed the cap"),
            ));
        }
        let inv = SymState {
            store_a,
            store_b,
            nonzero_a,
            nonzero_b,
            pending_a,
            pending_b,
        };
        if self.states[t].inv.as_ref() != Some(&inv) {
            self.states[t].inv = Some(inv);
            for d in 0..self.states[t].range {
                self.enqueue(Some((t, d)));
            }
        }
        Ok(())
    }

    /// Simulates one edge and folds its outcome into the product graph.
    fn process(&mut self, ek: EdgeKey, probe: &mut dyn FnMut(usize, bool)) -> Flow {
        self.simulations += 1;
        let (src_sym, keys, d): (SymState, (Option<SideKey>, Option<SideKey>), usize) = match ek {
            None => {
                let store = self.joint.initial_store(&mut self.arena);
                (
                    SymState {
                        store_a: store.clone(),
                        store_b: store,
                        nonzero_a: HashSet::new(),
                        nonzero_b: HashSet::new(),
                        pending_a: HashSet::new(),
                        pending_b: HashSet::new(),
                    },
                    (None, None),
                    0,
                )
            }
            Some((s, d)) => {
                let st = &self.states[s];
                let Some(inv) = st.inv.clone() else {
                    return Flow::Continue;
                };
                (inv, (Some(st.key.0), Some(st.key.1)), d)
            }
        };
        let mut store_a = src_sym.store_a.clone();
        let mut store_b = src_sym.store_b.clone();
        let mut nonzero_a = src_sym.nonzero_a.clone();
        let mut nonzero_b = src_sym.nonzero_b.clone();
        let ra = {
            let mut ctx = SegCtx {
                g: self.ga,
                side: Side::A,
                joint: &self.joint,
                arena: &mut self.arena,
                store: &mut store_a,
                nonzero: &mut nonzero_a,
            };
            run_segment(&mut ctx, keys.0, d, self.probes, probe)
        };
        let rb = {
            let mut ctx = SegCtx {
                g: self.gb,
                side: Side::B,
                joint: &self.joint,
                arena: &mut self.arena,
                store: &mut store_b,
                nonzero: &mut nonzero_b,
            };
            run_segment(&mut ctx, keys.1, d, &[], &mut |_, _| {})
        };
        if let SegEnd::Stuck(why) = ra.end {
            return Flow::Done(self.inconclusive(format!("left program stuck: {why}")));
        }
        if let SegEnd::Stuck(why) = rb.end {
            return Flow::Done(self.inconclusive(format!("right program stuck: {why}")));
        }
        let delta = rb.evals as i64 - ra.evals as i64;
        let mut sym = SymState {
            store_a,
            store_b,
            nonzero_a,
            nonzero_b,
            pending_a: src_sym.pending_a.clone(),
            pending_b: src_sym.pending_b.clone(),
        };
        match (ra.end, rb.end) {
            (SegEnd::Pause(pa), SegEnd::Pause(pb)) => {
                if ra.outs != rb.outs {
                    let detail = self.out_mismatch(&ra.outs, &rb.outs);
                    return Flow::Done(self.refute_or_inconclusive(
                        self.witness_of(ek),
                        format!("segment outputs differ between the programs{detail}"),
                    ));
                }
                if !self.discharge(
                    &mut sym,
                    &src_sym.nonzero_a,
                    &src_sym.nonzero_b,
                    &ra.new_cands,
                    &rb.new_cands,
                ) {
                    return Flow::Done(
                        self.inconclusive("pending trap obligations exceed the cap"),
                    );
                }
                let t = match self.state_for((pa, pb), ek) {
                    Ok(t) => t,
                    Err(out) => return Flow::Done(*out),
                };
                self.edges.insert(
                    ek,
                    EdgeOut {
                        target: EdgeTarget::State(t),
                        sym,
                        delta,
                    },
                );
                if !self.states[t].in_edges.contains(&ek) {
                    self.states[t].in_edges.push(ek);
                }
                if let Err(out) = self.refresh_invariant(t) {
                    return Flow::Done(*out);
                }
                Flow::Continue
            }
            (SegEnd::End, SegEnd::End) => {
                if ra.outs != rb.outs {
                    let detail = self.out_mismatch(&ra.outs, &rb.outs);
                    return Flow::Done(self.refute_or_inconclusive(
                        self.witness_of(ek),
                        format!("final segment outputs differ between the programs{detail}"),
                    ));
                }
                if !self.discharge(
                    &mut sym,
                    &src_sym.nonzero_a,
                    &src_sym.nonzero_b,
                    &ra.new_cands,
                    &rb.new_cands,
                ) {
                    return Flow::Done(
                        self.inconclusive("pending trap obligations exceed the cap"),
                    );
                }
                if !sym.pending_a.is_empty() || !sym.pending_b.is_empty() {
                    return Flow::Done(self.inconclusive(
                        "a division executed on only one side may trap while the other terminates",
                    ));
                }
                self.edges.insert(
                    ek,
                    EdgeOut {
                        target: EdgeTarget::End,
                        sym,
                        delta,
                    },
                );
                Flow::Continue
            }
            (SegEnd::Trap, SegEnd::Trap) => {
                if !prefix_related(&ra.outs, &rb.outs) {
                    return Flow::Done(self.refute_or_inconclusive(
                        self.witness_of(ek),
                        "outputs before a shared trap are not prefix-related".to_owned(),
                    ));
                }
                self.edges.insert(
                    ek,
                    EdgeOut {
                        target: EdgeTarget::Trap,
                        sym,
                        delta,
                    },
                );
                Flow::Continue
            }
            (SegEnd::Trap, SegEnd::End) | (SegEnd::End, SegEnd::Trap) => {
                Flow::Done(self.refute_or_inconclusive(
                    self.witness_of(ek),
                    "one program definitely traps where the other terminates".to_owned(),
                ))
            }
            (SegEnd::Trap, SegEnd::Pause(_)) | (SegEnd::Pause(_), SegEnd::Trap) => {
                Flow::Done(self.refute_or_inconclusive(
                    self.witness_of(ek),
                    "one program definitely traps where the other continues".to_owned(),
                ))
            }
            (SegEnd::End, SegEnd::Pause(_)) | (SegEnd::Pause(_), SegEnd::End) => {
                Flow::Done(self.inconclusive(
                    "decision structure mismatch: one program ends where the other branches",
                ))
            }
            (SegEnd::Stuck(_), _) | (_, SegEnd::Stuck(_)) => unreachable!("handled above"),
        }
    }

    /// Bellman–Ford style longest-path analysis over eval-count deltas.
    /// `dist[v] > 0` at the end vertex means some terminating decision
    /// sequence makes the right program strictly more expensive.
    fn check_optimality(&self) -> Flow {
        #[derive(Clone, Copy)]
        enum Parent {
            Seed,
            Carry,
            Edge(usize, usize),
        }
        let Some(entry) = self.edges.get(&None) else {
            return Flow::Continue; // nothing explored: vacuous
        };
        let v_end = self.states.len();
        let mut dist: Vec<Option<i64>> = vec![None; v_end + 1];
        let mut parents: Vec<Vec<Parent>> = Vec::new();
        let mut seed_row = vec![Parent::Carry; v_end + 1];
        match entry.target {
            EdgeTarget::State(t) => {
                dist[t] = Some(entry.delta);
                seed_row[t] = Parent::Seed;
            }
            EdgeTarget::End => {
                dist[v_end] = Some(entry.delta);
                seed_row[v_end] = Parent::Seed;
            }
            EdgeTarget::Trap => return Flow::Continue, // every run traps: vacuous
        }
        parents.push(seed_row);
        let dp_edges: Vec<(usize, usize, usize, i64)> = self
            .edges
            .iter()
            .filter_map(|(k, e)| {
                let (s, d) = (*k)?;
                match e.target {
                    EdgeTarget::State(t) => Some((s, d, t, e.delta)),
                    EdgeTarget::End => Some((s, d, v_end, e.delta)),
                    EdgeTarget::Trap => None,
                }
            })
            .collect();
        let rounds = 2 * (v_end + 1) + 8;
        let mut converged = false;
        for _ in 0..rounds {
            let mut next = dist.clone();
            let mut row = vec![Parent::Carry; v_end + 1];
            let mut changed = false;
            for &(s, d, t, delta) in &dp_edges {
                if let Some(base) = dist[s] {
                    let cand = base + delta;
                    if next[t].is_none_or(|cur| cand > cur) {
                        next[t] = Some(cand);
                        row[t] = Parent::Edge(s, d);
                        changed = true;
                    }
                }
            }
            parents.push(row);
            dist = next;
            if !changed {
                converged = true;
                break;
            }
        }
        match dist[v_end] {
            Some(worst) if worst > 0 => {
                // Reconstruct the witness by walking the per-round parent
                // tables (cycle-safe: each step strictly decreases the
                // round index).
                let mut decisions = Vec::new();
                let mut v = v_end;
                let mut k = parents.len() - 1;
                while k > 0 {
                    match parents[k][v] {
                        Parent::Edge(s, d) => {
                            decisions.push(d);
                            v = s;
                        }
                        Parent::Carry | Parent::Seed => {}
                    }
                    k -= 1;
                }
                decisions.reverse();
                match self.confirm_optimality(&decisions) {
                    Some((decisions, inputs)) => Flow::Done(PairOutcome {
                        verdict: Verdict::Refuted,
                        refutation: Some(Refutation {
                            kind: RefuteKind::Optimality,
                            decisions,
                            inputs,
                            detail: format!(
                                "the transformed program evaluates {worst} more non-trivial \
                                 terms on a terminating path"
                            ),
                        }),
                        reason: "optimality regression".to_owned(),
                        states: self.states.len(),
                        simulations: self.simulations,
                    }),
                    None => {
                        Flow::Done(self.inconclusive("unconfirmed optimality regression candidate"))
                    }
                }
            }
            _ if !converged => {
                Flow::Done(self.inconclusive("optimality analysis did not converge"))
            }
            _ => Flow::Continue,
        }
    }

    fn run(&mut self, probe: &mut dyn FnMut(usize, bool)) -> PairOutcome {
        self.enqueue(None);
        while let Some(ek) = self.worklist.pop_front() {
            self.queued.remove(&ek);
            if self.simulations >= self.cfg.max_simulations {
                return self.inconclusive("simulation budget exceeded");
            }
            if let Flow::Done(out) = self.process(ek, probe) {
                return out;
            }
        }
        if let Flow::Done(out) = self.check_optimality() {
            return out;
        }
        PairOutcome {
            verdict: Verdict::Proved,
            refutation: None,
            reason: format!(
                "all {} product states and {} segment simulations check out",
                self.states.len(),
                self.simulations
            ),
            states: self.states.len(),
            simulations: self.simulations,
        }
    }
}

/// Proves (or refutes, or gives up on) the equivalence of `ga` and `gb`
/// under the corresponding-run semantics.
pub fn prove_pair(ga: &FlowGraph, gb: &FlowGraph, cfg: &ProveConfig) -> PairOutcome {
    prove_pair_probed(ga, gb, cfg, &[], &mut |_, _| {})
}

/// Like [`prove_pair`], additionally firing `probe(i, discharged)` for
/// every visit of `probes[i]` on the left program (see
/// [`crate::provenance`]). Probed runs never take the identical-graph
/// shortcut, since the point is to observe the symbolic store.
pub(crate) fn prove_pair_probed(
    ga: &FlowGraph,
    gb: &FlowGraph,
    cfg: &ProveConfig,
    probes: &[Probe],
    probe: &mut dyn FnMut(usize, bool),
) -> PairOutcome {
    let mut span = cfg.tracer.span("prove", "pair");
    span.arg("nodes_a", ga.node_count() as i64)
        .arg("nodes_b", gb.node_count() as i64);
    if probes.is_empty() && ga == gb {
        cfg.tracer.counter("prove", "verdict", &[("proved", 1)]);
        return PairOutcome {
            verdict: Verdict::Proved,
            refutation: None,
            reason: "the programs are identical".to_owned(),
            states: 0,
            simulations: 0,
        };
    }
    let mut prover = Prover::new(ga, gb, cfg, probes);
    let out = prover.run(probe);
    span.arg("states", out.states as i64)
        .arg("simulations", out.simulations as i64);
    drop(span);
    cfg.tracer.counter(
        "prove",
        "verdict",
        &[
            ("proved", i64::from(out.verdict == Verdict::Proved)),
            ("refuted", i64::from(out.verdict == Verdict::Refuted)),
            (
                "inconclusive",
                i64::from(out.verdict == Verdict::Inconclusive),
            ),
        ],
    );
    out
}
