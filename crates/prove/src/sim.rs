//! Symbolic segment simulation between cutpoints.
//!
//! A *cutpoint* is a decision-consumption point of the interpreter: the
//! execution of a `branch` instruction, or the end of a multi-successor
//! block without a preceding `branch`. Under a fixed oracle both programs
//! of a pair consume decisions at the same indices, so segments between
//! cutpoints are the natural alignment unit for translation validation —
//! exactly the alignment `am-check`'s corresponding runs use.
//!
//! [`run_segment`] mirrors `am_ir::interp::run` instruction for
//! instruction (trailing instructions after a `branch` execute before the
//! transfer, the end node breaks after its block completes, node entries
//! are budgeted) but over symbolic stores of [`ValId`]s instead of
//! concrete integers.

use std::collections::HashSet;

use am_ir::{BinOp, FlowGraph, Instr, NodeId, Operand, Term, Var, VarPool};

use crate::value::{ValId, ValueArena};

/// The joint variable space of a program pair.
///
/// Variables are matched *by name* — the interpreter seeds inputs by name
/// and unseeded variables read 0, so two same-named variables of the two
/// programs always start with identical values and may share one
/// [`ValNode::Init`](crate::value::ValNode) symbol.
pub struct JointVars {
    names: Vec<String>,
    temps: Vec<bool>,
    map_a: Vec<u32>,
    map_b: Vec<u32>,
}

impl JointVars {
    /// Builds the joint space from the two variable pools.
    pub fn build(a: &VarPool, b: &VarPool) -> JointVars {
        let mut joint = JointVars {
            names: Vec::new(),
            temps: Vec::new(),
            map_a: Vec::new(),
            map_b: Vec::new(),
        };
        let mut index: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
        for (pool, map) in [(a, 0usize), (b, 1usize)] {
            let target = if map == 0 {
                &mut joint.map_a
            } else {
                &mut joint.map_b
            };
            for v in pool.iter() {
                let name = pool.name(v);
                let id = match index.get(name) {
                    Some(&id) => id,
                    None => {
                        let id = joint.names.len() as u32;
                        joint.names.push(name.to_owned());
                        joint.temps.push(pool.is_temp(v));
                        index.insert(name.to_owned(), id);
                        id
                    }
                };
                target.push(id);
            }
        }
        joint
    }

    /// Number of joint variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the joint space is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of joint variable `v`.
    pub fn name(&self, v: u32) -> &str {
        &self.names[v as usize]
    }

    /// Whether joint variable `v` is an optimizer temporary.
    pub fn is_temp(&self, v: u32) -> bool {
        self.temps[v as usize]
    }

    /// Maps an A-side variable to its joint id.
    pub fn joint_a(&self, v: Var) -> u32 {
        self.map_a[v.index()]
    }

    /// Maps a B-side variable to its joint id.
    pub fn joint_b(&self, v: Var) -> u32 {
        self.map_b[v.index()]
    }

    /// The initial symbolic store: every joint variable maps to its own
    /// `Init` symbol.
    pub fn initial_store(&self, arena: &mut ValueArena) -> Vec<ValId> {
        (0..self.len() as u32).map(|v| arena.init(v)).collect()
    }
}

/// Which side of the pair a segment belongs to (selects the joint map).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    /// The "before" program.
    A,
    /// The "after" program.
    B,
}

/// A paused position of one side: the cutpoint at which the next oracle
/// decision will be consumed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SideKey {
    /// Paused at a `branch` instruction, after its condition sides were
    /// evaluated and before the decision is consumed. Resuming applies
    /// `taken = d % fanout` and continues at `index + 1`.
    AtBranch {
        /// The node holding the branch.
        node: NodeId,
        /// Instruction index of the branch within the node.
        index: usize,
    },
    /// Paused at the end of a multi-successor block that executed no
    /// `branch`. Resuming enters `succs[d % fanout]` directly.
    AtBlockEnd {
        /// The finished node.
        node: NodeId,
    },
}

impl SideKey {
    /// The decision fanout at this cutpoint.
    pub fn fanout(self, g: &FlowGraph) -> usize {
        match self {
            SideKey::AtBranch { node, .. } | SideKey::AtBlockEnd { node } => g.succs(node).len(),
        }
    }
}

/// How a segment ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SegEnd {
    /// Reached the next cutpoint; the side is paused here.
    Pause(SideKey),
    /// The end node (or a successor-less node) finished: the run is over.
    End,
    /// A *definite* trap: a division or remainder whose divisor is the
    /// constant 0. Every concrete run reaching this point traps.
    Trap,
    /// The symbolic execution cannot continue (e.g. a decision-free cycle
    /// exceeded the node budget, or a branch in a successor-less node).
    /// Always escalates to an Inconclusive verdict.
    Stuck(&'static str),
}

/// The result of simulating one segment of one side.
pub struct SegRun {
    /// How the segment ended.
    pub end: SegEnd,
    /// Values emitted by each executed `out(...)`, in order.
    pub outs: Vec<Vec<ValId>>,
    /// Non-trivial term evaluations performed (the Def. 3.8(1) count; it
    /// depends only on the path, never on the store).
    pub evals: u64,
    /// Divisors first divided by on this segment whose values are not
    /// known non-zero: the new trap candidates, in evaluation order.
    pub new_cands: Vec<ValId>,
}

/// A probe on an `Assign` site: before the instruction executes, report
/// whether the store already holds the value its right-hand side denotes
/// (the static "this assignment is a no-op here" check that discharges an
/// `Eliminate` provenance record).
pub struct Probe {
    /// The probed node.
    pub node: NodeId,
    /// Instruction index within the node.
    pub index: usize,
}

/// Everything a segment simulation needs from the prover: the graph, the
/// side's joint map, the shared arena, and the mutable per-path state.
pub struct SegCtx<'a> {
    /// The program of this side.
    pub g: &'a FlowGraph,
    /// Which side (selects the joint-variable map).
    pub side: Side,
    /// The joint variable space.
    pub joint: &'a JointVars,
    /// The shared value arena.
    pub arena: &'a mut ValueArena,
    /// The symbolic store, indexed by joint variable (mutated in place).
    pub store: &'a mut Vec<ValId>,
    /// Values known non-zero on every run reaching this segment (a
    /// division by `v` that did not trap proves `v != 0`; mutated in
    /// place as new divisions execute).
    pub nonzero: &'a mut HashSet<ValId>,
}

impl SegCtx<'_> {
    fn joint(&self, v: Var) -> u32 {
        match self.side {
            Side::A => self.joint.joint_a(v),
            Side::B => self.joint.joint_b(v),
        }
    }

    fn operand(&mut self, o: Operand) -> ValId {
        match o {
            Operand::Const(c) => self.arena.constant(c),
            Operand::Var(v) => self.store[self.joint(v) as usize],
        }
    }

    /// The value a term denotes in the current store, without counting or
    /// trap bookkeeping (used by probes).
    pub fn pure_term_value(&mut self, t: Term) -> ValId {
        match t {
            Term::Operand(o) => self.operand(o),
            Term::Binary { op, lhs, rhs } => {
                let l = self.operand(lhs);
                let r = self.operand(rhs);
                self.arena.bin(op, l, r)
            }
        }
    }
}

/// Simulates one segment of `ctx.g` starting from `from` (None = program
/// entry) with raw decision `d` (ignored for the entry segment), running
/// to the next cutpoint, the program end, a definite trap, or a stuck
/// point. `probe` is called as `probe(probe_index, discharged)` whenever a
/// probed `Assign` is about to execute.
pub fn run_segment(
    ctx: &mut SegCtx<'_>,
    from: Option<SideKey>,
    d: usize,
    probes: &[Probe],
    probe: &mut dyn FnMut(usize, bool),
) -> SegRun {
    let mut run = SegRun {
        end: SegEnd::End,
        outs: Vec::new(),
        evals: 0,
        new_cands: Vec::new(),
    };
    let g = ctx.g;
    let (mut node, mut idx, mut taken): (NodeId, usize, Option<usize>) = match from {
        None => (g.start(), 0, None),
        Some(SideKey::AtBranch { node, index }) => {
            let fanout = g.succs(node).len();
            debug_assert!(fanout > 0);
            (node, index + 1, Some(d % fanout))
        }
        Some(SideKey::AtBlockEnd { node }) => {
            let succs = g.succs(node);
            (succs[d % succs.len()], 0, None)
        }
    };
    // A segment that re-enters more nodes than the program has without
    // consuming a decision is cycling through decision-free blocks — the
    // concrete interpreter would spin to its step limit here, which the
    // prover cannot model; give up (Inconclusive).
    let budget = g.node_count() + 2;
    let mut entered = 0usize;

    // Evaluates a term with the interpreter's counting and trapping
    // behaviour. Err(()) = definite trap.
    macro_rules! eval_term {
        ($t:expr) => {{
            let t: Term = $t;
            match t {
                Term::Operand(o) => Ok(ctx.operand(o)),
                Term::Binary { op, lhs, rhs } => {
                    run.evals += 1;
                    let l = ctx.operand(lhs);
                    let r = ctx.operand(rhs);
                    if matches!(op, BinOp::Div | BinOp::Mod) {
                        match ctx.arena.as_const(r) {
                            Some(0) => Err(()),
                            Some(_) => Ok(ctx.arena.bin(op, l, r)),
                            None => {
                                if ctx.nonzero.insert(r) {
                                    run.new_cands.push(r);
                                }
                                Ok(ctx.arena.bin(op, l, r))
                            }
                        }
                    } else {
                        Ok(ctx.arena.bin(op, l, r))
                    }
                }
            }
        }};
    }

    loop {
        let instr_count = g.block(node).instrs.len();
        while idx < instr_count {
            let instr = g.block(node).instrs[idx].clone();
            match instr {
                Instr::Skip => {}
                Instr::Assign { lhs, rhs } => {
                    if !probes.is_empty() {
                        for (pi, p) in probes.iter().enumerate() {
                            if p.node == node && p.index == idx {
                                let expected = ctx.pure_term_value(rhs);
                                let jl = ctx.joint(lhs) as usize;
                                probe(pi, ctx.store[jl] == expected);
                            }
                        }
                    }
                    let value = match eval_term!(rhs) {
                        Ok(v) => v,
                        Err(()) => {
                            run.end = SegEnd::Trap;
                            return run;
                        }
                    };
                    let jl = ctx.joint(lhs) as usize;
                    ctx.store[jl] = value;
                }
                Instr::Out(ops) => {
                    let values: Vec<ValId> = ops.iter().map(|&o| ctx.operand(o)).collect();
                    run.outs.push(values);
                }
                Instr::Branch(c) => {
                    let _l = match eval_term!(c.lhs) {
                        Ok(v) => v,
                        Err(()) => {
                            run.end = SegEnd::Trap;
                            return run;
                        }
                    };
                    let r = match eval_term!(c.rhs) {
                        Ok(v) => v,
                        Err(()) => {
                            run.end = SegEnd::Trap;
                            return run;
                        }
                    };
                    // The top-level comparison is uncounted control, but
                    // `apply(c.op, l, r)` can still trap when the operator
                    // is / or % (the type permits it).
                    if matches!(c.op, BinOp::Div | BinOp::Mod) {
                        match ctx.arena.as_const(r) {
                            Some(0) => {
                                run.end = SegEnd::Trap;
                                return run;
                            }
                            Some(_) => {}
                            None => {
                                if ctx.nonzero.insert(r) {
                                    run.new_cands.push(r);
                                }
                            }
                        }
                    }
                    if g.succs(node).is_empty() {
                        run.end = SegEnd::Stuck("branch in a node without successors");
                        return run;
                    }
                    run.end = SegEnd::Pause(SideKey::AtBranch { node, index: idx });
                    return run;
                }
            }
            idx += 1;
        }
        if node == g.end() {
            run.end = SegEnd::End;
            return run;
        }
        let succs = g.succs(node);
        let next = match succs.len() {
            0 => {
                run.end = SegEnd::End;
                return run;
            }
            1 => succs[0],
            _ => match taken {
                Some(i) => succs[i],
                None => {
                    run.end = SegEnd::Pause(SideKey::AtBlockEnd { node });
                    return run;
                }
            },
        };
        node = next;
        idx = 0;
        taken = None;
        entered += 1;
        if entered > budget {
            run.end = SegEnd::Stuck("decision-free cycle exceeded the node budget");
            return run;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::text::parse;

    fn seg(
        g: &FlowGraph,
        from: Option<SideKey>,
        d: usize,
        store: &mut Vec<ValId>,
        arena: &mut ValueArena,
        joint: &JointVars,
        nonzero: &mut HashSet<ValId>,
    ) -> SegRun {
        let mut ctx = SegCtx {
            g,
            side: Side::A,
            joint,
            arena,
            store,
            nonzero,
        };
        run_segment(&mut ctx, from, d, &[], &mut |_, _| {})
    }

    #[test]
    fn straight_line_segment_reaches_end() {
        let g =
            parse("start s\nend e\nnode s { x := a+b; out(x) }\nnode e { out(x) }\nedge s -> e")
                .unwrap();
        let mut arena = ValueArena::new();
        let joint = JointVars::build(g.pool(), g.pool());
        let mut store = joint.initial_store(&mut arena);
        let mut nonzero = HashSet::new();
        let r = seg(&g, None, 0, &mut store, &mut arena, &joint, &mut nonzero);
        assert_eq!(r.end, SegEnd::End);
        assert_eq!(r.outs.len(), 2);
        assert_eq!(r.outs[0], r.outs[1]);
        assert_eq!(r.evals, 1);
    }

    #[test]
    fn branch_pauses_and_resumes() {
        let g = parse(
            "start 1\nend 4\nnode 1 { i := 0 }\nnode 2 { branch i < n }\nnode 3 { i := i + 1 }\nnode 4 { out(i) }\nedge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2",
        )
        .unwrap();
        let mut arena = ValueArena::new();
        let joint = JointVars::build(g.pool(), g.pool());
        let mut store = joint.initial_store(&mut arena);
        let mut nonzero = HashSet::new();
        let r = seg(&g, None, 0, &mut store, &mut arena, &joint, &mut nonzero);
        let SegEnd::Pause(key @ SideKey::AtBranch { .. }) = r.end else {
            panic!("expected a branch pause, got {:?}", r.end)
        };
        // Decision 1 exits to node 4.
        let r2 = seg(
            &g,
            Some(key),
            1,
            &mut store,
            &mut arena,
            &joint,
            &mut nonzero,
        );
        assert_eq!(r2.end, SegEnd::End);
        assert_eq!(r2.outs.len(), 1);
    }

    #[test]
    fn constant_zero_divisor_is_a_definite_trap() {
        let g =
            parse("start s\nend e\nnode s { x := a/0 }\nnode e { out(x) }\nedge s -> e").unwrap();
        let mut arena = ValueArena::new();
        let joint = JointVars::build(g.pool(), g.pool());
        let mut store = joint.initial_store(&mut arena);
        let mut nonzero = HashSet::new();
        let r = seg(&g, None, 0, &mut store, &mut arena, &joint, &mut nonzero);
        assert_eq!(r.end, SegEnd::Trap);
    }

    #[test]
    fn symbolic_divisor_becomes_a_candidate_once() {
        let g = parse(
            "start s\nend e\nnode s { x := a/b; y := a/b }\nnode e { out(x,y) }\nedge s -> e",
        )
        .unwrap();
        let mut arena = ValueArena::new();
        let joint = JointVars::build(g.pool(), g.pool());
        let mut store = joint.initial_store(&mut arena);
        let mut nonzero = HashSet::new();
        let r = seg(&g, None, 0, &mut store, &mut arena, &joint, &mut nonzero);
        assert_eq!(r.end, SegEnd::End);
        assert_eq!(r.new_cands.len(), 1, "second division by b is covered");
    }

    #[test]
    fn decision_free_cycle_gets_stuck() {
        let g = parse(
            "start s\nend e\nnode s { skip }\nnode b { skip }\nnode e { out() }\nedge s -> b\nedge b -> b",
        );
        // Some graph validators reject this shape; build only if parse
        // accepts it.
        if let Ok(g) = g {
            let mut arena = ValueArena::new();
            let joint = JointVars::build(g.pool(), g.pool());
            let mut store = joint.initial_store(&mut arena);
            let mut nonzero = HashSet::new();
            let r = seg(&g, None, 0, &mut store, &mut arena, &joint, &mut nonzero);
            assert!(matches!(r.end, SegEnd::Stuck(_)), "{:?}", r.end);
        }
    }

    #[test]
    fn temp_forwarding_yields_identical_out_values() {
        // h := a+b; x := h   vs   x := a+b  — the normalization core.
        let ga =
            parse("start s\nend e\nnode s { h := a+b; x := h }\nnode e { out(x) }\nedge s -> e")
                .unwrap();
        let gb =
            parse("start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e").unwrap();
        let mut arena = ValueArena::new();
        let joint = JointVars::build(ga.pool(), gb.pool());
        let mut store_a = joint.initial_store(&mut arena);
        let mut store_b = joint.initial_store(&mut arena);
        let mut nz_a = HashSet::new();
        let mut nz_b = HashSet::new();
        let ra = {
            let mut ctx = SegCtx {
                g: &ga,
                side: Side::A,
                joint: &joint,
                arena: &mut arena,
                store: &mut store_a,
                nonzero: &mut nz_a,
            };
            run_segment(&mut ctx, None, 0, &[], &mut |_, _| {})
        };
        let rb = {
            let mut ctx = SegCtx {
                g: &gb,
                side: Side::B,
                joint: &joint,
                arena: &mut arena,
                store: &mut store_b,
                nonzero: &mut nz_b,
            };
            run_segment(&mut ctx, None, 0, &[], &mut |_, _| {})
        };
        assert_eq!(ra.outs, rb.outs);
        assert_eq!(ra.evals, 1);
        assert_eq!(rb.evals, 1);
    }
}
