//! `am-prove` — a symbolic equivalence prover for the optimizer.
//!
//! The paper's correctness claims (Thms 5.2/5.4) are checked dynamically
//! by `am-check`: the interpreter runs both programs on concrete inputs
//! and oracles, so a miscompile that needs a specific input can slip
//! through a finite campaign. This crate adds the *static* oracle: a
//! cutpoint-based symbolic simulator over hash-consed, GVN-normalized
//! value terms that proves each phase transition of the optimizer
//! preserves observable behaviour on **every** path segment between
//! cutpoints, for **all** inputs — or refutes it with a concrete,
//! interpreter-confirmed witness path, or honestly gives up
//! (Inconclusive), in which case callers fall back to the dynamic
//! oracle. `docs/VERIFICATION.md` describes the design, its scope and
//! its limits.
//!
//! The pieces:
//!
//! * [`value`] — the hash-consed symbolic value arena with exact
//!   wrapping constant folding and algebraic normalization (the
//!   value-numbering table the ROADMAP's GVN item builds on);
//! * [`sim`] — symbolic segment simulation between decision cutpoints,
//!   mirroring the counting interpreter instruction for instruction;
//! * [`engine`] — the product-program fixpoint with sticky widening,
//!   trap-obligation discharge, witness construction and the optimality
//!   (eval-count) longest-path analysis;
//! * [`chain`] — proving every phase transition of one `optimize_hooked`
//!   run;
//! * [`provenance`] — static discharge of `Eliminate` provenance
//!   records (the must-redundancy side condition of the paper rule).

#![warn(missing_docs)]

pub mod chain;
pub mod engine;
pub mod provenance;
pub mod sim;
pub mod value;

pub use chain::{prove_optimization, ChainOutcome, ProveStats};
pub use engine::{prove_pair, PairOutcome, ProveConfig, Refutation, RefuteKind, Verdict};
pub use provenance::{discharge_provenance, DischargeReport, DischargeStatus, SiteDischarge};
pub use value::{ValId, ValNode, ValueArena};
