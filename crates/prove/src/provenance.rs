//! Static discharge of provenance records.
//!
//! `amopt --explain` justifies every transformation with an
//! [`am_obs::ProvRecord`] naming the paper rule that licensed it. For an
//! `Eliminate` record the side condition is *must-redundancy*: at the
//! eliminated occurrence `x := t`, every path already computed `t` into
//! `x` with neither operand disturbed since — i.e. the symbolic store
//! must already map `x` to the value of `t` when control reaches the
//! site. This module replays each `Eliminate` record against the phase
//! snapshot its coordinates refer to and discharges that condition with
//! the symbolic simulator, probing the site on every explored path.
//!
//! The coordinates of an `Eliminate` record of motion round `r` refer to
//! the program at the *start* of round `r` (rounds run `rae; aht`, and
//! the redundancy pass collects all sites before removing any), which is
//! exactly the `MotionRound(r-1)` snapshot — the `Init` snapshot for
//! round 1. Hoist and flush records move instructions rather than assert
//! a store property; their correctness is covered by the phase-pair
//! proof itself, so they are counted but not individually probed.
//!
//! Discharge runs in two tiers. The fast tier probes all of a round's
//! sites in one symbolic exploration of the snapshot, checking the store
//! property directly. That probe is flow-insensitive at joins: an
//! invariant merges *every* path through a join, including paths that
//! never reach the probed site, so it can fail on perfectly sound
//! eliminations. Sites the probe cannot certify get the slow tier: a
//! full [`prove_pair`] of the snapshot against the snapshot with that
//! one occurrence deleted — the product simulation walks both programs
//! down the *same* paths, so only paths actually reaching the site
//! matter, and a [`DischargeStatus::Failed`] verdict carries an
//! interpreter-confirmed witness rather than a widening artefact.

use am_core::global::{optimize_hooked, GlobalConfig, PhaseId};
use am_ir::{FlowGraph, Instr, NodeId};
use am_obs::{ProvKind, ProvRecord, ProvRecorder};

use crate::engine::{prove_pair, prove_pair_probed, ProveConfig, Verdict};
use crate::sim::Probe;

/// The outcome of statically checking one `Eliminate` record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DischargeStatus {
    /// The side condition is statically certified: either every explored
    /// path reaching the site already held the value (fast tier), or
    /// deleting the occurrence was proved behaviour-preserving on all
    /// inputs (slow tier).
    Discharged,
    /// Deleting the occurrence was statically *refuted* with an
    /// interpreter-confirmed witness — a real rule violation, not a
    /// widening artefact.
    Failed,
    /// No explored path reaches the site (dead code): the elimination is
    /// trivially sound.
    Vacuous,
    /// The record's coordinates do not name an assignment with the
    /// recorded text in the expected snapshot.
    Unlocatable,
    /// Neither tier could decide: the store probe failed and the
    /// deletion proof was inconclusive. Not certified, but nothing was
    /// refuted either.
    Inconclusive,
}

impl std::fmt::Display for DischargeStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DischargeStatus::Discharged => write!(f, "discharged"),
            DischargeStatus::Failed => write!(f, "failed"),
            DischargeStatus::Vacuous => write!(f, "vacuous"),
            DischargeStatus::Unlocatable => write!(f, "unlocatable"),
            DischargeStatus::Inconclusive => write!(f, "inconclusive"),
        }
    }
}

/// One checked `Eliminate` site.
#[derive(Clone, Debug)]
pub struct SiteDischarge {
    /// Motion round of the record (1-based).
    pub round: u32,
    /// Node label of the eliminated occurrence.
    pub node: String,
    /// Instruction index within the node.
    pub index: u32,
    /// Display text of the eliminated assignment.
    pub instr: String,
    /// The discharge outcome.
    pub status: DischargeStatus,
}

/// Summary of a provenance discharge run.
#[derive(Clone, Debug, Default)]
pub struct DischargeReport {
    /// Total provenance records the run produced.
    pub records: usize,
    /// How many were `Eliminate` records (the statically checked kind).
    pub eliminations: usize,
    /// Eliminate sites certified (discharged or vacuously dead).
    pub discharged: usize,
    /// Eliminate sites statically refuted (with a confirmed witness) or
    /// whose coordinates could not be located.
    pub failed: usize,
    /// Eliminate sites neither certified nor refuted (both tiers gave
    /// up); callers fall back to the dynamic oracle for these.
    pub inconclusive: usize,
    /// Per-site details, in record order.
    pub sites: Vec<SiteDischarge>,
}

impl DischargeReport {
    /// Nothing was refuted or unlocatable (inconclusive sites are
    /// allowed — they are honestly undecided, not wrong).
    pub fn all_discharged(&self) -> bool {
        self.failed == 0
    }
}

impl std::fmt::Display for DischargeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} provenance records, {} eliminations: {} discharged, {} failed, {} inconclusive",
            self.records, self.eliminations, self.discharged, self.failed, self.inconclusive
        )
    }
}

fn find_node(g: &FlowGraph, label: &str) -> Option<NodeId> {
    g.nodes().find(|&n| g.label(n) == label)
}

/// Re-runs the optimizer on `g` with provenance recording enabled and
/// statically discharges every `Eliminate` record against the snapshot
/// its coordinates refer to.
pub fn discharge_provenance(
    g: &FlowGraph,
    max_motion_rounds: Option<usize>,
    cfg: &ProveConfig,
) -> DischargeReport {
    let mut span = cfg.tracer.span("prove", "discharge");
    let recorder = ProvRecorder::enabled();
    let mut snapshots: Vec<(PhaseId, FlowGraph)> = Vec::new();
    let global = GlobalConfig {
        max_motion_rounds,
        keep_snapshots: false,
        tracer: cfg.tracer.clone(),
        recorder: recorder.clone(),
        ..GlobalConfig::default()
    };
    optimize_hooked(g, &global, &mut |phase, prog| {
        snapshots.push((phase, prog.clone()));
    });
    let records = recorder.take();
    let mut report = DischargeReport {
        records: records.len(),
        ..Default::default()
    };

    // Group Eliminate records by round.
    let mut rounds: Vec<u32> = records
        .iter()
        .filter(|r| r.kind == ProvKind::Eliminate)
        .map(|r| r.round)
        .collect();
    rounds.sort_unstable();
    rounds.dedup();

    for round in rounds {
        let pre_phase = if round <= 1 {
            PhaseId::Init
        } else {
            PhaseId::MotionRound(round as usize - 1)
        };
        let snap = snapshots
            .iter()
            .find(|(p, _)| *p == pre_phase)
            .map(|(_, s)| s);
        let round_records: Vec<&ProvRecord> = records
            .iter()
            .filter(|r| r.kind == ProvKind::Eliminate && r.round == round)
            .collect();
        report.eliminations += round_records.len();
        let Some(snap) = snap else {
            for r in &round_records {
                report.failed += 1;
                report.sites.push(site_of(r, DischargeStatus::Unlocatable));
            }
            continue;
        };
        // Locate each record's site in the pre-round snapshot.
        let mut probes: Vec<Probe> = Vec::new();
        let mut probe_records: Vec<&ProvRecord> = Vec::new();
        for r in &round_records {
            let located = find_node(snap, &r.node).and_then(|node| {
                let index = r.index? as usize;
                let instr = snap.block(node).instrs.get(index)?;
                (matches!(instr, Instr::Assign { .. }) && instr.display(snap.pool()) == r.instr)
                    .then_some((node, index))
            });
            match located {
                Some((node, index)) => {
                    probes.push(Probe { node, index });
                    probe_records.push(r);
                }
                None => {
                    report.failed += 1;
                    report.sites.push(site_of(r, DischargeStatus::Unlocatable));
                }
            }
        }
        if probes.is_empty() {
            continue;
        }
        let mut visited = vec![0usize; probes.len()];
        let mut ok = vec![true; probes.len()];
        let outcome = prove_pair_probed(snap, snap, cfg, &probes, &mut |i, discharged| {
            visited[i] += 1;
            ok[i] &= discharged;
        });
        let probe_conclusive = outcome.verdict == Verdict::Proved;
        for (i, r) in probe_records.iter().enumerate() {
            let status = if probe_conclusive && visited[i] == 0 {
                DischargeStatus::Vacuous
            } else if probe_conclusive && ok[i] {
                DischargeStatus::Discharged
            } else {
                // Slow tier: prove that deleting this one occurrence
                // preserves behaviour on all inputs (and never adds
                // evaluations). Path-sensitive, so join-widening noise
                // from the fast tier cannot produce a false failure.
                let mut removed = snap.clone();
                removed
                    .block_mut(probes[i].node)
                    .instrs
                    .remove(probes[i].index);
                match prove_pair(snap, &removed, cfg).verdict {
                    Verdict::Proved => DischargeStatus::Discharged,
                    Verdict::Refuted => DischargeStatus::Failed,
                    Verdict::Inconclusive => DischargeStatus::Inconclusive,
                }
            };
            match status {
                DischargeStatus::Discharged | DischargeStatus::Vacuous => report.discharged += 1,
                DischargeStatus::Inconclusive => report.inconclusive += 1,
                _ => report.failed += 1,
            }
            report.sites.push(site_of(r, status));
        }
    }
    span.arg("eliminations", report.eliminations as i64)
        .arg("failed", report.failed as i64)
        .arg("inconclusive", report.inconclusive as i64);
    report
}

fn site_of(r: &ProvRecord, status: DischargeStatus) -> SiteDischarge {
    SiteDischarge {
        round: r.round,
        node: r.node.clone(),
        index: r.index.unwrap_or(u32::MAX),
        instr: r.instr.clone(),
        status,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::text::parse;

    #[test]
    fn running_example_eliminations_discharge() {
        let g = parse(
            "start 1\nend 4\nnode 1 { y := c+d }\nnode 2 { branch x+z > y+i }\nnode 3 { y := c+d; x := y+z; i := i+x }\nnode 4 { x := y+z; x := c+d; out(i,x,y) }\nedge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2",
        )
        .unwrap();
        let report = discharge_provenance(&g, None, &ProveConfig::default());
        assert!(report.eliminations > 0, "{report}");
        assert!(
            report.all_discharged(),
            "{report}: {:?}",
            report
                .sites
                .iter()
                .filter(|s| s.status == DischargeStatus::Failed)
                .collect::<Vec<_>>()
        );
    }
}
