//! Property tests: randomly generated ASTs round-trip through the printer
//! and parser, and their lowered graphs execute deterministically.
//! Randomized via `am_ir::rng::SplitMix64` for offline reproducibility.

use am_ir::rng::SplitMix64;
use am_ir::BinOp;
use am_lang::{lower, parse_program, to_source, LExpr, Program, Stmt};

fn random_expr(rng: &mut SplitMix64, depth: usize) -> LExpr {
    if depth == 0 || rng.gen_bool(0.4) {
        if rng.gen_bool(0.5) {
            let name = *rng.choose(&["a", "b", "c", "x", "y"]);
            LExpr::Var(name.to_owned())
        } else {
            LExpr::Const(rng.gen_range(-9i64..10))
        }
    } else {
        let op = *rng.choose(&[BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Lt, BinOp::EqOp]);
        let l = random_expr(rng, depth - 1);
        let r = random_expr(rng, depth - 1);
        LExpr::binary(op, l, r)
    }
}

fn random_body(rng: &mut SplitMix64, depth: usize) -> Vec<Stmt> {
    let n = rng.gen_range(0..3usize);
    (0..n).map(|_| random_stmt(rng, depth)).collect()
}

fn random_stmt(rng: &mut SplitMix64, depth: usize) -> Stmt {
    let structural = depth > 0 && rng.gen_bool(0.45);
    if structural {
        match rng.gen_range(0..3usize) {
            0 => Stmt::If {
                cond: random_expr(rng, 2),
                then_body: random_body(rng, depth - 1),
                else_body: random_body(rng, depth - 1),
            },
            1 => Stmt::While {
                cond: random_expr(rng, 2),
                body: random_body(rng, depth - 1),
            },
            _ => Stmt::DoWhile {
                body: random_body(rng, depth - 1),
                cond: random_expr(rng, 2),
            },
        }
    } else {
        match rng.gen_range(0..3usize) {
            0 => Stmt::Skip,
            1 => {
                let n = rng.gen_range(0..3usize);
                Stmt::Print((0..n).map(|_| random_expr(rng, 2)).collect())
            }
            _ => {
                let lhs = *rng.choose(&["a", "b", "c", "d", "e"]);
                Stmt::Assign {
                    lhs: lhs.to_owned(),
                    rhs: random_expr(rng, 3),
                }
            }
        }
    }
}

fn random_program(rng: &mut SplitMix64) -> Program {
    let n = rng.gen_range(1..6usize);
    Program {
        body: (0..n).map(|_| random_stmt(rng, 2)).collect(),
    }
}

#[test]
fn source_round_trips() {
    let mut rng = SplitMix64::new(0x1A46_0001);
    for case in 0..128 {
        let p = random_program(&mut rng);
        let rendered = to_source(&p);
        let reparsed = parse_program(&rendered)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n--- source ---\n{rendered}"));
        assert_eq!(reparsed, p, "case {case}\n--- source ---\n{rendered}");
    }
}

#[test]
fn lowered_graphs_are_valid_and_runnable() {
    let mut rng = SplitMix64::new(0x1A46_0002);
    for case in 0..128 {
        let p = random_program(&mut rng);
        let g = lower(&p);
        assert_eq!(g.validate(), Ok(()), "case {case}");
        assert!(am_ir::analysis::is_reducible(&g), "case {case}");
        let cfg = am_ir::interp::Config {
            oracle: am_ir::interp::Oracle::random(7, 16),
            inputs: vec![("a".into(), 1), ("b".into(), -2), ("c".into(), 3)],
            max_steps: 2_000,
        };
        // Must terminate for one of the sanctioned reasons, never panic.
        let _ = am_ir::interp::run(&g, &cfg);
    }
}

#[test]
fn lowering_then_optimizing_preserves_semantics() {
    let mut rng = SplitMix64::new(0x1A46_0003);
    for case in 0..128 {
        let p = random_program(&mut rng);
        let g = lower(&p);
        let optimized = am_core::global::optimize(&g).program;
        for seed in 0..3u64 {
            let cfg = am_ir::interp::Config {
                oracle: am_ir::interp::Oracle::random(seed, 12),
                inputs: vec![("a".into(), 2), ("b".into(), 5), ("c".into(), -1)],
                max_steps: 2_000,
            };
            let r0 = am_ir::interp::run(&g, &cfg);
            let r1 = am_ir::interp::run(&optimized, &cfg);
            assert_eq!(r0.observable(), r1.observable(), "case {case} seed {seed}");
        }
    }
}
