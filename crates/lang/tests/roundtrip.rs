//! Property tests: randomly generated ASTs round-trip through the printer
//! and parser, and their lowered graphs execute deterministically.

use am_lang::{lower, parse_program, to_source, LExpr, Program, Stmt};
use am_ir::BinOp;
use proptest::prelude::*;

fn arb_expr() -> impl Strategy<Value = LExpr> {
    let leaf = prop_oneof![
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("x"), Just("y")]
            .prop_map(|n: &str| LExpr::Var(n.to_owned())),
        (-9i64..10).prop_map(LExpr::Const),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::Lt),
                Just(BinOp::EqOp),
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, l, r)| LExpr::binary(op, l, r))
    })
}

fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let assign = ("[a-e]", arb_expr()).prop_map(|(lhs, rhs)| Stmt::Assign { lhs, rhs });
    let print = proptest::collection::vec(arb_expr(), 0..3).prop_map(Stmt::Print);
    if depth == 0 {
        prop_oneof![assign, Just(Stmt::Skip), print].boxed()
    } else {
        let body = proptest::collection::vec(arb_stmt(depth - 1), 0..3);
        prop_oneof![
            assign,
            Just(Stmt::Skip),
            print,
            (arb_expr(), body.clone(), body.clone()).prop_map(|(cond, t, e)| Stmt::If {
                cond,
                then_body: t,
                else_body: e,
            }),
            (arb_expr(), body.clone()).prop_map(|(cond, body)| Stmt::While { cond, body }),
            (body, arb_expr()).prop_map(|(body, cond)| Stmt::DoWhile { body, cond }),
        ]
        .boxed()
    }
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_stmt(2), 1..6).prop_map(|body| Program { body })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn source_round_trips(p in arb_program()) {
        let rendered = to_source(&p);
        let reparsed = parse_program(&rendered)
            .unwrap_or_else(|e| panic!("{e}\n--- source ---\n{rendered}"));
        prop_assert_eq!(reparsed, p);
    }

    #[test]
    fn lowered_graphs_are_valid_and_runnable(p in arb_program()) {
        let g = lower(&p);
        prop_assert_eq!(g.validate(), Ok(()));
        prop_assert!(am_ir::analysis::is_reducible(&g));
        let cfg = am_ir::interp::Config {
            oracle: am_ir::interp::Oracle::random(7, 16),
            inputs: vec![("a".into(), 1), ("b".into(), -2), ("c".into(), 3)],
            max_steps: 2_000,
        };
        // Must terminate for one of the sanctioned reasons, never panic.
        let _ = am_ir::interp::run(&g, &cfg);
    }

    #[test]
    fn lowering_then_optimizing_preserves_semantics(p in arb_program()) {
        let g = lower(&p);
        let optimized = am_core::global::optimize(&g).program;
        for seed in 0..3u64 {
            let cfg = am_ir::interp::Config {
                oracle: am_ir::interp::Oracle::random(seed, 12),
                inputs: vec![("a".into(), 2), ("b".into(), 5), ("c".into(), -1)],
                max_steps: 2_000,
            };
            let r0 = am_ir::interp::run(&g, &cfg);
            let r1 = am_ir::interp::run(&optimized, &cfg);
            prop_assert_eq!(r0.observable(), r1.observable());
        }
    }
}
