//! Lowering from the while-language AST to `am-ir` flow graphs.
//!
//! Nested expressions are decomposed into 3-address form using fresh `_tN`
//! variables (the canonical decomposition of Sec. 6); control constructs
//! become the standard flow-graph shapes. Branch nodes carry the condition
//! as a [`am_ir::Instr::Branch`] with successor 0 the true edge.

use std::collections::HashSet;

use am_ir::{BinOp, Cond, FlowGraph, Instr, NodeId, Operand, Term, Var};

use crate::ast::{LExpr, Program, Stmt};

struct Lowerer {
    g: FlowGraph,
    fresh_counter: usize,
    taken: HashSet<String>,
    node_counter: usize,
}

impl Lowerer {
    fn fresh_var(&mut self) -> Var {
        loop {
            self.fresh_counter += 1;
            let name = format!("_t{}", self.fresh_counter);
            if !self.taken.contains(&name) {
                return self.g.pool_mut().intern(&name);
            }
        }
    }

    fn fresh_node(&mut self, hint: &str) -> NodeId {
        self.node_counter += 1;
        let label = format!("{hint}{}", self.node_counter);
        self.g.add_node(&label)
    }

    /// Lowers `e` to an operand, appending decomposition assignments.
    fn operand(&mut self, e: &LExpr, instrs: &mut Vec<Instr>) -> Operand {
        match e {
            LExpr::Var(name) => Operand::Var(self.g.pool_mut().intern(name)),
            LExpr::Const(c) => Operand::Const(*c),
            LExpr::Binary { .. } => {
                let term = self.term(e, instrs);
                let v = self.fresh_var();
                instrs.push(Instr::Assign { lhs: v, rhs: term });
                Operand::Var(v)
            }
        }
    }

    /// Lowers `e` to a 3-address term, appending decomposition assignments
    /// for deeper sub-expressions.
    fn term(&mut self, e: &LExpr, instrs: &mut Vec<Instr>) -> Term {
        match e {
            LExpr::Var(_) | LExpr::Const(_) => Term::Operand(self.operand(e, instrs)),
            LExpr::Binary { op, lhs, rhs } => {
                let l = self.operand(lhs, instrs);
                let r = self.operand(rhs, instrs);
                Term::Binary {
                    op: *op,
                    lhs: l,
                    rhs: r,
                }
            }
        }
    }

    /// Lowers a condition: a relational top-level operator keeps both sides
    /// as terms; anything else becomes `e != 0`.
    fn cond(&mut self, e: &LExpr, instrs: &mut Vec<Instr>) -> Cond {
        match e {
            LExpr::Binary { op, lhs, rhs } if op.is_relational() => {
                let l = self.term(lhs, instrs);
                let r = self.term(rhs, instrs);
                Cond {
                    op: *op,
                    lhs: l,
                    rhs: r,
                }
            }
            other => {
                let t = self.term(other, instrs);
                Cond {
                    op: BinOp::Ne,
                    lhs: t,
                    rhs: Term::from(0),
                }
            }
        }
    }

    /// Lowers a statement sequence starting in `cur`; returns the node
    /// where control continues.
    fn seq(&mut self, stmts: &[Stmt], mut cur: NodeId) -> NodeId {
        for stmt in stmts {
            cur = self.stmt(stmt, cur);
        }
        cur
    }

    fn stmt(&mut self, stmt: &Stmt, cur: NodeId) -> NodeId {
        match stmt {
            Stmt::Skip => {
                self.g.block_mut(cur).instrs.push(Instr::Skip);
                cur
            }
            Stmt::Assign { lhs, rhs } => {
                let mut instrs = Vec::new();
                let term = self.term(rhs, &mut instrs);
                let lhs = self.g.pool_mut().intern(lhs);
                instrs.push(Instr::assign(lhs, term));
                self.g.block_mut(cur).instrs.extend(instrs);
                cur
            }
            Stmt::Print(args) => {
                let mut instrs = Vec::new();
                let ops: Vec<Operand> = args.iter().map(|a| self.operand(a, &mut instrs)).collect();
                instrs.push(Instr::Out(ops));
                self.g.block_mut(cur).instrs.extend(instrs);
                cur
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let cond_node = self.fresh_node("if");
                self.g.add_edge(cur, cond_node);
                let mut instrs = Vec::new();
                let c = self.cond(cond, &mut instrs);
                instrs.push(Instr::Branch(c));
                self.g.block_mut(cond_node).instrs.extend(instrs);
                let then_entry = self.fresh_node("then");
                let else_entry = self.fresh_node("else");
                self.g.add_edge(cond_node, then_entry);
                self.g.add_edge(cond_node, else_entry);
                let then_exit = self.seq(then_body, then_entry);
                let else_exit = self.seq(else_body, else_entry);
                let join = self.fresh_node("join");
                self.g.add_edge(then_exit, join);
                self.g.add_edge(else_exit, join);
                join
            }
            Stmt::While { cond, body } => {
                let header = self.fresh_node("while");
                self.g.add_edge(cur, header);
                let mut instrs = Vec::new();
                let c = self.cond(cond, &mut instrs);
                instrs.push(Instr::Branch(c));
                self.g.block_mut(header).instrs.extend(instrs);
                let body_entry = self.fresh_node("body");
                let exit = self.fresh_node("endwhile");
                self.g.add_edge(header, body_entry);
                self.g.add_edge(header, exit);
                let body_exit = self.seq(body, body_entry);
                self.g.add_edge(body_exit, header);
                exit
            }
            Stmt::DoWhile { body, cond } => {
                let body_entry = self.fresh_node("dobody");
                self.g.add_edge(cur, body_entry);
                let body_exit = self.seq(body, body_entry);
                let check = self.fresh_node("docheck");
                self.g.add_edge(body_exit, check);
                let mut instrs = Vec::new();
                let c = self.cond(cond, &mut instrs);
                instrs.push(Instr::Branch(c));
                self.g.block_mut(check).instrs.extend(instrs);
                let exit = self.fresh_node("enddo");
                self.g.add_edge(check, body_entry);
                self.g.add_edge(check, exit);
                exit
            }
        }
    }
}

fn source_names(stmts: &[Stmt], out: &mut HashSet<String>) {
    fn expr_names(e: &LExpr, out: &mut HashSet<String>) {
        match e {
            LExpr::Var(n) => {
                out.insert(n.clone());
            }
            LExpr::Const(_) => {}
            LExpr::Binary { lhs, rhs, .. } => {
                expr_names(lhs, out);
                expr_names(rhs, out);
            }
        }
    }
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => {
                out.insert(lhs.clone());
                expr_names(rhs, out);
            }
            Stmt::Skip => {}
            Stmt::Print(args) => args.iter().for_each(|a| expr_names(a, out)),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                expr_names(cond, out);
                source_names(then_body, out);
                source_names(else_body, out);
            }
            Stmt::While { cond, body } | Stmt::DoWhile { cond, body } => {
                expr_names(cond, out);
                source_names(body, out);
            }
        }
    }
}

/// Lowers a while-language program to a flow graph.
///
/// The graph starts at an `entry` node and ends at an `exit` node; it is
/// valid by construction (asserted in debug builds). Critical edges are
/// *not* split; the optimizer entry points do that themselves.
pub fn lower(program: &Program) -> FlowGraph {
    let mut taken = HashSet::new();
    source_names(&program.body, &mut taken);
    let mut lowerer = Lowerer {
        g: FlowGraph::new(),
        fresh_counter: 0,
        taken,
        node_counter: 0,
    };
    let entry = lowerer.g.add_node("entry");
    lowerer.g.set_start(entry);
    let last = lowerer.seq(&program.body, entry);
    let exit = lowerer.fresh_node("exit");
    lowerer.g.add_edge(last, exit);
    lowerer.g.set_end(exit);
    debug_assert_eq!(lowerer.g.validate(), Ok(()));
    lowerer.g
}

/// Convenience: parse and lower in one step.
///
/// # Errors
///
/// Returns the parse error, if any; lowering itself cannot fail.
pub fn compile(src: &str) -> Result<FlowGraph, crate::parse::LangError> {
    Ok(lower(&crate::parse::parse_program(src)?))
}
