//! A small structured while-language that compiles to [`am_ir`] flow
//! graphs — the "realistic structured programs" of the paper's Sec. 4.5,
//! as a usable frontend.
//!
//! # Syntax
//!
//! ```text
//! // assignment (expressions arbitrarily nested), skip, print
//! sum := 0;
//! // while may run zero times; do-while runs at least once;
//! // for (init; cond; step) desugars to init + while.
//! for (i := 0; i < n; i := i + 1) {
//!     sum := sum + i;
//! }
//! do {
//!     addr := base + i * cols;     // decomposed to 3-address form
//!     sum := sum + addr % 97;
//!     i := i - 1;
//! } while (i > 0);
//! print(sum, -sum);
//! ```
//!
//! # Examples
//!
//! ```
//! use am_lang::compile;
//! use am_core::global::optimize;
//! use am_ir::interp::{run, Config};
//!
//! let g = compile("x := (a+b)*(a+b); print(x);")?;
//! let optimized = optimize(&g).program;
//! let cfg = Config::with_inputs(vec![("a", 2), ("b", 3)]);
//! let before = run(&g, &cfg);
//! let after = run(&optimized, &cfg);
//! assert_eq!(before.outputs, vec![vec![25]]);
//! assert_eq!(before.observable(), after.observable());
//! assert!(after.expr_evals < before.expr_evals); // a+b computed once
//! # Ok::<(), am_lang::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod lower;
mod parse;
mod print;
pub mod source;

pub use ast::{LExpr, Program, Stmt};
pub use lower::{compile, lower};
pub use parse::{parse_program, LangError};
pub use print::{expr_to_source, to_source};
pub use source::{compile_source, SourceError, SourceKind};

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::interp::{run, Config};

    #[test]
    fn straight_line_program() {
        let g = compile("x := a + b; y := x * 2; print(x, y);").unwrap();
        assert_eq!(g.validate(), Ok(()));
        let r = run(&g, &Config::with_inputs(vec![("a", 1), ("b", 2)]));
        assert_eq!(r.outputs, vec![vec![3, 6]]);
    }

    #[test]
    fn nested_expressions_are_decomposed() {
        let g = compile("x := a + b * c - d; print(x);").unwrap();
        // Every instruction is 3-address.
        for (_, instr) in g.locs() {
            if let am_ir::Instr::Assign { rhs, .. } = instr {
                let _ = rhs; // Terms are 3-address by type construction.
            }
        }
        let r = run(
            &g,
            &Config::with_inputs(vec![("a", 10), ("b", 2), ("c", 3), ("d", 1)]),
        );
        assert_eq!(r.outputs, vec![vec![10 + 2 * 3 - 1]]);
    }

    #[test]
    fn while_loop_semantics() {
        let g =
            compile("i := 0; s := 0; while (i < n) { s := s + i; i := i + 1; } print(s);").unwrap();
        for n in [0, 1, 5] {
            let r = run(&g, &Config::with_inputs(vec![("n", n)]));
            let expected: i64 = (0..n).sum();
            assert_eq!(r.outputs, vec![vec![expected]], "n={n}");
        }
    }

    #[test]
    fn do_while_runs_at_least_once() {
        let g = compile("i := 0; do { i := i + 1; } while (i < n); print(i);").unwrap();
        let r0 = run(&g, &Config::with_inputs(vec![("n", 0)]));
        assert_eq!(r0.outputs, vec![vec![1]], "body runs once even when n=0");
        let r5 = run(&g, &Config::with_inputs(vec![("n", 5)]));
        assert_eq!(r5.outputs, vec![vec![5]]);
    }

    #[test]
    fn if_else_and_if_without_else() {
        let g =
            compile("if (a > b) { m := a; } else { m := b; } if (m > 100) { m := 100; } print(m);")
                .unwrap();
        assert_eq!(
            run(&g, &Config::with_inputs(vec![("a", 3), ("b", 7)])).outputs,
            vec![vec![7]]
        );
        assert_eq!(
            run(&g, &Config::with_inputs(vec![("a", 300), ("b", 7)])).outputs,
            vec![vec![100]]
        );
    }

    #[test]
    fn print_accepts_expressions() {
        let g = compile("print(a + b, 42, a);").unwrap();
        let r = run(&g, &Config::with_inputs(vec![("a", 1), ("b", 2)]));
        assert_eq!(r.outputs, vec![vec![3, 42, 1]]);
    }

    #[test]
    fn fresh_variables_avoid_source_names() {
        let g = compile("_t1 := 9; x := a + b * c; print(x, _t1);").unwrap();
        let r = run(&g, &Config::with_inputs(vec![("a", 1), ("b", 2), ("c", 3)]));
        assert_eq!(r.outputs, vec![vec![7, 9]]);
    }

    #[test]
    fn parse_errors_carry_lines() {
        let err = parse_program("x := 1;\ny = 2;").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains(":="), "{err}");
        assert!(parse_program("if a > b { }").is_err(), "missing parens");
        assert!(parse_program("do { } while (x);").is_ok());
        assert!(parse_program("do { } while (x)").is_err(), "missing semi");
    }

    #[test]
    fn comments_and_whitespace() {
        let g = compile("// leading comment\nx := 1; # trailing style\nprint(x);").unwrap();
        let r = run(&g, &Config::default());
        assert_eq!(r.outputs, vec![vec![1]]);
    }

    #[test]
    fn graphs_are_reducible() {
        let g = compile(
            "i := 0; while (i < n) { if (i % 2 == 0) { s := s + i; } i := i + 1; } print(s);",
        )
        .unwrap();
        assert!(am_ir::analysis::is_reducible(&g));
    }

    #[test]
    fn optimizer_integration_do_while_invariants() {
        // The row-address motif: invariant computations leave the do-while
        // loop entirely under the full algorithm.
        let src = "i := 0; s := 0;\n\
             do {\n\
               row := base + k * cols;\n\
               s := s + row + i;\n\
               i := i + 1;\n\
             } while (i < n);\n\
             print(s);";
        let g = compile(src).unwrap();
        let optimized = am_core::global::optimize(&g).program;
        for n in [1, 3, 8] {
            let cfg = Config::with_inputs(vec![("base", 100), ("k", 2), ("cols", 10), ("n", n)]);
            let a = run(&g, &cfg);
            let b = run(&optimized, &cfg);
            assert_eq!(a.observable(), b.observable(), "n={n}");
            assert!(b.expr_evals <= a.expr_evals, "n={n}");
            if n > 1 {
                assert!(b.expr_evals < a.expr_evals, "n={n}: invariants should move");
            }
        }
    }

    #[test]
    fn for_loop_desugars_to_init_plus_while() {
        let g =
            compile("s := 0; for (i := 0; i < n; i := i + 1) { s := s + i; } print(s);").unwrap();
        for n in [0, 1, 6] {
            let r = run(&g, &Config::with_inputs(vec![("n", n)]));
            let expected: i64 = (0..n).sum();
            assert_eq!(r.outputs, vec![vec![expected]], "n={n}");
        }
        // AST shape: assignment then while.
        let p = parse_program("for (i := 0; i < n; i := i + 1) { skip; }").unwrap();
        assert!(matches!(p.body[0], Stmt::Assign { .. }));
        assert!(matches!(p.body[1], Stmt::While { .. }));
    }

    #[test]
    fn unary_minus_on_expressions() {
        let g = compile("x := -a; y := -(a + b); z := 3 - -2; print(x, y, z);").unwrap();
        let r = run(&g, &Config::with_inputs(vec![("a", 5), ("b", 2)]));
        assert_eq!(r.outputs, vec![vec![-5, -7, 5]]);
    }

    #[test]
    fn stmt_count_is_recursive() {
        let p = parse_program("x := 1; if (x) { y := 2; } else { skip; } while (x) { x := 0; }")
            .unwrap();
        assert_eq!(p.stmt_count(), 6);
    }
}
