//! Pretty-printer for the while-language — round-trips through
//! [`parse_program`](crate::parse_program).

use std::fmt::Write as _;

use am_ir::BinOp;

use crate::ast::{LExpr, Program, Stmt};

fn level(op: BinOp) -> u8 {
    match op {
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::EqOp | BinOp::Ne => 0,
        BinOp::Add | BinOp::Sub => 1,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 2,
    }
}

fn expr_prec(e: &LExpr, parent_level: u8, out: &mut String) {
    match e {
        LExpr::Var(n) => out.push_str(n),
        LExpr::Const(c) => {
            let _ = write!(out, "{c}");
        }
        LExpr::Binary { op, lhs, rhs } => {
            let my = level(*op);
            let need_parens = my < parent_level;
            if need_parens {
                out.push('(');
            }
            expr_prec(lhs, my, out);
            let _ = write!(out, " {} ", op.symbol());
            // Operators are left-associative: parenthesize a right child at
            // the same level.
            expr_prec(rhs, my + 1, out);
            if need_parens {
                out.push(')');
            }
        }
    }
}

/// Renders an expression in source syntax.
pub fn expr_to_source(e: &LExpr) -> String {
    let mut out = String::new();
    expr_prec(e, 0, &mut out);
    out
}

fn stmts(body: &[Stmt], indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    for s in body {
        match s {
            Stmt::Skip => {
                let _ = writeln!(out, "{pad}skip;");
            }
            Stmt::Assign { lhs, rhs } => {
                let _ = writeln!(out, "{pad}{lhs} := {};", expr_to_source(rhs));
            }
            Stmt::Print(args) => {
                let rendered: Vec<String> = args.iter().map(expr_to_source).collect();
                let _ = writeln!(out, "{pad}print({});", rendered.join(", "));
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let _ = writeln!(out, "{pad}if ({}) {{", expr_to_source(cond));
                stmts(then_body, indent + 1, out);
                if else_body.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    stmts(else_body, indent + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            Stmt::While { cond, body } => {
                let _ = writeln!(out, "{pad}while ({}) {{", expr_to_source(cond));
                stmts(body, indent + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::DoWhile { body, cond } => {
                let _ = writeln!(out, "{pad}do {{");
                stmts(body, indent + 1, out);
                let _ = writeln!(out, "{pad}}} while ({});", expr_to_source(cond));
            }
        }
    }
}

/// Renders a program in source syntax; parsing the result yields an equal
/// AST.
pub fn to_source(p: &Program) -> String {
    let mut out = String::new();
    stmts(&p.body, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn print_parses_back() {
        let src = "x := a + b * c;\nif (x > 0) {\n    print(x);\n} else {\n    skip;\n}\n";
        let p = parse_program(src).unwrap();
        let rendered = to_source(&p);
        let reparsed = parse_program(&rendered).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn parentheses_preserve_structure() {
        // (a + b) * c must not print as a + b * c.
        let p = parse_program("x := (a + b) * c;").unwrap();
        let rendered = to_source(&p);
        assert!(rendered.contains("(a + b) * c"), "{rendered}");
        assert_eq!(parse_program(&rendered).unwrap(), p);
    }

    #[test]
    fn left_associativity_round_trips() {
        // a - b - c is (a-b)-c; a - (b - c) needs parens.
        let p1 = parse_program("x := a - b - c;").unwrap();
        assert_eq!(parse_program(&to_source(&p1)).unwrap(), p1);
        let p2 = parse_program("x := a - (b - c);").unwrap();
        let rendered = to_source(&p2);
        assert!(rendered.contains("a - (b - c)"), "{rendered}");
        assert_eq!(parse_program(&rendered).unwrap(), p2);
    }
}
