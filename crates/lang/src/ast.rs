//! The abstract syntax of the while-language.

use am_ir::BinOp;

/// An expression with named variables, arbitrarily nested. Lowering interns
/// names and decomposes nesting into 3-address form (Sec. 6 of the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LExpr {
    /// A variable reference by name.
    Var(String),
    /// An integer literal.
    Const(i64),
    /// `lhs op rhs`.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left subexpression.
        lhs: Box<LExpr>,
        /// Right subexpression.
        rhs: Box<LExpr>,
    },
}

impl LExpr {
    /// Builds a binary node.
    pub fn binary(op: BinOp, lhs: LExpr, rhs: LExpr) -> LExpr {
        LExpr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Operator nesting depth: 0 for a leaf.
    pub fn depth(&self) -> usize {
        match self {
            LExpr::Var(_) | LExpr::Const(_) => 0,
            LExpr::Binary { lhs, rhs, .. } => 1 + lhs.depth().max(rhs.depth()),
        }
    }
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `v := expr;` — expressions may be arbitrarily nested.
    Assign {
        /// Target variable name.
        lhs: String,
        /// Right-hand side expression.
        rhs: LExpr,
    },
    /// `skip;`
    Skip,
    /// `print(e1, ..., ek);` — lowered to `out(...)` (non-variable
    /// arguments get a fresh variable first).
    Print(Vec<LExpr>),
    /// `if (cond) { then } else { else }` — the else block may be empty.
    If {
        /// Branch condition.
        cond: LExpr,
        /// Then block.
        then_body: Vec<Stmt>,
        /// Else block (empty for if-without-else).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { body }` — may execute zero times.
    While {
        /// Loop condition.
        cond: LExpr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `do { body } while (cond);` — executes at least once. This is the
    /// shape where loop-invariant *assignment* motion is admissible (the
    /// body is unavoidable).
    DoWhile {
        /// Loop body.
        body: Vec<Stmt>,
        /// Loop condition.
        cond: LExpr,
    },
}

/// A parsed program: a statement sequence.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Program {
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Number of statements, recursively.
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => 1 + count(then_body) + count(else_body),
                    Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body)
    }
}
