//! Lexer and recursive-descent parser for the while-language.

use std::fmt;
use std::iter::Peekable;
use std::str::Chars;

use am_ir::BinOp;

use crate::ast::{LExpr, Program, Stmt};

/// A parse failure with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LangError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LangError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    KwIf,
    KwElse,
    KwWhile,
    KwDo,
    KwFor,
    KwSkip,
    KwPrint,
    Assign,
    Semi,
    Comma,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Op(BinOp),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::KwIf => write!(f, "if"),
            Tok::KwElse => write!(f, "else"),
            Tok::KwWhile => write!(f, "while"),
            Tok::KwDo => write!(f, "do"),
            Tok::KwFor => write!(f, "for"),
            Tok::KwSkip => write!(f, "skip"),
            Tok::KwPrint => write!(f, "print"),
            Tok::Assign => write!(f, ":="),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Op(op) => write!(f, "{}", op.symbol()),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, LangError> {
    let mut out = Vec::new();
    let mut chars: Peekable<Chars<'_>> = src.chars().peekable();
    let mut line = 1;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                match chars.peek() {
                    Some('/') => {
                        while let Some(&c) = chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            chars.next();
                        }
                    }
                    _ => out.push((Tok::Op(BinOp::Div), line)),
                }
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                }
            }
            ';' => {
                chars.next();
                out.push((Tok::Semi, line));
            }
            ',' => {
                chars.next();
                out.push((Tok::Comma, line));
            }
            '(' => {
                chars.next();
                out.push((Tok::LParen, line));
            }
            ')' => {
                chars.next();
                out.push((Tok::RParen, line));
            }
            '{' => {
                chars.next();
                out.push((Tok::LBrace, line));
            }
            '}' => {
                chars.next();
                out.push((Tok::RBrace, line));
            }
            '+' => {
                chars.next();
                out.push((Tok::Op(BinOp::Add), line));
            }
            '-' => {
                chars.next();
                out.push((Tok::Op(BinOp::Sub), line));
            }
            '*' => {
                chars.next();
                out.push((Tok::Op(BinOp::Mul), line));
            }
            '%' => {
                chars.next();
                out.push((Tok::Op(BinOp::Mod), line));
            }
            ':' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push((Tok::Assign, line));
                } else {
                    return Err(LangError {
                        line,
                        message: "expected ':='".into(),
                    });
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push((Tok::Op(BinOp::Le), line));
                } else {
                    out.push((Tok::Op(BinOp::Lt), line));
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push((Tok::Op(BinOp::Ge), line));
                } else {
                    out.push((Tok::Op(BinOp::Gt), line));
                }
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push((Tok::Op(BinOp::EqOp), line));
                } else {
                    return Err(LangError {
                        line,
                        message: "expected '==' (assignment is ':=')".into(),
                    });
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push((Tok::Op(BinOp::Ne), line));
                } else {
                    return Err(LangError {
                        line,
                        message: "expected '!='".into(),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value = text.parse().map_err(|_| LangError {
                    line,
                    message: format!("integer '{text}' out of range"),
                })?;
                out.push((Tok::Int(value), line));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let tok = match text.as_str() {
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "do" => Tok::KwDo,
                    "for" => Tok::KwFor,
                    "skip" => Tok::KwSkip,
                    "print" => Tok::KwPrint,
                    _ => Tok::Ident(text),
                };
                out.push((tok, line));
            }
            other => {
                return Err(LangError {
                    line,
                    message: format!("unexpected character '{other}'"),
                });
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn advance(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn err(&self, message: impl Into<String>) -> LangError {
        LangError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<(), LangError> {
        match self.advance() {
            Some(ref t) if t == want => Ok(()),
            Some(t) => Err(self.err(format!("expected {want}, found {t}"))),
            None => Err(self.err(format!("expected {want}, found end of input"))),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(&Tok::LBrace)?;
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unterminated block"));
            }
            body.extend(self.stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(body)
    }

    /// Parses one surface statement; `for` desugars to two statements
    /// (its init assignment plus a while loop), hence the vector.
    fn stmt(&mut self) -> Result<Vec<Stmt>, LangError> {
        match self.peek().cloned() {
            Some(Tok::KwSkip) => {
                self.advance();
                self.expect(&Tok::Semi)?;
                Ok(vec![Stmt::Skip])
            }
            Some(Tok::KwPrint) => {
                self.advance();
                self.expect(&Tok::LParen)?;
                let mut args = Vec::new();
                if self.peek() != Some(&Tok::RParen) {
                    loop {
                        args.push(self.expr(0)?);
                        if self.peek() == Some(&Tok::Comma) {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                Ok(vec![Stmt::Print(args)])
            }
            Some(Tok::KwIf) => {
                self.advance();
                self.expect(&Tok::LParen)?;
                let cond = self.expr(0)?;
                self.expect(&Tok::RParen)?;
                let then_body = self.block()?;
                let else_body = if self.peek() == Some(&Tok::KwElse) {
                    self.advance();
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(vec![Stmt::If {
                    cond,
                    then_body,
                    else_body,
                }])
            }
            Some(Tok::KwWhile) => {
                self.advance();
                self.expect(&Tok::LParen)?;
                let cond = self.expr(0)?;
                self.expect(&Tok::RParen)?;
                let body = self.block()?;
                Ok(vec![Stmt::While { cond, body }])
            }
            Some(Tok::KwFor) => {
                // for (v := e1; cond; v2 := e2) { body }  desugars to
                // v := e1; while (cond) { body; v2 := e2; }
                self.advance();
                self.expect(&Tok::LParen)?;
                let init = self.assign_clause()?;
                self.expect(&Tok::Semi)?;
                let cond = self.expr(0)?;
                self.expect(&Tok::Semi)?;
                let step = self.assign_clause()?;
                self.expect(&Tok::RParen)?;
                let mut body = self.block()?;
                body.push(step);
                Ok(vec![init, Stmt::While { cond, body }])
            }
            Some(Tok::KwDo) => {
                self.advance();
                let body = self.block()?;
                self.expect(&Tok::KwWhile)?;
                self.expect(&Tok::LParen)?;
                let cond = self.expr(0)?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                Ok(vec![Stmt::DoWhile { body, cond }])
            }
            Some(Tok::Ident(name)) => {
                self.advance();
                self.expect(&Tok::Assign)?;
                let rhs = self.expr(0)?;
                self.expect(&Tok::Semi)?;
                Ok(vec![Stmt::Assign { lhs: name, rhs }])
            }
            Some(t) => Err(self.err(format!("expected a statement, found {t}"))),
            None => Err(self.err("expected a statement, found end of input")),
        }
    }

    /// An assignment without its trailing semicolon (for-loop clauses).
    fn assign_clause(&mut self) -> Result<Stmt, LangError> {
        match self.advance() {
            Some(Tok::Ident(name)) => {
                self.expect(&Tok::Assign)?;
                let rhs = self.expr(0)?;
                Ok(Stmt::Assign { lhs: name, rhs })
            }
            Some(t) => Err(self.err(format!("expected an assignment, found {t}"))),
            None => Err(self.err("expected an assignment, found end of input")),
        }
    }

    fn level(op: BinOp) -> u8 {
        match op {
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::EqOp | BinOp::Ne => 0,
            BinOp::Add | BinOp::Sub => 1,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 2,
        }
    }

    fn expr(&mut self, min_level: u8) -> Result<LExpr, LangError> {
        let mut lhs = self.primary()?;
        while let Some(Tok::Op(op)) = self.peek().copied_op() {
            let level = Self::level(op);
            if level < min_level {
                break;
            }
            self.advance();
            let rhs = self.expr(level + 1)?;
            lhs = LExpr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<LExpr, LangError> {
        match self.advance() {
            Some(Tok::LParen) => {
                let e = self.expr(0)?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => Ok(LExpr::Var(name)),
            Some(Tok::Int(i)) => Ok(LExpr::Const(i)),
            Some(Tok::Op(BinOp::Sub)) => match self.peek() {
                Some(Tok::Int(_)) => {
                    let Some(Tok::Int(i)) = self.advance() else {
                        unreachable!()
                    };
                    Ok(LExpr::Const(-i))
                }
                // General unary minus: -e is 0 - e.
                _ => {
                    let e = self.primary()?;
                    Ok(LExpr::binary(BinOp::Sub, LExpr::Const(0), e))
                }
            },
            Some(t) => Err(self.err(format!("expected an expression, found {t}"))),
            None => Err(self.err("expected an expression, found end of input")),
        }
    }
}

trait CopiedOp {
    fn copied_op(&self) -> Option<Tok>;
}

impl CopiedOp for Option<&Tok> {
    fn copied_op(&self) -> Option<Tok> {
        match self {
            Some(Tok::Op(op)) => Some(Tok::Op(*op)),
            _ => None,
        }
    }
}

/// Parses a while-language program.
///
/// # Errors
///
/// Returns a [`LangError`] with the offending source line on lexical or
/// syntactic problems.
pub fn parse_program(src: &str) -> Result<Program, LangError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut body = Vec::new();
    while p.peek().is_some() {
        body.extend(p.stmt()?);
    }
    Ok(Program { body })
}
