//! File-type dispatch: one entry point that accepts either frontend.
//!
//! The workspace has two textual program formats — `.wl` while-language
//! source (this crate) and `.ir` flow-graph text (`am_ir::text`). Batch
//! tools should not care which one they were handed; [`compile_source`]
//! dispatches on a [`SourceKind`], usually derived from the file extension
//! with [`SourceKind::from_path`].

use std::fmt;
use std::path::Path;

use am_ir::text::{parse_with_mode, Mode, ParseError};
use am_ir::FlowGraph;

use crate::parse::LangError;

/// Which frontend a piece of source text belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// While-language source (`.wl`), lowered through this crate.
    While,
    /// Flow-graph text (`.ir`), parsed in [`Mode::Decompose`] so nested
    /// expressions are legal and broken into 3-address form.
    Ir,
}

impl SourceKind {
    /// Derives the kind from a file extension: `wl` → [`SourceKind::While`],
    /// `ir` → [`SourceKind::Ir`], anything else → `None`.
    pub fn from_path(path: &Path) -> Option<SourceKind> {
        match path.extension().and_then(|e| e.to_str()) {
            Some("wl") => Some(SourceKind::While),
            Some("ir") => Some(SourceKind::Ir),
            _ => None,
        }
    }
}

impl fmt::Display for SourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceKind::While => write!(f, "wl"),
            SourceKind::Ir => write!(f, "ir"),
        }
    }
}

/// A frontend failure from either parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SourceError {
    /// The while-language parser rejected the input.
    Lang(LangError),
    /// The flow-graph parser rejected the input.
    Ir(ParseError),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Lang(e) => write!(f, "{e}"),
            SourceError::Ir(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<LangError> for SourceError {
    fn from(e: LangError) -> Self {
        SourceError::Lang(e)
    }
}

impl From<ParseError> for SourceError {
    fn from(e: ParseError) -> Self {
        SourceError::Ir(e)
    }
}

/// Compiles `text` to a flow graph according to `kind`.
pub fn compile_source(kind: SourceKind, text: &str) -> Result<FlowGraph, SourceError> {
    match kind {
        SourceKind::While => Ok(crate::compile(text)?),
        SourceKind::Ir => Ok(parse_with_mode(text, Mode::Decompose)?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_follows_the_extension() {
        assert_eq!(
            SourceKind::from_path(Path::new("a/b.wl")),
            Some(SourceKind::While)
        );
        assert_eq!(
            SourceKind::from_path(Path::new("b.ir")),
            Some(SourceKind::Ir)
        );
        assert_eq!(SourceKind::from_path(Path::new("b.txt")), None);
        assert_eq!(SourceKind::from_path(Path::new("no_extension")), None);
    }

    #[test]
    fn both_frontends_dispatch() {
        let wl = compile_source(SourceKind::While, "x := a + b; print(x);").unwrap();
        assert_eq!(wl.validate(), Ok(()));
        let ir = compile_source(
            SourceKind::Ir,
            "start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e",
        )
        .unwrap();
        assert_eq!(ir.validate(), Ok(()));
        assert!(compile_source(SourceKind::While, "x = 1;").is_err());
        assert!(compile_source(SourceKind::Ir, "start\nmangled").is_err());
    }
}
