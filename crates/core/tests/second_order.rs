//! The four second-order effects of Sec. 4.3, each isolated in a minimal
//! example: a single pass of the enabled procedure cannot make the change,
//! the RAE⇄AHT fixpoint can.

use am_core::hoist::hoist_assignments;
use am_core::motion::assignment_motion;
use am_core::rae::eliminate_redundant_assignments;
use am_ir::text::{parse, to_text};
use am_ir::FlowGraph;

fn prepared(src: &str) -> FlowGraph {
    let mut g = parse(src).unwrap();
    g.split_critical_edges();
    g
}

#[test]
fn hoisting_enables_elimination() {
    // Fig. 8: eliminating x := y+z at the join is impossible until the
    // blocker a := x+y is hoisted out of the way.
    let mut fig8 = am_core::restricted::fig8_example();
    fig8.split_critical_edges();
    let mut rae_alone = fig8.clone();
    let out = eliminate_redundant_assignments(&mut rae_alone);
    assert_eq!(out.eliminated, 0, "no elimination before hoisting");
    let stats = assignment_motion(&mut fig8);
    assert!(stats.converged);
    assert!(stats.eliminated >= 1, "hoisting enabled the elimination");
    let n4 = fig8.nodes().find(|&n| fig8.label(n) == "4").unwrap();
    assert_eq!(fig8.block(n4).instrs.len(), 1, "{}", to_text(&fig8));
}

#[test]
fn hoisting_enables_hoisting() {
    // w2 := w1+1 is blocked by w1 := a+1 in the do-while body; once w1
    // hoists out, w2 follows the next round.
    let src = "start s\nend e\n\
         node s { skip }\n\
         node b { w1 := a+1; w2 := w1+1; s0 := s0+w2; i := i-1 }\n\
         node c { branch i > 0 }\n\
         node e { out(s0) }\n\
         edge s -> b\nedge b -> c\nedge c -> b, e";
    let mut g = prepared(src);
    // One hoisting pass moves w1 but w2 is still blocked inside the body.
    let mut one_pass = g.clone();
    hoist_assignments(&mut one_pass);
    let b1 = one_pass
        .nodes()
        .find(|&n| one_pass.label(n) == "b")
        .unwrap();
    let body1: Vec<String> = one_pass
        .block(b1)
        .instrs
        .iter()
        .map(|i| i.display(one_pass.pool()))
        .collect();
    assert!(
        !body1.iter().any(|s| s == "w1 := a+1"),
        "first pass hoists w1: {body1:?}"
    );
    assert!(
        body1.iter().any(|s| s == "w2 := w1+1"),
        "w2 still inside after one pass: {body1:?}"
    );
    // The fixpoint clears both.
    let stats = assignment_motion(&mut g);
    assert!(stats.converged);
    assert!(stats.rounds >= 2);
    let b = g.nodes().find(|&n| g.label(n) == "b").unwrap();
    let body: Vec<String> = g
        .block(b)
        .instrs
        .iter()
        .map(|i| i.display(g.pool()))
        .collect();
    assert!(!body.iter().any(|s| s.contains("w1 := a+1")), "{body:?}");
    assert!(!body.iter().any(|s| s.contains("w2 := w1+1")), "{body:?}");
}

#[test]
fn elimination_enables_hoisting() {
    // The running example's core: y := c+d in the loop blocks x := y+z
    // (it writes y); only after RAE removes it can x := y+z leave.
    let src = "start 1\nend 4\n\
         node 1 { y := c+d }\n\
         node 2 { branch q > 0 }\n\
         node 3 { y := c+d; x := y+z; q := q-1 }\n\
         node 4 { x := y+z; out(x,y,q) }\n\
         edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2";
    let mut g = prepared(src);
    // Hoisting alone cannot move x := y+z out of node 3 (blocked by the
    // preceding y := c+d).
    let mut hoist_only = g.clone();
    hoist_assignments(&mut hoist_only);
    let n3 = hoist_only
        .nodes()
        .find(|&n| hoist_only.label(n) == "3")
        .unwrap();
    assert!(hoist_only
        .block(n3)
        .instrs
        .iter()
        .any(|i| i.display(hoist_only.pool()) == "x := y+z"));
    // The fixpoint moves it.
    let stats = assignment_motion(&mut g);
    assert!(stats.converged && stats.rounds >= 2);
    let n3 = g.nodes().find(|&n| g.label(n) == "3").unwrap();
    assert!(!g
        .block(n3)
        .instrs
        .iter()
        .any(|i| i.display(g.pool()) == "x := y+z"));
}

#[test]
fn elimination_enables_elimination() {
    // h := c+d; y := h in a loop: the copy y := h only becomes redundant
    // after the (syntactically killing) h := c+d above it is eliminated.
    let src = "start 1\nend 4\n\
         node 1 { h0 := c+d; y := h0 }\n\
         node 2 { branch q > 0 }\n\
         node 3 { h0 := c+d; y := h0; q := q-1 }\n\
         node 4 { out(y,q) }\n\
         edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2";
    let mut g = prepared(src);
    let first = eliminate_redundant_assignments(&mut g);
    assert_eq!(first.eliminated, 1, "only h0 := c+d falls in round one");
    let second = eliminate_redundant_assignments(&mut g);
    assert_eq!(second.eliminated, 1, "now y := h0 falls too");
    let n3 = g.nodes().find(|&n| g.label(n) == "3").unwrap();
    let body: Vec<String> = g
        .block(n3)
        .instrs
        .iter()
        .map(|i| i.display(g.pool()))
        .collect();
    assert_eq!(body, vec!["q := q-1"]);
}
