//! Hand-checked analysis facts on the running example — the Table 1 and
//! Table 2 predicate values one computes when tracing the paper by hand.

use am_core::{hoist, init, rae};
use am_dfa::PointGraph;
use am_ir::text::parse;
use am_ir::{AssignPattern, BinOp, FlowGraph, NodeId, PatternUniverse, Term};

const RUNNING_EXAMPLE: &str = "
    start 1
    end 4
    node 1 { y := c+d }
    node 2 { branch x+z > y+i }
    node 3 { y := c+d; x := y+z; i := i+x }
    node 4 { x := y+z; x := c+d; out(i,x,y) }
    edge 1 -> 2
    edge 2 -> 3, 4
    edge 3 -> 2
";

fn node(g: &FlowGraph, label: &str) -> NodeId {
    g.nodes().find(|&n| g.label(n) == label).unwrap()
}

fn pat(g: &FlowGraph, lhs: &str, op: BinOp, l: &str, r: &str) -> AssignPattern {
    let lv = g.pool().lookup(lhs).unwrap();
    let a = g.pool().lookup(l).unwrap();
    let b = g.pool().lookup(r).unwrap();
    AssignPattern::new(lv, Term::binary(op, a, b))
}

#[test]
fn table1_hoistability_on_the_raw_running_example() {
    let g = parse(RUNNING_EXAMPLE).unwrap();
    let analysis = hoist::analyze_hoisting(&g);
    let u = &analysis.universe;

    let y_cd = u.assign_id(&pat(&g, "y", BinOp::Add, "c", "d")).unwrap();
    let x_yz = u.assign_id(&pat(&g, "x", BinOp::Add, "y", "z")).unwrap();
    let n1 = node(&g, "1");
    let n2 = node(&g, "2");
    let n3 = node(&g, "3");
    let n4 = node(&g, "4");

    // y := c+d: candidates exist in nodes 1 and 3.
    assert!(analysis.loc_hoistable[n1.index()].contains(y_cd));
    assert!(analysis.loc_hoistable[n3.index()].contains(y_cd));
    assert!(!analysis.loc_hoistable[n2.index()].contains(y_cd));
    assert!(!analysis.loc_hoistable[n4.index()].contains(y_cd));

    // x := y+z: the occurrence in node 3 is blocked by y := c+d before it;
    // node 4's occurrence is a candidate.
    assert!(!analysis.loc_hoistable[n3.index()].contains(x_yz));
    assert!(analysis.loc_blocked[n3.index()].contains(x_yz));
    assert!(analysis.loc_hoistable[n4.index()].contains(x_yz));

    // The branch in node 2 uses x, blocking x := y+z from crossing it.
    assert!(analysis.loc_blocked[n2.index()].contains(x_yz));
    // x := y+z cannot be hoisted above node 2's entry before the
    // second-order effects kick in.
    assert!(!analysis.n_hoistable[n2.index()].contains(x_yz));
}

#[test]
fn table1_second_round_after_rae_unblocks_the_loop_assignment() {
    // After eliminating the redundant y := c+d in node 3 (and with the
    // branch decomposed by the initialization), x+z no longer pins x in
    // the condition and x := y+z becomes loop-hoistable — the second-order
    // effect the paper's Sec. 1.1 narrates.
    let mut g = parse(RUNNING_EXAMPLE).unwrap();
    g.split_critical_edges();
    init::initialize(&mut g);
    // One RAE pass removes the loop's h<c+d> initialization (redundant
    // w.r.t. node 1).
    let outcome = rae::eliminate_redundant_assignments(&mut g);
    assert!(outcome.eliminated >= 1);
    // After one hoisting pass the copy `y := h<c+d>` merges as well; the
    // motion loop finishes the job. We check the headline effect at the
    // fixpoint:
    let stats = am_core::motion::assignment_motion(&mut g);
    assert!(stats.converged);
    let n3 = node(&g, "3");
    let body: Vec<String> = g
        .block(n3)
        .instrs
        .iter()
        .map(|i| i.display(g.pool()))
        .collect();
    assert!(
        !body.iter().any(|s| s.contains("y+z")),
        "x := y+z must have left the loop: {body:?}"
    );
}

#[test]
fn table2_redundancy_on_the_initialized_example() {
    let mut g = parse(RUNNING_EXAMPLE).unwrap();
    g.split_critical_edges();
    init::initialize(&mut g);
    let u = PatternUniverse::collect(&g);
    let pg = PointGraph::build(&g);
    let sol = rae::redundancy(&pg, &u);

    // The pattern h<c+d> := c+d.
    let c = g.pool().lookup("c").unwrap();
    let d = g.pool().lookup("d").unwrap();
    let cd = Term::binary(BinOp::Add, c, d);
    let h_cd = g.pool().lookup("h<c+d>").unwrap();
    let p_init = u.assign_id(&AssignPattern::new(h_cd, cd)).unwrap();

    // At the entry of node 3's first instruction (the loop body's own
    // h<c+d> := c+d), the pattern is redundant: both paths into node 2 —
    // from node 1 and around the loop — carry it.
    let n3 = node(&g, "3");
    let first_of_3 = pg.first_of(n3);
    assert!(sol.before[first_of_3.index()].contains(p_init));

    // At the entry of node 1's own initialization it is not (boundary).
    let n1 = node(&g, "1");
    assert!(!sol.before[pg.first_of(n1).index()].contains(p_init));

    // The copy y := h<c+d> is NOT yet redundant at node 3: the preceding
    // h<c+d> := c+d (syntactically) redefines its source. Only after that
    // initialization is eliminated does the copy become redundant — an
    // elimination-elimination second-order effect (Sec. 4.3).
    let y = g.pool().lookup("y").unwrap();
    let p_copy = u.assign_id(&AssignPattern::new(y, h_cd)).unwrap();
    let second_of_3 = am_dfa::PointId(first_of_3.index() as u32 + 1);
    assert!(!sol.before[second_of_3.index()].contains(p_copy));
    {
        let mut g2 = g.clone();
        let out = rae::eliminate_redundant_assignments(&mut g2);
        assert!(out.eliminated >= 1);
        let u2 = PatternUniverse::collect(&g2);
        let pg2 = PointGraph::build(&g2);
        let sol2 = rae::redundancy(&pg2, &u2);
        let p_copy2 = u2.assign_id(&AssignPattern::new(y, h_cd)).unwrap();
        let n3_2 = node(&g2, "3");
        // y := h<c+d> is now the first instruction of node 3 and redundant.
        assert!(sol2.before[pg2.first_of(n3_2).index()].contains(p_copy2));
    }

    // But i := h<i+x> is self-dependent through i+x and never redundant.
    let i_var = g.pool().lookup("i").unwrap();
    let h_ix = g.pool().lookup("h<i+x>").unwrap();
    let p_i = u.assign_id(&AssignPattern::new(i_var, h_ix)).unwrap();
    for p in pg.points() {
        if let Some(instr) = pg.instr(p) {
            let pattern = AssignPattern::new(i_var, h_ix);
            if pattern.executed_by(instr) {
                assert!(
                    !sol.before[p.index()].contains(p_i),
                    "i := h<i+x> must not be redundant"
                );
            }
        }
    }
}

#[test]
fn fig14_snapshot_matches_the_paper() {
    // The AM-phase output (Fig. 14), node by node.
    let g = parse(RUNNING_EXAMPLE).unwrap();
    let result = am_core::global::optimize(&g);
    // The order of independent instructions within a block is not pinned
    // by the algorithm; compare node contents as line sets.
    let text = am_ir::alpha::canonical_text(result.after_motion.as_ref().unwrap());
    let node_lines = |label: &str| -> Vec<String> {
        let start = text.find(&format!("node {label} {{")).unwrap();
        let end = text[start..].find('}').unwrap() + start;
        let mut lines: Vec<String> = text[start..end]
            .lines()
            .skip(1)
            .map(|l| l.trim().to_owned())
            .filter(|l| !l.is_empty())
            .collect();
        lines.sort();
        lines
    };
    let mut expect1 = vec![
        "h1 := c+d",
        "y := h1",
        "h2 := x+z",
        "h3 := y+i",
        "h4 := y+z",
        "x := h4",
    ];
    expect1.sort_unstable();
    assert_eq!(node_lines("1"), expect1, "{text}");
    assert_eq!(node_lines("2"), vec!["branch h2 > h3"], "{text}");
    let mut expect3 = vec!["h5 := i+x", "i := h5", "h2 := x+z", "h3 := y+i"];
    expect3.sort_unstable();
    assert_eq!(node_lines("3"), expect3, "{text}");
    let mut expect4 = vec!["x := h1", "out(i,x,y)"];
    expect4.sort_unstable();
    assert_eq!(node_lines("4"), expect4, "{text}");
}

#[test]
fn insertion_points_respect_the_start_boundary() {
    // Table 1's N-INSERT with the (n = s) boundary term: a pattern
    // hoistable to the very top is inserted at the start node.
    let g = parse(
        "start s\nend e\n\
         node s { skip }\n\
         node m { skip }\n\
         node e { x := a+b; out(x) }\n\
         edge s -> m\nedge m -> e",
    )
    .unwrap();
    let analysis = hoist::analyze_hoisting(&g);
    let x_ab = analysis
        .universe
        .assign_id(&pat(&g, "x", BinOp::Add, "a", "b"))
        .unwrap();
    let s = node(&g, "s");
    assert!(analysis.n_hoistable[s.index()].contains(x_ab));
    assert!(analysis.n_insert[s.index()].contains(x_ab));
    // And nowhere else.
    for n in g.nodes() {
        if n != s {
            assert!(!analysis.n_insert[n.index()].contains(x_ab));
            assert!(!analysis.x_insert[n.index()].contains(x_ab));
        }
    }
}

#[test]
fn table3_delayability_and_usability_on_g_assmot() {
    // Table 3 predicates on the AM-phase output of the running example.
    let g0 = parse(RUNNING_EXAMPLE).unwrap();
    let result = am_core::global::optimize(&g0);
    let mut g = result.after_motion.clone().unwrap();
    let analysis = am_core::flush::analyze_flush(&mut g);
    let pg = PointGraph::build(&g);

    let find_instr = |needle: &str| -> am_dfa::PointId {
        pg.points()
            .find(|&p| {
                pg.instr(p)
                    .map(|i| i.display(g.pool()) == needle)
                    .unwrap_or(false)
            })
            .unwrap_or_else(|| panic!("instruction '{needle}' not found"))
    };

    // Pattern indices.
    let eid = |term: &str| -> usize {
        analysis
            .universe
            .expr_patterns()
            .find(|(_, t)| t.display(g.pool()) == term)
            .map(|(i, _)| i)
            .unwrap_or_else(|| panic!("pattern {term} not in universe"))
    };
    let cd = eid("c+d");
    let xz = eid("x+z");
    let yz = eid("y+z");

    // h<c+d> := c+d in node 1 delays exactly to its use y := h<c+d>:
    // N-DELAYABLE* holds at the use point, and the use point is latest
    // (USED kills delayability past it).
    let use_cd = find_instr("y := h<c+d>");
    assert!(analysis.delay.before[use_cd.index()].contains(cd));
    assert!(analysis.used[use_cd.index()].contains(cd));
    assert!(!analysis.delay.after[use_cd.index()].contains(cd));
    // h<c+d> is usable after that use (node 4 reads it): the instance is
    // kept rather than reconstructed.
    assert!(analysis.usable.after[use_cd.index()].contains(cd));

    // h<y+z> := y+z delays to x := h<y+z>, where it is NOT usable
    // afterwards — the reconstruction case (x := y+z in Fig. 15).
    let use_yz = find_instr("x := h<y+z>");
    assert!(analysis.delay.before[use_yz.index()].contains(yz));
    assert!(!analysis.usable.after[use_yz.index()].contains(yz));

    // h<x+z> := x+z in node 1 cannot delay into the branch: the hoisted
    // x := h<y+z> kills it (writes x) before node 2.
    let branch = pg
        .points()
        .find(|&p| matches!(pg.instr(p), Some(am_ir::Instr::Branch(_))))
        .unwrap();
    assert!(
        !analysis.delay.before[branch.index()].contains(xz),
        "x+z must not be delayable to the branch"
    );
    // But it IS usable there (the branch reads h<x+z>).
    assert!(analysis.used[branch.index()].contains(xz));
}
