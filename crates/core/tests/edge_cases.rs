//! Edge-case coverage of the transformations: edge insertions, multi-pattern
//! interactions, restricted-motion accounting, universe truncation, and the
//! degenerate graph shapes the `am-check` shrinker produces (empty blocks,
//! single-node programs, self-loops).

use am_core::global::optimize;
use am_core::lcm::lazy_expression_motion;
use am_core::motion::assignment_motion;
use am_core::restricted::restricted_assignment_motion;
use am_core::universe::{explore, UniverseConfig};
use am_ir::alpha::canonical_text;
use am_ir::interp::{run, Config, Oracle};
use am_ir::text::parse;

#[test]
fn flush_inserts_on_split_edges_for_one_sided_uses() {
    // a+b is computed above the branch; only the left branch uses it
    // (twice, so the temporary survives). Laziness must push the
    // initialization off the right path.
    let src = "start s\nend e\n\
         node t { x := a+b; branch p > 0 }\n\
         node l { y := a+b; z := a+b; out(y,z) }\n\
         node r { out(p) }\n\
         node e { out(x) }\n\
         node s { skip }\n\
         edge s -> t\nedge t -> l, r\nedge l -> e\nedge r -> e";
    let orig = parse(src).unwrap();
    let mut g = orig.clone();
    g.split_critical_edges();
    lazy_expression_motion(&mut g);
    // On the right path, a+b is evaluated exactly once (for x).
    let right = run(
        &g,
        &Config::with_oracle(vec![1], vec![("a", 1), ("b", 2), ("p", 0)]),
    );
    let right_orig = run(
        &orig,
        &Config::with_oracle(vec![1], vec![("a", 1), ("b", 2), ("p", 0)]),
    );
    assert_eq!(right.observable(), right_orig.observable());
    assert_eq!(right.expr_evals, 1, "{}", canonical_text(&g));
    // On the left path, one evaluation serves x, y and z.
    let left = run(
        &g,
        &Config::with_oracle(vec![0], vec![("a", 1), ("b", 2), ("p", 1)]),
    );
    let left_orig = run(
        &orig,
        &Config::with_oracle(vec![0], vec![("a", 1), ("b", 2), ("p", 1)]),
    );
    assert_eq!(left.observable(), left_orig.observable());
    assert_eq!(left.expr_evals, 1, "{}", canonical_text(&g));
}

#[test]
fn multiple_patterns_insert_at_one_point_in_stable_order() {
    // Two independent assignments hoist from both branches to the split
    // point; insertion order is deterministic (pattern index order).
    let src = "start s\nend e\n\
         node s { branch p > 0 }\n\
         node l { x := a+b; y := c+d }\n\
         node r { x := a+b; y := c+d }\n\
         node e { out(x,y) }\n\
         edge s -> l, r\nedge l -> e\nedge r -> e";
    let mut g = parse(src).unwrap();
    g.split_critical_edges();
    let stats = assignment_motion(&mut g);
    assert!(stats.converged);
    let text = canonical_text(&g);
    assert_eq!(text.matches("x := a+b").count(), 1, "{text}");
    assert_eq!(text.matches("y := c+d").count(), 1, "{text}");
    // The branch reads only p, so both hoist through it to the entry of
    // node s, in pattern-index order.
    let s_node = g.start();
    let body: Vec<String> = g
        .block(s_node)
        .instrs
        .iter()
        .map(|i| i.display(g.pool()))
        .collect();
    assert_eq!(body, vec!["x := a+b", "y := c+d", "branch p > 0"]);
}

#[test]
fn restricted_motion_counts_rejections() {
    let mut g = am_core::restricted::fig8_example();
    g.split_critical_edges();
    let stats = restricted_assignment_motion(&mut g);
    assert_eq!(stats.accepted, 0);
    assert!(stats.rejected >= 1, "{stats:?}");
    assert!(stats.rounds >= 1);
}

#[test]
fn universe_truncation_is_reported() {
    let mut g = am_core::restricted::fig8_example();
    g.split_critical_edges();
    am_core::init::initialize(&mut g);
    let tiny = explore(
        &g,
        &UniverseConfig {
            max_programs: 2,
            max_depth: 1,
        },
    );
    assert!(tiny.truncated);
    assert!(tiny.programs.len() <= 2);
}

#[test]
fn optimize_handles_branch_conditions_with_constants() {
    let src = "start s\nend e\n\
         node s { branch a+b > 10 }\n\
         node l { x := a+b }\n\
         node r { x := 0 }\n\
         node e { out(x) }\n\
         edge s -> l, r\nedge l -> e\nedge r -> e";
    let orig = parse(src).unwrap();
    let result = optimize(&orig);
    for (a, b) in [(7, 8), (1, 1)] {
        let cfg = Config::with_inputs(vec![("a", a), ("b", b)]);
        let r0 = run(&orig, &cfg);
        let r1 = run(&result.program, &cfg);
        assert_eq!(r0.observable(), r1.observable(), "a={a} b={b}");
        assert!(r1.expr_evals <= r0.expr_evals);
    }
    // On the left path, the condition's a+b evaluation is reused for x.
    let left = run(
        &result.program,
        &Config::with_inputs(vec![("a", 7), ("b", 8)]),
    );
    assert_eq!(left.expr_evals, 1);
}

/// Full pipeline + interpreter on a program, asserting semantics are kept
/// on a handful of deterministic and oracle-driven runs. The smoke test
/// shared by the degenerate-shape cases below.
fn optimizes_soundly(src: &str) {
    let orig = parse(src).unwrap();
    let result = optimize(&orig);
    assert_eq!(result.program.validate(), Ok(()), "{src}");
    assert!(result.motion.converged, "{src}");
    let mut cfgs = vec![Config::with_inputs(vec![("a", 2), ("b", 3), ("i", 2)])];
    for seed in 0..4 {
        cfgs.push(Config {
            oracle: Oracle::random(seed, 8),
            inputs: vec![("a".into(), 2), ("b".into(), 3), ("i".into(), 2)],
            ..Config::default()
        });
    }
    for cfg in &cfgs {
        let r0 = run(&orig, cfg);
        let r1 = run(&result.program, cfg);
        assert_eq!(r0.observable(), r1.observable(), "{src}");
    }
}

#[test]
fn empty_blocks_flow_through_the_whole_pipeline() {
    optimizes_soundly(
        "start s\nend e\n\
         node s { }\n\
         node m { }\n\
         node u { x := a+b; out(x) }\n\
         node e { }\n\
         edge s -> m\nedge m -> u\nedge u -> e",
    );
}

#[test]
fn a_single_node_program_where_start_is_end_optimizes() {
    optimizes_soundly("start s\nend s\nnode s { x := a+b; out(x) }");
    optimizes_soundly("start s\nend s\nnode s { }");
}

#[test]
fn a_two_node_program_with_an_empty_start_optimizes() {
    optimizes_soundly("start s\nend e\nnode s { }\nnode e { out(a) }\nedge s -> e");
}

#[test]
fn self_loops_optimize_without_panicking() {
    // b -> b is a critical edge (b has two successors and two
    // predecessors), so splitting inserts a synthetic node on it.
    optimizes_soundly(
        "start s\nend e\n\
         node s { skip }\n\
         node b { x := a+b; i := i-1; branch i > 0 }\n\
         node e { out(x) }\n\
         edge s -> b\nedge b -> b, e",
    );
}

#[test]
fn a_self_loop_on_an_empty_block_optimizes() {
    optimizes_soundly(
        "start s\nend e\n\
         node s { }\n\
         node b { }\n\
         node e { out(a) }\n\
         edge s -> b\nedge b -> b, e",
    );
}

#[test]
fn unreachable_nodes_are_rejected_at_parse_time() {
    // The shrinker relies on this: cutting the last edge into a node makes
    // the candidate *invalid* (and thus discarded), never a silent
    // half-program.
    let orphan = "start s\nend e\n\
         node s { }\nnode dead { x := a+b }\nnode e { out(x) }\n\
         edge s -> e";
    assert!(parse(orphan).is_err(), "unreachable 'dead' must not parse");
    // Reachable but non-terminating (no path to end) is equally invalid.
    let trap = "start s\nend e\n\
         node s { }\nnode sink { skip }\nnode e { }\n\
         edge s -> e\nedge s -> sink\nedge sink -> sink";
    assert!(
        parse(trap).is_err(),
        "end-unreachable 'sink' must not parse"
    );
}

#[test]
fn motion_converges_on_long_dependency_chains() {
    // w0 <- w1 <- w2 ... each hoist unblocks the next: many rounds, still
    // converging, all invariants out of the do-while loop.
    let mut src = String::from("start s\nend e\nnode s { skip }\nnode b {\n");
    for j in 0..8 {
        if j == 0 {
            src.push_str("  w0 := a + 1\n");
        } else {
            src.push_str(&format!("  w{j} := w{} + 1\n", j - 1));
        }
    }
    src.push_str("  s0 := s0 + w7\n  i := i - 1\n}\n");
    src.push_str("node c { branch i > 0 }\nnode e { out(s0) }\n");
    src.push_str("edge s -> b\nedge b -> c\nedge c -> b, e\n");
    let orig = parse(&src).unwrap();
    let mut g = orig.clone();
    g.split_critical_edges();
    let stats = assignment_motion(&mut g);
    assert!(stats.converged);
    assert!(
        stats.rounds >= 8,
        "chain needs one round per link: {stats:?}"
    );
    for i in [1, 4] {
        let cfg = Config {
            oracle: Oracle::Deterministic,
            inputs: vec![("a".into(), 3), ("i".into(), i)],
            ..Config::default()
        };
        let r0 = run(&orig, &cfg);
        let r1 = run(&g, &cfg);
        assert_eq!(r0.observable(), r1.observable(), "i={i}");
        if i > 1 {
            assert!(r1.expr_evals < r0.expr_evals, "i={i}");
        }
    }
}
