//! Checkers for the paper's theorems: semantics preservation (Thm 5.1) and
//! run-cost comparisons (Thms 5.2–5.4), built on the counting interpreter.
//!
//! Two programs are compared on *corresponding runs*: the same fixed branch
//! oracle, the same inputs. For complete runs the paper's optimality
//! statements are directly testable; truncated runs (oracle exhausted,
//! step limit) still require observable equality but not cost dominance —
//! motion legitimately reorders work along a path prefix.

use am_ir::interp::{run, Config, Oracle, RunResult, StopReason};
use am_ir::FlowGraph;

/// The outcome of comparing two programs over a batch of runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Comparison {
    /// Runs executed. Every run is counted in exactly one of
    /// [`completed`](Self::completed), [`both_truncated`](Self::both_truncated)
    /// or [`completion_divergences`](Self::completion_divergences).
    pub runs: usize,
    /// Runs that completed (reached the end) in both programs.
    pub completed: usize,
    /// Runs truncated (oracle exhausted, step limit, trap) in *both*
    /// programs. Cost totals exclude these: motion legitimately reorders
    /// work along a shared path prefix.
    pub both_truncated: usize,
    /// Runs where exactly one program completed — always suspicious, since
    /// corresponding runs share the oracle and should stop together unless
    /// a transformation changed the branching structure observed.
    pub completion_divergences: usize,
    /// Runs with differing observable behaviour (should be 0).
    pub semantic_mismatches: usize,
    /// Completed runs where the second program evaluated more expressions.
    pub expr_regressions: usize,
    /// Completed runs where the second program executed more assignments.
    pub assign_regressions: usize,
    /// Total expression evaluations of the first program (completed runs).
    pub expr_evals_a: u64,
    /// Total expression evaluations of the second program (completed runs).
    pub expr_evals_b: u64,
    /// Total assignment executions of the first program (completed runs).
    pub assign_execs_a: u64,
    /// Total assignment executions of the second program (completed runs).
    pub assign_execs_b: u64,
    /// Total temporary assignments of the first program (completed runs).
    pub temp_assigns_a: u64,
    /// Total temporary assignments of the second program (completed runs).
    pub temp_assigns_b: u64,
}

impl Comparison {
    /// Whether all runs agreed observationally.
    pub fn semantically_equal(&self) -> bool {
        self.semantic_mismatches == 0
    }

    /// Whether the second program never evaluated more expressions on a
    /// completed run (the check for Thm 5.2).
    pub fn expression_dominates(&self) -> bool {
        self.expr_regressions == 0
    }
}

/// Batch specification for [`compare`].
#[derive(Clone, Debug)]
pub struct CompareConfig {
    /// Number of oracles to try.
    pub runs: usize,
    /// Decisions per oracle.
    pub decisions: usize,
    /// Seed for oracle generation.
    pub seed: u64,
    /// Inputs, by variable name.
    pub inputs: Vec<(String, i64)>,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            runs: 24,
            decisions: 12,
            seed: 0xA11CE,
            inputs: vec![
                ("v0".into(), 3),
                ("v1".into(), -2),
                ("v2".into(), 7),
                ("v3".into(), 1),
            ],
        }
    }
}

/// Runs `a` and `b` against a shared batch of oracles and tallies the
/// paper's comparison quantities.
/// # Examples
///
/// ```
/// use am_ir::text::parse;
/// use am_core::verify::{compare, CompareConfig};
/// use am_core::global::optimize;
///
/// let g = parse(
///     "start s\nend e\nnode s { x := a+b; y := a+b }\nnode e { out(x,y) }\nedge s -> e",
/// )?;
/// let optimized = optimize(&g).program;
/// let report = compare(&g, &optimized, &CompareConfig::default());
/// assert!(report.semantically_equal());
/// assert!(report.expression_dominates());
/// # Ok::<(), am_ir::text::ParseError>(())
/// ```
pub fn compare(a: &FlowGraph, b: &FlowGraph, config: &CompareConfig) -> Comparison {
    let mut out = Comparison::default();
    for i in 0..config.runs {
        let cfg = Config {
            oracle: Oracle::random(config.seed.wrapping_add(i as u64), config.decisions),
            inputs: config.inputs.clone(),
            ..Config::default()
        };
        let ra = run(a, &cfg);
        let rb = run(b, &cfg);
        out.runs += 1;
        if ra.observable() != rb.observable() {
            out.semantic_mismatches += 1;
        }
        let a_done = ra.stop == StopReason::ReachedEnd;
        let b_done = rb.stop == StopReason::ReachedEnd;
        if a_done != b_done {
            out.completion_divergences += 1;
        } else if !a_done {
            out.both_truncated += 1;
        }
        if a_done && b_done {
            out.completed += 1;
            out.expr_evals_a += ra.expr_evals;
            out.expr_evals_b += rb.expr_evals;
            out.assign_execs_a += ra.assign_execs;
            out.assign_execs_b += rb.assign_execs;
            out.temp_assigns_a += ra.temp_assign_execs;
            out.temp_assigns_b += rb.temp_assign_execs;
            if rb.expr_evals > ra.expr_evals {
                out.expr_regressions += 1;
            }
            if rb.assign_execs > ra.assign_execs {
                out.assign_regressions += 1;
            }
        }
    }
    out
}

/// Convenience: one deterministic run of each program with shared inputs.
pub fn run_pair(a: &FlowGraph, b: &FlowGraph, inputs: Vec<(&str, i64)>) -> (RunResult, RunResult) {
    let cfg = Config::with_inputs(inputs);
    (run(a, &cfg), run(b, &cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::optimize;
    use am_ir::text::parse;

    #[test]
    fn comparison_flags_semantic_differences() {
        let a = parse("start s\nend e\nnode s { x := 1 }\nnode e { out(x) }\nedge s -> e").unwrap();
        let b = parse("start s\nend e\nnode s { x := 2 }\nnode e { out(x) }\nedge s -> e").unwrap();
        let cmp = compare(&a, &b, &CompareConfig::default());
        assert!(!cmp.semantically_equal());
        assert_eq!(cmp.semantic_mismatches, cmp.runs);
    }

    #[test]
    fn comparison_accepts_identical_programs() {
        let a =
            parse("start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e").unwrap();
        let cmp = compare(&a, &a, &CompareConfig::default());
        assert!(cmp.semantically_equal());
        assert!(cmp.expression_dominates());
        assert_eq!(cmp.expr_evals_a, cmp.expr_evals_b);
    }

    #[test]
    fn every_run_lands_in_exactly_one_completion_bucket() {
        let a = parse(
            "start s\nend e\nnode s { branch p > 0 }\nnode l { x := 1 }\nnode r { x := 2 }\n\
             node e { out(x) }\nedge s -> l, r\nedge l -> e\nedge r -> e",
        )
        .unwrap();
        let cmp = compare(&a, &a, &CompareConfig::default());
        assert_eq!(
            cmp.runs,
            cmp.completed + cmp.both_truncated + cmp.completion_divergences,
            "{cmp:?}"
        );
        assert_eq!(cmp.completion_divergences, 0, "identical programs agree");
    }

    #[test]
    fn both_truncated_runs_are_counted_and_excluded_from_costs() {
        // One branch, zero decisions: both runs exhaust the oracle
        // immediately and neither completes.
        let g = parse(
            "start s\nend e\nnode s { x := a+b; branch p > 0 }\nnode l { skip }\n\
             node r { skip }\nnode e { out(x) }\nedge s -> l, r\nedge l -> e\nedge r -> e",
        )
        .unwrap();
        let cfg = CompareConfig {
            runs: 3,
            decisions: 0,
            ..CompareConfig::default()
        };
        let cmp = compare(&g, &g, &cfg);
        assert_eq!(cmp.runs, 3);
        assert_eq!(cmp.completed, 0);
        assert_eq!(cmp.both_truncated, 3);
        assert_eq!(cmp.completion_divergences, 0);
        // Truncated runs contribute nothing to the cost totals.
        assert_eq!((cmp.expr_evals_a, cmp.expr_evals_b), (0, 0));
        assert_eq!((cmp.assign_execs_a, cmp.assign_execs_b), (0, 0));
        assert!(cmp.semantically_equal(), "empty prefixes agree");
    }

    #[test]
    fn one_sided_completion_is_a_divergence_not_a_truncation() {
        // `a` is straight-line (completes on an empty oracle); `b` branches
        // and exhausts the oracle. Exactly one side completes.
        let a = parse("start s\nend e\nnode s { x := 1 }\nnode e { out(x) }\nedge s -> e").unwrap();
        let b = parse(
            "start s\nend e\nnode s { x := 1; branch x > 0 }\nnode l { skip }\nnode r { skip }\n\
             node e { out(x) }\nedge s -> l, r\nedge l -> e\nedge r -> e",
        )
        .unwrap();
        let cfg = CompareConfig {
            runs: 4,
            decisions: 0,
            ..CompareConfig::default()
        };
        let cmp = compare(&a, &b, &cfg);
        assert_eq!(cmp.runs, 4);
        assert_eq!(cmp.completed, 0);
        assert_eq!(cmp.both_truncated, 0);
        assert_eq!(cmp.completion_divergences, 4);
        // The divergent runs also differ observably (a wrote, b did not).
        assert_eq!(cmp.semantic_mismatches, 4);
    }

    #[test]
    fn optimizer_output_dominates_input() {
        let g = parse(
            "start 1\nend 4\n\
             node 1 { y := c+d }\n\
             node 2 { branch x+z > y+i }\n\
             node 3 { y := c+d; x := y+z; i := i+x }\n\
             node 4 { x := y+z; x := c+d; out(i,x,y) }\n\
             edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2",
        )
        .unwrap();
        let result = optimize(&g);
        let cfg = CompareConfig {
            inputs: vec![
                ("c".into(), 1),
                ("d".into(), 2),
                ("x".into(), 3),
                ("z".into(), 4),
                ("i".into(), 5),
            ],
            ..Default::default()
        };
        let cmp = compare(&g, &result.program, &cfg);
        assert!(cmp.semantically_equal());
        assert!(cmp.expression_dominates());
        assert!(cmp.completed > 0);
        assert!(cmp.expr_evals_b < cmp.expr_evals_a, "{cmp:?}");
    }
}

/// Equivalence modulo trap scheduling.
///
/// Admissible motion may evaluate a trapping term earlier on a path
/// (hoisting) or later (the flush, sinking) than the original program did;
/// the paper's transformations preserve the *existence* of the error on the
/// path, not its position relative to `out(...)` statements (Sec. 3 only
/// rules out transformations that remove error potential). Two runs are
/// weakly equivalent when
///
/// * neither traps and their observables are equal, or
/// * both trap with the same trap, and one output trace is a prefix of the
///   other (the trap moved across some writes).
pub fn weakly_equivalent(a: &RunResult, b: &RunResult) -> bool {
    match (a.trap, b.trap) {
        (None, None) => a.observable() == b.observable(),
        (Some(ta), Some(tb)) => {
            ta == tb && {
                let (short, long) = if a.outputs.len() <= b.outputs.len() {
                    (&a.outputs, &b.outputs)
                } else {
                    (&b.outputs, &a.outputs)
                };
                long.starts_with(short)
            }
        }
        _ => false,
    }
}

#[cfg(test)]
mod weak_tests {
    use super::*;
    use crate::global::optimize;
    use am_ir::interp::{run, Config, Trap};
    use am_ir::text::parse;

    #[test]
    fn weak_equivalence_accepts_trap_reordering() {
        // x := a/b is partially redundant; motion may evaluate it before
        // the out on some path.
        let src = "start 1\nend 4\n\
             node 1 { skip }\n\
             node 2 { x := a/b; out(x) }\n\
             node 3 { x := a/b }\n\
             node 4 { out(x) }\n\
             edge 1 -> 2, 3\nedge 2 -> 4\nedge 3 -> 4";
        let orig = parse(src).unwrap();
        let opt = optimize(&orig).program;
        for (b_val, decision) in [(0i64, 0usize), (0, 1), (2, 0), (2, 1)] {
            let cfg = Config::with_oracle(vec![decision], vec![("a", 6), ("b", b_val)]);
            let ra = run(&orig, &cfg);
            let rb = run(&opt, &cfg);
            assert!(
                weakly_equivalent(&ra, &rb),
                "b={b_val} d={decision}: {ra:?} vs {rb:?}"
            );
            // Trap *presence* is always preserved exactly.
            assert_eq!(ra.trap.is_some(), rb.trap.is_some());
            if b_val == 0 {
                assert_eq!(ra.trap, Some(Trap::DivByZero));
            }
        }
    }

    #[test]
    fn weak_equivalence_rejects_real_differences() {
        let mk = |outputs: Vec<Vec<i64>>, trap| RunResult {
            outputs,
            trap,
            stop: if trap.is_some() {
                am_ir::interp::StopReason::Trapped
            } else {
                am_ir::interp::StopReason::ReachedEnd
            },
            steps: 0,
            expr_evals: 0,
            expr_evals_by_pattern: Default::default(),
            assign_execs: 0,
            temp_assign_execs: 0,
            decisions: 0,
            nodes_visited: 0,
            path: Vec::new(),
        };
        // Different outputs, no traps: not equivalent.
        assert!(!weakly_equivalent(
            &mk(vec![vec![1]], None),
            &mk(vec![vec![2]], None)
        ));
        // Trap appears only on one side: not equivalent.
        assert!(!weakly_equivalent(
            &mk(vec![], None),
            &mk(vec![], Some(am_ir::interp::Trap::DivByZero))
        ));
        // Both trap, prefix-compatible outputs: equivalent.
        assert!(weakly_equivalent(
            &mk(vec![vec![1]], Some(am_ir::interp::Trap::DivByZero)),
            &mk(vec![], Some(am_ir::interp::Trap::DivByZero))
        ));
        // Both trap, conflicting outputs: not equivalent.
        assert!(!weakly_equivalent(
            &mk(vec![vec![1]], Some(am_ir::interp::Trap::DivByZero)),
            &mk(vec![vec![2]], Some(am_ir::interp::Trap::DivByZero))
        ));
    }
}

/// The total static lifetime of optimizer temporaries in `g`: the number of
/// (program point, live temporary) pairs, computed with the liveness
/// analysis. This is the static counterpart of the lifetime-range quantity
/// of Thm 5.4 — the flush must never increase it, and lazy placements beat
/// busy ones.
pub fn temp_lifetime_points(g: &FlowGraph) -> u64 {
    let pg = am_dfa::PointGraph::build(g);
    let live = am_dfa::classic::live_variables(&pg);
    let mut total = 0u64;
    for p in pg.points() {
        for v in g.pool().iter() {
            if g.pool().is_temp(v) && live.before[p.index()].contains(v.index()) {
                total += 1;
            }
        }
    }
    total
}

/// Per-pattern expression dominance (the refined Def. 3.8(1)): whether on
/// this pair of completed runs, `b` evaluated each pattern at most as often
/// as `a`. Patterns absent from a run count as zero.
pub fn pattern_dominates(a: &RunResult, b: &RunResult) -> bool {
    b.expr_evals_by_pattern
        .iter()
        .all(|(t, nb)| a.expr_evals_by_pattern.get(t).copied().unwrap_or(0) >= *nb)
}

#[cfg(test)]
mod lifetime_tests {
    use super::*;
    use crate::global::optimize;
    use crate::init::initialize;
    use crate::lcm::{busy_expression_motion, lazy_expression_motion};
    use crate::motion::assignment_motion;
    use am_ir::text::parse;

    const RUNNING_EXAMPLE: &str = "start 1\nend 4\n\
         node 1 { y := c+d }\n\
         node 2 { branch x+z > y+i }\n\
         node 3 { y := c+d; x := y+z; i := i+x }\n\
         node 4 { x := y+z; x := c+d; out(i,x,y) }\n\
         edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2";

    #[test]
    fn flush_never_extends_temporary_lifetimes() {
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let mut pre_flush = g.clone();
        pre_flush.split_critical_edges();
        initialize(&mut pre_flush);
        assignment_motion(&mut pre_flush);
        let before = temp_lifetime_points(&pre_flush);
        let after = temp_lifetime_points(&optimize(&g).program);
        assert!(
            after <= before,
            "flush extended temp lifetimes: {before} -> {after}"
        );
        assert!(after < before, "the running example shrinks strictly");
    }

    #[test]
    fn lazy_motion_beats_busy_motion_on_lifetimes() {
        use am_ir::random::SplitMix64;
        use am_ir::random::{structured, StructuredConfig};
        for seed in 0..20 {
            let mut rng = SplitMix64::new(seed + 31_000);
            let orig = structured(&mut rng, &StructuredConfig::default());
            let mut bcm = orig.clone();
            bcm.split_critical_edges();
            busy_expression_motion(&mut bcm);
            let mut lcm = orig.clone();
            lcm.split_critical_edges();
            lazy_expression_motion(&mut lcm);
            let busy = temp_lifetime_points(&bcm);
            let lazy = temp_lifetime_points(&lcm);
            assert!(
                lazy <= busy,
                "seed {seed}: lazy {lazy} > busy {busy} lifetime points"
            );
        }
    }

    #[test]
    fn per_pattern_dominance_on_the_running_example() {
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let opt = optimize(&g).program;
        for seed in 0..10 {
            let cfg = Config {
                oracle: Oracle::random(seed + 3, 8),
                inputs: vec![
                    ("c".into(), 1),
                    ("d".into(), 2),
                    ("x".into(), 3),
                    ("z".into(), 4),
                ],
                ..Config::default()
            };
            let a = run(&g, &cfg);
            let b = run(&opt, &cfg);
            if a.stop == StopReason::ReachedEnd && b.stop == StopReason::ReachedEnd {
                assert!(
                    pattern_dominates(&a, &b),
                    "seed {seed}: {:?} vs {:?}",
                    a.expr_evals_by_pattern,
                    b.expr_evals_by_pattern
                );
            }
        }
    }

    #[test]
    fn lifetime_of_temp_free_program_is_zero() {
        let g =
            parse("start 1\nend 2\nnode 1 { x := a+b }\nnode 2 { out(x) }\nedge 1 -> 2").unwrap();
        assert_eq!(temp_lifetime_points(&g), 0);
    }
}

/// The first observable divergence between corresponding runs of two
/// programs — the debugging entry point when a transformation breaks
/// something.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Divergence {
    /// The `index`-th `out(...)` differs.
    Output {
        /// Index into the output traces.
        index: usize,
        /// What the first program wrote.
        left: Vec<i64>,
        /// What the second program wrote.
        right: Vec<i64>,
    },
    /// One program wrote more outputs than the other (after agreeing on the
    /// common prefix).
    OutputLength {
        /// Outputs of the first program.
        left: usize,
        /// Outputs of the second program.
        right: usize,
    },
    /// The trap behaviour differs.
    Trap {
        /// Trap of the first program.
        left: Option<am_ir::interp::Trap>,
        /// Trap of the second program.
        right: Option<am_ir::interp::Trap>,
    },
}

/// Compares corresponding runs of `a` and `b` and reports the first
/// divergence, or `None` when the runs agree observationally.
pub fn first_divergence(a: &FlowGraph, b: &FlowGraph, cfg: &Config) -> Option<Divergence> {
    let ra = run(a, cfg);
    let rb = run(b, cfg);
    if ra.trap != rb.trap {
        return Some(Divergence::Trap {
            left: ra.trap,
            right: rb.trap,
        });
    }
    for (index, (l, r)) in ra.outputs.iter().zip(&rb.outputs).enumerate() {
        if l != r {
            return Some(Divergence::Output {
                index,
                left: l.clone(),
                right: r.clone(),
            });
        }
    }
    if ra.outputs.len() != rb.outputs.len() {
        return Some(Divergence::OutputLength {
            left: ra.outputs.len(),
            right: rb.outputs.len(),
        });
    }
    None
}

#[cfg(test)]
mod divergence_tests {
    use super::*;
    use am_ir::text::parse;

    #[test]
    fn equivalent_programs_have_no_divergence() {
        let a =
            parse("start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e").unwrap();
        let b = crate::global::optimize(&a).program;
        let cfg = Config::with_inputs(vec![("a", 3), ("b", 4)]);
        assert_eq!(first_divergence(&a, &b, &cfg), None);
    }

    #[test]
    fn value_divergence_is_located() {
        let a = parse("start s\nend e\nnode s { x := 1 }\nnode e { out(7); out(x) }\nedge s -> e")
            .unwrap();
        let b = parse("start s\nend e\nnode s { x := 2 }\nnode e { out(7); out(x) }\nedge s -> e")
            .unwrap();
        let d = first_divergence(&a, &b, &Config::with_inputs(vec![]));
        assert_eq!(
            d,
            Some(Divergence::Output {
                index: 1,
                left: vec![1],
                right: vec![2]
            })
        );
    }

    #[test]
    fn missing_output_is_reported() {
        let a = parse("start s\nend e\nnode s { skip }\nnode e { out(1); out(2) }\nedge s -> e")
            .unwrap();
        let b = parse("start s\nend e\nnode s { skip }\nnode e { out(1) }\nedge s -> e").unwrap();
        let d = first_divergence(&a, &b, &Config::with_inputs(vec![]));
        assert_eq!(d, Some(Divergence::OutputLength { left: 2, right: 1 }));
    }

    #[test]
    fn trap_divergence_is_reported() {
        let a =
            parse("start s\nend e\nnode s { x := 1/q }\nnode e { out(x) }\nedge s -> e").unwrap();
        let b = parse("start s\nend e\nnode s { x := 0 }\nnode e { out(x) }\nedge s -> e").unwrap();
        let d = first_divergence(&a, &b, &Config::with_inputs(vec![("q", 0)]));
        assert!(matches!(d, Some(Divergence::Trap { .. })), "{d:?}");
    }
}
