//! Phase 3 — the final flush (Sec. 4.4, Table 3).
//!
//! After the assignment motion phase, initializations `h_ε := ε` sit at
//! their earliest points. The flush moves each to its *latest* useful point
//! and eliminates the ones that do not pay for themselves, in the spirit of
//! lazy code motion:
//!
//! * **Delayability** (forward, must, greatest solution) — how far an
//!   instance can be postponed: `X-DELAYABLE = IS-INST +
//!   N-DELAYABLE · ¬USED · ¬BLOCKED`.
//! * **Usability** (backward, may, least solution) — whether `h_ε` is read
//!   on some continuation before being re-initialized: `N-USABLE = USED +
//!   ¬IS-INST · X-USABLE`.
//! * **Latestness** — `N-LATEST = N-DELAYABLE* · (USED + BLOCKED)`,
//!   `X-LATEST = X-DELAYABLE* · Σ_{succ} ¬N-DELAYABLE*`.
//! * **Initialization points** — `N-INIT = N-LATEST · X-USABLE*`,
//!   `X-INIT = X-LATEST · X-USABLE*`.
//! * **Reconstruction** — `RECONSTRUCT = USED · N-LATEST · ¬X-USABLE*`: the
//!   instance would serve exactly this one use, so the original term is put
//!   back in place of the temporary (this replaces the isolation analysis
//!   of classic lazy code motion and is what guarantees that temporaries
//!   only survive when they eliminate a partial redundancy).
//!
//! The transformation deletes every instance, inserts instances at the
//! initialization points and rewrites reconstructed uses. Two pragmatic
//! guards keep reconstruction semantics-and-cost-safe: an instruction using
//! `h_ε` more than once (e.g. `branch h > h`) keeps its initialization, and
//! a use position that cannot syntactically hold a non-trivial term (an
//! operand inside a binary term or an `out`) does too.

use std::collections::HashMap;

use am_bitset::BitSet;
use am_dfa::{
    solve_partitioned, solve_scheduled, Confluence, Direction, PatternMasks, PointGraph, Problem,
    Schedule, Solution,
};
use am_ir::{Cond, FlowGraph, Instr, Operand, PatternUniverse, Term, Var};
use am_obs::{ProvKind, ProvRecord, ProvRecorder};
use am_trace::Tracer;

/// Statistics of a [`final_flush`] run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Instances `h_ε := ε` removed from their old positions.
    pub instances_removed: usize,
    /// Instances inserted at initialization points.
    pub inserted: usize,
    /// Uses rewritten back to their original term.
    pub reconstructed: usize,
    /// Data-flow solver iterations (delayability + usability).
    pub iterations: u64,
    /// Solver worklist pushes (delayability + usability).
    pub worklist_pushes: u64,
    /// Peak solver worklist length across the two systems.
    pub max_worklist_len: usize,
}

/// The solved Table 3 analyses of a program: local predicates plus the
/// delayability and usability solutions, indexed by instruction-level
/// points (see [`am_dfa::PointGraph`]) and expression-pattern bits.
pub struct FlushAnalysis {
    /// The expression-pattern universe the bit indices refer to.
    pub universe: PatternUniverse,
    /// The temporary `h_ε` of each pattern.
    pub temps: Vec<Var>,
    /// `IS-INST` per point.
    pub is_inst: Vec<BitSet>,
    /// `USED` per point.
    pub used: Vec<BitSet>,
    /// `BLOCKED` per point.
    pub blocked: Vec<BitSet>,
    /// Delayability solution (`N-DELAYABLE*` = before, `X-DELAYABLE*` =
    /// after).
    pub delay: am_dfa::Solution,
    /// Usability solution (`N-USABLE*` = before, `X-USABLE*` = after).
    pub usable: am_dfa::Solution,
}

/// Solves the delayability and usability systems of Table 3 over `g`
/// (without transforming anything).
pub fn analyze_flush(g: &mut FlowGraph) -> FlushAnalysis {
    analyze_flush_workers(g, 1)
}

/// As [`analyze_flush`], solving the two systems on `workers` threads via
/// the partitioned parallel solver (facts are bit-identical for any worker
/// count; small graphs fall back to the serial path).
pub fn analyze_flush_workers(g: &mut FlowGraph, workers: usize) -> FlushAnalysis {
    let (universe, temps) = participating(g);
    let ep = universe.expr_count();
    // Masks must be built after `participating`: `temp_for` may grow the
    // variable pool, and the index covers the whole pool.
    let masks = PatternMasks::build(&universe, g.pool().len());
    let temp_index: HashMap<Var, usize> = temps.iter().enumerate().map(|(i, &h)| (h, i)).collect();
    let snapshot = g.clone();
    let pg = PointGraph::build(&snapshot);
    let points = pg.len();
    let mut is_inst = vec![BitSet::new(ep); points];
    let mut used = vec![BitSet::new(ep); points];
    let mut blocked = vec![BitSet::new(ep); points];
    for p in pg.points() {
        let Some(instr) = pg.instr(p) else { continue };
        let idx = p.index();
        if let Instr::Assign { lhs, rhs } = instr {
            if let Some(i) = universe.expr_id(rhs) {
                if temps[i] == *lhs {
                    is_inst[idx].insert(i);
                }
            }
        }
        instr.for_each_use(|u| {
            if let Some(&i) = temp_index.get(&u) {
                used[idx].insert(i);
            }
        });
        if let Some(d) = instr.def() {
            blocked[idx].union_with(masks.expr_mentions(d));
            if let Some(&i) = temp_index.get(&d) {
                blocked[idx].insert(i);
            }
        }
    }
    let mut delay_problem = Problem::new(Direction::Forward, Confluence::Must, points, ep);
    delay_problem.gen = is_inst.clone();
    for p in 0..points {
        delay_problem.kill[p].copy_from(&used[p]);
        delay_problem.kill[p].union_with(&blocked[p]);
    }
    let solve = |problem: &Problem| -> Solution {
        let (succs, preds, schedule): (_, _, &Schedule) = (pg.succs(), pg.preds(), pg.schedule());
        if workers > 1 {
            solve_partitioned(succs, preds, problem, schedule, workers)
        } else {
            solve_scheduled(succs, preds, problem, schedule)
        }
    };
    let delay = solve(&delay_problem);
    let mut use_problem = Problem::new(Direction::Backward, Confluence::May, points, ep);
    use_problem.gen = used.clone();
    use_problem.kill = is_inst.clone();
    let usable = solve(&use_problem);
    FlushAnalysis {
        universe,
        temps,
        is_inst,
        used,
        blocked,
        delay,
        usable,
    }
}

/// The temporaries participating in the flush: every expression pattern of
/// the program whose canonical temporary exists in the pool.
fn participating(g: &mut FlowGraph) -> (PatternUniverse, Vec<Var>) {
    let universe = PatternUniverse::collect(g);
    let temps: Vec<Var> = universe
        .expr_patterns()
        .map(|(_, t)| g.temp_for(t))
        .collect();
    (universe, temps)
}

/// How many times `instr` reads `h`.
fn use_count(instr: &Instr, h: Var) -> usize {
    let mut count = 0;
    instr.for_each_use(|v| {
        if v == h {
            count += 1;
        }
    });
    count
}

/// Rewrites the single use of `h` in `instr` to the term `eps`, if the
/// position admits a non-trivial term. Returns `None` when it does not.
fn reconstruct_use(instr: &Instr, h: Var, eps: Term) -> Option<Instr> {
    match instr {
        Instr::Assign {
            lhs,
            rhs: Term::Operand(Operand::Var(v)),
        } if *v == h => Some(Instr::Assign {
            lhs: *lhs,
            rhs: eps,
        }),
        Instr::Branch(c) => {
            let is_h = |t: &Term| matches!(t, Term::Operand(Operand::Var(v)) if *v == h);
            if is_h(&c.lhs) && !is_h(&c.rhs) {
                Some(Instr::Branch(Cond {
                    op: c.op,
                    lhs: eps,
                    rhs: c.rhs,
                }))
            } else if is_h(&c.rhs) && !is_h(&c.lhs) {
                Some(Instr::Branch(Cond {
                    op: c.op,
                    lhs: c.lhs,
                    rhs: eps,
                }))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Applies the final flush phase in place.
/// # Examples
///
/// ```
/// use am_ir::text::parse;
/// use am_core::{init::initialize, flush::final_flush};
///
/// // A single-use temporary is reconstructed away again.
/// let mut g = parse("start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e")?;
/// initialize(&mut g);
/// let stats = final_flush(&mut g);
/// assert_eq!(stats.reconstructed, 1);
/// assert!(am_ir::text::to_text(&g).contains("x := a+b"));
/// # Ok::<(), am_ir::text::ParseError>(())
/// ```
pub fn final_flush(g: &mut FlowGraph) -> FlushStats {
    final_flush_traced(g, &Tracer::disabled())
}

/// As [`final_flush`], with tracing: emits one `analysis` counter per
/// solved system (`delayability`, `usability`) with its fixpoint metrics.
pub fn final_flush_traced(g: &mut FlowGraph, tracer: &Tracer) -> FlushStats {
    final_flush_observed(g, tracer, &ProvRecorder::disabled(), 1)
}

/// As [`final_flush_traced`], with provenance capture: every instance
/// removal, initialization insertion and reconstruction appends one
/// [`am_obs::ProvRecord`] to `recorder`. A disabled recorder costs one
/// branch per potential record. `workers` threads solve the two flush
/// systems on large graphs (1 = serial).
pub fn final_flush_observed(
    g: &mut FlowGraph,
    tracer: &Tracer,
    recorder: &ProvRecorder,
    workers: usize,
) -> FlushStats {
    let analysis = analyze_flush_workers(g, workers);
    for (name, sol) in [
        ("delayability", &analysis.delay),
        ("usability", &analysis.usable),
    ] {
        tracer.counter(
            "analysis",
            name,
            &[
                ("iterations", sol.iterations as i64),
                ("worklist_pushes", sol.worklist_pushes as i64),
                ("max_worklist_len", sol.max_worklist_len as i64),
            ],
        );
    }
    let universe = analysis.universe;
    let temps = analysis.temps;
    let ep = universe.expr_count();
    let mut stats = FlushStats::default();
    if ep == 0 {
        return stats;
    }

    let g_snapshot = g.clone();
    let pg = PointGraph::build(&g_snapshot);
    let points = pg.len();
    let is_inst = analysis.is_inst;
    let used = analysis.used;
    let blocked = analysis.blocked;
    let delay = analysis.delay;
    let usable = analysis.usable;
    stats.iterations = delay.iterations + usable.iterations;
    stats.worklist_pushes = delay.worklist_pushes + usable.worklist_pushes;
    stats.max_worklist_len = delay.max_worklist_len.max(usable.max_worklist_len);

    // Latestness and initialization points (no further data flow).
    let mut insert_before = vec![BitSet::new(ep); points];
    let mut insert_after = vec![BitSet::new(ep); points];
    let mut reconstruct = vec![BitSet::new(ep); points];
    for p in pg.points() {
        let idx = p.index();
        for (i, &h_temp) in temps.iter().enumerate() {
            let n_delay = delay.before[idx].contains(i);
            let x_delay = delay.after[idx].contains(i);
            let x_usable = usable.after[idx].contains(i);
            let n_latest = n_delay && (used[idx].contains(i) || blocked[idx].contains(i));
            let x_latest = x_delay
                && pg.succs()[idx]
                    .iter()
                    .any(|&q| !delay.before[q as usize].contains(i));
            if n_latest {
                let instr = pg.instr(p);
                let multi_use = instr
                    .map(|instr| use_count(instr, h_temp) >= 2)
                    .unwrap_or(false);
                // A blockade that *redefines* the temporary (another
                // instance of the same pattern, in particular) makes the
                // arriving value dead: never insert for it.
                let redefines_h = instr.and_then(Instr::def) == Some(h_temp);
                let is_used = used[idx].contains(i);
                if is_used && !x_usable && !multi_use {
                    reconstruct[idx].insert(i);
                } else if (is_used && multi_use) || (x_usable && (is_used || !redefines_h)) {
                    insert_before[idx].insert(i);
                }
                // Remaining cases: the value is dead here (redefined, or
                // blocked with no use on any continuation) — dropped.
            }
            if x_latest && x_usable {
                insert_after[idx].insert(i);
            }
        }
    }

    // Rewrite the program.
    let observe_insert = |instr: &Instr, pattern: usize, n: am_ir::NodeId, fact: &str| {
        recorder.record(ProvRecord {
            kind: ProvKind::FlushInsert,
            phase: "flush",
            round: 0,
            node: g_snapshot.label(n).to_owned(),
            index: None,
            instr: instr.display(g_snapshot.pool()),
            new_instr: None,
            pattern: Some(pattern as u32),
            instr_id: None,
            justification: fact.to_owned(),
        });
    };
    for n in g_snapshot.nodes() {
        let mut fresh: Vec<Instr> = Vec::new();
        let first = pg.first_of(n);
        let last = pg.last_of(n);
        for pi in first.index()..=last.index() {
            let p = am_dfa::PointId(pi as u32);
            let instr = match pg.instr(p) {
                Some(instr) => instr,
                None => {
                    // Virtual point of an empty block: it can still carry
                    // edge insertions (X-LATEST on a split edge).
                    for i in insert_before[pi].iter().chain(insert_after[pi].iter()) {
                        let init = Instr::Assign {
                            lhs: temps[i],
                            rhs: universe.expr(i),
                        };
                        if recorder.is_enabled() {
                            observe_insert(
                                &init,
                                i,
                                n,
                                "LATEST on the empty (split-edge) block, usable onward",
                            );
                        }
                        fresh.push(init);
                        stats.inserted += 1;
                    }
                    continue;
                }
            };
            // Insertions before this instruction.
            for i in insert_before[pi].iter() {
                let init = Instr::Assign {
                    lhs: temps[i],
                    rhs: universe.expr(i),
                };
                if recorder.is_enabled() {
                    observe_insert(&init, i, n, "N-INIT = N-LATEST · X-USABLE*");
                }
                fresh.push(init);
                stats.inserted += 1;
            }
            // The instruction itself.
            if is_inst[pi].is_empty() {
                let mut rewritten = instr.clone();
                for i in reconstruct[pi].iter() {
                    match reconstruct_use(&rewritten, temps[i], universe.expr(i)) {
                        Some(new_instr) => {
                            if recorder.is_enabled() {
                                recorder.record(ProvRecord {
                                    kind: ProvKind::FlushReconstruct,
                                    phase: "flush",
                                    round: 0,
                                    node: g_snapshot.label(n).to_owned(),
                                    index: Some((pi - first.index()) as u32),
                                    instr: rewritten.display(g_snapshot.pool()),
                                    new_instr: Some(new_instr.display(g_snapshot.pool())),
                                    pattern: Some(i as u32),
                                    instr_id: None,
                                    justification:
                                        "RECONSTRUCT = USED · N-LATEST · ¬X-USABLE*: sole use, \
                                         original term restored"
                                            .to_owned(),
                                });
                            }
                            rewritten = new_instr;
                            stats.reconstructed += 1;
                        }
                        None => {
                            // The use position cannot hold a term (it sits
                            // inside a binary term): keep the
                            // initialization instead.
                            let init = Instr::Assign {
                                lhs: temps[i],
                                rhs: universe.expr(i),
                            };
                            if recorder.is_enabled() {
                                observe_insert(
                                    &init,
                                    i,
                                    n,
                                    "RECONSTRUCT held, but the use position cannot carry a term",
                                );
                            }
                            fresh.push(init);
                            stats.inserted += 1;
                        }
                    }
                }
                fresh.push(rewritten);
            } else {
                // The instruction is an instance of some pattern and is
                // removed (re-inserted at its latest points). If it was
                // also the stop-point of *another* temporary marked for
                // reconstruction, that value's use travels with the
                // removed instance — materialize the initialization here,
                // where it dominates every re-insertion point reached
                // through this path.
                if recorder.is_enabled() {
                    recorder.record(ProvRecord {
                        kind: ProvKind::FlushRemove,
                        phase: "flush",
                        round: 0,
                        node: g_snapshot.label(n).to_owned(),
                        index: Some((pi - first.index()) as u32),
                        instr: instr.display(g_snapshot.pool()),
                        new_instr: None,
                        pattern: is_inst[pi].iter().next().map(|i| i as u32),
                        instr_id: None,
                        justification:
                            "IS-INST: the instance leaves its motion position for its latest points"
                                .to_owned(),
                    });
                }
                stats.instances_removed += 1;
                for i in reconstruct[pi].iter() {
                    let init = Instr::Assign {
                        lhs: temps[i],
                        rhs: universe.expr(i),
                    };
                    if recorder.is_enabled() {
                        observe_insert(
                            &init,
                            i,
                            n,
                            "reconstruction use travels with a removed instance; initialization \
                             materialized here",
                        );
                    }
                    fresh.push(init);
                    stats.inserted += 1;
                }
            }
            // Insertions after this instruction.
            for i in insert_after[pi].iter() {
                let init = Instr::Assign {
                    lhs: temps[i],
                    rhs: universe.expr(i),
                };
                if recorder.is_enabled() {
                    observe_insert(&init, i, n, "X-INIT = X-LATEST · X-USABLE*");
                }
                fresh.push(init);
                stats.inserted += 1;
            }
        }
        g.block_mut(n).instrs = fresh;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::initialize;
    use crate::motion::assignment_motion;
    use am_ir::alpha::canonical_text;
    use am_ir::interp;
    use am_ir::text::parse;

    const RUNNING_EXAMPLE: &str = "
        start 1
        end 4
        node 1 { y := c+d }
        node 2 { branch x+z > y+i }
        node 3 { y := c+d; x := y+z; i := i+x }
        node 4 { x := y+z; x := c+d; out(i,x,y) }
        edge 1 -> 2
        edge 2 -> 3, 4
        edge 3 -> 2
    ";

    fn run_pipeline(src: &str) -> (am_ir::FlowGraph, am_ir::FlowGraph) {
        let orig = parse(src).unwrap();
        let mut g = orig.clone();
        g.split_critical_edges();
        initialize(&mut g);
        assignment_motion(&mut g);
        final_flush(&mut g);
        (orig, g)
    }

    #[test]
    fn running_example_matches_fig15() {
        let (_, g) = run_pipeline(RUNNING_EXAMPLE);
        let canon = canonical_text(&g);
        // Fig. 15 / Fig. 5, node by node.
        assert!(
            canon.contains("node 1 {\n  h1 := c+d\n  y := h1\n  h2 := x+z\n  x := y+z\n}"),
            "node 1 mismatch:\n{canon}"
        );
        assert!(
            canon.contains("node 2 {\n  branch h2 > y+i\n}"),
            "node 2 mismatch:\n{canon}"
        );
        assert!(
            canon.contains("node 3 {\n  i := i+x\n  h2 := x+z\n}"),
            "node 3 mismatch:\n{canon}"
        );
        assert!(
            canon.contains("node 4 {\n  x := h1\n  out(i,x,y)\n}"),
            "node 4 mismatch:\n{canon}"
        );
    }

    #[test]
    fn running_example_preserves_semantics() {
        let (orig, g) = run_pipeline(RUNNING_EXAMPLE);
        for seed in 0..40 {
            let cfg = interp::Config {
                oracle: interp::Oracle::random(seed + 1, 10),
                inputs: vec![
                    ("c".into(), 2),
                    ("d".into(), seed as i64 % 5),
                    ("x".into(), 1),
                    ("z".into(), 3),
                    ("i".into(), 0),
                    ("y".into(), -1),
                ],
                ..Default::default()
            };
            let a = interp::run(&orig, &cfg);
            let b = interp::run(&g, &cfg);
            assert_eq!(a.observable(), b.observable(), "seed {seed}");
            if a.stop == interp::StopReason::ReachedEnd && b.stop == a.stop {
                assert!(b.expr_evals <= a.expr_evals, "seed {seed}");
            }
        }
    }

    #[test]
    fn flush_reconstructs_single_use_temporaries() {
        // After init, h := a+b; x := h has a single use: flush restores
        // x := a+b and drops the temporary.
        let src = "start 1\nend 2\nnode 1 { x := a+b }\nnode 2 { out(x) }\nedge 1 -> 2";
        let (_, g) = run_pipeline(src);
        let canon = canonical_text(&g);
        assert!(canon.contains("x := a+b"), "{canon}");
        assert!(!canon.contains("h1"), "{canon}");
    }

    #[test]
    fn flush_keeps_redundancy_eliminating_temporaries() {
        // a+b used twice: the temporary pays for itself.
        let src = "start 1\nend 2\nnode 1 { x := a+b; y := a+b }\nnode 2 { out(x,y) }\nedge 1 -> 2";
        let (_, g) = run_pipeline(src);
        let canon = canonical_text(&g);
        assert!(canon.contains("h1 := a+b"), "{canon}");
        assert!(canon.contains("x := h1"), "{canon}");
        assert!(canon.contains("y := h1"), "{canon}");
        assert_eq!(canon.matches("a+b").count(), 1, "{canon}");
    }

    #[test]
    fn flush_is_noop_without_temporaries() {
        let src = "start 1\nend 2\nnode 1 { x := a+b; b := 1 }\nnode 2 { out(x,b) }\nedge 1 -> 2";
        let mut g = parse(src).unwrap();
        let before = am_ir::text::to_text(&g);
        let stats = final_flush(&mut g);
        assert_eq!(stats.instances_removed, 0);
        assert_eq!(stats.inserted, 0);
        assert_eq!(am_ir::text::to_text(&g), before);
    }

    #[test]
    fn dead_initialization_is_dropped() {
        // h is never used: the instance must disappear entirely.
        let src = "start 1\nend 2\nnode 1 { x := a+b; x := 0 }\nnode 2 { out(x) }\nedge 1 -> 2";
        let orig = parse(src).unwrap();
        let mut g = orig.clone();
        initialize(&mut g);
        assignment_motion(&mut g);
        // After motion x := h is still there; make h dead by eliminating
        // the use through a manual overwrite scenario: x := 0 follows, so
        // the flush keeps correctness; semantics check suffices.
        final_flush(&mut g);
        for seed in 0..5 {
            let cfg = interp::Config {
                oracle: interp::Oracle::random(seed, 4),
                inputs: vec![("a".into(), 5), ("b".into(), 6)],
                ..Default::default()
            };
            assert_eq!(
                interp::run(&orig, &cfg).observable(),
                interp::run(&g, &cfg).observable()
            );
        }
    }

    #[test]
    fn branch_use_keeps_loop_carried_temporary() {
        // The h2 := x+z of the running example: each initialization feeds
        // the branch; delaying into the branch is blocked by x := y+z.
        let (_, g) = run_pipeline(RUNNING_EXAMPLE);
        let canon = canonical_text(&g);
        assert_eq!(canon.matches("h2 := x+z").count(), 2, "{canon}");
    }
}
