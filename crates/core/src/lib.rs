//! Uniform partially-redundant expression and assignment elimination — the
//! algorithm of *The Power of Assignment Motion* (Knoop, Rüthing, Steffen,
//! PLDI 1995), plus the baselines it is evaluated against.
//!
//! The entry point is [`global::optimize`], which runs the paper's three
//! phases on a flow graph:
//!
//! 1. [`init`] — decompose every assignment `x := t` into
//!    `h_t := t; x := h_t`, making assignment motion subsume expression
//!    motion;
//! 2. [`motion`] — interleave [`rae`] (redundant assignment elimination,
//!    Table 2) and [`hoist`] (assignment hoisting, Table 1) until the
//!    program stabilizes, capturing all second-order effects;
//! 3. [`flush`] — sink the surviving temporary initializations to their
//!    latest useful points and reconstruct the single-use ones (Table 3).
//!
//! # Examples
//!
//! ```
//! use am_ir::text::parse;
//! use am_core::global::optimize;
//!
//! // Fig. 4, the running example of the paper.
//! let g = parse(
//!     "start 1\nend 4\n\
//!      node 1 { y := c+d }\n\
//!      node 2 { branch x+z > y+i }\n\
//!      node 3 { y := c+d; x := y+z; i := i+x }\n\
//!      node 4 { x := y+z; x := c+d; out(i,x,y) }\n\
//!      edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2",
//! )?;
//! let result = optimize(&g);
//! let text = am_ir::alpha::canonical_text(&result.program);
//! // Fig. 5: the loop body only keeps i := i+x and the h2 update.
//! assert!(text.contains("node 3 {\n  i := i+x\n  h2 := x+z\n}"));
//! # Ok::<(), am_ir::text::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod copyprop;
pub mod flush;
pub mod global;
pub mod hoist;
mod incremental;
pub mod init;
pub mod lcm;
pub mod motion;
pub mod preorder;
pub mod rae;
pub mod restricted;
pub mod sink;
pub mod universe;
pub mod verify;
