//! Phase 1 — Initialization (Sec. 4.2).
//!
//! Every assignment `x := t` with a non-trivial `t` is replaced by the
//! sequence `h_t := t; x := h_t`, where `h_t` is the unique temporary of
//! term `t`; every non-trivial side ε of a branch condition is pulled out
//! into `h_ε := ε` placed immediately before the branch (Fig. 12 shows the
//! effect on the running example). The transformation is itself an
//! admissible expression motion, and — the paper's key observation — it
//! makes assignment motion subsume expression motion (Lemma 4.1).

use am_ir::{Cond, FlowGraph, Instr, Term};

/// Statistics of an initialization run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InitStats {
    /// Assignments that were decomposed into `h_t := t; x := h_t`.
    pub assignments_decomposed: usize,
    /// Condition sides that were pulled out into temporaries.
    pub condition_sides_extracted: usize,
}

/// Applies the initialization phase in place, returning statistics.
///
/// Assignments whose left-hand side already is the temporary of their
/// right-hand side (`h_t := t`) are left alone, which makes the phase
/// idempotent. Trivial right-hand sides (copies, constants) have no
/// associated temporary and are untouched.
/// # Examples
///
/// ```
/// use am_ir::text::parse;
/// use am_core::init::initialize;
///
/// let mut g = parse("start s\nend e\nnode s { x := a+b }\nnode e { out(x) }\nedge s -> e")?;
/// let stats = initialize(&mut g);
/// assert_eq!(stats.assignments_decomposed, 1);
/// // x := a+b became h := a+b; x := h.
/// assert_eq!(g.block(g.start()).len(), 2);
/// # Ok::<(), am_ir::text::ParseError>(())
/// ```
pub fn initialize(g: &mut FlowGraph) -> InitStats {
    let mut stats = InitStats::default();
    for n in g.nodes().collect::<Vec<_>>() {
        let old = std::mem::take(&mut g.block_mut(n).instrs);
        let mut new = Vec::with_capacity(old.len() * 2);
        for instr in old {
            match instr {
                Instr::Assign { lhs, rhs } if rhs.is_nontrivial() => {
                    let h = g.temp_for(rhs);
                    if h == lhs {
                        // Already an initialization; nothing to do.
                        new.push(Instr::Assign { lhs, rhs });
                    } else {
                        stats.assignments_decomposed += 1;
                        new.push(Instr::Assign { lhs: h, rhs });
                        new.push(Instr::assign(lhs, h));
                    }
                }
                Instr::Branch(c) => {
                    let mut side = |t: Term, g: &mut FlowGraph, new: &mut Vec<Instr>| -> Term {
                        if t.is_nontrivial() {
                            stats.condition_sides_extracted += 1;
                            let h = g.temp_for(t);
                            new.push(Instr::Assign { lhs: h, rhs: t });
                            Term::from(h)
                        } else {
                            t
                        }
                    };
                    let lhs = side(c.lhs, g, &mut new);
                    let rhs = side(c.rhs, g, &mut new);
                    new.push(Instr::Branch(Cond { op: c.op, lhs, rhs }));
                }
                other => new.push(other),
            }
        }
        g.block_mut(n).instrs = new;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::text::{parse, to_text};
    use am_ir::{interp, BinOp};

    const RUNNING_EXAMPLE: &str = "
        start 1
        end 4
        node 1 { y := c+d }
        node 2 { branch x+z > y+i }
        node 3 { y := c+d; x := y+z; i := i+x }
        node 4 { x := y+z; x := c+d; out(i,x,y) }
        edge 1 -> 2
        edge 2 -> 3, 4
        edge 3 -> 2
    ";

    #[test]
    fn decomposes_running_example_like_fig12() {
        let mut g = parse(RUNNING_EXAMPLE).unwrap();
        let stats = initialize(&mut g);
        // 6 non-trivial assignments (y:=c+d twice, x:=y+z twice, i:=i+x,
        // x:=c+d) and 2 condition sides.
        assert_eq!(stats.assignments_decomposed, 6);
        assert_eq!(stats.condition_sides_extracted, 2);
        let canon = am_ir::alpha::canonical_text(&g);
        // Node 1 (Fig. 12): h1 := c+d; y := h1.
        assert!(canon.contains("h1 := c+d\n  y := h1"), "{canon}");
        // Node 2 (Fig. 12): h2 := x+z; h3 := y+i; branch h2 > h3.
        assert!(
            canon.contains("h2 := x+z\n  h3 := y+i\n  branch h2 > h3"),
            "{canon}"
        );
        // Node 3 (Fig. 12): h1 := c+d; y := h1; h4 := y+z; x := h4; h5 := i+x; i := h5.
        assert!(
            canon.contains("h1 := c+d\n  y := h1\n  h4 := y+z\n  x := h4\n  h5 := i+x\n  i := h5"),
            "{canon}"
        );
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn preserves_semantics() {
        let mut g = parse(RUNNING_EXAMPLE).unwrap();
        let orig = g.clone();
        initialize(&mut g);
        for seed in 0..10 {
            let cfg = interp::Config {
                oracle: interp::Oracle::random(seed, 8),
                inputs: vec![
                    ("c".into(), 3),
                    ("d".into(), seed as i64),
                    ("x".into(), -2),
                    ("z".into(), 5),
                    ("i".into(), 1),
                ],
                ..interp::Config::default()
            };
            let a = interp::run(&orig, &cfg);
            let b = interp::run(&g, &cfg);
            assert_eq!(a.observable(), b.observable(), "seed {seed}");
            // Same expression evaluations: initialization adds only
            // temporary copies.
            assert_eq!(a.expr_evals, b.expr_evals, "seed {seed}");
        }
    }

    #[test]
    fn is_idempotent() {
        let mut g = parse(RUNNING_EXAMPLE).unwrap();
        initialize(&mut g);
        let once = to_text(&g);
        let stats = initialize(&mut g);
        assert_eq!(stats, InitStats::default());
        let twice = to_text(&g);
        assert_eq!(once, twice);
    }

    #[test]
    fn trivial_assignments_untouched() {
        let mut g =
            parse("start s\nend e\nnode s { x := y; z := 5 }\nnode e { out(x,z) }\nedge s -> e")
                .unwrap();
        let before = to_text(&g);
        let stats = initialize(&mut g);
        assert_eq!(stats, InitStats::default());
        assert_eq!(to_text(&g), before);
    }

    #[test]
    fn temporaries_are_shared_per_term() {
        let mut g = parse(
            "start s\nend e\nnode s { x := a+b; y := a+b }\nnode e { out(x,y) }\nedge s -> e",
        )
        .unwrap();
        initialize(&mut g);
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let h = g.temp_for(Term::binary(BinOp::Add, a, b));
        let instrs = &g.block(g.start()).instrs;
        assert_eq!(instrs.len(), 4);
        assert_eq!(
            instrs[0],
            Instr::Assign {
                lhs: h,
                rhs: Term::binary(BinOp::Add, a, b)
            }
        );
        assert_eq!(
            instrs[2],
            Instr::Assign {
                lhs: h,
                rhs: Term::binary(BinOp::Add, a, b)
            }
        );
    }
}
