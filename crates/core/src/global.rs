//! The global algorithm (Sec. 4.1): initialization → assignment motion →
//! final flush, with the intermediate programs the paper names `G_Init`
//! (Fig. 12), `G_AssMot` (Fig. 14) and `G_GlobAlg` (Fig. 15) exposed for
//! inspection, testing and figure regeneration.

use std::time::Duration;

use am_ir::FlowGraph;
use am_obs::ProvRecorder;
use am_trace::Tracer;

use crate::flush::{final_flush_observed, FlushStats};
use crate::init::{initialize, InitStats};
use crate::motion::{assignment_motion_observed, default_round_budget, MotionOrder, MotionStats};

/// A phase boundary of the global algorithm, as reported to the hook of
/// [`optimize_hooked`]. Ordered: `Split < Init < MotionRound(1) < … < Flush`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhaseId {
    /// After critical-edge splitting (Sec. 2.1).
    Split,
    /// After the initialization phase (Fig. 12, `G_Init`).
    Init,
    /// After the given 1-based `rae; aht` round of the assignment-motion
    /// fixed point (Fig. 14).
    MotionRound(usize),
    /// After the final flush (Fig. 15, `G_GlobAlg`).
    Flush,
}

impl std::fmt::Display for PhaseId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhaseId::Split => write!(f, "split"),
            PhaseId::Init => write!(f, "init"),
            PhaseId::MotionRound(r) => write!(f, "motion round {r}"),
            PhaseId::Flush => write!(f, "flush"),
        }
    }
}

/// Configuration of the global algorithm.
#[derive(Clone, Debug)]
pub struct GlobalConfig {
    /// Round budget for the assignment motion fixed point; `None` uses the
    /// paper's quadratic bound.
    pub max_motion_rounds: Option<usize>,
    /// Keep copies of the intermediate programs (costs two clones).
    pub keep_snapshots: bool,
    /// Trace sink for spans and counters; disabled (a no-op) by default.
    pub tracer: Tracer,
    /// Provenance sink recording one [`am_obs::ProvRecord`] per individual
    /// transformation (`amopt --explain`); disabled (one branch per
    /// potential record) by default.
    pub recorder: ProvRecorder,
    /// Worker threads for the data-flow solves inside one optimization
    /// (the point-partitioned parallel solver). The default of 1 keeps
    /// everything serial — the right choice when many programs are already
    /// optimized in parallel (the batch pipeline, `amserve`); raise it for
    /// single very large programs. Results are identical for every value.
    pub solver_workers: usize,
}

impl Default for GlobalConfig {
    fn default() -> Self {
        GlobalConfig {
            max_motion_rounds: None,
            keep_snapshots: true,
            tracer: Tracer::disabled(),
            recorder: ProvRecorder::disabled(),
            solver_workers: 1,
        }
    }
}

/// Wall-clock time spent in each phase of one [`optimize_with`] call.
///
/// Plain data (`Copy + Send`), so callers can aggregate timings across
/// worker threads — the batch pipeline sums these per phase to show where
/// a whole corpus spends its time.
///
/// The durations are measured by the per-phase trace spans (the same
/// measurement whether tracing is enabled or not), so a `phase` span in an
/// exported trace and the corresponding `PhaseTimings` field always agree.
/// New aggregation should prefer the trace stream
/// ([`am_trace::OptStats`]); this struct remains as the zero-setup summary
/// for direct callers — see DESIGN.md for the deprecation path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Critical-edge splitting (Sec. 2.1).
    pub split: Duration,
    /// Initialization (Fig. 12).
    pub init: Duration,
    /// The assignment-motion fixed point (Fig. 14).
    pub motion: Duration,
    /// The final flush (Fig. 15).
    pub flush: Duration,
}

impl PhaseTimings {
    /// Total time across all four phases.
    pub fn total(&self) -> Duration {
        self.split + self.init + self.motion + self.flush
    }

    /// Component-wise sum, for aggregation over many runs.
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        self.split += other.split;
        self.init += other.init;
        self.motion += other.motion;
        self.flush += other.flush;
    }
}

/// The result of running the global algorithm.
#[derive(Clone, Debug)]
pub struct GlobalResult {
    /// The transformed program `G_GlobAlg`.
    pub program: FlowGraph,
    /// `G_Init` — after the initialization phase (Fig. 12), if snapshots
    /// were requested.
    pub after_init: Option<FlowGraph>,
    /// `G_AssMot` — after the assignment motion phase (Fig. 14), if
    /// snapshots were requested.
    pub after_motion: Option<FlowGraph>,
    /// Initialization statistics.
    pub init: InitStats,
    /// Assignment motion statistics.
    pub motion: MotionStats,
    /// Final flush statistics.
    pub flush: FlushStats,
    /// Critical edges split before the phases ran.
    pub edges_split: usize,
    /// Wall-clock time per phase.
    pub timings: PhaseTimings,
}

/// Runs the complete algorithm on a copy of `g` with default configuration.
///
/// Critical edges are split first (Sec. 2.1); the original graph is not
/// modified.
///
/// # Examples
///
/// ```
/// use am_ir::text::parse;
/// use am_core::global::optimize;
///
/// let g = parse(
///     "start 1\nend 2\nnode 1 { x := a+b; y := a+b }\nnode 2 { out(x,y) }\nedge 1 -> 2",
/// )?;
/// let result = optimize(&g);
/// // The second a+b evaluation is gone: one initialization, two copies.
/// let text = am_ir::alpha::canonical_text(&result.program);
/// assert_eq!(text.matches("a+b").count(), 1);
/// # Ok::<(), am_ir::text::ParseError>(())
/// ```
pub fn optimize(g: &FlowGraph) -> GlobalResult {
    optimize_with(g, &GlobalConfig::default())
}

/// Runs the complete algorithm with explicit configuration.
pub fn optimize_with(g: &FlowGraph, config: &GlobalConfig) -> GlobalResult {
    optimize_hooked(g, config, &mut |_, _| {})
}

/// Runs the complete algorithm, calling `hook` at every phase boundary.
///
/// The hook fires after critical-edge splitting, after initialization,
/// after every assignment-motion round and after the final flush, with the
/// program as it stands at that boundary. It may mutate the program: the
/// subsequent phases continue from whatever the hook leaves behind. This is
/// the entry point of the translation-validation harness (`am-check`),
/// which uses read-only hooks to snapshot each phase for differential
/// checking and mutating hooks to inject a fault at a chosen boundary and
/// confirm the checker localizes it.
pub fn optimize_hooked(
    g: &FlowGraph,
    config: &GlobalConfig,
    hook: &mut dyn FnMut(PhaseId, &mut FlowGraph),
) -> GlobalResult {
    let tracer = &config.tracer;
    let mut timings = PhaseTimings::default();
    let mut root = tracer.span("phase", "optimize");
    root.arg("nodes", g.node_count() as i64)
        .arg("instrs", g.instr_count() as i64);
    let mut program = g.clone();
    let mut span = tracer.span("phase", "split");
    let edges_split = program.split_critical_edges();
    span.arg("edges_split", edges_split as i64);
    timings.split = span.end();
    hook(PhaseId::Split, &mut program);
    let span = tracer.span("phase", "init");
    let init = initialize(&mut program);
    timings.init = span.end();
    hook(PhaseId::Init, &mut program);
    if tracer.enabled() {
        let universe = am_ir::PatternUniverse::collect(&program);
        tracer.counter(
            "meta",
            "universe",
            &[
                ("assign_patterns", universe.assign_count() as i64),
                ("expr_patterns", universe.expr_count() as i64),
                ("nodes", program.node_count() as i64),
                ("instrs", program.instr_count() as i64),
            ],
        );
    }
    let after_init = config.keep_snapshots.then(|| program.clone());
    let budget = config
        .max_motion_rounds
        .unwrap_or_else(|| default_round_budget(&program));
    let span = tracer.span("phase", "motion");
    let motion = assignment_motion_observed(
        &mut program,
        budget,
        MotionOrder::RaeFirst,
        tracer,
        &config.recorder,
        &mut |round, g| hook(PhaseId::MotionRound(round), g),
        config.solver_workers,
    );
    timings.motion = span.end();
    let after_motion = config.keep_snapshots.then(|| program.clone());
    let span = tracer.span("phase", "flush");
    let flush = final_flush_observed(
        &mut program,
        tracer,
        &config.recorder,
        config.solver_workers,
    );
    timings.flush = span.end();
    hook(PhaseId::Flush, &mut program);
    root.arg("rounds", motion.rounds as i64)
        .arg("iterations", (motion.iterations + flush.iterations) as i64);
    drop(root);
    GlobalResult {
        program,
        after_init,
        after_motion,
        init,
        motion,
        flush,
        edges_split,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::alpha::canonical_text;
    use am_ir::interp;
    use am_ir::text::parse;

    const RUNNING_EXAMPLE: &str = "
        start 1
        end 4
        node 1 { y := c+d }
        node 2 { branch x+z > y+i }
        node 3 { y := c+d; x := y+z; i := i+x }
        node 4 { x := y+z; x := c+d; out(i,x,y) }
        edge 1 -> 2
        edge 2 -> 3, 4
        edge 3 -> 2
    ";

    #[test]
    fn snapshots_match_paper_phases() {
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let result = optimize(&g);
        assert!(result.motion.converged);
        // Fig. 12 snapshot: the branch now compares two temporaries.
        let init_text = canonical_text(result.after_init.as_ref().unwrap());
        assert!(init_text.contains("branch h2 > h3"), "{init_text}");
        // Fig. 14 snapshot: everything hoisted to node 1, y := c+d of the
        // loop eliminated.
        let motion_text = canonical_text(result.after_motion.as_ref().unwrap());
        let node1 = motion_text.split("node 2 {").next().unwrap().to_owned();
        for line in [
            "h1 := c+d",
            "y := h1",
            "h2 := x+z",
            "h3 := y+i",
            "h4 := y+z",
            "x := h4",
        ] {
            assert!(
                node1.contains(line),
                "missing {line} in node 1:\n{motion_text}"
            );
        }
        // Fig. 15: final program.
        let final_text = canonical_text(&result.program);
        assert!(final_text.contains("x := y+z"), "{final_text}");
        assert!(final_text.contains("branch h2 > y+i"), "{final_text}");
    }

    #[test]
    fn optimize_does_not_touch_the_input() {
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let before = am_ir::text::to_text(&g);
        let _ = optimize(&g);
        assert_eq!(am_ir::text::to_text(&g), before);
    }

    #[test]
    fn snapshots_can_be_disabled() {
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let result = optimize_with(
            &g,
            &GlobalConfig {
                keep_snapshots: false,
                ..Default::default()
            },
        );
        assert!(result.after_init.is_none());
        assert!(result.after_motion.is_none());
    }

    #[test]
    fn untouched_computations_stay_untouched() {
        // The paper highlights that i := i+x and the y+i / i+x
        // computations of the running example are not moved — they cannot
        // be moved profitably.
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let result = optimize(&g);
        let text = canonical_text(&result.program);
        assert!(text.contains("i := i+x"), "{text}");
        assert!(text.contains("y+i"), "{text}");
    }

    #[test]
    fn hook_fires_at_every_phase_boundary_with_matching_snapshots() {
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let mut phases: Vec<(PhaseId, FlowGraph)> = Vec::new();
        let result = optimize_hooked(&g, &GlobalConfig::default(), &mut |phase, prog| {
            phases.push((phase, prog.clone()));
        });
        // Split, Init, at least one motion round, Flush — in order.
        assert_eq!(phases[0].0, PhaseId::Split);
        assert_eq!(phases[1].0, PhaseId::Init);
        assert!(matches!(phases[2].0, PhaseId::MotionRound(1)));
        assert_eq!(phases.last().unwrap().0, PhaseId::Flush);
        assert!(phases.windows(2).all(|w| w[0].0 < w[1].0), "{phases:?}");
        // The hook's snapshots agree with the result's own.
        let init_snap = &phases[1].1;
        assert_eq!(init_snap, result.after_init.as_ref().unwrap());
        let last_round = phases
            .iter()
            .rev()
            .find(|(p, _)| matches!(p, PhaseId::MotionRound(_)))
            .unwrap();
        assert_eq!(&last_round.1, result.after_motion.as_ref().unwrap());
        assert_eq!(phases.last().unwrap().1, result.program);
        // A hooked run equals a plain run.
        assert_eq!(optimize(&g).program, result.program);
    }

    #[test]
    fn mutating_hook_feeds_later_phases() {
        // Corrupting the program after init changes the final outcome —
        // the fault-injection contract of the validation harness.
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let clean = optimize(&g).program;
        let faulty = optimize_hooked(&g, &GlobalConfig::default(), &mut |phase, prog| {
            if phase == PhaseId::Init {
                let start = prog.start();
                prog.block_mut(start).instrs.clear();
            }
        });
        assert_ne!(faulty.program, clean);
    }

    #[test]
    fn global_preserves_semantics_on_random_programs() {
        use am_ir::random::SplitMix64;
        use am_ir::random::{structured, unstructured, StructuredConfig, UnstructuredConfig};
        for seed in 0..25 {
            let mut rng = SplitMix64::new(seed);
            let orig = if seed % 2 == 0 {
                structured(&mut rng, &StructuredConfig::default())
            } else {
                unstructured(&mut rng, &UnstructuredConfig::default())
            };
            let result = optimize(&orig);
            assert!(result.motion.converged, "seed {seed}");
            assert_eq!(result.program.validate(), Ok(()), "seed {seed}");
            for run_seed in 0..5 {
                let cfg = interp::Config {
                    oracle: interp::Oracle::random(seed * 31 + run_seed, 14),
                    inputs: vec![
                        ("v0".into(), 2),
                        ("v1".into(), -3),
                        ("v2".into(), 11),
                        ("v3".into(), 0),
                    ],
                    ..Default::default()
                };
                let a = interp::run(&orig, &cfg);
                let b = interp::run(&result.program, &cfg);
                assert_eq!(
                    a.observable(),
                    b.observable(),
                    "seed {seed}/{run_seed}\nORIG:\n{orig:?}\nOPT:\n{:?}",
                    result.program
                );
                if a.stop == interp::StopReason::ReachedEnd
                    && b.stop == interp::StopReason::ReachedEnd
                {
                    assert!(
                        b.expr_evals <= a.expr_evals,
                        "expression optimality violated at seed {seed}/{run_seed}: {} -> {}\nORIG:\n{orig:?}\nOPT:\n{:?}",
                        a.expr_evals,
                        b.expr_evals,
                        result.program
                    );
                }
            }
        }
    }
}
