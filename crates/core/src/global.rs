//! The global algorithm (Sec. 4.1): initialization → assignment motion →
//! final flush, with the intermediate programs the paper names `G_Init`
//! (Fig. 12), `G_AssMot` (Fig. 14) and `G_GlobAlg` (Fig. 15) exposed for
//! inspection, testing and figure regeneration.

use std::time::{Duration, Instant};

use am_ir::FlowGraph;

use crate::flush::{final_flush, FlushStats};
use crate::init::{initialize, InitStats};
use crate::motion::{assignment_motion_bounded, default_round_budget, MotionStats};

/// Configuration of the global algorithm.
#[derive(Clone, Debug)]
pub struct GlobalConfig {
    /// Round budget for the assignment motion fixed point; `None` uses the
    /// paper's quadratic bound.
    pub max_motion_rounds: Option<usize>,
    /// Keep copies of the intermediate programs (costs two clones).
    pub keep_snapshots: bool,
}

impl Default for GlobalConfig {
    fn default() -> Self {
        GlobalConfig {
            max_motion_rounds: None,
            keep_snapshots: true,
        }
    }
}

/// Wall-clock time spent in each phase of one [`optimize_with`] call.
///
/// Plain data (`Copy + Send`), so callers can aggregate timings across
/// worker threads — the batch pipeline sums these per phase to show where
/// a whole corpus spends its time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Critical-edge splitting (Sec. 2.1).
    pub split: Duration,
    /// Initialization (Fig. 12).
    pub init: Duration,
    /// The assignment-motion fixed point (Fig. 14).
    pub motion: Duration,
    /// The final flush (Fig. 15).
    pub flush: Duration,
}

impl PhaseTimings {
    /// Total time across all four phases.
    pub fn total(&self) -> Duration {
        self.split + self.init + self.motion + self.flush
    }

    /// Component-wise sum, for aggregation over many runs.
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        self.split += other.split;
        self.init += other.init;
        self.motion += other.motion;
        self.flush += other.flush;
    }
}

/// The result of running the global algorithm.
#[derive(Clone, Debug)]
pub struct GlobalResult {
    /// The transformed program `G_GlobAlg`.
    pub program: FlowGraph,
    /// `G_Init` — after the initialization phase (Fig. 12), if snapshots
    /// were requested.
    pub after_init: Option<FlowGraph>,
    /// `G_AssMot` — after the assignment motion phase (Fig. 14), if
    /// snapshots were requested.
    pub after_motion: Option<FlowGraph>,
    /// Initialization statistics.
    pub init: InitStats,
    /// Assignment motion statistics.
    pub motion: MotionStats,
    /// Final flush statistics.
    pub flush: FlushStats,
    /// Critical edges split before the phases ran.
    pub edges_split: usize,
    /// Wall-clock time per phase.
    pub timings: PhaseTimings,
}

/// Runs the complete algorithm on a copy of `g` with default configuration.
///
/// Critical edges are split first (Sec. 2.1); the original graph is not
/// modified.
///
/// # Examples
///
/// ```
/// use am_ir::text::parse;
/// use am_core::global::optimize;
///
/// let g = parse(
///     "start 1\nend 2\nnode 1 { x := a+b; y := a+b }\nnode 2 { out(x,y) }\nedge 1 -> 2",
/// )?;
/// let result = optimize(&g);
/// // The second a+b evaluation is gone: one initialization, two copies.
/// let text = am_ir::alpha::canonical_text(&result.program);
/// assert_eq!(text.matches("a+b").count(), 1);
/// # Ok::<(), am_ir::text::ParseError>(())
/// ```
pub fn optimize(g: &FlowGraph) -> GlobalResult {
    optimize_with(g, &GlobalConfig::default())
}

/// Runs the complete algorithm with explicit configuration.
pub fn optimize_with(g: &FlowGraph, config: &GlobalConfig) -> GlobalResult {
    let mut timings = PhaseTimings::default();
    let mut program = g.clone();
    let t = Instant::now();
    let edges_split = program.split_critical_edges();
    timings.split = t.elapsed();
    let t = Instant::now();
    let init = initialize(&mut program);
    timings.init = t.elapsed();
    let after_init = config.keep_snapshots.then(|| program.clone());
    let budget = config
        .max_motion_rounds
        .unwrap_or_else(|| default_round_budget(&program));
    let t = Instant::now();
    let motion = assignment_motion_bounded(&mut program, budget);
    timings.motion = t.elapsed();
    let after_motion = config.keep_snapshots.then(|| program.clone());
    let t = Instant::now();
    let flush = final_flush(&mut program);
    timings.flush = t.elapsed();
    GlobalResult {
        program,
        after_init,
        after_motion,
        init,
        motion,
        flush,
        edges_split,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::alpha::canonical_text;
    use am_ir::interp;
    use am_ir::text::parse;

    const RUNNING_EXAMPLE: &str = "
        start 1
        end 4
        node 1 { y := c+d }
        node 2 { branch x+z > y+i }
        node 3 { y := c+d; x := y+z; i := i+x }
        node 4 { x := y+z; x := c+d; out(i,x,y) }
        edge 1 -> 2
        edge 2 -> 3, 4
        edge 3 -> 2
    ";

    #[test]
    fn snapshots_match_paper_phases() {
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let result = optimize(&g);
        assert!(result.motion.converged);
        // Fig. 12 snapshot: the branch now compares two temporaries.
        let init_text = canonical_text(result.after_init.as_ref().unwrap());
        assert!(init_text.contains("branch h2 > h3"), "{init_text}");
        // Fig. 14 snapshot: everything hoisted to node 1, y := c+d of the
        // loop eliminated.
        let motion_text = canonical_text(result.after_motion.as_ref().unwrap());
        let node1 = motion_text.split("node 2 {").next().unwrap().to_owned();
        for line in [
            "h1 := c+d",
            "y := h1",
            "h2 := x+z",
            "h3 := y+i",
            "h4 := y+z",
            "x := h4",
        ] {
            assert!(
                node1.contains(line),
                "missing {line} in node 1:\n{motion_text}"
            );
        }
        // Fig. 15: final program.
        let final_text = canonical_text(&result.program);
        assert!(final_text.contains("x := y+z"), "{final_text}");
        assert!(final_text.contains("branch h2 > y+i"), "{final_text}");
    }

    #[test]
    fn optimize_does_not_touch_the_input() {
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let before = am_ir::text::to_text(&g);
        let _ = optimize(&g);
        assert_eq!(am_ir::text::to_text(&g), before);
    }

    #[test]
    fn snapshots_can_be_disabled() {
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let result = optimize_with(
            &g,
            &GlobalConfig {
                keep_snapshots: false,
                ..Default::default()
            },
        );
        assert!(result.after_init.is_none());
        assert!(result.after_motion.is_none());
    }

    #[test]
    fn untouched_computations_stay_untouched() {
        // The paper highlights that i := i+x and the y+i / i+x
        // computations of the running example are not moved — they cannot
        // be moved profitably.
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let result = optimize(&g);
        let text = canonical_text(&result.program);
        assert!(text.contains("i := i+x"), "{text}");
        assert!(text.contains("y+i"), "{text}");
    }

    #[test]
    fn global_preserves_semantics_on_random_programs() {
        use am_ir::random::SplitMix64;
        use am_ir::random::{structured, unstructured, StructuredConfig, UnstructuredConfig};
        for seed in 0..25 {
            let mut rng = SplitMix64::new(seed);
            let orig = if seed % 2 == 0 {
                structured(&mut rng, &StructuredConfig::default())
            } else {
                unstructured(&mut rng, &UnstructuredConfig::default())
            };
            let result = optimize(&orig);
            assert!(result.motion.converged, "seed {seed}");
            assert_eq!(result.program.validate(), Ok(()), "seed {seed}");
            for run_seed in 0..5 {
                let cfg = interp::Config {
                    oracle: interp::Oracle::random(seed * 31 + run_seed, 14),
                    inputs: vec![
                        ("v0".into(), 2),
                        ("v1".into(), -3),
                        ("v2".into(), 11),
                        ("v3".into(), 0),
                    ],
                    ..Default::default()
                };
                let a = interp::run(&orig, &cfg);
                let b = interp::run(&result.program, &cfg);
                assert_eq!(
                    a.observable(),
                    b.observable(),
                    "seed {seed}/{run_seed}\nORIG:\n{orig:?}\nOPT:\n{:?}",
                    result.program
                );
                if a.stop == interp::StopReason::ReachedEnd
                    && b.stop == interp::StopReason::ReachedEnd
                {
                    assert!(
                        b.expr_evals <= a.expr_evals,
                        "expression optimality violated at seed {seed}/{run_seed}: {} -> {}\nORIG:\n{orig:?}\nOPT:\n{:?}",
                        a.expr_evals,
                        b.expr_evals,
                        result.program
                    );
                }
            }
        }
    }
}
