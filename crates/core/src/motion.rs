//! Phase 2 — the assignment motion fixed point (Sec. 4.3).
//!
//! Redundant assignment elimination and assignment hoisting enable each
//! other (the hoisting–elimination, hoisting–hoisting, elimination–hoisting
//! and elimination–elimination second-order effects of Sec. 4.3), so the
//! phase applies both exhaustively: `rae; aht` until the program stops
//! changing. The paper bounds the number of rounds quadratically in the
//! program size and observes it is linear for realistic programs — the
//! [`MotionStats::rounds`] counter feeds the complexity study.

use am_ir::FlowGraph;
use am_obs::ProvRecorder;
use am_trace::Tracer;

use crate::incremental::MotionContext;

/// Which procedure runs first within each round. The paper leaves the
/// order unspecified ("applied until the program stabilizes"); by local
/// confluence (Lemma 3.6) both orders reach cost-equivalent fixed points —
/// a property the test suite checks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MotionOrder {
    /// Eliminate redundancies, then hoist (the order used throughout).
    #[default]
    RaeFirst,
    /// Hoist, then eliminate.
    HoistFirst,
}

/// Statistics of an [`assignment_motion`] run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MotionStats {
    /// Number of `rae; aht` rounds until stabilization.
    pub rounds: usize,
    /// Total assignment occurrences eliminated.
    pub eliminated: usize,
    /// Total instances inserted by hoisting.
    pub inserted: usize,
    /// Total hoisting candidates removed.
    pub removed: usize,
    /// Total data-flow solver iterations across all rounds.
    pub iterations: u64,
    /// Total solver worklist pushes across all rounds.
    pub worklist_pushes: u64,
    /// Whether the fixed point was reached within the round budget.
    pub converged: bool,
}

/// The default round budget for a program: the paper's quadratic worst-case
/// bound, with slack for tiny programs.
pub fn default_round_budget(g: &FlowGraph) -> usize {
    let size = g.instr_count() + g.node_count();
    size * size + 16
}

/// Runs the assignment motion phase to its fixed point.
///
/// Critical edges must already be split (use
/// [`FlowGraph::split_critical_edges`]); the
/// [`global`](crate::global) pipeline does this for you.
/// # Examples
///
/// ```
/// use am_ir::text::parse;
/// use am_core::motion::assignment_motion;
///
/// // Fig. 2: the loop-invariant assignment merges above the loop.
/// let mut g = parse(
///     "start 1\nend 4\n\
///      node 1 { skip }\n\
///      node 2 { z := a+b; x := a+b }\n\
///      node 3 { x := a+b; y := x+y }\n\
///      node w { skip }\n\
///      node 4 { out(x,y) }\n\
///      edge 1 -> 2, 3\nedge 2 -> 4\nedge 3 -> w\nedge w -> 3, 4",
/// )?;
/// g.split_critical_edges();
/// let stats = assignment_motion(&mut g);
/// assert!(stats.converged);
/// assert_eq!(am_ir::text::to_text(&g).matches("x := a+b").count(), 1);
/// # Ok::<(), am_ir::text::ParseError>(())
/// ```
pub fn assignment_motion(g: &mut FlowGraph) -> MotionStats {
    assignment_motion_bounded(g, default_round_budget(g))
}

/// Runs the assignment motion phase with an explicit round budget.
///
/// Returns with `converged = false` when the budget is exhausted before the
/// program stabilizes (not observed in practice; the paper proves
/// termination).
pub fn assignment_motion_bounded(g: &mut FlowGraph, max_rounds: usize) -> MotionStats {
    assignment_motion_ordered(g, max_rounds, MotionOrder::RaeFirst)
}

/// Runs the assignment motion phase with an explicit round budget and
/// procedure order (the confluence ablation).
pub fn assignment_motion_ordered(
    g: &mut FlowGraph,
    max_rounds: usize,
    order: MotionOrder,
) -> MotionStats {
    assignment_motion_hooked(g, max_rounds, order, &mut |_, _| {})
}

/// Runs the assignment motion phase, calling `hook` at every round boundary.
///
/// The hook receives the 1-based round number and the program as it stands
/// after that round's `rae; aht` (or `aht; rae`) pass, *before* the
/// convergence test ends the loop. It may mutate the program: the
/// translation-validation harness uses read-only hooks to snapshot every
/// round and mutating hooks to inject faults at an exact phase boundary.
/// A mutation made in the round that would otherwise have converged is kept
/// but not re-stabilized — the budget governs further rounds as usual.
pub fn assignment_motion_hooked(
    g: &mut FlowGraph,
    max_rounds: usize,
    order: MotionOrder,
    hook: &mut dyn FnMut(usize, &mut FlowGraph),
) -> MotionStats {
    assignment_motion_traced(g, max_rounds, order, &Tracer::disabled(), hook)
}

/// As [`assignment_motion_hooked`], with tracing: each round runs under a
/// `round` span carrying its eliminated/inserted/removed counts, and the
/// rae/aht passes emit their own `analysis` spans and counters.
pub fn assignment_motion_traced(
    g: &mut FlowGraph,
    max_rounds: usize,
    order: MotionOrder,
    tracer: &Tracer,
    hook: &mut dyn FnMut(usize, &mut FlowGraph),
) -> MotionStats {
    assignment_motion_observed(
        g,
        max_rounds,
        order,
        tracer,
        &ProvRecorder::disabled(),
        hook,
        1,
    )
}

/// As [`assignment_motion_traced`], with provenance capture: every
/// elimination, hoist insertion and hoist removal appends one
/// [`am_obs::ProvRecord`] to `recorder`, keyed by node, instruction text,
/// pattern bit and round. A disabled recorder costs one branch per
/// potential record. `workers` threads solve each round's cold data-flow
/// systems on large graphs (1 = fully serial); the converged facts — and
/// thus the optimized program — are identical for every worker count.
#[allow(clippy::too_many_arguments)]
pub fn assignment_motion_observed(
    g: &mut FlowGraph,
    max_rounds: usize,
    order: MotionOrder,
    tracer: &Tracer,
    recorder: &ProvRecorder,
    hook: &mut dyn FnMut(usize, &mut FlowGraph),
    workers: usize,
) -> MotionStats {
    let mut ctx = MotionContext::new(g, workers);
    let mut stats = MotionStats::default();
    for round in 1..=max_rounds {
        let name = if tracer.enabled() {
            format!("round {round}")
        } else {
            String::new()
        };
        let mut span = tracer.span("round", name);
        let before_hash = ctx.content_hash(g);
        let (rae, hoist) = match order {
            MotionOrder::RaeFirst => {
                let rae = ctx.rae_round(g, tracer, recorder, round as u32);
                // An elimination-free pass leaves the program byte-identical,
                // so the round-entry hash is still the hoist input hash.
                let known = (rae.eliminated == 0).then_some(before_hash);
                let hoist = ctx.hoist_round(g, tracer, known, recorder, round as u32);
                (rae, hoist)
            }
            MotionOrder::HoistFirst => {
                let hoist = ctx.hoist_round(g, tracer, Some(before_hash), recorder, round as u32);
                let rae = ctx.rae_round(g, tracer, recorder, round as u32);
                (rae, hoist)
            }
        };
        stats.rounds += 1;
        stats.eliminated += rae.eliminated;
        stats.inserted += hoist.inserted;
        stats.removed += hoist.removed;
        stats.iterations += rae.iterations + hoist.iterations;
        stats.worklist_pushes += rae.worklist_pushes + hoist.worklist_pushes;
        span.arg("eliminated", rae.eliminated as i64)
            .arg("inserted", hoist.inserted as i64)
            .arg("removed", hoist.removed as i64);
        drop(span);
        ctx.emit_round_counters(tracer);
        // A round that provably changed nothing is the fixed point; the
        // hash fallback covers changes that happen to cancel out without
        // cloning the program every round (a collision could only end the
        // loop one round early, never produce a wrong program).
        let stable = (rae.eliminated == 0 && !hoist.changed) || ctx.content_hash(g) == before_hash;
        hook(round, g);
        if stable {
            stats.converged = true;
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::text::parse;
    use am_ir::{alpha, interp};

    fn check_semantics(orig: &FlowGraph, opt: &FlowGraph, inputs: &[(&str, i64)]) {
        for seed in 0..25 {
            let cfg = interp::Config {
                oracle: interp::Oracle::random(seed * 7 + 1, 8),
                inputs: inputs.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
                ..Default::default()
            };
            let a = interp::run(orig, &cfg);
            let b = interp::run(opt, &cfg);
            assert_eq!(a.observable(), b.observable(), "seed {seed}");
            // Cost comparisons are meaningful on complete runs; truncated
            // prefixes may observe hoisted work earlier than the original.
            if a.stop == interp::StopReason::ReachedEnd && b.stop == interp::StopReason::ReachedEnd
            {
                assert!(
                    b.assign_execs <= a.assign_execs,
                    "assignment executions increased (seed {seed}): {} -> {}",
                    a.assign_execs,
                    b.assign_execs
                );
            }
        }
    }

    #[test]
    fn fig2_loop_invariant_assignment_is_hoisted() {
        // Fig. 2: x := a+b hoisted out of the loop and merged.
        let src = "start 1\nend 5\n\
             node 1 { skip }\n\
             node 2 { z := a+b; x := a+b }\n\
             node 3 { x := a+b; y := x+y }\n\
             node w { skip }\n\
             node 4 { out(x,y) }\n\
             node 5 { skip }\n\
             edge 1 -> 2, 3\nedge 2 -> 4\nedge 3 -> w\nedge w -> 3, 4\nedge 4 -> 5";
        let orig = parse(src).unwrap();
        let mut g = orig.clone();
        g.split_critical_edges();
        let stats = assignment_motion(&mut g);
        assert!(stats.converged);
        // x := a+b now sits in node 1 and nowhere else.
        let text = alpha::canonical_text(&g);
        let occurrences = text.matches("x := a+b").count();
        assert_eq!(occurrences, 1, "{text}");
        let n1 = g.start();
        assert!(g
            .block(n1)
            .instrs
            .iter()
            .any(|i| i.display(g.pool()) == "x := a+b"));
        check_semantics(&orig, &g, &[("a", 2), ("b", 3), ("y", 10)]);
    }

    #[test]
    fn second_order_effect_elimination_enables_hoisting() {
        // Simplified Fig. 4 core: y := c+d in the loop is redundant; its
        // elimination unblocks hoisting of x := y+z out of the loop.
        // As in Fig. 4, the occurrence at node 4 is what justifies moving
        // the loop occurrence above the branch.
        let src = "start 1\nend 4\n\
             node 1 { y := c+d }\n\
             node 2 { branch q > 0 }\n\
             node 3 { y := c+d; x := y+z; q := q-1 }\n\
             node 4 { x := y+z; out(x,y,q) }\n\
             edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2";
        let orig = parse(src).unwrap();
        let mut g = orig.clone();
        g.split_critical_edges();
        let stats = assignment_motion(&mut g);
        assert!(stats.converged);
        assert!(stats.rounds >= 2, "needs a second round for the effect");
        for label in ["3", "4"] {
            let n = g.nodes().find(|&n| g.label(n) == label).unwrap();
            let body: Vec<String> = g
                .block(n)
                .instrs
                .iter()
                .map(|i| i.display(g.pool()))
                .collect();
            assert!(
                !body.contains(&"x := y+z".to_owned()),
                "x := y+z should have left node {label}: {body:?}"
            );
        }
        // y := c+d blocks it in node 1, so it lands at node 1's exit.
        let n1 = g.start();
        let body1: Vec<String> = g
            .block(n1)
            .instrs
            .iter()
            .map(|i| i.display(g.pool()))
            .collect();
        assert_eq!(body1, vec!["y := c+d", "x := y+z"]);
        check_semantics(&orig, &g, &[("c", 1), ("d", 2), ("z", 3), ("q", 2)]);
    }

    #[test]
    fn fig8_unrestricted_motion_succeeds() {
        // Fig. 8/9: hoisting a := x+y (not profitable by itself) unblocks
        // the elimination of the partially redundant x := y+z at node 4.
        let src = "start s\nend e\n\
             node s { skip }\n\
             node 1 { x := y+z; a := x+y; x := y+z }\n\
             node 2 { a := x+y; x := y+z }\n\
             node 4 { x := y+z; out(a,x) }\n\
             node e { skip }\n\
             edge s -> 1, 2\nedge 1 -> 4\nedge 2 -> 4\nedge 4 -> e";
        let orig = parse(src).unwrap();
        let mut g = orig.clone();
        g.split_critical_edges();
        let stats = assignment_motion(&mut g);
        assert!(stats.converged);
        // Fig. 9(b): node 4 keeps no x := y+z.
        let n4 = g.nodes().find(|&n| g.label(n) == "4").unwrap();
        let body: Vec<String> = g
            .block(n4)
            .instrs
            .iter()
            .map(|i| i.display(g.pool()))
            .collect();
        assert!(
            !body.contains(&"x := y+z".to_owned()),
            "partially redundant assignment should be gone: {body:?}"
        );
        check_semantics(&orig, &g, &[("y", 4), ("z", 5)]);
    }

    #[test]
    fn stable_program_converges_in_one_round() {
        let src = "start 1\nend 2\nnode 1 { x := a+b }\nnode 2 { out(x) }\nedge 1 -> 2";
        let mut g = parse(src).unwrap();
        let stats = assignment_motion(&mut g);
        assert!(stats.converged);
        // x := a+b is already at its earliest point; first round is a no-op.
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.eliminated, 0);
    }

    #[test]
    fn motion_on_random_programs_preserves_semantics() {
        use am_ir::random::SplitMix64;
        use am_ir::random::{structured, StructuredConfig};
        for seed in 0..30 {
            let mut rng = SplitMix64::new(seed);
            let orig = structured(&mut rng, &StructuredConfig::default());
            let mut g = orig.clone();
            g.split_critical_edges();
            let stats = assignment_motion(&mut g);
            assert!(stats.converged, "seed {seed} did not converge");
            assert_eq!(g.validate(), Ok(()), "seed {seed}");
            for run_seed in 0..6 {
                let cfg = interp::Config {
                    oracle: interp::Oracle::random(seed * 100 + run_seed, 12),
                    inputs: vec![("v0".into(), 3), ("v1".into(), -2), ("v2".into(), 7)],
                    ..Default::default()
                };
                let a = interp::run(&orig, &cfg);
                let b = interp::run(&g, &cfg);
                assert_eq!(
                    a.observable(),
                    b.observable(),
                    "seed {seed}/{run_seed}\nORIG:\n{orig:?}\nOPT:\n{g:?}"
                );
                if a.stop == interp::StopReason::ReachedEnd
                    && b.stop == interp::StopReason::ReachedEnd
                {
                    assert!(b.assign_execs <= a.assign_execs, "seed {seed}/{run_seed}");
                    assert!(b.expr_evals <= a.expr_evals, "seed {seed}/{run_seed}");
                }
            }
        }
    }
}
