//! The restricted assignment motion baseline (Sec. 1.4, Figures 8/9).
//!
//! Dhamdhere's practical adaptation of Morel–Renvoise PRE extends
//! expression motion to assignments but "heuristically restricts assignment
//! hoistings to *immediately profitable* ones, i.e., to hoistings which
//! eliminate a partially redundant assignment". An assignment that merely
//! *unblocks* another one is never moved, which is exactly what Fig. 8
//! exploits: the blocker `a := x+y` is not itself partially redundant, so
//! the restricted algorithm leaves the partially redundant `x := y+z`
//! behind, while the unrestricted phase of this crate removes it (Fig. 9).
//!
//! The implementation makes the heuristic operational: a pattern's hoisting
//! is accepted only when performing it (followed by redundancy elimination)
//! *strictly decreases* the pattern's occurrence count.

use am_ir::{FlowGraph, PatternUniverse};

use crate::hoist::{analyze_hoisting, apply_insertion_step_filtered};
use crate::rae::eliminate_redundant_assignments;

/// Statistics of a [`restricted_assignment_motion`] run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RestrictedStats {
    /// Hoistings accepted as immediately profitable.
    pub accepted: usize,
    /// Hoistings tried and rejected.
    pub rejected: usize,
    /// Assignment occurrences removed by redundancy elimination.
    pub eliminated: usize,
    /// Rounds until no profitable hoisting remains.
    pub rounds: usize,
}

fn occurrence_count(g: &FlowGraph, pat: &am_ir::AssignPattern) -> usize {
    g.locs().filter(|(_, instr)| pat.executed_by(instr)).count()
}

/// Runs the restricted (immediately-profitable-only) assignment motion.
///
/// Critical edges must already be split. The result is the Fig. 8 baseline:
/// redundancy elimination plus only those hoistings that pay off by
/// themselves.
/// # Examples
///
/// ```
/// use am_core::restricted::{fig8_example, restricted_assignment_motion};
///
/// let mut g = fig8_example();
/// g.split_critical_edges();
/// let stats = restricted_assignment_motion(&mut g);
/// // Fig. 8: nothing is immediately profitable.
/// assert_eq!(stats.accepted, 0);
/// ```
pub fn restricted_assignment_motion(g: &mut FlowGraph) -> RestrictedStats {
    let mut stats = RestrictedStats::default();
    let budget = crate::motion::default_round_budget(g);
    for _ in 0..budget {
        stats.rounds += 1;
        stats.eliminated += eliminate_redundant_assignments(g).eliminated;
        let analysis = analyze_hoisting(g);
        let universe = PatternUniverse::collect(g);
        let mut accepted_one = false;
        for (i, pat) in universe.assign_patterns() {
            let before = occurrence_count(g, &pat);
            if before == 0 {
                continue;
            }
            // Tentatively hoist only this pattern and clean up.
            let mut tentative = g.clone();
            let outcome = apply_insertion_step_filtered(&mut tentative, &analysis, |p| p == i);
            if !outcome.changed {
                continue;
            }
            eliminate_redundant_assignments(&mut tentative);
            let after = occurrence_count(&tentative, &pat);
            if after < before {
                *g = tentative;
                stats.accepted += 1;
                accepted_one = true;
                break; // re-analyze from scratch
            }
            stats.rejected += 1;
        }
        if !accepted_one {
            break;
        }
    }
    stats
}

/// The Fig. 8 example program (see module docs): a diamond whose join block
/// starts with the blocking assignment `a := x+y`.
pub fn fig8_example() -> FlowGraph {
    am_ir::text::parse(
        "start 0\nend e\n\
         node 0 { branch p > 0 }\n\
         node 1 { x := y+z }\n\
         node 3 { skip }\n\
         node 4 { a := x+y; x := y+z; out(a,x) }\n\
         node e { skip }\n\
         edge 0 -> 1, 3\nedge 1 -> 4\nedge 3 -> 4\nedge 4 -> e",
    )
    .expect("static example parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motion::assignment_motion;
    use am_ir::interp;

    fn count_everywhere(g: &FlowGraph, needle: &str) -> usize {
        am_ir::text::to_text(g).matches(needle).count()
    }

    #[test]
    fn fig8_restricted_motion_has_no_effect() {
        let mut g = fig8_example();
        g.split_critical_edges();
        let before = am_ir::text::to_text(&g);
        let stats = restricted_assignment_motion(&mut g);
        assert_eq!(stats.accepted, 0, "no hoisting is immediately profitable");
        assert_eq!(
            am_ir::text::to_text(&g),
            before,
            "program unchanged (Fig. 8)"
        );
        // The partially redundant assignment remains in node 4.
        let n4 = g.nodes().find(|&n| g.label(n) == "4").unwrap();
        assert!(g
            .block(n4)
            .instrs
            .iter()
            .any(|i| i.display(g.pool()) == "x := y+z"));
    }

    #[test]
    fn fig9_unrestricted_motion_eliminates_the_redundancy() {
        let mut g = fig8_example();
        g.split_critical_edges();
        let stats = assignment_motion(&mut g);
        assert!(stats.converged);
        // Fig. 9(b): node 4 holds only the out; x := y+z moved to node 1's
        // exit and node 3 (after the hoisted a := x+y).
        let n4 = g.nodes().find(|&n| g.label(n) == "4").unwrap();
        let body4: Vec<String> = g
            .block(n4)
            .instrs
            .iter()
            .map(|i| i.display(g.pool()))
            .collect();
        assert_eq!(body4, vec!["out(a,x)"]);
        let n1 = g.nodes().find(|&n| g.label(n) == "1").unwrap();
        let body1: Vec<String> = g
            .block(n1)
            .instrs
            .iter()
            .map(|i| i.display(g.pool()))
            .collect();
        assert_eq!(body1, vec!["x := y+z", "a := x+y"]);
        let n3 = g.nodes().find(|&n| g.label(n) == "3").unwrap();
        let body3: Vec<String> = g
            .block(n3)
            .instrs
            .iter()
            .map(|i| i.display(g.pool()))
            .collect();
        assert_eq!(body3, vec!["a := x+y", "skip", "x := y+z"]);
    }

    #[test]
    fn restricted_still_eliminates_full_redundancies() {
        let mut g = am_ir::text::parse(
            "start 1\nend 2\nnode 1 { x := a+b; x := a+b }\nnode 2 { out(x) }\nedge 1 -> 2",
        )
        .unwrap();
        let stats = restricted_assignment_motion(&mut g);
        assert_eq!(stats.eliminated, 1);
        assert_eq!(count_everywhere(&g, "x := a+b"), 1);
    }

    #[test]
    fn restricted_accepts_genuinely_profitable_hoists() {
        // x := a+b occurs on both branches and can merge above: hoisting it
        // is immediately profitable (2 occurrences become 1).
        let mut g = am_ir::text::parse(
            "start 1\nend 4\n\
             node 1 { skip }\n\
             node 2 { x := a+b; out(x) }\n\
             node 3 { x := a+b }\n\
             node 4 { out(x) }\n\
             edge 1 -> 2, 3\nedge 2 -> 4\nedge 3 -> 4",
        )
        .unwrap();
        g.split_critical_edges();
        let stats = restricted_assignment_motion(&mut g);
        assert!(stats.accepted >= 1);
        assert_eq!(count_everywhere(&g, "x := a+b"), 1);
    }

    #[test]
    fn restricted_preserves_semantics() {
        let orig = fig8_example();
        let mut g = orig.clone();
        g.split_critical_edges();
        restricted_assignment_motion(&mut g);
        for seed in 0..10 {
            let cfg = interp::Config {
                oracle: interp::Oracle::random(seed, 4),
                inputs: vec![("y".into(), 3), ("z".into(), seed as i64)],
                ..Default::default()
            };
            assert_eq!(
                interp::run(&orig, &cfg).observable(),
                interp::run(&g, &cfg).observable()
            );
        }
    }
}
