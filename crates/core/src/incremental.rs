//! Round-incremental state for the assignment-motion fixed point.
//!
//! Every round of [`assignment_motion`](crate::motion::assignment_motion)
//! re-solves the Table 1 and Table 2 systems on a program that usually
//! differs from the previous round in a handful of instructions. The naive
//! loop rebuilds everything from scratch each round; [`MotionContext`]
//! carries the parts that survive:
//!
//! * **Pattern universe and masks** — collected once at motion entry. The
//!   motion phase only *removes* occurrences and re-inserts instances of
//!   existing patterns, so the entry universe is a superset of every later
//!   round's universe and the per-bit independence of gen/kill systems
//!   makes the extra bits harmless. Two guards keep the results identical
//!   to a fresh-universe run: insertions are filtered to patterns that
//!   still occur, and same-point insertions are emitted in the current
//!   graph's first-occurrence order (the order a fresh universe would
//!   number them). A hook that injects a *new* pattern (fault injection)
//!   is detected when the instruction is first interned and triggers an
//!   in-place universe extension: existing pattern ids stay stable and the
//!   new patterns take the next free indices, so only the caches whose
//!   bitset width depends on the universe size are dropped.
//! * **Gen/kill rows** — Table 2 rows keyed by hash-consed instruction id
//!   ([`am_ir::intern::InstrInterner`]) and Table 1 block locals keyed by
//!   the block's id vector. Each distinct instruction content is
//!   structurally hashed once, at interning; from then on row lookups,
//!   block keys and the program content hash compose cached hashes and
//!   compare ids. Unchanged instructions and blocks reuse their rows; the
//!   `incremental/gen_kill_rows` trace counter reports the hit rate per
//!   round.
//! * **Schedules** — the instruction-level and node-level solver schedules,
//!   reused while the structure fingerprint (block lengths + edges) is
//!   unchanged, so the RPO traversals are not re-derived per solve.
//! * **Previous hoist system** — when a round's Table 1 rows changed only
//!   monotonically downward (candidates lost, blockades gained), the
//!   backward must system is re-solved from the previous greatest solution
//!   with only the dirty nodes seeded ([`am_dfa::solve_seeded`]); the old
//!   solution is a post-fixed point of the lowered system, so the descent
//!   reaches the new greatest fixed point. Non-monotone changes fall back
//!   to a cold scheduled solve. A round whose hoist input is byte-identical
//!   to the previous round's (last elimination found nothing and the last
//!   hoist was a no-op) skips the solve outright.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use am_bitset::BitSet;
use am_dfa::{
    node_adjacency, solve_scheduled, solve_seeded, Confluence, Direction, PatternMasks, PointData,
    PointGraph, Problem, Schedule, Solution,
};
use am_ir::intern::{InstrId, InstrInterner};
use am_ir::{AssignPattern, FlowGraph, Instr, Loc, PatternUniverse};
use am_obs::{ProvKind, ProvRecord, ProvRecorder};
use am_trace::Tracer;

use crate::hoist::{block_locals, insertion_points, HoistOutcome};
use crate::rae::{redundancy_row, remove_locs, RaeOutcome};

/// Multiply-rotate hasher in the FxHash family. The row caches hash every
/// instruction once per round and the fingerprints hash the whole program;
/// SipHash is measurable overhead at that call frequency, and none of these
/// tables face untrusted keys. Map collisions are resolved by `Eq`;
/// fingerprint collisions can only skip a no-op re-solve or end the motion
/// loop a round early, never corrupt a result.
#[derive(Default)]
struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = tail << 8 | b as u64;
        }
        self.add(tail);
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// Table 1 locals of one block (see [`block_locals`]).
#[derive(Clone)]
struct BlockLocals {
    hoistable: BitSet,
    blocked: BitSet,
    candidates: Vec<(usize, usize)>,
}

/// The previous round's hoist system and solution, kept for warm-started
/// re-solves. All content-addressed: a hook that rewires the graph changes
/// the edge hash and invalidates it.
struct PrevHoist {
    edge_hash: u64,
    gen: Vec<BitSet>,
    kill: Vec<BitSet>,
    solution: Solution,
}

/// The node-level solver system shared by every hoist round with the same
/// block edges: adjacency lists plus the priority schedule, borrowed in
/// place (never cloned) by [`MotionContext::hoist_round`].
struct NodeSystem {
    edge_hash: u64,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
    schedule: Schedule,
}

/// State carried across assignment-motion rounds.
pub(crate) struct MotionContext {
    universe: PatternUniverse,
    masks: PatternMasks,
    /// Hash-consing interner shared by every fingerprint below: each
    /// distinct instruction content is structurally hashed once, after
    /// which row lookups compare ids and the program content hash composes
    /// cached per-instruction hashes.
    interner: InstrInterner,
    /// Set when an interned instruction carries an assignment pattern the
    /// universe does not know (only possible through a mutating hook);
    /// consumed by [`Self::refresh_if_stale`].
    stale: bool,
    /// Table 2 rows by interned instruction: `(own pattern bit, kill set)`.
    rae_rows: HashMap<InstrId, (Option<usize>, BitSet), FxBuild>,
    /// Table 1 locals by interned block content.
    hoist_rows: HashMap<Vec<InstrId>, BlockLocals, FxBuild>,
    /// Instruction-level point structure (adjacency + schedule), keyed by
    /// the structure fingerprint; detached from the round's `PointGraph`
    /// and re-attached next round when the structure is unchanged.
    point_data: Option<(u64, PointData)>,
    /// Reusable Table 2 problem buffers, keyed by (structure fingerprint,
    /// universe size); every non-virtual point's row is overwritten each
    /// round, and virtual points stay empty.
    rae_problem: Option<(u64, usize, Problem)>,
    /// Node-level adjacency and schedule, keyed by the edge fingerprint.
    node_system: Option<NodeSystem>,
    prev_hoist: Option<PrevHoist>,
    /// Content hash of the last hoist input and whether that hoist changed
    /// the program; a byte-identical re-run of a no-op is skipped.
    last_hoist: Option<(u64, bool)>,
    rows_reused: u64,
    rows_recomputed: u64,
    hoist_skipped: u64,
    hoist_warm: u64,
}

impl MotionContext {
    /// Builds the context for a motion run over `g`.
    pub(crate) fn new(g: &FlowGraph) -> Self {
        let universe = PatternUniverse::collect(g);
        let masks = PatternMasks::build(&universe, g.pool().len());
        MotionContext {
            universe,
            masks,
            interner: InstrInterner::new(),
            stale: false,
            rae_rows: HashMap::default(),
            hoist_rows: HashMap::default(),
            point_data: None,
            rae_problem: None,
            node_system: None,
            prev_hoist: None,
            last_hoist: None,
            rows_reused: 0,
            rows_recomputed: 0,
            hoist_skipped: 0,
            hoist_warm: 0,
        }
    }

    /// Extends the universe over `g` and drops every pattern-indexed
    /// cache. Called when the program contains an assignment pattern the
    /// current universe does not know (only possible through a mutating
    /// hook). Extension keeps all existing pattern ids stable — new
    /// patterns take fresh indices — so nothing that survives the refresh
    /// (schedules, the interner, the previous point structure) has to be
    /// renumbered; the caches cleared here are exactly the ones whose
    /// bitset width depends on the universe size.
    fn refresh(&mut self, g: &FlowGraph) {
        self.universe.extend(g);
        self.masks = PatternMasks::build(&self.universe, g.pool().len());
        self.rae_rows.clear();
        self.hoist_rows.clear();
        self.rae_problem = None;
        self.prev_hoist = None;
        self.stale = false;
    }

    /// Consumes the staleness flag raised by [`Self::intern_instr`].
    fn refresh_if_stale(&mut self, g: &FlowGraph) {
        if self.stale {
            self.refresh(g);
        }
    }

    /// Interns one instruction, flagging the context stale when a *new*
    /// content carries an assignment pattern the universe does not know.
    /// The universe only grows, so any instruction interned before is
    /// covered forever and the check runs exactly once per distinct
    /// content — staleness detection costs nothing beyond the intern
    /// lookup that the row caches need anyway.
    fn intern_instr(&mut self, instr: &Instr) -> InstrId {
        let (id, is_new) = self.interner.intern(instr);
        if is_new {
            if let Instr::Assign { lhs, rhs } = instr {
                if self
                    .universe
                    .assign_id(&AssignPattern::new(*lhs, *rhs))
                    .is_none()
                {
                    self.stale = true;
                }
            }
        }
        id
    }

    /// Content hash of the whole program — blocks, edges and boundary
    /// nodes — composed from the interner's cached per-instruction hashes.
    /// The motion loop uses it both for the hoist no-op skip and as the
    /// convergence check, avoiding a full program clone per round; a
    /// collision can only skip a no-op re-solve or end the loop a round
    /// early, never corrupt a result.
    pub(crate) fn content_hash(&mut self, g: &FlowGraph) -> u64 {
        let mut h = FxHasher::default();
        g.start().index().hash(&mut h);
        g.end().index().hash(&mut h);
        g.node_count().hash(&mut h);
        for n in g.nodes() {
            for instr in &g.block(n).instrs {
                let id = self.intern_instr(instr);
                h.write_u64(self.interner.hash(id));
            }
            for &m in g.succs(n) {
                m.index().hash(&mut h);
            }
            0xffusize.hash(&mut h);
        }
        h.finish()
    }

    /// First-occurrence rank of every assignment pattern in `g` (`None` for
    /// patterns without occurrences), refreshing the universe first if it
    /// is stale.
    fn occurrence_ranks(&mut self, g: &FlowGraph) -> Vec<Option<u32>> {
        if let Some(ranks) = occurrence_ranks_in(g, &self.universe) {
            return ranks;
        }
        self.refresh(g);
        occurrence_ranks_in(g, &self.universe).expect("fresh universe covers the program")
    }

    /// The instruction-level point graph of `g`, re-attaching the cached
    /// structure (adjacency + schedule) when it is unchanged.
    fn point_graph<'g>(&mut self, g: &'g FlowGraph, fp: u64) -> PointGraph<'g> {
        if let Some((h, data)) = self.point_data.take() {
            let points: usize = g.nodes().map(|n| g.block(n).len().max(1)).sum();
            if h == fp && data.len() == points {
                return PointGraph::attach(g, data);
            }
        }
        PointGraph::build(g)
    }

    /// One redundant-assignment-elimination pass with cached rows.
    pub(crate) fn rae_round(
        &mut self,
        g: &mut FlowGraph,
        tracer: &Tracer,
        recorder: &ProvRecorder,
        round: u32,
    ) -> RaeOutcome {
        let mut span = tracer.span("analysis", "rae");
        let fp = point_structure_hash(g);
        let pg = self.point_graph(g, fp);
        let n = pg.len();
        // One intern pass over the instruction points: yields the row-cache
        // key per point and doubles as the staleness scan that used to walk
        // the program separately.
        let mut ids: Vec<Option<InstrId>> = vec![None; n];
        for point in pg.points() {
            if let Some(instr) = pg.instr(point) {
                ids[point.index()] = Some(self.intern_instr(instr));
            }
        }
        self.refresh_if_stale(g);
        let ap = self.universe.assign_count();
        let mut problem = match self.rae_problem.take() {
            Some((h, u, mut problem)) if h == fp && u == ap && problem.gen.len() == n => {
                // Reused buffers: every non-virtual point's gen row is
                // cleared below before its bit is set; virtual points were
                // empty when first built and are never written.
                problem.gen.iter_mut().for_each(|row| row.clear());
                problem
            }
            _ => Problem::new(Direction::Forward, Confluence::Must, n, ap),
        };
        let mut own: Vec<Option<usize>> = vec![None; n];
        for point in pg.points() {
            let Some(instr) = pg.instr(point) else {
                continue;
            };
            let idx = point.index();
            let id = ids[idx].expect("instruction points were interned above");
            match self.rae_rows.get(&id) {
                Some((gen, kill)) => {
                    self.rows_reused += 1;
                    own[idx] = *gen;
                    if let Some(i) = *gen {
                        problem.gen[idx].insert(i);
                    }
                    problem.kill[idx].copy_from(kill);
                }
                None => {
                    let (gen, kill) = redundancy_row(instr, &self.universe, &self.masks);
                    self.rows_recomputed += 1;
                    own[idx] = gen;
                    if let Some(i) = gen {
                        problem.gen[idx].insert(i);
                    }
                    problem.kill[idx].copy_from(&kill);
                    self.rae_rows.insert(id, (gen, kill));
                }
            }
        }
        let sol = solve_scheduled(pg.succs(), pg.preds(), &problem, pg.schedule());
        let mut locs: Vec<Loc> = Vec::new();
        for point in pg.points() {
            if let (Some(i), Some(loc)) = (own[point.index()], pg.loc(point)) {
                if sol.before[point.index()].contains(i) {
                    if recorder.is_enabled() {
                        let instr = pg
                            .instr(point)
                            .expect("occurrence point has an instruction");
                        recorder.record(ProvRecord {
                            kind: ProvKind::Eliminate,
                            phase: "motion",
                            round,
                            node: g.label(loc.node).to_owned(),
                            index: Some(loc.index as u32),
                            instr: instr.display(g.pool()),
                            new_instr: None,
                            pattern: Some(i as u32),
                            instr_id: ids[point.index()].map(|id| id.index() as u32),
                            justification: format!(
                                "N-REDUNDANT bit {i} holds at entry of this occurrence (forward must solution)"
                            ),
                        });
                    }
                    locs.push(loc);
                }
            }
        }
        // Detach the structure and the problem buffers for the next round
        // (also releases the borrow of `g` before `remove_locs` mutates it).
        self.point_data = Some((fp, pg.into_data()));
        self.rae_problem = Some((fp, ap, problem));
        let eliminated = locs.len();
        remove_locs(g, &locs);
        tracer.counter(
            "analysis",
            "rae",
            &[
                ("iterations", sol.iterations as i64),
                ("worklist_pushes", sol.worklist_pushes as i64),
                ("max_worklist_len", sol.max_worklist_len as i64),
            ],
        );
        span.arg("eliminated", eliminated as i64);
        RaeOutcome {
            eliminated,
            iterations: sol.iterations,
            worklist_pushes: sol.worklist_pushes,
            max_worklist_len: sol.max_worklist_len,
        }
    }

    /// One hoisting pass with cached block locals, schedule reuse, the
    /// no-op skip and the monotone warm-start path. `known_hash` is the
    /// content hash of `g` when the caller already has it (the motion loop
    /// hashes the program at round entry).
    pub(crate) fn hoist_round(
        &mut self,
        g: &mut FlowGraph,
        tracer: &Tracer,
        known_hash: Option<u64>,
        recorder: &ProvRecorder,
        round: u32,
    ) -> HoistOutcome {
        let input_hash = match known_hash {
            Some(h) => h,
            None => self.content_hash(g),
        };
        if self.last_hoist == Some((input_hash, false)) {
            // Byte-identical input to a hoist that changed nothing: the
            // deterministic analysis would reproduce that no-op.
            self.hoist_skipped += 1;
            return HoistOutcome::default();
        }
        let mut span = tracer.span("analysis", "aht");
        let nodes = g.node_count();
        // Intern every block once: the id vector is the row-cache key
        // (compared id-by-id on collision instead of re-walking the
        // instructions) and the pass doubles as staleness detection.
        let mut keys: Vec<Vec<InstrId>> = Vec::with_capacity(nodes);
        for n in g.nodes() {
            let mut key = Vec::with_capacity(g.block(n).instrs.len());
            for instr in &g.block(n).instrs {
                key.push(self.intern_instr(instr));
            }
            keys.push(key);
        }
        self.refresh_if_stale(g);
        let occ_rank = self.occurrence_ranks(g);
        let ap = self.universe.assign_count();

        let mut problem = Problem::new(Direction::Backward, Confluence::Must, nodes, ap);
        let mut candidates: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nodes];
        for n in g.nodes() {
            let ni = n.index();
            match self.hoist_rows.get(&keys[ni]) {
                Some(locals) => {
                    self.rows_reused += 1;
                    problem.gen[ni].copy_from(&locals.hoistable);
                    problem.kill[ni].copy_from(&locals.blocked);
                    candidates[ni].clone_from(&locals.candidates);
                }
                None => {
                    let (hoistable, blocked, cands) =
                        block_locals(&g.block(n).instrs, &self.universe, &self.masks);
                    self.rows_recomputed += 1;
                    problem.gen[ni].copy_from(&hoistable);
                    problem.kill[ni].copy_from(&blocked);
                    candidates[ni].clone_from(&cands);
                    self.hoist_rows.insert(
                        keys[ni].clone(),
                        BlockLocals {
                            hoistable,
                            blocked,
                            candidates: cands,
                        },
                    );
                }
            }
        }

        let edge_hash = edge_hash(g);
        let valid = matches!(&self.node_system,
            Some(ns) if ns.edge_hash == edge_hash && ns.succs.len() == nodes);
        if !valid {
            let (succs, preds) = node_adjacency(g);
            let schedule = Schedule::build(&succs, &preds);
            self.node_system = Some(NodeSystem {
                edge_hash,
                succs,
                preds,
                schedule,
            });
        }
        let ns = self.node_system.as_ref().expect("node system built above");
        let (succs, preds, schedule) = (&ns.succs, &ns.preds, &ns.schedule);

        let warm = self.prev_hoist.as_ref().and_then(|prev| {
            if prev.edge_hash != edge_hash || prev.gen.len() != nodes {
                return None;
            }
            let dirty: Vec<usize> = (0..nodes)
                .filter(|&i| prev.gen[i] != problem.gen[i] || prev.kill[i] != problem.kill[i])
                .collect();
            let lowered = dirty.iter().all(|&i| {
                problem.gen[i].is_subset(&prev.gen[i]) && prev.kill[i].is_subset(&problem.kill[i])
            });
            lowered.then_some(dirty)
        });
        let sol = match warm {
            Some(dirty) => {
                self.hoist_warm += 1;
                let prev = self.prev_hoist.as_ref().expect("warm implies prev");
                solve_seeded(succs, preds, &problem, schedule, &prev.solution, &dirty)
            }
            None => solve_scheduled(succs, preds, &problem, schedule),
        };
        tracer.counter(
            "analysis",
            "aht",
            &[
                ("iterations", sol.iterations as i64),
                ("worklist_pushes", sol.worklist_pushes as i64),
                ("max_worklist_len", sol.max_worklist_len as i64),
            ],
        );

        let (n_insert, x_insert) = insertion_points(g, &sol.before, &sol.after, &problem.kill, ap);
        let mut outcome = apply_ordered(
            g,
            &self.universe,
            &n_insert,
            &x_insert,
            &candidates,
            &occ_rank,
            recorder,
            round,
        );
        outcome.iterations = sol.iterations;
        outcome.worklist_pushes = sol.worklist_pushes;
        outcome.max_worklist_len = sol.max_worklist_len;
        self.prev_hoist = Some(PrevHoist {
            edge_hash,
            gen: std::mem::take(&mut problem.gen),
            kill: std::mem::take(&mut problem.kill),
            solution: sol,
        });
        self.last_hoist = Some((input_hash, outcome.changed));
        span.arg("inserted", outcome.inserted as i64)
            .arg("removed", outcome.removed as i64);
        outcome
    }

    /// Emits and resets the per-round incrementality counters.
    pub(crate) fn emit_round_counters(&mut self, tracer: &Tracer) {
        tracer.counter(
            "incremental",
            "gen_kill_rows",
            &[
                ("reused", self.rows_reused as i64),
                ("recomputed", self.rows_recomputed as i64),
            ],
        );
        if self.hoist_skipped > 0 || self.hoist_warm > 0 {
            tracer.counter(
                "incremental",
                "hoist_solves",
                &[
                    ("skipped", self.hoist_skipped as i64),
                    ("warm", self.hoist_warm as i64),
                ],
            );
        }
        self.rows_reused = 0;
        self.rows_recomputed = 0;
        self.hoist_skipped = 0;
        self.hoist_warm = 0;
    }
}

/// Applies the insertion/removal step using the fixed universe: insertions
/// are filtered to patterns that still occur in the program and emitted in
/// first-occurrence order — exactly the pattern set and bit order a
/// universe collected fresh from `g` would produce.
#[allow(clippy::too_many_arguments)]
fn apply_ordered(
    g: &mut FlowGraph,
    universe: &PatternUniverse,
    n_insert: &[BitSet],
    x_insert: &[BitSet],
    candidates: &[Vec<(usize, usize)>],
    occ_rank: &[Option<u32>],
    recorder: &ProvRecorder,
    round: u32,
) -> HoistOutcome {
    let mut outcome = HoistOutcome::default();
    for n in g.nodes().collect::<Vec<_>>() {
        let ni = n.index();
        if n_insert[ni].is_empty() && x_insert[ni].is_empty() && candidates[ni].is_empty() {
            continue;
        }
        let observe =
            |g: &FlowGraph, kind: ProvKind, index, instr: &Instr, pattern: usize, fact: &str| {
                recorder.record(ProvRecord {
                    kind,
                    phase: "motion",
                    round,
                    node: g.label(n).to_owned(),
                    index,
                    instr: instr.display(g.pool()),
                    new_instr: None,
                    pattern: Some(pattern as u32),
                    instr_id: None,
                    justification: fact.to_owned(),
                });
            };
        let mut fresh: Vec<Instr> = Vec::new();
        for i in occurring_in_order(&n_insert[ni], occ_rank) {
            let pat = universe.assign(i);
            let instr = Instr::Assign {
                lhs: pat.lhs,
                rhs: pat.rhs,
            };
            if recorder.is_enabled() {
                observe(
                    g,
                    ProvKind::HoistInsert,
                    None,
                    &instr,
                    i,
                    "N-INSERT: hoistable at entry, not hoistable out of some predecessor",
                );
            }
            fresh.push(instr);
            outcome.inserted += 1;
        }
        let removed_here: Vec<usize> = candidates[ni].iter().map(|(_, idx)| *idx).collect();
        for (idx, instr) in g.block(n).instrs.iter().enumerate() {
            if removed_here.contains(&idx) {
                if recorder.is_enabled() {
                    let (pattern, _) = candidates[ni][removed_here
                        .iter()
                        .position(|&r| r == idx)
                        .expect("idx came from removed_here")];
                    observe(
                        g,
                        ProvKind::HoistRemove,
                        Some(idx as u32),
                        instr,
                        pattern,
                        "first unblocked occurrence in its block, covered by hoisted instances",
                    );
                }
                outcome.removed += 1;
            } else {
                fresh.push(instr.clone());
            }
        }
        for i in occurring_in_order(&x_insert[ni], occ_rank) {
            let pat = universe.assign(i);
            let instr = Instr::Assign {
                lhs: pat.lhs,
                rhs: pat.rhs,
            };
            if recorder.is_enabled() {
                observe(
                    g,
                    ProvKind::HoistInsert,
                    None,
                    &instr,
                    i,
                    "X-INSERT: hoistable at exit, blocked from entering this block",
                );
            }
            fresh.push(instr);
            outcome.inserted += 1;
        }
        if g.block(n).instrs != fresh {
            outcome.changed = true;
            g.block_mut(n).instrs = fresh;
        }
    }
    outcome
}

/// The patterns of `set` that occur in the current program, ordered by
/// first occurrence.
fn occurring_in_order(set: &BitSet, occ_rank: &[Option<u32>]) -> Vec<usize> {
    let mut patterns: Vec<usize> = set.iter().filter(|&i| occ_rank[i].is_some()).collect();
    patterns.sort_by_key(|&i| occ_rank[i]);
    patterns
}

/// First-occurrence ranks over `universe`, or `None` if the program
/// contains an assignment pattern the universe does not know.
fn occurrence_ranks_in(g: &FlowGraph, universe: &PatternUniverse) -> Option<Vec<Option<u32>>> {
    let mut ranks: Vec<Option<u32>> = vec![None; universe.assign_count()];
    let mut next = 0u32;
    for (_, instr) in g.locs() {
        if let Instr::Assign { lhs, rhs } = instr {
            let i = universe.assign_id(&AssignPattern::new(*lhs, *rhs))?;
            if ranks[i].is_none() {
                ranks[i] = Some(next);
                next += 1;
            }
        }
    }
    Some(ranks)
}

/// Fingerprint of the instruction-level point structure: per-block
/// instruction counts plus block edges. Collisions only cost schedule
/// quality, never correctness — any schedule converges to the same fixed
/// point, and a length mismatch falls back to a fresh build.
fn point_structure_hash(g: &FlowGraph) -> u64 {
    let mut h = FxHasher::default();
    g.node_count().hash(&mut h);
    for n in g.nodes() {
        g.block(n).len().hash(&mut h);
        0xffusize.hash(&mut h);
        for &m in g.succs(n) {
            m.index().hash(&mut h);
        }
    }
    h.finish()
}

/// Fingerprint of the node-level edges.
fn edge_hash(g: &FlowGraph) -> u64 {
    let mut h = FxHasher::default();
    g.node_count().hash(&mut h);
    for n in g.nodes() {
        for &m in g.succs(n) {
            m.index().hash(&mut h);
        }
        0xffusize.hash(&mut h);
    }
    h.finish()
}
