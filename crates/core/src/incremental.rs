//! Round-incremental state for the assignment-motion fixed point.
//!
//! Every round of [`assignment_motion`](crate::motion::assignment_motion)
//! re-solves the Table 1 and Table 2 systems on a program that usually
//! differs from the previous round in a handful of instructions. The naive
//! loop rebuilds everything from scratch each round; [`MotionContext`]
//! carries the parts that survive:
//!
//! * **Pattern universe and masks** — collected once at motion entry. The
//!   motion phase only *removes* occurrences and re-inserts instances of
//!   existing patterns, so the entry universe is a superset of every later
//!   round's universe and the per-bit independence of gen/kill systems
//!   makes the extra bits harmless. Two guards keep the results identical
//!   to a fresh-universe run: insertions are filtered to patterns that
//!   still occur, and same-point insertions are emitted in the current
//!   graph's first-occurrence order (the order a fresh universe would
//!   number them). A hook that injects a *new* pattern (fault injection)
//!   is detected when the instruction is first interned and triggers an
//!   in-place universe extension: existing pattern ids stay stable and the
//!   new patterns take the next free indices, so only the caches whose
//!   bitset width depends on the universe size are dropped.
//! * **Gen/kill rows** — Table 2 rows keyed by hash-consed instruction id
//!   ([`am_ir::intern::InstrInterner`]) and Table 1 block locals keyed by
//!   the block's id vector. Each distinct instruction content is
//!   structurally hashed once, at interning; from then on row lookups,
//!   block keys and the program content hash compose cached hashes and
//!   compare ids. Unchanged instructions and blocks reuse their rows; the
//!   `incremental/gen_kill_rows` trace counter reports the hit rate per
//!   round.
//! * **Schedules** — the instruction-level and node-level solver schedules,
//!   reused while the structure fingerprint (block lengths + edges) is
//!   unchanged, so the RPO traversals are not re-derived per solve.
//! * **Previous hoist system** — when a round's Table 1 rows changed only
//!   monotonically downward (candidates lost, blockades gained), the
//!   backward must system is re-solved from the previous greatest solution
//!   with only the dirty nodes seeded ([`am_dfa::solve_seeded`]); the old
//!   solution is a post-fixed point of the lowered system, so the descent
//!   reaches the new greatest fixed point. Non-monotone changes fall back
//!   to a cold scheduled solve. A round whose hoist input is byte-identical
//!   to the previous round's (last elimination found nothing and the last
//!   hoist was a no-op) skips the solve outright.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use am_bitset::BitSet;
use am_dfa::{
    node_adjacency, solve_partitioned, solve_scheduled_reusing, solve_seeded_reusing, Adjacency,
    Confluence, Direction, PatternMasks, Problem, Schedule, Solution,
};
use am_ir::intern::{InstrId, InstrInterner};
use am_ir::{AssignPattern, FlowGraph, Instr, Loc, PatternUniverse};
use am_obs::{ProvKind, ProvRecord, ProvRecorder};
use am_trace::Tracer;

use crate::hoist::{block_locals, insertion_points_reusing, HoistOutcome};
use crate::rae::{redundancy_row, remove_locs, RaeOutcome};

/// Multiply-rotate hasher in the FxHash family. The row caches hash every
/// instruction once per round and the fingerprints hash the whole program;
/// SipHash is measurable overhead at that call frequency, and none of these
/// tables face untrusted keys. Map collisions are resolved by `Eq`;
/// fingerprint collisions can only skip a no-op re-solve or end the motion
/// loop a round early, never corrupt a result.
#[derive(Default)]
struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = tail << 8 | b as u64;
        }
        self.add(tail);
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// Table 1 locals of one block (see [`block_locals`]).
#[derive(Clone)]
struct BlockLocals {
    hoistable: BitSet,
    blocked: BitSet,
    candidates: Vec<(usize, usize)>,
}

/// The previous round's hoist system and solution, kept for warm-started
/// re-solves. All content-addressed: a hook that rewires the graph changes
/// the edge hash and invalidates it.
struct PrevHoist {
    edge_hash: u64,
    gen: Vec<BitSet>,
    kill: Vec<BitSet>,
    solution: Solution,
}

/// The composed Table 2 transfer of one block: `out = gen ∪ (in ∖ kill)`
/// over the whole instruction sequence (fold of the per-instruction rows:
/// `gen := (gen ∖ kill_i) ∪ gen_i`, `kill := kill ∪ kill_i`). `occurs`
/// records whether any instruction carries its own pattern bit — blocks
/// without an occurrence can never host an elimination, so the recovery
/// pass skips them.
struct RaeBlockRow {
    gen: BitSet,
    kill: BitSet,
    occurs: bool,
}

/// The node-level solver system shared by the redundancy and hoist passes
/// of every round with the same block edges: adjacency lists plus the
/// priority schedule, borrowed in place (never cloned).
struct NodeSystem {
    edge_hash: u64,
    succs: Adjacency,
    preds: Adjacency,
    schedule: Schedule,
}

/// State carried across assignment-motion rounds.
pub(crate) struct MotionContext {
    universe: PatternUniverse,
    masks: PatternMasks,
    /// Hash-consing interner shared by every fingerprint below: each
    /// distinct instruction content is structurally hashed once, after
    /// which row lookups compare ids and the program content hash composes
    /// cached per-instruction hashes.
    interner: InstrInterner,
    /// Set when an interned instruction carries an assignment pattern the
    /// universe does not know (only possible through a mutating hook);
    /// consumed by [`Self::refresh_if_stale`].
    stale: bool,
    /// Table 2 rows dense by interned instruction id: `(own pattern bit,
    /// kill set)`. The interner hands out dense indices, so the row of an
    /// already-seen instruction is one bounds-checked array load.
    rae_rows: Vec<Option<(Option<usize>, BitSet)>>,
    /// Composed Table 2 transfer of a whole block, by interned block
    /// content — the node-level gen/kill row the redundancy system is
    /// solved over (see [`MotionContext::rae_round`]).
    rae_blocks: HashMap<Vec<InstrId>, RaeBlockRow, FxBuild>,
    /// Table 1 locals by interned block content.
    hoist_rows: HashMap<Vec<InstrId>, BlockLocals, FxBuild>,
    /// Reusable node-level Table 2 problem buffers; every node's row is
    /// overwritten each round, so reuse only checks the universe width.
    rae_problem: Option<Problem>,
    /// Node-level adjacency and schedule, keyed by the edge fingerprint.
    node_system: Option<NodeSystem>,
    prev_hoist: Option<PrevHoist>,
    /// Detached fact buffers of the previous Table 2 solve, recycled into
    /// the next one (the facts themselves are reinitialized).
    rae_solution: Option<Solution>,
    /// Fact buffers of the hoist solution displaced from [`Self::prev_hoist`]
    /// a round ago, recycled into the next hoist solve.
    hoist_solution: Option<Solution>,
    /// Displaced hoist problem rows (gen, kill), recycled likewise.
    hoist_rows_spare: Option<(Vec<BitSet>, Vec<BitSet>)>,
    /// Last round's insertion tables, recycled into the next round.
    insert_spare: Option<(Vec<BitSet>, Vec<BitSet>)>,
    /// Per-block intern-key buffers, reused across rounds (each pass
    /// clears and refills them; elimination changes block contents between
    /// the redundancy and hoist passes, so they cannot share one filling).
    block_keys: Vec<Vec<InstrId>>,
    /// Content hash of the last hoist input and whether that hoist changed
    /// the program; a byte-identical re-run of a no-op is skipped.
    last_hoist: Option<(u64, bool)>,
    /// `(graph revision, content hash)` memo for [`Self::content_hash`].
    content_memo: Option<(u64, u64)>,
    /// Worker threads for cold solves. Cold solves over large point sets
    /// dispatch to the partitioned parallel solver; warm restarts stay
    /// serial (their dirty sets are tiny by construction).
    workers: usize,
    rows_reused: u64,
    rows_recomputed: u64,
    hoist_skipped: u64,
    hoist_warm: u64,
}

impl MotionContext {
    /// Builds the context for a motion run over `g`, solving cold systems
    /// on `workers` threads (1 = fully serial).
    pub(crate) fn new(g: &FlowGraph, workers: usize) -> Self {
        let universe = PatternUniverse::collect(g);
        let masks = PatternMasks::build(&universe, g.pool().len());
        MotionContext {
            universe,
            masks,
            interner: InstrInterner::new(),
            stale: false,
            rae_rows: Vec::new(),
            rae_blocks: HashMap::default(),
            hoist_rows: HashMap::default(),
            rae_problem: None,
            node_system: None,
            prev_hoist: None,
            rae_solution: None,
            hoist_solution: None,
            hoist_rows_spare: None,
            insert_spare: None,
            block_keys: Vec::new(),
            last_hoist: None,
            content_memo: None,
            workers: workers.max(1),
            rows_reused: 0,
            rows_recomputed: 0,
            hoist_skipped: 0,
            hoist_warm: 0,
        }
    }

    /// Extends the universe over `g` and drops every pattern-indexed
    /// cache. Called when the program contains an assignment pattern the
    /// current universe does not know (only possible through a mutating
    /// hook). Extension keeps all existing pattern ids stable — new
    /// patterns take fresh indices — so nothing that survives the refresh
    /// (schedules, the interner, the previous point structure) has to be
    /// renumbered; the caches cleared here are exactly the ones whose
    /// bitset width depends on the universe size.
    fn refresh(&mut self, g: &FlowGraph) {
        self.universe.extend(g);
        self.masks = PatternMasks::build(&self.universe, g.pool().len());
        self.rae_rows.clear();
        self.rae_blocks.clear();
        self.hoist_rows.clear();
        self.rae_problem = None;
        self.prev_hoist = None;
        self.stale = false;
    }

    /// Consumes the staleness flag raised by [`Self::intern_instr`].
    fn refresh_if_stale(&mut self, g: &FlowGraph) {
        if self.stale {
            self.refresh(g);
        }
    }

    /// Interns one instruction, flagging the context stale when a *new*
    /// content carries an assignment pattern the universe does not know.
    /// The universe only grows, so any instruction interned before is
    /// covered forever and the check runs exactly once per distinct
    /// content — staleness detection costs nothing beyond the intern
    /// lookup that the row caches need anyway.
    fn intern_instr(&mut self, instr: &Instr) -> InstrId {
        let (id, is_new) = self.interner.intern(instr);
        if is_new {
            if let Instr::Assign { lhs, rhs } = instr {
                if self
                    .universe
                    .assign_id(&AssignPattern::new(*lhs, *rhs))
                    .is_none()
                {
                    self.stale = true;
                }
            }
        }
        id
    }

    /// Content hash of the whole program — blocks, edges and boundary
    /// nodes — composed from the interner's cached per-instruction hashes.
    /// The motion loop uses it both for the hoist no-op skip and as the
    /// convergence check, avoiding a full program clone per round; a
    /// collision can only skip a no-op re-solve or end the loop a round
    /// early, never corrupt a result.
    ///
    /// Memoized on [`FlowGraph::revision`]: the end-of-round convergence
    /// hash doubles as the next round's entry hash for free, because the
    /// graph is only touched through `&mut` accessors in between (round
    /// hooks included — a mutating hook bumps the revision and invalidates
    /// the memo).
    pub(crate) fn content_hash(&mut self, g: &FlowGraph) -> u64 {
        if let Some((revision, hash)) = self.content_memo {
            if revision == g.revision() {
                return hash;
            }
        }
        let hash = self.content_hash_uncached(g);
        self.content_memo = Some((g.revision(), hash));
        hash
    }

    fn content_hash_uncached(&mut self, g: &FlowGraph) -> u64 {
        let mut h = FxHasher::default();
        g.start().index().hash(&mut h);
        g.end().index().hash(&mut h);
        g.node_count().hash(&mut h);
        for n in g.nodes() {
            for instr in &g.block(n).instrs {
                let id = self.intern_instr(instr);
                h.write_u64(self.interner.hash(id));
            }
            for &m in g.succs(n) {
                m.index().hash(&mut h);
            }
            0xffusize.hash(&mut h);
        }
        h.finish()
    }

    /// First-occurrence rank of every assignment pattern in `g` (`None` for
    /// patterns without occurrences), refreshing the universe first if it
    /// is stale.
    fn occurrence_ranks(&mut self, g: &FlowGraph) -> Vec<Option<u32>> {
        if let Some(ranks) = occurrence_ranks_in(g, &self.universe) {
            return ranks;
        }
        self.refresh(g);
        occurrence_ranks_in(g, &self.universe).expect("fresh universe covers the program")
    }

    /// Ensures the Table 2 row of interned instruction `id` exists and
    /// returns it. Rows are dense by id, so the hot path is two array
    /// checks; `redundancy_row` runs once per distinct content.
    fn rae_row(&mut self, id: InstrId, instr: &Instr) -> (Option<usize>, &BitSet) {
        let idx = id.index();
        if idx >= self.rae_rows.len() {
            self.rae_rows.resize_with(idx + 1, || None);
        }
        if self.rae_rows[idx].is_none() {
            self.rows_recomputed += 1;
            self.rae_rows[idx] = Some(redundancy_row(instr, &self.universe, &self.masks));
        } else {
            self.rows_reused += 1;
        }
        let (own, kill) = self.rae_rows[idx].as_ref().expect("row filled above");
        (*own, kill)
    }

    /// One redundant-assignment-elimination pass with cached rows.
    ///
    /// The Table 2 system is solved at **node level**: each block's
    /// per-instruction gen/kill rows are composed into one transfer
    /// (`RaeBlockRow`, exact for gen/kill systems — interior points of a
    /// block have a single predecessor, so substituting them out preserves
    /// the greatest fixed point), the fixpoint runs over the block graph,
    /// and the per-instruction entry facts are recovered by streaming each
    /// block's transfer from the solved entry set. On XL graphs this
    /// shrinks the solved system by the average block length (≈5×) and
    /// turns the per-point fact recovery into a sequential scan — the
    /// instruction-level `PointGraph` is no longer built per round at all.
    pub(crate) fn rae_round(
        &mut self,
        g: &mut FlowGraph,
        tracer: &Tracer,
        recorder: &ProvRecorder,
        round: u32,
    ) -> RaeOutcome {
        let mut span = tracer.span("analysis", "rae");
        let nodes = g.node_count();
        // Intern every instruction once: the id vectors key the block-row
        // cache and the pass doubles as the staleness scan.
        let mut keys = std::mem::take(&mut self.block_keys);
        keys.iter_mut().for_each(Vec::clear);
        keys.resize_with(nodes, Vec::new);
        for n in g.nodes() {
            let key = &mut keys[n.index()];
            for instr in &g.block(n).instrs {
                key.push(self.intern_instr(instr));
            }
        }
        self.refresh_if_stale(g);
        let ap = self.universe.assign_count();
        let mut problem = match self.rae_problem.take() {
            // Every node's row is fully overwritten below, so reuse only
            // needs matching width and count.
            Some(mut p) if p.universe == ap => {
                p.gen.resize_with(nodes, || BitSet::new(ap));
                p.kill.resize_with(nodes, || BitSet::new(ap));
                p
            }
            _ => Problem::new(Direction::Forward, Confluence::Must, nodes, ap),
        };
        // Compose each block's transfer through the block-row cache, and
        // remember which blocks contain an occurrence at all.
        let mut occurs = vec![false; nodes];
        let mut gen_b = BitSet::new(ap);
        let mut kill_b = BitSet::new(ap);
        for n in g.nodes() {
            let ni = n.index();
            if let Some(row) = self.rae_blocks.get(&keys[ni]) {
                self.rows_reused += keys[ni].len() as u64;
                problem.gen[ni].copy_from(&row.gen);
                problem.kill[ni].copy_from(&row.kill);
                occurs[ni] = row.occurs;
                continue;
            }
            gen_b.clear();
            kill_b.clear();
            let mut any = false;
            for (j, instr) in g.block(n).instrs.iter().enumerate() {
                let (own, kill) = self.rae_row(keys[ni][j], instr);
                gen_b.difference_with(kill);
                kill_b.union_with(kill);
                if let Some(i) = own {
                    any = true;
                    gen_b.insert(i);
                }
            }
            problem.gen[ni].copy_from(&gen_b);
            problem.kill[ni].copy_from(&kill_b);
            occurs[ni] = any;
            self.rae_blocks.insert(
                keys[ni].clone(),
                RaeBlockRow {
                    gen: gen_b.clone(),
                    kill: kill_b.clone(),
                    occurs: any,
                },
            );
        }
        // Node adjacency + schedule, shared with the hoist pass of the
        // same round (elimination never rewires edges).
        let eh = edge_hash(g);
        let valid = matches!(&self.node_system,
            Some(ns) if ns.edge_hash == eh && ns.succs.len() == nodes);
        if !valid {
            let (succs, preds) = node_adjacency(g);
            let schedule = Schedule::build(&succs, &preds);
            self.node_system = Some(NodeSystem {
                edge_hash: eh,
                succs,
                preds,
                schedule,
            });
        }
        let ns = self.node_system.as_ref().expect("node system built above");
        let sol = solve_cold_reusing(
            &ns.succs,
            &ns.preds,
            &problem,
            &ns.schedule,
            self.workers,
            self.rae_solution.take(),
        );
        // Recover per-instruction entry facts by streaming each block's
        // transfer from its solved entry set; an occurrence whose own bit
        // holds at its entry is redundant (Def. 3.4). Applying the transfer
        // of an instruction being eliminated is deliberate: the facts
        // describe the pre-removal program, exactly as the point-level
        // solve did.
        let mut locs: Vec<Loc> = Vec::new();
        let mut x = BitSet::new(ap);
        for n in g.nodes() {
            let ni = n.index();
            if !occurs[ni] {
                continue;
            }
            x.copy_from(&sol.before[ni]);
            for (j, instr) in g.block(n).instrs.iter().enumerate() {
                let (own, kill) = self.rae_rows[keys[ni][j].index()]
                    .as_ref()
                    .map(|(own, kill)| (*own, kill))
                    .expect("rows of composed blocks exist");
                if let Some(i) = own {
                    if x.contains(i) {
                        if recorder.is_enabled() {
                            recorder.record(ProvRecord {
                                kind: ProvKind::Eliminate,
                                phase: "motion",
                                round,
                                node: g.label(n).to_owned(),
                                index: Some(j as u32),
                                instr: instr.display(g.pool()),
                                new_instr: None,
                                pattern: Some(i as u32),
                                instr_id: Some(keys[ni][j].index() as u32),
                                justification: format!(
                                    "N-REDUNDANT bit {i} holds at entry of this occurrence (forward must solution)"
                                ),
                            });
                        }
                        locs.push(Loc { node: n, index: j });
                    }
                }
                x.difference_with(kill);
                if let Some(i) = own {
                    x.insert(i);
                }
            }
        }
        // Detach the problem, key and fact buffers for the next round.
        self.rae_problem = Some(problem);
        self.block_keys = keys;
        let (iterations, worklist_pushes, max_worklist_len) =
            (sol.iterations, sol.worklist_pushes, sol.max_worklist_len);
        self.rae_solution = Some(sol);
        let eliminated = locs.len();
        remove_locs(g, &locs);
        tracer.counter(
            "analysis",
            "rae",
            &[
                ("iterations", iterations as i64),
                ("worklist_pushes", worklist_pushes as i64),
                ("max_worklist_len", max_worklist_len as i64),
            ],
        );
        span.arg("eliminated", eliminated as i64);
        RaeOutcome {
            eliminated,
            iterations,
            worklist_pushes,
            max_worklist_len,
        }
    }

    /// One hoisting pass with cached block locals, schedule reuse, the
    /// no-op skip and the monotone warm-start path. `known_hash` is the
    /// content hash of `g` when the caller already has it (the motion loop
    /// hashes the program at round entry).
    pub(crate) fn hoist_round(
        &mut self,
        g: &mut FlowGraph,
        tracer: &Tracer,
        known_hash: Option<u64>,
        recorder: &ProvRecorder,
        round: u32,
    ) -> HoistOutcome {
        let input_hash = match known_hash {
            Some(h) => h,
            None => self.content_hash(g),
        };
        if self.last_hoist == Some((input_hash, false)) {
            // Byte-identical input to a hoist that changed nothing: the
            // deterministic analysis would reproduce that no-op.
            self.hoist_skipped += 1;
            return HoistOutcome::default();
        }
        let mut span = tracer.span("analysis", "aht");
        let nodes = g.node_count();
        // Intern every block once: the id vector is the row-cache key
        // (compared id-by-id on collision instead of re-walking the
        // instructions) and the pass doubles as staleness detection. The
        // key buffers persist across rounds.
        let mut keys = std::mem::take(&mut self.block_keys);
        keys.iter_mut().for_each(Vec::clear);
        keys.resize_with(nodes, Vec::new);
        for n in g.nodes() {
            let key = &mut keys[n.index()];
            for instr in &g.block(n).instrs {
                key.push(self.intern_instr(instr));
            }
        }
        self.refresh_if_stale(g);
        let occ_rank = self.occurrence_ranks(g);
        let ap = self.universe.assign_count();

        let mut problem = Problem::new(Direction::Backward, Confluence::Must, 0, ap);
        // Recycle the problem rows displaced from `prev_hoist` a round ago:
        // every node's gen/kill row is overwritten below, so only width and
        // count need fixing up.
        if let Some((gen, kill)) = self.hoist_rows_spare.take() {
            if gen.first().is_none_or(|r| r.len() == ap) {
                problem.gen = gen;
                problem.kill = kill;
            }
        }
        problem.gen.resize_with(nodes, || BitSet::new(ap));
        problem.kill.resize_with(nodes, || BitSet::new(ap));
        let mut candidates: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nodes];
        for n in g.nodes() {
            let ni = n.index();
            match self.hoist_rows.get(&keys[ni]) {
                Some(locals) => {
                    self.rows_reused += 1;
                    problem.gen[ni].copy_from(&locals.hoistable);
                    problem.kill[ni].copy_from(&locals.blocked);
                    candidates[ni].clone_from(&locals.candidates);
                }
                None => {
                    let (hoistable, blocked, cands) =
                        block_locals(&g.block(n).instrs, &self.universe, &self.masks);
                    self.rows_recomputed += 1;
                    problem.gen[ni].copy_from(&hoistable);
                    problem.kill[ni].copy_from(&blocked);
                    candidates[ni].clone_from(&cands);
                    self.hoist_rows.insert(
                        keys[ni].clone(),
                        BlockLocals {
                            hoistable,
                            blocked,
                            candidates: cands,
                        },
                    );
                }
            }
        }

        let edge_hash = edge_hash(g);
        let valid = matches!(&self.node_system,
            Some(ns) if ns.edge_hash == edge_hash && ns.succs.len() == nodes);
        if !valid {
            let (succs, preds) = node_adjacency(g);
            let schedule = Schedule::build(&succs, &preds);
            self.node_system = Some(NodeSystem {
                edge_hash,
                succs,
                preds,
                schedule,
            });
        }
        let ns = self.node_system.as_ref().expect("node system built above");
        let (succs, preds, schedule) = (&ns.succs, &ns.preds, &ns.schedule);

        let warm = self.prev_hoist.as_ref().and_then(|prev| {
            if prev.edge_hash != edge_hash || prev.gen.len() != nodes {
                return None;
            }
            let dirty: Vec<usize> = (0..nodes)
                .filter(|&i| prev.gen[i] != problem.gen[i] || prev.kill[i] != problem.kill[i])
                .collect();
            let lowered = dirty.iter().all(|&i| {
                problem.gen[i].is_subset(&prev.gen[i]) && prev.kill[i].is_subset(&problem.kill[i])
            });
            lowered.then_some(dirty)
        });
        let recycled = self.hoist_solution.take();
        let sol = match warm {
            Some(dirty) => {
                self.hoist_warm += 1;
                let prev = self.prev_hoist.as_ref().expect("warm implies prev");
                solve_seeded_reusing(
                    succs,
                    preds,
                    &problem,
                    schedule,
                    &prev.solution,
                    &dirty,
                    recycled,
                )
            }
            None => solve_cold_reusing(succs, preds, &problem, schedule, self.workers, recycled),
        };
        tracer.counter(
            "analysis",
            "aht",
            &[
                ("iterations", sol.iterations as i64),
                ("worklist_pushes", sol.worklist_pushes as i64),
                ("max_worklist_len", sol.max_worklist_len as i64),
            ],
        );

        let (n_insert, x_insert) = insertion_points_reusing(
            g,
            &sol.before,
            &sol.after,
            &problem.kill,
            ap,
            self.insert_spare.take(),
        );
        let mut outcome = apply_ordered(
            g,
            &self.universe,
            &n_insert,
            &x_insert,
            &candidates,
            &occ_rank,
            recorder,
            round,
        );
        outcome.iterations = sol.iterations;
        outcome.worklist_pushes = sol.worklist_pushes;
        outcome.max_worklist_len = sol.max_worklist_len;
        let displaced = self.prev_hoist.replace(PrevHoist {
            edge_hash,
            gen: std::mem::take(&mut problem.gen),
            kill: std::mem::take(&mut problem.kill),
            solution: sol,
        });
        if let Some(old) = displaced {
            self.hoist_rows_spare = Some((old.gen, old.kill));
            self.hoist_solution = Some(old.solution);
        }
        self.insert_spare = Some((n_insert, x_insert));
        self.block_keys = keys;
        self.last_hoist = Some((input_hash, outcome.changed));
        span.arg("inserted", outcome.inserted as i64)
            .arg("removed", outcome.removed as i64);
        outcome
    }

    /// Emits and resets the per-round incrementality counters.
    pub(crate) fn emit_round_counters(&mut self, tracer: &Tracer) {
        tracer.counter(
            "incremental",
            "gen_kill_rows",
            &[
                ("reused", self.rows_reused as i64),
                ("recomputed", self.rows_recomputed as i64),
            ],
        );
        if self.hoist_skipped > 0 || self.hoist_warm > 0 {
            tracer.counter(
                "incremental",
                "hoist_solves",
                &[
                    ("skipped", self.hoist_skipped as i64),
                    ("warm", self.hoist_warm as i64),
                ],
            );
        }
        self.rows_reused = 0;
        self.rows_recomputed = 0;
        self.hoist_skipped = 0;
        self.hoist_warm = 0;
    }
}

/// Applies the insertion/removal step using the fixed universe: insertions
/// are filtered to patterns that still occur in the program and emitted in
/// first-occurrence order — exactly the pattern set and bit order a
/// universe collected fresh from `g` would produce.
#[allow(clippy::too_many_arguments)]
fn apply_ordered(
    g: &mut FlowGraph,
    universe: &PatternUniverse,
    n_insert: &[BitSet],
    x_insert: &[BitSet],
    candidates: &[Vec<(usize, usize)>],
    occ_rank: &[Option<u32>],
    recorder: &ProvRecorder,
    round: u32,
) -> HoistOutcome {
    let mut outcome = HoistOutcome::default();
    for n in g.nodes().collect::<Vec<_>>() {
        let ni = n.index();
        if n_insert[ni].is_empty() && x_insert[ni].is_empty() && candidates[ni].is_empty() {
            continue;
        }
        let observe =
            |g: &FlowGraph, kind: ProvKind, index, instr: &Instr, pattern: usize, fact: &str| {
                recorder.record(ProvRecord {
                    kind,
                    phase: "motion",
                    round,
                    node: g.label(n).to_owned(),
                    index,
                    instr: instr.display(g.pool()),
                    new_instr: None,
                    pattern: Some(pattern as u32),
                    instr_id: None,
                    justification: fact.to_owned(),
                });
            };
        let mut fresh: Vec<Instr> = Vec::new();
        for i in occurring_in_order(&n_insert[ni], occ_rank) {
            let pat = universe.assign(i);
            let instr = Instr::Assign {
                lhs: pat.lhs,
                rhs: pat.rhs,
            };
            if recorder.is_enabled() {
                observe(
                    g,
                    ProvKind::HoistInsert,
                    None,
                    &instr,
                    i,
                    "N-INSERT: hoistable at entry, not hoistable out of some predecessor",
                );
            }
            fresh.push(instr);
            outcome.inserted += 1;
        }
        let removed_here: Vec<usize> = candidates[ni].iter().map(|(_, idx)| *idx).collect();
        for (idx, instr) in g.block(n).instrs.iter().enumerate() {
            if removed_here.contains(&idx) {
                if recorder.is_enabled() {
                    let (pattern, _) = candidates[ni][removed_here
                        .iter()
                        .position(|&r| r == idx)
                        .expect("idx came from removed_here")];
                    observe(
                        g,
                        ProvKind::HoistRemove,
                        Some(idx as u32),
                        instr,
                        pattern,
                        "first unblocked occurrence in its block, covered by hoisted instances",
                    );
                }
                outcome.removed += 1;
            } else {
                fresh.push(instr.clone());
            }
        }
        for i in occurring_in_order(&x_insert[ni], occ_rank) {
            let pat = universe.assign(i);
            let instr = Instr::Assign {
                lhs: pat.lhs,
                rhs: pat.rhs,
            };
            if recorder.is_enabled() {
                observe(
                    g,
                    ProvKind::HoistInsert,
                    None,
                    &instr,
                    i,
                    "X-INSERT: hoistable at exit, blocked from entering this block",
                );
            }
            fresh.push(instr);
            outcome.inserted += 1;
        }
        if g.block(n).instrs != fresh {
            outcome.changed = true;
            g.block_mut(n).instrs = fresh;
        }
    }
    outcome
}

/// The patterns of `set` that occur in the current program, ordered by
/// first occurrence.
fn occurring_in_order(set: &BitSet, occ_rank: &[Option<u32>]) -> Vec<usize> {
    let mut patterns: Vec<usize> = set.iter().filter(|&i| occ_rank[i].is_some()).collect();
    patterns.sort_by_key(|&i| occ_rank[i]);
    patterns
}

/// First-occurrence ranks over `universe`, or `None` if the program
/// contains an assignment pattern the universe does not know.
fn occurrence_ranks_in(g: &FlowGraph, universe: &PatternUniverse) -> Option<Vec<Option<u32>>> {
    let mut ranks: Vec<Option<u32>> = vec![None; universe.assign_count()];
    let mut next = 0u32;
    for (_, instr) in g.locs() {
        if let Instr::Assign { lhs, rhs } = instr {
            let i = universe.assign_id(&AssignPattern::new(*lhs, *rhs))?;
            if ranks[i].is_none() {
                ranks[i] = Some(next);
                next += 1;
            }
        }
    }
    Some(ranks)
}

/// Cold-solve dispatch: partitioned parallel when more than one worker is
/// configured, serial otherwise. The partitioned solver itself falls back
/// to the serial path below its size threshold, so small graphs pay
/// nothing; its converged facts are bit-identical to the serial solver's
/// for any worker count. The serial path recycles detached fact buffers
/// (the partitioned path allocates per partition and ignores them).
fn solve_cold_reusing(
    succs: &Adjacency,
    preds: &Adjacency,
    problem: &Problem,
    schedule: &Schedule,
    workers: usize,
    recycled: Option<Solution>,
) -> Solution {
    if workers > 1 {
        solve_partitioned(succs, preds, problem, schedule, workers)
    } else {
        solve_scheduled_reusing(succs, preds, problem, schedule, recycled)
    }
}

/// Fingerprint of the node-level edges.
fn edge_hash(g: &FlowGraph) -> u64 {
    let mut h = FxHasher::default();
    g.node_count().hash(&mut h);
    for n in g.nodes() {
        for &m in g.succs(n) {
            m.index().hash(&mut h);
        }
        0xffusize.hash(&mut h);
    }
    h.finish()
}
