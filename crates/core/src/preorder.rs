//! The optimization preorders of Def. 3.7/3.8, evaluated empirically.
//!
//! The paper compares programs of the universe `G` by three preorders over
//! corresponding paths:
//!
//! * `≤exp` — per expression pattern, the number of evaluations;
//! * `≤ass` — the number of assignment executions;
//! * `≤tmp` — the cost of temporaries: executed initializations and
//!   lifetime ranges.
//!
//! Preorders lack antisymmetry, so two programs can be *incomparable* —
//! the crux of the Fig. 16/17 discussion. [`evaluate`] measures both
//! programs over a batch of corresponding runs (shared oracles and inputs)
//! and classifies each axis as [`Dominance::Equal`], [`Dominance::Left`]
//! (first program strictly better somewhere, never worse),
//! [`Dominance::Right`], or [`Dominance::Incomparable`].

use am_ir::interp::{run, Config, Oracle, StopReason};
use am_ir::FlowGraph;

use crate::verify::{temp_lifetime_points, CompareConfig};

/// Outcome of comparing two programs along one preorder axis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dominance {
    /// Identical costs on every observed run.
    Equal,
    /// The first program is at least as good everywhere and strictly better
    /// somewhere.
    Left,
    /// The second program is at least as good everywhere and strictly
    /// better somewhere.
    Right,
    /// Each program beats the other on some run (or pattern) — the
    /// incomparability the paper's Fig. 16/17 exhibits.
    Incomparable,
}

impl Dominance {
    fn from_flags(left_better_somewhere: bool, right_better_somewhere: bool) -> Dominance {
        match (left_better_somewhere, right_better_somewhere) {
            (false, false) => Dominance::Equal,
            (true, false) => Dominance::Left,
            (false, true) => Dominance::Right,
            (true, true) => Dominance::Incomparable,
        }
    }

    /// Whether the first program is at least as good (`Equal` or `Left`).
    pub fn left_dominates(self) -> bool {
        matches!(self, Dominance::Equal | Dominance::Left)
    }
}

/// The three preorder axes of Def. 3.8, plus run accounting.
#[derive(Clone, Debug)]
pub struct PreorderReport {
    /// `≤exp`, refined per expression pattern: `Left` means the first
    /// program never evaluates any pattern more often and evaluates some
    /// pattern less often on some run.
    pub expr: Dominance,
    /// `≤ass`: total assignment executions.
    pub assign: Dominance,
    /// `≤tmp`, dynamic half: executed assignments to temporaries.
    pub temp_assign: Dominance,
    /// `≤tmp`, static half: temporary lifetime ranges (liveness points).
    pub temp_lifetime: Dominance,
    /// Completed corresponding runs the classification is based on.
    pub completed_runs: usize,
}

impl PreorderReport {
    /// Whether the first program is expression-optimal relative to the
    /// second (Thm 5.2's conclusion on this sample).
    pub fn left_expression_optimal(&self) -> bool {
        self.expr.left_dominates()
    }
}

/// Measures `a` and `b` over a batch of corresponding runs and classifies
/// the three preorders.
///
/// # Examples
///
/// ```
/// use am_ir::text::parse;
/// use am_core::global::optimize;
/// use am_core::preorder::{evaluate, Dominance};
/// use am_core::verify::CompareConfig;
///
/// let g = parse(
///     "start 1\nend 4\n\
///      node 1 { y := c+d }\n\
///      node 2 { branch x+z > y+i }\n\
///      node 3 { y := c+d; x := y+z; i := i+x }\n\
///      node 4 { x := y+z; x := c+d; out(i,x,y) }\n\
///      edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2",
/// )?;
/// let optimized = optimize(&g).program;
/// let config = CompareConfig {
///     inputs: vec![("c".into(), 1), ("d".into(), 2), ("x".into(), 3), ("z".into(), 4)],
///     ..Default::default()
/// };
/// let report = evaluate(&optimized, &g, &config);
/// // The paper's trade-off in one line: strictly fewer expression
/// // evaluations, while the assignment axis is no longer a clean win.
/// assert_eq!(report.expr, Dominance::Left);
/// assert_ne!(report.assign, Dominance::Left);
/// # Ok::<(), am_ir::text::ParseError>(())
/// ```
pub fn evaluate(a: &FlowGraph, b: &FlowGraph, config: &CompareConfig) -> PreorderReport {
    let mut expr_l = false;
    let mut expr_r = false;
    let mut ass_l = false;
    let mut ass_r = false;
    let mut tmp_l = false;
    let mut tmp_r = false;
    let mut completed = 0;
    for i in 0..config.runs {
        let cfg = Config {
            oracle: Oracle::random(config.seed.wrapping_add(i as u64), config.decisions),
            inputs: config.inputs.clone(),
            ..Config::default()
        };
        let ra = run(a, &cfg);
        let rb = run(b, &cfg);
        if ra.stop != StopReason::ReachedEnd || rb.stop != StopReason::ReachedEnd {
            continue;
        }
        completed += 1;
        // Per-pattern expression comparison (Def. 3.8(1)).
        let patterns = ra
            .expr_evals_by_pattern
            .keys()
            .chain(rb.expr_evals_by_pattern.keys());
        for t in patterns {
            let ca = ra.expr_evals_by_pattern.get(t).copied().unwrap_or(0);
            let cb = rb.expr_evals_by_pattern.get(t).copied().unwrap_or(0);
            expr_l |= ca < cb;
            expr_r |= cb < ca;
        }
        ass_l |= ra.assign_execs < rb.assign_execs;
        ass_r |= rb.assign_execs < ra.assign_execs;
        tmp_l |= ra.temp_assign_execs < rb.temp_assign_execs;
        tmp_r |= rb.temp_assign_execs < ra.temp_assign_execs;
    }
    let life_a = temp_lifetime_points(a);
    let life_b = temp_lifetime_points(b);
    PreorderReport {
        expr: Dominance::from_flags(expr_l, expr_r),
        assign: Dominance::from_flags(ass_l, ass_r),
        temp_assign: Dominance::from_flags(tmp_l, tmp_r),
        temp_lifetime: Dominance::from_flags(life_a < life_b, life_b < life_a),
        completed_runs: completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::optimize;
    use crate::lcm::{busy_expression_motion, lazy_expression_motion};
    use am_ir::text::parse;

    const RUNNING_EXAMPLE: &str = "start 1\nend 4\n\
         node 1 { y := c+d }\n\
         node 2 { branch x+z > y+i }\n\
         node 3 { y := c+d; x := y+z; i := i+x }\n\
         node 4 { x := y+z; x := c+d; out(i,x,y) }\n\
         edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2";

    fn config() -> CompareConfig {
        CompareConfig {
            inputs: vec![
                ("c".into(), 1),
                ("d".into(), 2),
                ("x".into(), 3),
                ("z".into(), 4),
                ("i".into(), 0),
            ],
            ..Default::default()
        }
    }

    #[test]
    fn identical_programs_are_equal_on_every_axis() {
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let report = evaluate(&g, &g, &config());
        assert_eq!(report.expr, Dominance::Equal);
        assert_eq!(report.assign, Dominance::Equal);
        assert_eq!(report.temp_assign, Dominance::Equal);
        assert_eq!(report.temp_lifetime, Dominance::Equal);
        assert!(report.completed_runs > 0);
    }

    #[test]
    fn the_paper_tradeoff_is_visible() {
        // GlobAlg vs original: strictly better expressions; the
        // assignment axis is *incomparable* (fewer on paths where whole
        // assignments were eliminated, more on paths paying temporary
        // initializations) — exactly the preorder structure the paper
        // accepts: expression optimality primary, the rest only relative.
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let optimized = optimize(&g).program;
        let report = evaluate(&optimized, &g, &config());
        assert_eq!(report.expr, Dominance::Left);
        assert!(
            matches!(report.assign, Dominance::Right | Dominance::Incomparable),
            "{report:?}"
        );
        assert_eq!(report.temp_assign, Dominance::Right);
        assert!(report.left_expression_optimal());
    }

    #[test]
    fn lazy_vs_busy_is_a_pure_temporary_win() {
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let mut bcm = g.clone();
        bcm.split_critical_edges();
        busy_expression_motion(&mut bcm);
        let mut lcm = g.clone();
        lcm.split_critical_edges();
        lazy_expression_motion(&mut lcm);
        let report = evaluate(&lcm, &bcm, &config());
        // Same expression counts…
        assert_eq!(report.expr, Dominance::Equal, "{report:?}");
        // …and never more temporary work; on this example strictly less.
        assert!(
            matches!(report.temp_assign, Dominance::Left | Dominance::Equal),
            "{report:?}"
        );
        assert_eq!(report.temp_lifetime, Dominance::Left, "{report:?}");
    }

    #[test]
    fn uniform_beats_each_separate_technique_on_expressions() {
        let g = parse(RUNNING_EXAMPLE).unwrap();
        let full = optimize(&g).program;
        let mut em = g.clone();
        em.split_critical_edges();
        lazy_expression_motion(&mut em);
        let mut am = g.clone();
        am.split_critical_edges();
        crate::motion::assignment_motion(&mut am);
        for (label, base) in [("em", &em), ("am", &am)] {
            let report = evaluate(&full, base, &config());
            assert!(report.left_expression_optimal(), "{label}: {report:?}");
            assert_ne!(report.expr, Dominance::Equal, "{label} strictly beaten");
        }
    }
}
