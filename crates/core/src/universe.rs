//! Bounded enumeration of the program universe `G` (Sec. 3.1).
//!
//! The paper's optimality results quantify over *every* program reachable
//! from `G` by admissible assignment hoistings and redundant assignment
//! eliminations (which, after the initialization phase, subsume expression
//! motion — Lemma 4.1). For small programs that universe can be explored
//! mechanically:
//!
//! * one **elimination step** removes a single redundant occurrence
//!   (Def. 3.4 allows eliminating any subset);
//! * one **hoisting step** applies the Table 1 insertion step for a single
//!   assignment pattern (an admissible hoisting by construction).
//!
//! Programs are deduplicated up to renaming of temporaries. The test suite
//! uses the enumeration to check Thm 5.2 against the universe itself: the
//! global algorithm's output evaluates no more expressions than *any*
//! enumerated program on corresponding complete runs, and all terminal
//! (irreducible) programs of the universe are cost-equivalent — the
//! consequence of local confluence (Lemma 3.6) the optimality proof rests
//! on.

use std::collections::{HashMap, HashSet, VecDeque};

use am_ir::alpha::canonical_text;
use am_ir::FlowGraph;

use crate::hoist::{analyze_hoisting, apply_insertion_step_filtered};
use crate::rae::{redundant_locs, remove_locs};

/// Limits for [`explore`].
#[derive(Clone, Copy, Debug)]
pub struct UniverseConfig {
    /// Maximum number of distinct programs to collect.
    pub max_programs: usize,
    /// Maximum BFS depth (number of transformation steps).
    pub max_depth: usize,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            max_programs: 512,
            max_depth: 12,
        }
    }
}

/// The explored fragment of the universe.
#[derive(Debug)]
pub struct Universe {
    /// The distinct programs found, starting with the origin.
    pub programs: Vec<FlowGraph>,
    /// Indices of programs with no outgoing transformation (relatively
    /// optimal in the explored fragment).
    pub terminal: Vec<usize>,
    /// Whether exploration hit a limit before exhausting the fragment.
    pub truncated: bool,
}

/// All single-step successors of `g` (excluding `g` itself).
pub fn successors(g: &FlowGraph) -> Vec<FlowGraph> {
    let mut out = Vec::new();
    // Single eliminations.
    let (locs, _) = redundant_locs(g);
    for &loc in &locs {
        let mut next = g.clone();
        remove_locs(&mut next, &[loc]);
        out.push(next);
    }
    // Per-pattern hoisting steps.
    let analysis = analyze_hoisting(g);
    for i in 0..analysis.universe.assign_count() {
        let mut next = g.clone();
        let outcome = apply_insertion_step_filtered(&mut next, &analysis, |p| p == i);
        if outcome.changed {
            out.push(next);
        }
    }
    out
}

/// Breadth-first exploration of the universe fragment reachable from `g`.
///
/// Critical edges of `g` should already be split. Programs are identified
/// up to alpha-renaming of temporaries.
/// # Examples
///
/// ```
/// use am_core::universe::{explore, UniverseConfig};
/// use am_core::restricted::fig8_example;
///
/// let mut g = fig8_example();
/// g.split_critical_edges();
/// let universe = explore(&g, &UniverseConfig::default());
/// assert!(!universe.truncated);
/// assert!(universe.programs.len() > 1);
/// ```
pub fn explore(g: &FlowGraph, config: &UniverseConfig) -> Universe {
    let mut programs = vec![g.clone()];
    let mut index: HashMap<String, usize> = HashMap::new();
    index.insert(canonical_text(g), 0);
    let mut terminal = Vec::new();
    let mut truncated = false;
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    queue.push_back((0, 0));
    let mut expanded: HashSet<usize> = HashSet::new();

    while let Some((id, depth)) = queue.pop_front() {
        if !expanded.insert(id) {
            continue;
        }
        if depth >= config.max_depth {
            truncated = true;
            continue;
        }
        let succs = successors(&programs[id]);
        let mut has_new_shape = false;
        for next in succs {
            let key = canonical_text(&next);
            let next_id = match index.get(&key) {
                Some(&existing) => existing,
                None => {
                    if programs.len() >= config.max_programs {
                        truncated = true;
                        continue;
                    }
                    let new_id = programs.len();
                    programs.push(next);
                    index.insert(key, new_id);
                    new_id
                }
            };
            if next_id != id {
                has_new_shape = true;
                queue.push_back((next_id, depth + 1));
            }
        }
        if !has_new_shape {
            terminal.push(id);
        }
    }
    Universe {
        programs,
        terminal,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::optimize;
    use crate::init::initialize;
    use am_ir::interp::{run, Config, Oracle, StopReason};
    use am_ir::text::parse;

    fn costs(g: &FlowGraph, seed: u64) -> Option<(u64, u64)> {
        let cfg = Config {
            oracle: Oracle::random(seed, 8),
            inputs: vec![
                ("a".into(), 2),
                ("b".into(), 3),
                ("p".into(), 1),
                ("y".into(), 4),
                ("z".into(), 5),
            ],
            ..Config::default()
        };
        let r = run(g, &cfg);
        (r.stop == StopReason::ReachedEnd).then_some((r.expr_evals, r.assign_execs))
    }

    #[test]
    fn fig8_universe_is_finite_and_small() {
        let mut g = crate::restricted::fig8_example();
        g.split_critical_edges();
        let universe = explore(&g, &UniverseConfig::default());
        assert!(!universe.truncated, "Fig. 8's universe fits the budget");
        assert!(
            universe.programs.len() >= 3,
            "hoists and eliminations exist"
        );
        assert!(!universe.terminal.is_empty());
    }

    #[test]
    fn global_algorithm_dominates_the_explored_universe() {
        // Thm 5.2 against the universe itself (AM fragment; EM included via
        // initialization): no enumerated program beats the output on any
        // complete corresponding run.
        let sources = [
            crate::restricted::fig8_example(),
            parse(
                "start 1\nend 4\n\
                 node 1 { skip }\n\
                 node 2 { x := a+b; out(x) }\n\
                 node 3 { x := a+b }\n\
                 node 4 { out(x) }\n\
                 edge 1 -> 2, 3\nedge 2 -> 4\nedge 3 -> 4",
            )
            .unwrap(),
        ];
        for (src_id, source) in sources.into_iter().enumerate() {
            let optimized = optimize(&source).program;
            let mut initialized = source.clone();
            initialized.split_critical_edges();
            initialize(&mut initialized);
            let universe = explore(&initialized, &UniverseConfig::default());
            for (pid, candidate) in universe.programs.iter().enumerate() {
                for seed in 0..6 {
                    let (Some((cand_evals, _)), Some((opt_evals, _))) =
                        (costs(candidate, seed), costs(&optimized, seed))
                    else {
                        continue;
                    };
                    assert!(
                        opt_evals <= cand_evals,
                        "universe program {pid} of source {src_id} beats the output \
                         ({cand_evals} < {opt_evals}) on seed {seed}:\n{}",
                        canonical_text(candidate)
                    );
                }
            }
        }
    }

    #[test]
    fn terminal_programs_are_cost_equivalent() {
        // Local confluence (Lemma 3.6) + improvement-only steps imply all
        // relatively optimal programs agree on expression costs.
        let mut g = crate::restricted::fig8_example();
        g.split_critical_edges();
        let universe = explore(&g, &UniverseConfig::default());
        assert!(!universe.truncated);
        let mut profiles: Vec<Vec<(u64, u64)>> = Vec::new();
        for &t in &universe.terminal {
            let profile: Vec<(u64, u64)> = (0..6)
                .filter_map(|seed| costs(&universe.programs[t], seed))
                .collect();
            profiles.push(profile);
        }
        for pair in profiles.windows(2) {
            let evals_a: Vec<u64> = pair[0].iter().map(|c| c.0).collect();
            let evals_b: Vec<u64> = pair[1].iter().map(|c| c.0).collect();
            assert_eq!(evals_a, evals_b, "terminal programs differ in evaluations");
        }
    }

    #[test]
    fn every_universe_member_is_semantically_equal() {
        let mut g = crate::restricted::fig8_example();
        g.split_critical_edges();
        let universe = explore(&g, &UniverseConfig::default());
        for (pid, candidate) in universe.programs.iter().enumerate() {
            assert_eq!(candidate.validate(), Ok(()), "program {pid}");
            for seed in 0..6 {
                let cfg = Config {
                    oracle: Oracle::random(seed, 8),
                    inputs: vec![("y".into(), 3), ("z".into(), -2)],
                    ..Config::default()
                };
                let a = run(&g, &cfg);
                let b = run(candidate, &cfg);
                assert_eq!(
                    a.observable(),
                    b.observable(),
                    "program {pid} differs:\n{}",
                    canonical_text(candidate)
                );
            }
        }
    }

    #[test]
    fn successors_of_a_stable_program_are_few() {
        // A fully optimized program's successors only reorder candidates.
        let g =
            parse("start 1\nend 2\nnode 1 { x := a+b }\nnode 2 { out(x) }\nedge 1 -> 2").unwrap();
        let succs = successors(&g);
        // Hoisting x := a+b within node 1 is a no-op (already at entry).
        assert!(succs.is_empty());
    }
}
