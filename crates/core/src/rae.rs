//! Redundant assignment elimination (Table 2, Sec. 4.3.1).
//!
//! An occurrence of the assignment pattern `α ≡ v := t` is *redundant* when
//! every path from the start reaches it through another occurrence of `α`
//! with neither `v` nor an operand of `t` modified in between (Def. 3.4).
//! The analysis is a forward must bit-vector system solved to its greatest
//! fixed point:
//!
//! ```text
//! N-REDUNDANT_ι = false                      if ι is the first instruction of s
//!                 ∏_{κ ∈ pred(ι)} X-REDUNDANT_κ   otherwise
//! X-REDUNDANT_ι = EXECUTED_ι + ASS-TRANSP_ι · N-REDUNDANT_ι
//! ```
//!
//! Patterns with `v` among the operands of `t` (`x := x+1`) are excluded —
//! re-executing them changes the state (the side condition of Table 2).
//! The elimination step removes every occurrence that is redundant at its
//! entry; removing them simultaneously is sound because each occurrence's
//! redundancy is justified by *earlier* occurrences, which the elimination
//! keeps.

use am_bitset::BitSet;
use am_dfa::{solve_scheduled, Confluence, Direction, PatternMasks, PointGraph, Problem, Solution};
use am_ir::{AssignPattern, FlowGraph, Instr, Loc, PatternUniverse};
use am_trace::Tracer;

/// Outcome of one [`eliminate_redundant_assignments`] pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RaeOutcome {
    /// Number of assignment occurrences removed.
    pub eliminated: usize,
    /// Solver iterations spent (for the complexity study).
    pub iterations: u64,
    /// Solver worklist pushes.
    pub worklist_pushes: u64,
    /// Peak solver worklist length.
    pub max_worklist_len: usize,
}

/// Solves the redundancy analysis of Table 2 over `g`.
///
/// The returned solution is indexed by the points of `pg`; bit `i` of a set
/// refers to assignment pattern `i` of `universe`. Self-referential
/// patterns never appear in any set.
pub fn redundancy(pg: &PointGraph<'_>, universe: &PatternUniverse) -> Solution {
    let masks = PatternMasks::build(universe, pg.graph().pool().len());
    redundancy_with(pg, universe, &masks)
}

/// As [`redundancy`], with a prebuilt pattern-mask index (the motion loop
/// builds the masks once and reuses them across all rounds).
pub fn redundancy_with(
    pg: &PointGraph<'_>,
    universe: &PatternUniverse,
    masks: &PatternMasks,
) -> Solution {
    let n = pg.len();
    let mut p = Problem::new(
        Direction::Forward,
        Confluence::Must,
        n,
        universe.assign_count(),
    );
    for point in pg.points() {
        let Some(instr) = pg.instr(point) else {
            continue;
        };
        let idx = point.index();
        let (gen, kill) = redundancy_row(instr, universe, masks);
        if let Some(i) = gen {
            p.gen[idx].insert(i);
        }
        p.kill[idx] = kill;
    }
    solve_scheduled(pg.succs(), pg.preds(), &p, pg.schedule())
}

/// The Table 2 gen/kill row of a single instruction, built from the mask
/// index with a constant number of word-level set operations.
///
/// Self-referential patterns are excluded from the universe (killed
/// everywhere, generated never); an assignment generates its own pattern
/// bit and kills every pattern whose left-hand side or operands it
/// modifies, except the one it re-establishes.
pub(crate) fn redundancy_row(
    instr: &Instr,
    universe: &PatternUniverse,
    masks: &PatternMasks,
) -> (Option<usize>, BitSet) {
    let mut kill = masks.self_referential().clone();
    let mut gen = None;
    if let Instr::Assign { lhs, rhs } = instr {
        kill.union_with(masks.assign_lhs(*lhs));
        kill.union_with(masks.assign_mentions(*lhs));
        if let Some(i) = universe.assign_id(&AssignPattern::new(*lhs, *rhs)) {
            if !masks.self_referential().contains(i) {
                kill.remove(i);
                gen = Some(i);
            }
        }
    }
    (gen, kill)
}

/// The set of instruction locations whose assignment is redundant at entry.
pub fn redundant_locs(g: &FlowGraph) -> (Vec<Loc>, u64) {
    let (locs, sol) = redundant_locs_solved(g);
    (locs, sol.iterations)
}

/// As [`redundant_locs`], but returns the full solution so callers can
/// report worklist metrics too.
fn redundant_locs_solved(g: &FlowGraph) -> (Vec<Loc>, Solution) {
    let universe = PatternUniverse::collect(g);
    let pg = PointGraph::build(g);
    let sol = redundancy(&pg, &universe);
    let mut locs = Vec::new();
    for point in pg.points() {
        let Some(instr) = pg.instr(point) else {
            continue;
        };
        let Some(loc) = pg.loc(point) else { continue };
        if let am_ir::Instr::Assign { lhs, rhs } = instr {
            let pat = am_ir::AssignPattern::new(*lhs, *rhs);
            if pat.is_self_referential() {
                continue;
            }
            if let Some(i) = universe.assign_id(&pat) {
                let before: &BitSet = &sol.before[point.index()];
                if before.contains(i) {
                    locs.push(loc);
                }
            }
        }
    }
    (locs, sol)
}

/// Removes every redundant assignment occurrence from `g` (the Elimination
/// Step of Sec. 4.3.1).
/// # Examples
///
/// ```
/// use am_ir::text::parse;
/// use am_core::rae::eliminate_redundant_assignments;
///
/// let mut g = parse(
///     "start s\nend e\nnode s { x := a+b; y := 1; x := a+b }\nnode e { out(x,y) }\nedge s -> e",
/// )?;
/// let outcome = eliminate_redundant_assignments(&mut g);
/// assert_eq!(outcome.eliminated, 1);
/// # Ok::<(), am_ir::text::ParseError>(())
/// ```
pub fn eliminate_redundant_assignments(g: &mut FlowGraph) -> RaeOutcome {
    eliminate_redundant_assignments_traced(g, &Tracer::disabled())
}

/// As [`eliminate_redundant_assignments`], with tracing: wraps the pass in
/// an `analysis/rae` span and emits a counter with the solver's fixpoint
/// metrics.
pub fn eliminate_redundant_assignments_traced(g: &mut FlowGraph, tracer: &Tracer) -> RaeOutcome {
    let mut span = tracer.span("analysis", "rae");
    let (locs, sol) = redundant_locs_solved(g);
    let eliminated = locs.len();
    remove_locs(g, &locs);
    tracer.counter(
        "analysis",
        "rae",
        &[
            ("iterations", sol.iterations as i64),
            ("worklist_pushes", sol.worklist_pushes as i64),
            ("max_worklist_len", sol.max_worklist_len as i64),
        ],
    );
    span.arg("eliminated", eliminated as i64);
    drop(span);
    RaeOutcome {
        eliminated,
        iterations: sol.iterations,
        worklist_pushes: sol.worklist_pushes,
        max_worklist_len: sol.max_worklist_len,
    }
}

/// Removes the instructions at `locs` from `g`. Locations must refer to the
/// current program.
///
/// Cost is O(|locs| + Σ block sizes of affected nodes): locations are first
/// grouped per node (in first-seen order, so mutation order stays
/// deterministic) and only the touched blocks are rewritten. Scanning every
/// node of the graph against the full loc list made elimination rounds the
/// dominant motion cost on 10k-node graphs.
pub(crate) fn remove_locs(g: &mut FlowGraph, locs: &[Loc]) {
    use std::collections::HashMap;
    let mut slot_of: HashMap<am_ir::NodeId, usize> = HashMap::with_capacity(locs.len());
    let mut by_node: Vec<(am_ir::NodeId, Vec<usize>)> = Vec::new();
    for l in locs {
        let slot = *slot_of.entry(l.node).or_insert_with(|| {
            by_node.push((l.node, Vec::new()));
            by_node.len() - 1
        });
        by_node[slot].1.push(l.index);
    }
    for (n, mut doomed) in by_node {
        doomed.sort_unstable();
        let old = std::mem::take(&mut g.block_mut(n).instrs);
        g.block_mut(n).instrs = old
            .into_iter()
            .enumerate()
            .filter(|(index, _)| doomed.binary_search(index).is_err())
            .map(|(_, instr)| instr)
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::text::{parse, to_text};

    #[test]
    fn straight_line_duplicate_is_removed() {
        let mut g = parse(
            "start 1\nend 2\nnode 1 { x := a+b; y := 1; x := a+b }\nnode 2 { out(x,y) }\nedge 1 -> 2",
        )
        .unwrap();
        let out = eliminate_redundant_assignments(&mut g);
        assert_eq!(out.eliminated, 1);
        assert_eq!(
            to_text(&g)
                .lines()
                .filter(|l| l.contains("x := a+b"))
                .count(),
            1
        );
    }

    #[test]
    fn intervening_write_blocks_elimination() {
        let mut g = parse(
            "start 1\nend 2\nnode 1 { x := a+b; a := 1; x := a+b }\nnode 2 { out(x) }\nedge 1 -> 2",
        )
        .unwrap();
        let out = eliminate_redundant_assignments(&mut g);
        assert_eq!(out.eliminated, 0);
    }

    #[test]
    fn use_of_lhs_does_not_block_redundancy() {
        // Reading x between the two occurrences keeps x = a+b valid.
        let mut g = parse(
            "start 1\nend 2\nnode 1 { x := a+b; out(x); x := a+b }\nnode 2 { out(x) }\nedge 1 -> 2",
        )
        .unwrap();
        let out = eliminate_redundant_assignments(&mut g);
        assert_eq!(out.eliminated, 1);
    }

    #[test]
    fn partially_redundant_occurrence_stays() {
        // x := a+b on only one branch: the join occurrence is not (fully)
        // redundant.
        let mut g = parse(
            "start 1\nend 4\n\
             node 1 { branch p > 0 }\n\
             node 2 { x := a+b }\n\
             node 3 { skip }\n\
             node 4 { x := a+b; out(x) }\n\
             edge 1 -> 2, 3\nedge 2 -> 4\nedge 3 -> 4",
        )
        .unwrap();
        let out = eliminate_redundant_assignments(&mut g);
        assert_eq!(out.eliminated, 0);
    }

    #[test]
    fn fully_redundant_join_occurrence_is_removed() {
        let mut g = parse(
            "start 1\nend 4\n\
             node 1 { branch p > 0 }\n\
             node 2 { x := a+b }\n\
             node 3 { x := a+b }\n\
             node 4 { x := a+b; out(x) }\n\
             edge 1 -> 2, 3\nedge 2 -> 4\nedge 3 -> 4",
        )
        .unwrap();
        let out = eliminate_redundant_assignments(&mut g);
        assert_eq!(out.eliminated, 1);
        let n4 = g.nodes().find(|&n| g.label(n) == "4").unwrap();
        assert_eq!(g.block(n4).instrs.len(), 1, "{}", to_text(&g));
    }

    #[test]
    fn loop_redundancy_from_before_the_loop() {
        // y := c+d in the loop body is redundant w.r.t. node 1 (Fig. 4/5:
        // the elimination that unblocks x := y+z).
        let mut g = parse(
            "start 1\nend 4\n\
             node 1 { y := c+d }\n\
             node 2 { branch q > 0 }\n\
             node 3 { y := c+d; i := i+1 }\n\
             node 4 { out(y,i) }\n\
             edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2",
        )
        .unwrap();
        let out = eliminate_redundant_assignments(&mut g);
        assert_eq!(out.eliminated, 1);
        let n3 = g.nodes().find(|&n| g.label(n) == "3").unwrap();
        assert_eq!(g.block(n3).instrs.len(), 1);
    }

    #[test]
    fn self_referential_patterns_are_never_redundant() {
        let mut g =
            parse("start 1\nend 2\nnode 1 { i := i+1; i := i+1 }\nnode 2 { out(i) }\nedge 1 -> 2")
                .unwrap();
        let out = eliminate_redundant_assignments(&mut g);
        assert_eq!(out.eliminated, 0);
    }

    #[test]
    fn redundant_via_both_paths_of_a_diamond() {
        let mut g = parse(
            "start 1\nend 4\n\
             node 1 { x := a+b; branch p > 0 }\n\
             node 2 { q := 1 }\n\
             node 3 { q := 2 }\n\
             node 4 { x := a+b; out(x,q) }\n\
             edge 1 -> 2, 3\nedge 2 -> 4\nedge 3 -> 4",
        )
        .unwrap();
        let out = eliminate_redundant_assignments(&mut g);
        assert_eq!(out.eliminated, 1);
    }

    #[test]
    fn elimination_preserves_semantics() {
        let src = "start 1\nend 4\n\
             node 1 { y := c+d }\n\
             node 2 { branch q > 0 }\n\
             node 3 { y := c+d; i := i+1 }\n\
             node 4 { out(y,i) }\n\
             edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2";
        let orig = parse(src).unwrap();
        let mut opt = orig.clone();
        eliminate_redundant_assignments(&mut opt);
        for seed in 0..20 {
            let cfg = am_ir::interp::Config {
                oracle: am_ir::interp::Oracle::random(seed, 6),
                inputs: vec![("c".into(), 7), ("d".into(), seed as i64), ("q".into(), 1)],
                ..Default::default()
            };
            let a = am_ir::interp::run(&orig, &cfg);
            let b = am_ir::interp::run(&opt, &cfg);
            assert_eq!(a.observable(), b.observable());
            assert!(b.assign_execs <= a.assign_execs);
        }
    }
}
