//! The expression motion baseline: busy and lazy code motion (Knoop,
//! Rüthing, Steffen '92/'94), the `EM` of the paper's comparisons.
//!
//! Expression motion alone removes partially redundant *expressions* by
//! initializing temporaries at safe early points and replacing original
//! computations (Fig. 1). It cannot eliminate whole assignments, which is
//! what Figures 6(a), 19 and 20(a) demonstrate — this module exists to
//! regenerate exactly those comparisons.
//!
//! * [`busy_expression_motion`] inserts `h_ε := ε` at the *earliest*
//!   down-safe points and replaces every original evaluation of ε by `h_ε`.
//! * [`lazy_expression_motion`] runs BCM and then the
//!   [final flush](crate::flush) — the paper notes the flush *is* a variant
//!   of the lcm procedure, so BCM + flush = LCM, with usability playing the
//!   role of the isolation analysis.

use am_bitset::BitSet;
use am_dfa::{classic, solve, Confluence, Direction, PointGraph, Problem};
use am_ir::{Cond, FlowGraph, Instr, PatternUniverse, Term, Var};

use crate::flush::{final_flush, FlushStats};

/// Statistics of an expression motion run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EmStats {
    /// Initializations inserted at earliest points.
    pub inserted: usize,
    /// Original evaluations replaced by temporaries.
    pub replaced: usize,
    /// Data-flow iterations of the down-safety analysis.
    pub iterations: u64,
    /// Flush statistics (lazy variant only).
    pub flush: Option<FlushStats>,
}

fn kills(instr: &Instr, eps: Term) -> bool {
    match instr.def() {
        Some(d) => eps.mentions(d),
        None => false,
    }
}

/// Replaces every evaluation of `eps` in `instr` by the temporary `h`.
/// Returns the rewritten instruction and how many replacements were made.
fn replace_evaluations(instr: &Instr, eps: Term, h: Var) -> (Instr, usize) {
    match instr {
        Instr::Assign { lhs, rhs } if *rhs == eps && *lhs != h => (Instr::assign(*lhs, h), 1),
        Instr::Branch(c) => {
            let mut count = 0;
            let mut sub = |t: Term| -> Term {
                if t == eps {
                    count += 1;
                    Term::from(h)
                } else {
                    t
                }
            };
            let lhs = sub(c.lhs);
            let rhs = sub(c.rhs);
            (Instr::Branch(Cond { op: c.op, lhs, rhs }), count)
        }
        other => (other.clone(), 0),
    }
}

/// Busy code motion: for every expression pattern ε, inserts `h_ε := ε` at
/// the earliest down-safe points and replaces all original evaluations.
///
/// Critical edges must already be split. The result is expression-optimal
/// but maximally eager — temporaries live as long as possible; use
/// [`lazy_expression_motion`] for the lifetime-optimal variant.
pub fn busy_expression_motion(g: &mut FlowGraph) -> EmStats {
    let universe = PatternUniverse::collect(g);
    let ep = universe.expr_count();
    let mut stats = EmStats::default();
    if ep == 0 {
        return stats;
    }
    let temps: Vec<Var> = universe
        .expr_patterns()
        .map(|(_, t)| g.temp_for(t))
        .collect();

    let snapshot = g.clone();
    let pg = PointGraph::build(&snapshot);
    let dsafe = classic::anticipated_expressions(&pg, &universe);
    stats.iterations = dsafe.iterations;

    // Availability-from-the-safe-region (the `available'` of classic lazy
    // code motion): ε is available' at a point when on every path some
    // earlier point was down-safe (an insertion or original computation
    // covers it) and no kill intervened. Forward must:
    //   out = ¬kill · (anticipated-in ∨ in).
    let points = pg.len();
    let mut avail_problem = Problem::new(Direction::Forward, Confluence::Must, points, ep);
    for p in pg.points() {
        let idx = p.index();
        avail_problem.gen[idx].copy_from(&dsafe.before[idx]);
        if let Some(instr) = pg.instr(p) {
            for (i, eps) in universe.expr_patterns() {
                if kills(instr, eps) {
                    avail_problem.kill[idx].insert(i);
                    avail_problem.gen[idx].remove(i);
                }
            }
        }
    }
    let avail = solve(pg.succs(), pg.preds(), &avail_problem);

    // Earliest points: anticipated but not yet available'. Placement is
    // edge-precise: at a join, only the predecessors lacking availability
    // receive the computation (they are single-successor nodes after
    // critical-edge splitting, so their exits are exactly the edges).
    let mut insert_before = vec![BitSet::new(ep); points];
    let mut insert_after = vec![BitSet::new(ep); points];
    for p in pg.points() {
        let idx = p.index();
        for i in 0..ep {
            let earliest = dsafe.before[idx].contains(i) && !avail.before[idx].contains(i);
            if !earliest {
                continue;
            }
            let preds = &pg.preds()[idx];
            if idx == pg.entry().index() || preds.len() == 1 {
                insert_before[idx].insert(i);
            } else {
                for &q in preds {
                    if !avail.after[q as usize].contains(i) {
                        insert_after[q as usize].insert(i);
                    }
                }
            }
        }
    }

    // Rewrite.
    for n in snapshot.nodes() {
        let first = pg.first_of(n).index();
        let last = pg.last_of(n).index();
        let mut fresh: Vec<Instr> = Vec::new();
        for pi in first..=last {
            let instr = match pg.instr(am_dfa::PointId(pi as u32)) {
                Some(instr) => instr,
                None => {
                    // Virtual point of an empty block: edge insertions land
                    // here.
                    for i in insert_before[pi].iter().chain(insert_after[pi].iter()) {
                        fresh.push(Instr::Assign {
                            lhs: temps[i],
                            rhs: universe.expr(i),
                        });
                        stats.inserted += 1;
                    }
                    continue;
                }
            };
            for i in insert_before[pi].iter() {
                fresh.push(Instr::Assign {
                    lhs: temps[i],
                    rhs: universe.expr(i),
                });
                stats.inserted += 1;
            }
            let mut rewritten = instr.clone();
            for (i, eps) in universe.expr_patterns() {
                let (next, count) = replace_evaluations(&rewritten, eps, temps[i]);
                rewritten = next;
                stats.replaced += count;
            }
            fresh.push(rewritten);
            for i in insert_after[pi].iter() {
                fresh.push(Instr::Assign {
                    lhs: temps[i],
                    rhs: universe.expr(i),
                });
                stats.inserted += 1;
            }
        }
        g.block_mut(n).instrs = fresh;
    }
    stats
}

/// Lazy code motion: busy code motion followed by the final flush, which
/// sinks initializations to their latest useful points and reconstructs
/// isolated ones.
/// # Examples
///
/// ```
/// use am_ir::text::parse;
/// use am_core::lcm::lazy_expression_motion;
///
/// let mut g = parse(
///     "start s\nend e\nnode s { x := a+b; y := a+b }\nnode e { out(x,y) }\nedge s -> e",
/// )?;
/// lazy_expression_motion(&mut g);
/// // One initialization serves both uses (canonical text renames the
/// // temporary to h1, so "a+b" appears exactly once).
/// let canon = am_ir::alpha::canonical_text(&g);
/// assert_eq!(canon.matches("a+b").count(), 1);
/// assert!(canon.contains("x := h1"));
/// # Ok::<(), am_ir::text::ParseError>(())
/// ```
pub fn lazy_expression_motion(g: &mut FlowGraph) -> EmStats {
    let mut stats = busy_expression_motion(g);
    stats.flush = Some(final_flush(g));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::alpha::canonical_text;
    use am_ir::interp;
    use am_ir::text::parse;

    /// Fig. 1(a).
    const FIG1: &str = "
        start 1
        end 4
        node 1 { skip }
        node 2 { z := a+b; x := a+b }
        node 3 { x := a+b; y := x+y }
        node 4 { out(x,y,z) }
        edge 1 -> 2, 3
        edge 2 -> 4
        edge 3 -> 4
    ";

    fn em(src: &str) -> (am_ir::FlowGraph, am_ir::FlowGraph) {
        let orig = parse(src).unwrap();
        let mut g = orig.clone();
        g.split_critical_edges();
        lazy_expression_motion(&mut g);
        (orig, g)
    }

    #[test]
    fn fig1_expression_motion_busy_matches_figure() {
        // Fig. 1(b): h := a+b initialized in node 1, reused in 2 and 3 —
        // the busy placement shown in the paper.
        let mut g = parse(FIG1).unwrap();
        g.split_critical_edges();
        busy_expression_motion(&mut g);
        let canon = canonical_text(&g);
        assert_eq!(canon.matches("h1 := a+b").count(), 1, "{canon}");
        assert!(canon.contains("z := h1"), "{canon}");
        assert!(canon.contains("x := h1"), "{canon}");
        assert_eq!(canon.matches("a+b").count(), 1, "{canon}");
    }

    #[test]
    fn lazy_motion_sinks_and_reconstructs() {
        // The lazy variant keeps the temporary only where it pays: node 2
        // uses it twice (init sunk there); node 3's isolated use is
        // reconstructed.
        let (_, g) = em(FIG1);
        let canon = canonical_text(&g);
        let n2 = g.nodes().find(|&n| g.label(n) == "2").unwrap();
        let body2: Vec<String> = g
            .block(n2)
            .instrs
            .iter()
            .map(|i| i.display(g.pool()))
            .collect();
        assert!(body2[0].contains(":= a+b"), "{canon}");
        let n3 = g.nodes().find(|&n| g.label(n) == "3").unwrap();
        let body3: Vec<String> = g
            .block(n3)
            .instrs
            .iter()
            .map(|i| i.display(g.pool()))
            .collect();
        assert_eq!(body3[0], "x := a+b", "isolated use reconstructed: {canon}");
    }

    #[test]
    fn em_preserves_semantics_and_counts() {
        let (orig, g) = em(FIG1);
        for seed in 0..20 {
            let cfg = interp::Config {
                oracle: interp::Oracle::random(seed, 4),
                inputs: vec![("a".into(), 5), ("b".into(), seed as i64), ("y".into(), 2)],
                ..Default::default()
            };
            let r0 = interp::run(&orig, &cfg);
            let r1 = interp::run(&g, &cfg);
            assert_eq!(r0.observable(), r1.observable(), "seed {seed}");
            if r0.stop == interp::StopReason::ReachedEnd && r1.stop == r0.stop {
                assert!(r1.expr_evals <= r0.expr_evals, "seed {seed}");
            }
        }
    }

    #[test]
    fn em_cannot_remove_assignments() {
        // Fig. 6(a): EM alone leaves the loop-invariant *assignment* in the
        // loop; it only shares the expression computation.
        let (_, g) = em("start 1\nend 4\n\
             node 1 { y := c+d }\n\
             node 2 { branch x+z > y+i }\n\
             node 3 { y := c+d; x := y+z; i := i+x }\n\
             node 4 { x := y+z; x := c+d; out(i,x,y) }\n\
             edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2");
        let n3 = g.nodes().find(|&n| g.label(n) == "3").unwrap();
        let body: Vec<String> = g
            .block(n3)
            .instrs
            .iter()
            .map(|i| i.display(g.pool()))
            .collect();
        // The y := ... assignment is still in the loop (via the temporary).
        assert!(
            body.iter().any(|s| s.starts_with("y := ")),
            "EM alone must keep the assignment: {body:?}"
        );
    }

    #[test]
    fn loop_invariant_expression_is_hoisted() {
        let src = "start 1\nend 4\n\
             node 1 { skip }\n\
             node 2 { branch q > 0 }\n\
             node 3 { x := a+b; q := q-1 }\n\
             node 4 { out(x,q) }\n\
             edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2";
        // a+b is NOT down-safe at node 1 (the path 1,2,4 never computes it),
        // so EM must not hoist it out of the loop.
        let (orig, g) = em(src);
        for seed in 0..10 {
            let cfg = interp::Config {
                oracle: interp::Oracle::random(seed, 6),
                inputs: vec![("a".into(), 1), ("b".into(), 2), ("q".into(), 2)],
                ..Default::default()
            };
            let r0 = interp::run(&orig, &cfg);
            let r1 = interp::run(&g, &cfg);
            assert_eq!(r0.observable(), r1.observable());
            if r0.stop == interp::StopReason::ReachedEnd && r1.stop == r0.stop {
                assert!(r1.expr_evals <= r0.expr_evals);
            }
        }
    }

    #[test]
    fn self_referential_computation_is_replaced_correctly() {
        // a := a+b computes a+b then kills it; the following use must get a
        // fresh initialization (the kill-restarts-region rule).
        let src = "start 1\nend 2\nnode 1 { a := a+b; x := a+b }\nnode 2 { out(a,x) }\nedge 1 -> 2";
        let (orig, g) = em(src);
        for val in [(3, 4), (0, 0), (-5, 2)] {
            let cfg = interp::Config::with_inputs(vec![("a", val.0), ("b", val.1)]);
            let r0 = interp::run(&orig, &cfg);
            let r1 = interp::run(&g, &cfg);
            assert_eq!(
                r0.observable(),
                r1.observable(),
                "{:?}\n{}",
                val,
                canonical_text(&g)
            );
        }
    }

    #[test]
    fn bcm_alone_is_eager() {
        let mut g = parse(FIG1).unwrap();
        g.split_critical_edges();
        let stats = busy_expression_motion(&mut g);
        assert!(stats.inserted >= 1);
        // 3 occurrences of a+b plus the single x+y (BCM is eager about
        // single-use expressions too; the flush undoes that).
        assert_eq!(stats.replaced, 4);
        // The eager insertion sits in node 1 (earliest safe point).
        let n1 = g.start();
        let body: Vec<String> = g
            .block(n1)
            .instrs
            .iter()
            .map(|i| i.display(g.pool()))
            .collect();
        assert!(body.iter().any(|s| s.contains(":= a+b")), "{body:?}");
    }
}
