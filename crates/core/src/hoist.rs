//! Assignment hoisting (Table 1, Sec. 4.3.2).
//!
//! The hoistability analysis determines how far each assignment pattern can
//! be moved against the control flow while preserving semantics. It is a
//! *block-level* backward must system solved to its greatest fixed point:
//!
//! ```text
//! N-HOISTABLE_n = LOC-HOISTABLE_n + X-HOISTABLE_n · ¬LOC-BLOCKED_n
//! X-HOISTABLE_n = false                    if n = e
//!                 ∏_{m ∈ succ(n)} N-HOISTABLE_m  otherwise
//! ```
//!
//! A *hoisting candidate* of `α ≡ x := t` is an occurrence of `α` that no
//! earlier instruction of its block blocks (modifies an operand of `t`, or
//! uses or modifies `x`) — at most the first occurrence qualifies, because
//! every occurrence blocks the ones after it (Fig. 13).
//!
//! The insertion points of the greatest solution are:
//!
//! ```text
//! N-INSERT_n = N-HOISTABLE*_n · (n = s  +  Σ_{m ∈ pred(n)} ¬X-HOISTABLE*_m)
//! X-INSERT_n = X-HOISTABLE*_n · LOC-BLOCKED_n
//! ```
//!
//! (The `n = s` boundary term is the standard earliestness boundary of lazy
//! code motion; without it, assignments hoistable to the program entry would
//! have no insertion site — Fig. 2 requires it. See DESIGN.md.)
//!
//! The transformation inserts an instance of every pattern at its insertion
//! points and simultaneously removes all hoisting candidates. Patterns
//! inserted at the same point are mutually independent (Sec. 4.3.2), so they
//! are emitted in pattern-index order.

use am_bitset::BitSet;
use am_dfa::{solve_scheduled, Confluence, Direction, PatternMasks, Problem, Schedule};
use am_ir::{AssignPattern, FlowGraph, Instr, NodeId, PatternUniverse};
use am_trace::Tracer;

/// The solved hoistability analysis of a program.
pub struct HoistAnalysis {
    /// The assignment-pattern universe the bit indices refer to.
    pub universe: PatternUniverse,
    /// `LOC-HOISTABLE` per node.
    pub loc_hoistable: Vec<BitSet>,
    /// `LOC-BLOCKED` per node.
    pub loc_blocked: Vec<BitSet>,
    /// Greatest solution `N-HOISTABLE*` per node.
    pub n_hoistable: Vec<BitSet>,
    /// Greatest solution `X-HOISTABLE*` per node.
    pub x_hoistable: Vec<BitSet>,
    /// `N-INSERT` per node.
    pub n_insert: Vec<BitSet>,
    /// `X-INSERT` per node.
    pub x_insert: Vec<BitSet>,
    /// Per node, the `(pattern, instruction index)` hoisting candidates.
    pub candidates: Vec<Vec<(usize, usize)>>,
    /// Solver iterations (for the complexity study).
    pub iterations: u64,
    /// Solver worklist pushes.
    pub worklist_pushes: u64,
    /// Peak solver worklist length.
    pub max_worklist_len: usize,
}

/// Computes local predicates and solves the hoistability system of Table 1.
pub fn analyze_hoisting(g: &FlowGraph) -> HoistAnalysis {
    let universe = PatternUniverse::collect(g);
    let masks = PatternMasks::build(&universe, g.pool().len());
    let ap = universe.assign_count();
    let nodes = g.node_count();

    let mut loc_hoistable = vec![BitSet::new(ap); nodes];
    let mut loc_blocked = vec![BitSet::new(ap); nodes];
    let mut candidates: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nodes];

    for n in g.nodes() {
        let (hoistable, blocked, cands) = block_locals(&g.block(n).instrs, &universe, &masks);
        loc_hoistable[n.index()] = hoistable;
        loc_blocked[n.index()] = blocked;
        candidates[n.index()] = cands;
    }

    // Backward must system over whole blocks.
    let (succs, preds) = am_dfa::node_adjacency(g);
    let schedule = Schedule::build(&succs, &preds);
    let mut problem = Problem::new(Direction::Backward, Confluence::Must, nodes, ap);
    problem.gen = loc_hoistable.clone();
    problem.kill = loc_blocked.clone();
    let sol = solve_scheduled(&succs, &preds, &problem, &schedule);
    let n_hoistable = sol.before;
    let x_hoistable = sol.after;

    let (n_insert, x_insert) = insertion_points(g, &n_hoistable, &x_hoistable, &loc_blocked, ap);

    HoistAnalysis {
        universe,
        loc_hoistable,
        loc_blocked,
        n_hoistable,
        x_hoistable,
        n_insert,
        x_insert,
        candidates,
        iterations: sol.iterations,
        worklist_pushes: sol.worklist_pushes,
        max_worklist_len: sol.max_worklist_len,
    }
}

/// The block-level local predicates of Table 1 for one instruction list:
/// `LOC-HOISTABLE`, `LOC-BLOCKED` and the `(pattern, index)` hoisting
/// candidates, in one pass with a running blocked mask instead of a
/// per-pattern rescan. The candidate check precedes the instruction's own
/// blocking update: the first *unblocked* occurrence of a pattern is its
/// candidate (Fig. 13), and every occurrence blocks the ones after it.
pub(crate) fn block_locals(
    instrs: &[Instr],
    universe: &PatternUniverse,
    masks: &PatternMasks,
) -> (BitSet, BitSet, Vec<(usize, usize)>) {
    let ap = universe.assign_count();
    let mut hoistable = BitSet::new(ap);
    let mut blocked = BitSet::new(ap);
    let mut candidates = Vec::new();
    for (idx, instr) in instrs.iter().enumerate() {
        if let Instr::Assign { lhs, rhs } = instr {
            if let Some(i) = universe.assign_id(&AssignPattern::new(*lhs, *rhs)) {
                if !blocked.contains(i) && !hoistable.contains(i) {
                    hoistable.insert(i);
                    candidates.push((i, idx));
                }
            }
        }
        if let Some(d) = instr.def() {
            blocked.union_with(masks.assign_lhs(d));
            blocked.union_with(masks.assign_mentions(d));
        }
        instr.for_each_use(|u| {
            blocked.union_with(masks.assign_lhs(u));
        });
    }
    (hoistable, blocked, candidates)
}

/// The insertion points of the greatest solution: `N-INSERT` at the
/// earliestness frontier (start node, or predecessors where hoisting
/// stops), `X-INSERT` where the block's own code blocks the pattern.
pub(crate) fn insertion_points(
    g: &FlowGraph,
    n_hoistable: &[BitSet],
    x_hoistable: &[BitSet],
    loc_blocked: &[BitSet],
    ap: usize,
) -> (Vec<BitSet>, Vec<BitSet>) {
    insertion_points_reusing(g, n_hoistable, x_hoistable, loc_blocked, ap, None)
}

/// As [`insertion_points`], recycling previously returned tables. The
/// frontier `Σ ¬X-HOISTABLE*` is computed as `¬ Π X-HOISTABLE*`
/// (De Morgan), so the whole pass runs with one reused scratch set instead
/// of an allocation per predecessor.
pub(crate) fn insertion_points_reusing(
    g: &FlowGraph,
    n_hoistable: &[BitSet],
    x_hoistable: &[BitSet],
    loc_blocked: &[BitSet],
    ap: usize,
    recycled: Option<(Vec<BitSet>, Vec<BitSet>)>,
) -> (Vec<BitSet>, Vec<BitSet>) {
    let nodes = g.node_count();
    let (mut n_insert, mut x_insert) = recycled.unwrap_or_default();
    fit_rows(&mut n_insert, nodes, ap);
    fit_rows(&mut x_insert, nodes, ap);
    let mut inter = BitSet::new(ap);
    for n in g.nodes() {
        let ni = n.index();
        // N-INSERT = N-HOISTABLE ∩ Σ_m ¬X-HOISTABLE_m
        //          = N-HOISTABLE ∖ Π_m X-HOISTABLE_m   (start: full frontier).
        n_insert[ni].copy_from(&n_hoistable[ni]);
        if n != g.start() {
            match g.preds(n).split_first() {
                Some((&first, rest)) => {
                    inter.copy_from(&x_hoistable[first.index()]);
                    for &m in rest {
                        inter.intersect_with(&x_hoistable[m.index()]);
                    }
                    n_insert[ni].difference_with(&inter);
                }
                // An empty merge is an empty frontier.
                None => n_insert[ni].clear(),
            }
        }
        x_insert[ni].copy_from(&x_hoistable[ni]);
        x_insert[ni].intersect_with(&loc_blocked[ni]);
    }
    (n_insert, x_insert)
}

/// Sizes `rows` to `n` sets of width `ap`, reusing allocations where the
/// width already matches; retained contents are overwritten by the caller.
fn fit_rows(rows: &mut Vec<BitSet>, n: usize, ap: usize) {
    if rows.first().is_some_and(|r| r.len() != ap) {
        rows.clear();
    }
    rows.resize_with(n, || BitSet::new(ap));
}

/// Outcome of one [`hoist_assignments`] pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HoistOutcome {
    /// Instances inserted at `N-INSERT`/`X-INSERT` points.
    pub inserted: usize,
    /// Hoisting candidates removed.
    pub removed: usize,
    /// Whether the program changed.
    pub changed: bool,
    /// Solver iterations.
    pub iterations: u64,
    /// Solver worklist pushes.
    pub worklist_pushes: u64,
    /// Peak solver worklist length.
    pub max_worklist_len: usize,
}

/// Applies the Insertion Step of Sec. 4.3.2: inserts every pattern at its
/// insertion points and removes all hoisting candidates.
///
/// A single pass is not idempotent in general — hoisting exposes new
/// redundancies and further hoists (the second-order effects of Sec. 4.3);
/// [`assignment_motion`](crate::motion::assignment_motion) iterates it
/// against redundancy elimination until the program stabilizes.
pub fn hoist_assignments(g: &mut FlowGraph) -> HoistOutcome {
    hoist_assignments_traced(g, &Tracer::disabled())
}

/// As [`hoist_assignments`], with tracing: wraps the pass in an
/// `analysis/aht` span and emits a counter with the solver's fixpoint
/// metrics.
pub fn hoist_assignments_traced(g: &mut FlowGraph, tracer: &Tracer) -> HoistOutcome {
    let mut span = tracer.span("analysis", "aht");
    let analysis = analyze_hoisting(g);
    tracer.counter(
        "analysis",
        "aht",
        &[
            ("iterations", analysis.iterations as i64),
            ("worklist_pushes", analysis.worklist_pushes as i64),
            ("max_worklist_len", analysis.max_worklist_len as i64),
        ],
    );
    let outcome = apply_insertion_step(g, &analysis);
    span.arg("inserted", outcome.inserted as i64)
        .arg("removed", outcome.removed as i64);
    outcome
}

/// Applies the insertion/removal step for a previously computed analysis,
/// optionally restricted to a subset of patterns (used by the restricted
/// baseline of Fig. 8/9).
pub(crate) fn apply_insertion_step_filtered(
    g: &mut FlowGraph,
    analysis: &HoistAnalysis,
    keep: impl Fn(usize) -> bool,
) -> HoistOutcome {
    let mut outcome = HoistOutcome {
        iterations: analysis.iterations,
        worklist_pushes: analysis.worklist_pushes,
        max_worklist_len: analysis.max_worklist_len,
        ..HoistOutcome::default()
    };
    for n in g.nodes().collect::<Vec<_>>() {
        let ni = n.index();
        let mut fresh: Vec<Instr> = Vec::new();
        for i in analysis.n_insert[ni].iter().filter(|&i| keep(i)) {
            let pat = analysis.universe.assign(i);
            fresh.push(Instr::Assign {
                lhs: pat.lhs,
                rhs: pat.rhs,
            });
            outcome.inserted += 1;
        }
        let removed_here: Vec<usize> = analysis.candidates[ni]
            .iter()
            .filter(|(pat, _)| keep(*pat))
            .map(|(_, idx)| *idx)
            .collect();
        for (idx, instr) in g.block(n).instrs.iter().enumerate() {
            if removed_here.contains(&idx) {
                outcome.removed += 1;
            } else {
                fresh.push(instr.clone());
            }
        }
        for i in analysis.x_insert[ni].iter().filter(|&i| keep(i)) {
            let pat = analysis.universe.assign(i);
            fresh.push(Instr::Assign {
                lhs: pat.lhs,
                rhs: pat.rhs,
            });
            outcome.inserted += 1;
        }
        if *g.block(n)
            != (am_ir::Block {
                instrs: fresh.clone(),
            })
        {
            outcome.changed = true;
        }
        g.block_mut(n).instrs = fresh;
    }
    outcome
}

fn apply_insertion_step(g: &mut FlowGraph, analysis: &HoistAnalysis) -> HoistOutcome {
    apply_insertion_step_filtered(g, analysis, |_| true)
}

/// Convenience for tests: the `N-INSERT` patterns of node `n`, displayed.
pub fn display_inserts(g: &FlowGraph, analysis: &HoistAnalysis, n: NodeId) -> Vec<String> {
    analysis.n_insert[n.index()]
        .iter()
        .map(|i| analysis.universe.assign(i).display(g.pool()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::text::{parse, to_text};

    /// Fig. 2(a): hoisting x := a+b out of the loop.
    const FIG2: &str = "
        start 1
        end 5
        node 1 { skip }
        node 2 { z := a+b; x := a+b }
        node 3 { x := a+b; y := x+y }
        node w { skip }
        node 4 { out(x,y) }
        node 5 { skip }
        edge 1 -> 2, 3
        edge 2 -> 4
        edge 3 -> w
        edge w -> 3, 4
        edge 4 -> 5
    ";

    #[test]
    fn candidates_follow_fig13() {
        // Fig. 13: in [x := d; y := a+b; x := 3*y; a := c; y := a+b] the
        // first y := a+b is a candidate; the second is blocked by a := c
        // (and by the first occurrence).
        let g = parse(
            "start 1\nend 2\n\
             node 1 { x := d; y := a+b; x := 3*y; a := c; y := a+b }\n\
             node 2 { out(x,y) }\nedge 1 -> 2",
        )
        .unwrap();
        let analysis = analyze_hoisting(&g);
        let y = g.pool().lookup("y").unwrap();
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let pat = am_ir::AssignPattern::new(y, am_ir::Term::binary(am_ir::BinOp::Add, a, b));
        let i = analysis.universe.assign_id(&pat).unwrap();
        let n1 = g.start();
        let cands: Vec<usize> = analysis.candidates[n1.index()]
            .iter()
            .filter(|(p, _)| *p == i)
            .map(|(_, idx)| *idx)
            .collect();
        assert_eq!(cands, vec![1], "only the first occurrence is a candidate");
        assert!(analysis.loc_hoistable[n1.index()].contains(i));
        assert!(analysis.loc_blocked[n1.index()].contains(i));
    }

    #[test]
    fn blocked_occurrence_is_not_a_candidate() {
        let g =
            parse("start 1\nend 2\nnode 1 { a := 1; x := a+b }\nnode 2 { out(x) }\nedge 1 -> 2")
                .unwrap();
        let analysis = analyze_hoisting(&g);
        let n1 = g.start();
        let x = g.pool().lookup("x").unwrap();
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let pat = am_ir::AssignPattern::new(x, am_ir::Term::binary(am_ir::BinOp::Add, a, b));
        let i = analysis.universe.assign_id(&pat).unwrap();
        assert!(!analysis.loc_hoistable[n1.index()].contains(i));
        assert!(analysis.candidates[n1.index()].iter().all(|(p, _)| *p != i));
    }

    #[test]
    fn hoisting_moves_common_assignment_to_branch_node() {
        let mut g = parse(FIG2).unwrap();
        g.split_critical_edges();
        // One pass hoists x := a+b from nodes 2 and 3 into node 1.
        hoist_assignments(&mut g);
        let n1 = g.start();
        let text = to_text(&g);
        let instrs: Vec<String> = g
            .block(n1)
            .instrs
            .iter()
            .map(|i| i.display(g.pool()))
            .collect();
        assert!(instrs.contains(&"x := a+b".to_owned()), "{text}");
    }

    #[test]
    fn hoisting_preserves_semantics() {
        let orig = parse(FIG2).unwrap();
        let mut g = orig.clone();
        g.split_critical_edges();
        hoist_assignments(&mut g);
        assert_eq!(g.validate(), Ok(()));
        for seed in 0..20 {
            let cfg = am_ir::interp::Config {
                oracle: am_ir::interp::Oracle::random(seed, 5),
                inputs: vec![("a".into(), seed as i64), ("b".into(), 3), ("y".into(), 1)],
                ..Default::default()
            };
            let r0 = am_ir::interp::run(&orig, &cfg);
            let r1 = am_ir::interp::run(&g, &cfg);
            assert_eq!(r0.observable(), r1.observable(), "seed {seed}");
        }
    }

    #[test]
    fn use_in_condition_blocks_hoisting() {
        // x := a+b below a branch that reads x must not cross the branch.
        let mut g = parse(
            "start 1\nend 4\n\
             node 1 { branch x > 0 }\n\
             node 2 { x := a+b }\n\
             node 3 { x := a+b }\n\
             node 4 { out(x) }\n\
             edge 1 -> 2, 3\nedge 2 -> 4\nedge 3 -> 4",
        )
        .unwrap();
        let before = to_text(&g);
        let analysis = analyze_hoisting(&g);
        let n1 = g.start();
        // Hoistable *to the entries of 2 and 3* but not through node 1.
        let x = g.pool().lookup("x").unwrap();
        let a = g.pool().lookup("a").unwrap();
        let b = g.pool().lookup("b").unwrap();
        let pat = am_ir::AssignPattern::new(x, am_ir::Term::binary(am_ir::BinOp::Add, a, b));
        let i = analysis.universe.assign_id(&pat).unwrap();
        assert!(analysis.x_hoistable[n1.index()].contains(i));
        assert!(analysis.loc_blocked[n1.index()].contains(i));
        // So the insertion point is the exit of node 1 (X-INSERT).
        assert!(analysis.x_insert[n1.index()].contains(i));
        hoist_assignments(&mut g);
        let instrs: Vec<String> = g
            .block(n1)
            .instrs
            .iter()
            .map(|ins| ins.display(g.pool()))
            .collect();
        assert_eq!(
            instrs,
            vec!["branch x > 0", "x := a+b"],
            "from {before} to {}",
            to_text(&g)
        );
    }

    #[test]
    fn one_sided_occurrence_is_not_hoisted_above_branch() {
        // Hoisting past the branch would execute x := a+b on paths that
        // never executed it (not justified, Def. 3.2(2)).
        let mut g = parse(
            "start 1\nend 4\n\
             node 1 { branch p > 0 }\n\
             node 2 { x := a+b }\n\
             node 3 { skip }\n\
             node 4 { out(x) }\n\
             edge 1 -> 2, 3\nedge 2 -> 4\nedge 3 -> 4",
        )
        .unwrap();
        hoist_assignments(&mut g);
        let n1 = g.start();
        let instrs: Vec<String> = g
            .block(n1)
            .instrs
            .iter()
            .map(|i| i.display(g.pool()))
            .collect();
        assert_eq!(instrs, vec!["branch p > 0"]);
        let n2 = g.nodes().find(|&n| g.label(n) == "2").unwrap();
        assert_eq!(g.block(n2).instrs.len(), 1);
    }

    #[test]
    fn start_boundary_insertion() {
        // An assignment hoistable all the way up lands at the start node.
        let mut g = parse(
            "start 1\nend 3\n\
             node 1 { skip }\n\
             node 2 { x := a+b }\n\
             node 3 { out(x) }\n\
             edge 1 -> 2\nedge 2 -> 3",
        )
        .unwrap();
        hoist_assignments(&mut g);
        let instrs: Vec<String> = g
            .block(g.start())
            .instrs
            .iter()
            .map(|i| i.display(g.pool()))
            .collect();
        // N-INSERT places instances at the block *entry*.
        assert_eq!(instrs, vec!["x := a+b", "skip"]);
    }
}
