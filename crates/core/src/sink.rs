//! Assignment sinking / partial dead-code elimination — the dual of the
//! hoisting analysis (Sec. 4.3.2 notes the duality with Ref. \[17\]).
//!
//! Sinking moves assignments *with* the control flow to their latest safe
//! points; an assignment whose sunk instance reaches a redefinition of its
//! target or the program end without an intervening use is (partially)
//! dead and disappears on those paths. This is the transformation the
//! paper's hoistability analysis is dual to; it is provided as an
//! extension/ablation, not as part of the main pipeline.
//!
//! The sinkability system is a forward must analysis (greatest solution):
//!
//! ```text
//! X-SINKABLE_ι = OCCURRENCE_ι + N-SINKABLE_ι · ¬BLOCKED_ι
//! N-SINKABLE_ι = ∏_{κ ∈ pred(ι)} X-SINKABLE_κ     (false at the entry)
//! ```
//!
//! where `BLOCKED` means the instruction uses or redefines the target, or
//! modifies an operand of the right-hand side.
//!
//! # Traps
//!
//! Eliminating a dead assignment whose right-hand side is non-trivial can
//! remove a potential run-time error — the reason the *paper's* algorithm
//! never does it (Sec. 3). [`SinkConfig::eliminate_nontrivial_dead`]
//! controls whether this module may (the default, matching Ref. \[17\]) or
//! must keep such assignments alive.

use am_bitset::BitSet;
use am_dfa::{solve, Confluence, Direction, PointGraph, Problem};
use am_ir::{FlowGraph, Instr, PatternUniverse, Term};

/// Configuration for [`sink_assignments`].
#[derive(Clone, Copy, Debug)]
pub struct SinkConfig {
    /// Allow dropping dead assignments with non-trivial right-hand sides
    /// (changes trap potential; see module docs).
    pub eliminate_nontrivial_dead: bool,
}

impl Default for SinkConfig {
    fn default() -> Self {
        SinkConfig {
            eliminate_nontrivial_dead: true,
        }
    }
}

/// Statistics of a [`sink_assignments`] run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Occurrences removed from their original positions.
    pub removed: usize,
    /// Instances inserted at latest points.
    pub inserted: usize,
    /// Sunk instances that turned out dead and were dropped.
    pub dropped_dead: usize,
    /// Data-flow iterations.
    pub iterations: u64,
}

fn blocked(instr: &Instr, pat: &am_ir::AssignPattern) -> bool {
    if instr.uses(pat.lhs) {
        return true;
    }
    match instr.def() {
        Some(d) => d == pat.lhs || pat.rhs.mentions(d),
        None => false,
    }
}

/// Sinks every assignment pattern to its latest safe points and eliminates
/// the (partially) dead ones.
///
/// Critical edges must already be split.
/// # Examples
///
/// ```
/// use am_ir::text::parse;
/// use am_core::sink::{sink_assignments, SinkConfig};
///
/// // x := a+b is dead (overwritten before any use): sinking removes it.
/// let mut g = parse(
///     "start s\nend e\nnode s { x := a+b; x := 1 }\nnode e { out(x) }\nedge s -> e",
/// )?;
/// let stats = sink_assignments(&mut g, &SinkConfig::default());
/// assert_eq!(stats.dropped_dead, 1);
/// # Ok::<(), am_ir::text::ParseError>(())
/// ```
pub fn sink_assignments(g: &mut FlowGraph, config: &SinkConfig) -> SinkStats {
    let universe = PatternUniverse::collect(g);
    let ap = universe.assign_count();
    let mut stats = SinkStats::default();
    if ap == 0 {
        return stats;
    }

    let snapshot = g.clone();
    let pg = PointGraph::build(&snapshot);
    let points = pg.len();

    let mut occurrence = vec![BitSet::new(ap); points];
    let mut blocked_at = vec![BitSet::new(ap); points];
    for p in pg.points() {
        let Some(instr) = pg.instr(p) else { continue };
        for (i, pat) in universe.assign_patterns() {
            if pat.executed_by(instr) {
                occurrence[p.index()].insert(i);
            }
            if blocked(instr, &pat) {
                blocked_at[p.index()].insert(i);
            }
        }
    }

    let mut problem = Problem::new(Direction::Forward, Confluence::Must, points, ap);
    problem.gen = occurrence.clone();
    problem.kill = blocked_at.clone();
    let sink = solve(pg.succs(), pg.preds(), &problem);
    stats.iterations = sink.iterations;

    // Latest points. An instance arriving at a blocked instruction is
    // placed before it when the blockade is a use or an operand
    // modification; a pure redefinition of the target means the sunk value
    // is dead. Arriving at the program exit still sinking also means dead.
    let mut insert_before = vec![BitSet::new(ap); points];
    let mut insert_after = vec![BitSet::new(ap); points];
    for p in pg.points() {
        let idx = p.index();
        let instr = pg.instr(p);
        for (i, pat) in universe.assign_patterns() {
            let n_sink = sink.before[idx].contains(i);
            let x_sink = sink.after[idx].contains(i);
            if n_sink && blocked_at[idx].contains(i) {
                let instr = instr.expect("blocked points have instructions");
                let uses = instr.uses(pat.lhs);
                let operand_mod = instr
                    .def()
                    .map(|d| d != pat.lhs && pat.rhs.mentions(d))
                    .unwrap_or(false);
                let pure_redefinition = !uses && !operand_mod;
                let trivial = matches!(pat.rhs, Term::Operand(_));
                if pure_redefinition && (trivial || config.eliminate_nontrivial_dead) {
                    stats.dropped_dead += 1;
                } else {
                    insert_before[idx].insert(i);
                }
            }
            if x_sink {
                if pg.succs()[idx].is_empty() {
                    // Sunk off the end of the program: dead.
                    let trivial = matches!(pat.rhs, Term::Operand(_));
                    if trivial || config.eliminate_nontrivial_dead {
                        stats.dropped_dead += 1;
                    } else {
                        insert_after[idx].insert(i);
                    }
                } else if pg.succs()[idx]
                    .iter()
                    .any(|&q| !sink.before[q as usize].contains(i))
                {
                    insert_after[idx].insert(i);
                }
            }
        }
    }

    // Rewrite: drop occurrences, add insertions.
    for n in snapshot.nodes() {
        let first = pg.first_of(n).index();
        let last = pg.last_of(n).index();
        let mut fresh: Vec<Instr> = Vec::new();
        for pi in first..=last {
            let emit_inserts = |set: &BitSet, fresh: &mut Vec<Instr>, stats: &mut SinkStats| {
                for i in set.iter() {
                    let pat = universe.assign(i);
                    fresh.push(Instr::Assign {
                        lhs: pat.lhs,
                        rhs: pat.rhs,
                    });
                    stats.inserted += 1;
                }
            };
            emit_inserts(&insert_before[pi], &mut fresh, &mut stats);
            if let Some(instr) = pg.instr(am_dfa::PointId(pi as u32)) {
                if occurrence[pi].is_empty() {
                    fresh.push(instr.clone());
                } else {
                    stats.removed += 1;
                }
            }
            emit_inserts(&insert_after[pi], &mut fresh, &mut stats);
        }
        g.block_mut(n).instrs = fresh;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::interp;
    use am_ir::text::parse;

    fn sink(src: &str) -> (FlowGraph, FlowGraph, SinkStats) {
        let orig = parse(src).unwrap();
        let mut g = orig.clone();
        g.split_critical_edges();
        let stats = sink_assignments(&mut g, &SinkConfig::default());
        assert_eq!(g.validate(), Ok(()));
        (orig, g, stats)
    }

    #[test]
    fn fully_dead_assignment_is_removed() {
        let (_, g, stats) =
            sink("start 1\nend 2\nnode 1 { x := a+b; x := 1 }\nnode 2 { out(x) }\nedge 1 -> 2");
        assert_eq!(stats.dropped_dead, 1);
        assert!(!am_ir::text::to_text(&g).contains("a+b"));
    }

    #[test]
    fn partially_dead_assignment_is_sunk_into_the_using_branch() {
        // x := a+b is dead on the path through node 3 (which overwrites x).
        let (orig, g, stats) = sink(
            "start 1\nend 4\n\
             node 1 { x := a+b; branch p > 0 }\n\
             node 2 { y := x }\n\
             node 3 { x := 0 }\n\
             node 4 { out(x,y) }\n\
             edge 1 -> 2, 3\nedge 2 -> 4\nedge 3 -> 4",
        );
        assert!(stats.removed >= 1);
        // Node 2 (the using branch) now computes it; node 1 does not.
        let n1 = g.start();
        assert!(!g
            .block(n1)
            .instrs
            .iter()
            .any(|i| i.display(g.pool()) == "x := a+b"));
        let n2 = g.nodes().find(|&n| g.label(n) == "2").unwrap();
        assert!(g
            .block(n2)
            .instrs
            .iter()
            .any(|i| i.display(g.pool()) == "x := a+b"));
        // Semantics (modulo the eliminated trap potential — none here).
        for p in [0, 1] {
            let cfg = interp::Config::with_inputs(vec![("a", 2), ("b", 3), ("p", p)]);
            assert_eq!(
                interp::run(&orig, &cfg).observable(),
                interp::run(&g, &cfg).observable()
            );
        }
    }

    #[test]
    fn used_assignment_stays_before_its_use() {
        let (orig, g, _) =
            sink("start 1\nend 2\nnode 1 { x := a+b; y := x+1 }\nnode 2 { out(x,y) }\nedge 1 -> 2");
        let cfg = interp::Config::with_inputs(vec![("a", 1), ("b", 2)]);
        assert_eq!(
            interp::run(&orig, &cfg).observable(),
            interp::run(&g, &cfg).observable()
        );
    }

    #[test]
    fn trap_preserving_mode_keeps_dead_nontrivial_assignments() {
        let orig =
            parse("start 1\nend 2\nnode 1 { x := a/b; x := 1 }\nnode 2 { out(x) }\nedge 1 -> 2")
                .unwrap();
        let mut g = orig.clone();
        let stats = sink_assignments(
            &mut g,
            &SinkConfig {
                eliminate_nontrivial_dead: false,
            },
        );
        assert_eq!(stats.dropped_dead, 0);
        // The division still traps on b = 0.
        let cfg = interp::Config::with_inputs(vec![("a", 1), ("b", 0)]);
        assert_eq!(interp::run(&g, &cfg).trap, Some(interp::Trap::DivByZero));
    }

    #[test]
    fn dead_trivial_copy_is_always_dropped() {
        let orig =
            parse("start 1\nend 2\nnode 1 { t := a; x := 1 }\nnode 2 { out(x) }\nedge 1 -> 2")
                .unwrap();
        let mut g = orig.clone();
        let stats = sink_assignments(
            &mut g,
            &SinkConfig {
                eliminate_nontrivial_dead: false,
            },
        );
        assert_eq!(stats.dropped_dead, 1);
        assert!(!am_ir::text::to_text(&g).contains("t := a"));
    }

    #[test]
    fn sinking_out_of_a_loop() {
        // x := a+b computed every iteration but only used after the loop.
        let (orig, g, _) = sink(
            "start 1\nend 4\n\
             node 1 { skip }\n\
             node 2 { branch q > 0 }\n\
             node 3 { x := a+b; q := q-1 }\n\
             node 4 { out(x,q) }\n\
             edge 1 -> 2\nedge 2 -> 3, 4\nedge 3 -> 2",
        );
        for q in [0, 1, 3] {
            let cfg = interp::Config::with_inputs(vec![("a", 4), ("b", 5), ("q", q)]);
            let r0 = interp::run(&orig, &cfg);
            let r1 = interp::run(&g, &cfg);
            assert_eq!(r0.observable(), r1.observable(), "q={q}");
            assert!(r1.expr_evals <= r0.expr_evals, "q={q}");
        }
    }

    #[test]
    fn sinking_preserves_semantics_on_random_programs() {
        use am_ir::random::SplitMix64;
        use am_ir::random::{structured, StructuredConfig};
        for seed in 0..20 {
            let mut rng = SplitMix64::new(seed + 400);
            let orig = structured(&mut rng, &StructuredConfig::default());
            let mut g = orig.clone();
            g.split_critical_edges();
            sink_assignments(&mut g, &SinkConfig::default());
            assert_eq!(g.validate(), Ok(()), "seed {seed}");
            for run_seed in 0..5 {
                let cfg = interp::Config {
                    oracle: interp::Oracle::random(seed * 13 + run_seed, 12),
                    inputs: vec![("v0".into(), 1), ("v1".into(), 2), ("v2".into(), 3)],
                    ..Default::default()
                };
                let a = interp::run(&orig, &cfg);
                let b = interp::run(&g, &cfg);
                assert_eq!(
                    a.observable(),
                    b.observable(),
                    "seed {seed}/{run_seed}\n{orig:?}\n{g:?}"
                );
            }
        }
    }
}

/// Statistics of [`partial_dead_code_elimination`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PdeStats {
    /// Sinking rounds until stabilization.
    pub rounds: usize,
    /// Total occurrences removed from original positions.
    pub removed: usize,
    /// Total instances inserted at latest points.
    pub inserted: usize,
    /// Total dead instances dropped.
    pub dropped_dead: usize,
    /// Whether the fixed point was reached within the budget.
    pub converged: bool,
}

/// Full partial dead-code elimination: iterates [`sink_assignments`] until
/// the program stabilizes. Like hoisting (Sec. 4.3), sinking has
/// second-order effects — dropping a dead assignment can make the
/// assignment feeding it dead in the next round.
pub fn partial_dead_code_elimination(g: &mut FlowGraph, config: &SinkConfig) -> PdeStats {
    let mut stats = PdeStats::default();
    let budget = crate::motion::default_round_budget(g);
    for _ in 0..budget {
        let before = g.clone();
        let round = sink_assignments(g, config);
        stats.rounds += 1;
        stats.removed += round.removed;
        stats.inserted += round.inserted;
        stats.dropped_dead += round.dropped_dead;
        if *g == before {
            stats.converged = true;
            break;
        }
    }
    stats
}

#[cfg(test)]
mod pde_tests {
    use super::*;
    use am_ir::interp::{run, Config};
    use am_ir::text::parse;

    #[test]
    fn dead_chains_collapse_transitively() {
        // y depends on x; only y's death in round one exposes x's death.
        let mut g = parse(
            "start 1\nend 2\n\
             node 1 { x := a+b; y := x+1; y := 0; x := 0 }\n\
             node 2 { out(x,y) }\nedge 1 -> 2",
        )
        .unwrap();
        let stats = partial_dead_code_elimination(&mut g, &SinkConfig::default());
        assert!(stats.converged);
        assert!(stats.rounds >= 2, "needs the second-order round: {stats:?}");
        assert_eq!(stats.dropped_dead, 2, "{stats:?}");
        let text = am_ir::text::to_text(&g);
        assert!(!text.contains("a+b"), "{text}");
        assert!(!text.contains("x+1"), "{text}");
        let r = run(&g, &Config::with_inputs(vec![("a", 5), ("b", 6)]));
        assert_eq!(r.outputs, vec![vec![0, 0]]);
    }

    #[test]
    fn partially_dead_chain_moves_into_the_live_branch() {
        // x := a+b and y := x*2 are both needed only on the left branch.
        let src = "start s\nend e\n\
             node s { x := a+b; y := x*2; branch p > 0 }\n\
             node l { out(y) }\n\
             node r { y := 0; x := 0 }\n\
             node e { out(x,y) }\n\
             edge s -> l, r\nedge l -> e\nedge r -> e";
        let orig = parse(src).unwrap();
        let mut g = orig.clone();
        g.split_critical_edges();
        let stats = partial_dead_code_elimination(&mut g, &SinkConfig::default());
        assert!(stats.converged);
        // On the right path, neither a+b nor x*2 is evaluated any more.
        let right = run(&g, &Config::with_oracle(vec![1], vec![("a", 1), ("b", 2)]));
        let right_orig = run(
            &orig,
            &Config::with_oracle(vec![1], vec![("a", 1), ("b", 2)]),
        );
        assert_eq!(right.observable(), right_orig.observable());
        assert_eq!(right.expr_evals, 0, "{}", am_ir::text::to_text(&g));
        assert_eq!(right_orig.expr_evals, 2);
        // The left path still computes both.
        let left = run(&g, &Config::with_oracle(vec![0], vec![("a", 1), ("b", 2)]));
        let left_orig = run(
            &orig,
            &Config::with_oracle(vec![0], vec![("a", 1), ("b", 2)]),
        );
        assert_eq!(left.observable(), left_orig.observable());
        assert_eq!(left.expr_evals, 2);
    }

    #[test]
    fn pde_converges_on_random_programs() {
        use am_ir::random::SplitMix64;
        use am_ir::random::{structured, StructuredConfig};
        for seed in 0..15 {
            let mut rng = SplitMix64::new(seed + 77_000);
            let orig = structured(&mut rng, &StructuredConfig::default());
            let mut g = orig.clone();
            g.split_critical_edges();
            let stats = partial_dead_code_elimination(&mut g, &SinkConfig::default());
            assert!(stats.converged, "seed {seed}");
            assert_eq!(g.validate(), Ok(()), "seed {seed}");
            for run_seed in 0..5 {
                let cfg = Config {
                    oracle: am_ir::interp::Oracle::random(seed * 7 + run_seed, 12),
                    inputs: vec![("v0".into(), 1), ("v1".into(), -4)],
                    ..Default::default()
                };
                let a = run(&orig, &cfg);
                let b = run(&g, &cfg);
                assert_eq!(a.observable(), b.observable(), "seed {seed}/{run_seed}");
            }
        }
    }
}
