//! Copy propagation — the `CP` of the Sec. 6 comparison (Fig. 20(a)).
//!
//! Classic EM pipelines interleave expression motion with copy propagation
//! to undo the damage 3-address decomposition does to movability
//! (Fig. 19(b)). This module provides that comparator: a must-reaching-copy
//! analysis (built on [`am_dfa::classic::reaching_copies`]) drives use
//! rewriting, iterated to closure, plus an optional dead-trivial-copy
//! cleanup based on liveness (removing a *trivial* assignment cannot change
//! trap behaviour, so the cleanup is semantics-preserving — unlike general
//! dead-code elimination, which the paper rules out in Sec. 3).

use am_dfa::{classic, PointGraph};
use am_ir::{Cond, FlowGraph, Instr, Operand, PatternUniverse, Term, Var};

/// Statistics of a [`copy_propagation`] run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CopyPropStats {
    /// Operand uses rewritten to the copy source.
    pub rewritten: usize,
    /// Dead trivial copies removed (when enabled).
    pub removed: usize,
    /// Rewriting rounds until closure.
    pub rounds: usize,
}

fn substitute_operand(o: Operand, from: Var, to: Operand) -> (Operand, bool) {
    match o {
        Operand::Var(v) if v == from => (to, true),
        other => (other, false),
    }
}

fn substitute_term(t: Term, from: Var, to: Operand) -> (Term, usize) {
    match t {
        Term::Operand(o) => {
            let (o2, hit) = substitute_operand(o, from, to);
            (Term::Operand(o2), usize::from(hit))
        }
        Term::Binary { op, lhs, rhs } => {
            let (l, h1) = substitute_operand(lhs, from, to);
            let (r, h2) = substitute_operand(rhs, from, to);
            (
                Term::Binary { op, lhs: l, rhs: r },
                usize::from(h1) + usize::from(h2),
            )
        }
    }
}

/// One round of copy propagation: rewrites every use reached by a unique
/// must-available copy. Returns the number of uses rewritten.
fn propagate_once(g: &mut FlowGraph) -> usize {
    let universe = PatternUniverse::collect(g);
    let snapshot = g.clone();
    let pg = PointGraph::build(&snapshot);
    let sol = classic::reaching_copies(&pg, &universe);

    // Collect the copy patterns (v := operand).
    let copies: Vec<(usize, Var, Operand)> = universe
        .assign_patterns()
        .filter_map(|(i, pat)| match pat.rhs {
            Term::Operand(o) => Some((i, pat.lhs, o)),
            _ => None,
        })
        .collect();

    let mut rewritten = 0;
    for p in pg.points() {
        let Some(instr) = pg.instr(p) else { continue };
        let Some(loc) = pg.loc(p) else { continue };
        let before = &sol.before[p.index()];
        let mut new_instr = instr.clone();
        for &(i, v, src) in &copies {
            if !before.contains(i) {
                continue;
            }
            // Don't rewrite v in the copy v := v' itself (it has no use of
            // v), nor chase self-copies.
            match &mut new_instr {
                Instr::Assign { rhs, .. } => {
                    let (t, hits) = substitute_term(*rhs, v, src);
                    *rhs = t;
                    rewritten += hits;
                }
                Instr::Out(ops) => {
                    for o in ops.iter_mut() {
                        let (o2, hit) = substitute_operand(*o, v, src);
                        *o = o2;
                        rewritten += usize::from(hit);
                    }
                }
                Instr::Branch(c) => {
                    let (l, h1) = substitute_term(c.lhs, v, src);
                    let (r, h2) = substitute_term(c.rhs, v, src);
                    *c = Cond {
                        op: c.op,
                        lhs: l,
                        rhs: r,
                    };
                    rewritten += h1 + h2;
                }
                Instr::Skip => {}
            }
        }
        // Normalize x := x to skip.
        if let Instr::Assign { lhs, rhs } = &new_instr {
            if *rhs == Term::Operand(Operand::Var(*lhs)) {
                new_instr = Instr::Skip;
            }
        }
        g.block_mut(loc.node).instrs[loc.index] = new_instr;
    }
    rewritten
}

/// Removes trivial copies (`v := operand`) whose target is dead. Trivial
/// right-hand sides evaluate nothing, so this cannot change traps.
pub fn remove_dead_copies(g: &mut FlowGraph) -> usize {
    let snapshot = g.clone();
    let pg = PointGraph::build(&snapshot);
    let live = classic::live_variables(&pg);
    let mut doomed = Vec::new();
    for p in pg.points() {
        let Some(instr) = pg.instr(p) else { continue };
        let Some(loc) = pg.loc(p) else { continue };
        if let Instr::Assign {
            lhs,
            rhs: Term::Operand(_),
        } = instr
        {
            if !live.after[p.index()].contains(lhs.index()) {
                doomed.push(loc);
            }
        }
    }
    let removed = doomed.len();
    crate::rae::remove_locs(g, &doomed);
    removed
}

/// Copy propagation to closure, optionally followed by dead-copy removal.
/// # Examples
///
/// ```
/// use am_ir::text::parse;
/// use am_core::copyprop::copy_propagation;
///
/// let mut g = parse(
///     "start s\nend e\nnode s { t := a; x := t+1 }\nnode e { out(x) }\nedge s -> e",
/// )?;
/// copy_propagation(&mut g, true);
/// let text = am_ir::text::to_text(&g);
/// assert!(text.contains("x := a+1"));
/// assert!(!text.contains("t := a"));
/// # Ok::<(), am_ir::text::ParseError>(())
/// ```
pub fn copy_propagation(g: &mut FlowGraph, clean_dead_copies: bool) -> CopyPropStats {
    let mut stats = CopyPropStats::default();
    // Chains (a := b; c := a; use c) settle in at most |vars| rounds.
    for _ in 0..=g.pool().len() {
        stats.rounds += 1;
        let hits = propagate_once(g);
        stats.rewritten += hits;
        if hits == 0 {
            break;
        }
    }
    if clean_dead_copies {
        loop {
            let removed = remove_dead_copies(g);
            stats.removed += removed;
            if removed == 0 {
                break;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_ir::interp;
    use am_ir::text::parse;

    #[test]
    fn straight_line_copy_is_propagated() {
        let mut g =
            parse("start 1\nend 2\nnode 1 { t := a; x := t+c }\nnode 2 { out(x,t) }\nedge 1 -> 2")
                .unwrap();
        let stats = copy_propagation(&mut g, false);
        assert!(stats.rewritten >= 2);
        let text = am_ir::text::to_text(&g);
        assert!(text.contains("x := a+c"), "{text}");
        assert!(text.contains("out(x,a)"), "{text}");
    }

    #[test]
    fn dead_copy_is_removed_after_propagation() {
        let mut g =
            parse("start 1\nend 2\nnode 1 { t := a; x := t+c }\nnode 2 { out(x) }\nedge 1 -> 2")
                .unwrap();
        let stats = copy_propagation(&mut g, true);
        assert_eq!(stats.removed, 1);
        assert!(!am_ir::text::to_text(&g).contains("t :="));
    }

    #[test]
    fn copy_killed_by_source_write_is_not_propagated() {
        let mut g = parse(
            "start 1\nend 2\nnode 1 { t := a; a := 0; x := t+c }\nnode 2 { out(x) }\nedge 1 -> 2",
        )
        .unwrap();
        copy_propagation(&mut g, false);
        let text = am_ir::text::to_text(&g);
        assert!(text.contains("x := t+c"), "{text}");
    }

    #[test]
    fn chains_settle() {
        let mut g = parse(
            "start 1\nend 2\nnode 1 { a := q; b := a; c := b; x := c+1 }\nnode 2 { out(x) }\nedge 1 -> 2",
        )
        .unwrap();
        copy_propagation(&mut g, true);
        let text = am_ir::text::to_text(&g);
        assert!(text.contains("x := q+1"), "{text}");
        assert!(!text.contains("b :="), "{text}");
    }

    #[test]
    fn branch_join_blocks_must_propagation() {
        let mut g = parse(
            "start 1\nend 4\n\
             node 1 { branch p > 0 }\n\
             node 2 { t := a }\n\
             node 3 { t := b }\n\
             node 4 { x := t+1; out(x) }\n\
             edge 1 -> 2, 3\nedge 2 -> 4\nedge 3 -> 4",
        )
        .unwrap();
        copy_propagation(&mut g, false);
        let text = am_ir::text::to_text(&g);
        assert!(text.contains("x := t+1"), "different copies reach: {text}");
    }

    #[test]
    fn constants_propagate_too() {
        let mut g =
            parse("start 1\nend 2\nnode 1 { t := 5; x := t+c }\nnode 2 { out(x) }\nedge 1 -> 2")
                .unwrap();
        copy_propagation(&mut g, true);
        let text = am_ir::text::to_text(&g);
        assert!(text.contains("x := 5+c"), "{text}");
    }

    #[test]
    fn propagation_preserves_semantics() {
        let src = "start 1\nend 4\n\
             node 1 { t := a; branch p > 0 }\n\
             node 2 { x := t+1; a := 9 }\n\
             node 3 { x := t+2 }\n\
             node 4 { y := t; out(x,y,a) }\n\
             edge 1 -> 2, 3\nedge 2 -> 4\nedge 3 -> 4";
        let orig = parse(src).unwrap();
        let mut g = orig.clone();
        copy_propagation(&mut g, true);
        for seed in 0..10 {
            let cfg = interp::Config {
                oracle: interp::Oracle::random(seed, 3),
                inputs: vec![("a".into(), seed as i64), ("p".into(), 1)],
                ..Default::default()
            };
            assert_eq!(
                interp::run(&orig, &cfg).observable(),
                interp::run(&g, &cfg).observable(),
                "seed {seed}"
            );
        }
    }
}
