//! The bench-regression sentinel: append-only history entries and a
//! noise-aware comparator over the two bench document schemas
//! (`am-bench-dataflow/v1`, `am-bench-service/v1`).
//!
//! Both bench harnesses append one line per run to `BENCH_history.jsonl`
//! (`{"ts":…,"kind":"dataflow"|"service","doc":{…}}`, the full document
//! compacted onto the line), so the perf trajectory accumulates across
//! machines and PRs. `amstat regress` compares a candidate run against a
//! checked-in baseline and exits nonzero on regression.
//!
//! Noise model: deterministic **counters** (worklist pushes, iterations,
//! eliminations, …) get a tight relative tolerance — they only move when
//! the algorithm changes. **Time** metrics (wall micros, throughput,
//! latency quantiles) get a loose relative tolerance plus an absolute
//! floor, because shared CI runners jitter by tens of percent on
//! microsecond-scale workloads; `counts_only` skips them entirely, which
//! is how the cross-machine CI gate runs.

use std::fmt::Write as _;

use am_trace::json::{self, Json};

/// Whether a bigger candidate value is a regression or an improvement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (latency, worklist pushes).
    LowerBetter,
    /// Bigger is better (throughput, eliminations).
    HigherBetter,
}

/// How a metric is judged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricClass {
    /// Deterministic counter: tight tolerance, never skipped.
    Count,
    /// Wall-clock measurement: loose tolerance + floor, skippable.
    Time,
}

/// One comparable metric extracted from a bench document.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Stable name, unique within the document (`label / field`).
    pub name: String,
    /// The value.
    pub value: f64,
    /// Count or time.
    pub class: MetricClass,
    /// Which way regressions point.
    pub direction: Direction,
}

/// Comparator thresholds. A candidate `c` against baseline `b` regresses
/// when it lands outside the allowed band:
/// lower-better: `c > b·ratio + floor`; higher-better: `c < b/ratio − floor`.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Relative tolerance for time metrics (e.g. `1.5` = 50% slack).
    pub time_ratio: f64,
    /// Absolute floor for time metrics, in the metric's own unit.
    pub time_floor: f64,
    /// Relative tolerance for deterministic counters.
    pub count_ratio: f64,
    /// Skip time metrics entirely (the cross-machine CI mode).
    pub counts_only: bool,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            time_ratio: 1.5,
            time_floor: 500.0,
            count_ratio: 1.02,
            counts_only: false,
        }
    }
}

/// One metric that landed outside its allowed band.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// The metric name.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// The bound the candidate violated.
    pub allowed: f64,
    /// Which way the bound points.
    pub direction: Direction,
}

/// The outcome of one baseline/candidate comparison.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Document kind (`dataflow` or `service`).
    pub kind: String,
    /// Metrics compared.
    pub compared: usize,
    /// Time metrics skipped by `counts_only`.
    pub skipped_time: usize,
    /// Metrics present on only one side (labels added/removed).
    pub unmatched: usize,
    /// No metric name appeared on both sides (fully disjoint rung sets,
    /// e.g. an XL-only candidate against the full-ladder baseline). The
    /// comparison is a defined skip — nothing was gated — rather than a
    /// failure, so `ok()` still holds.
    pub disjoint: bool,
    /// Metrics outside their allowed band.
    pub regressions: Vec<Finding>,
    /// Metrics that *improved* beyond the tolerance (informational).
    pub improvements: Vec<Finding>,
}

impl Report {
    /// Whether the candidate passed.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human rendering — see "reading a regression report" in
    /// docs/OBSERVABILITY.md.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "regress [{}]: {} metrics compared, {} time metrics skipped, {} unmatched",
            self.kind, self.compared, self.skipped_time, self.unmatched
        );
        for f in &self.regressions {
            let bound = match f.direction {
                Direction::LowerBetter => format!("allowed <= {:.1}", f.allowed),
                Direction::HigherBetter => format!("allowed >= {:.1}", f.allowed),
            };
            let _ = writeln!(
                out,
                "  REGRESSION {}: {} -> {} ({bound})",
                f.name, f.baseline, f.candidate
            );
        }
        for f in &self.improvements {
            let _ = writeln!(
                out,
                "  improved   {}: {} -> {}",
                f.name, f.baseline, f.candidate
            );
        }
        if self.disjoint {
            let _ = writeln!(
                out,
                "  SKIP: baseline and candidate share no workload labels; nothing gated"
            );
        }
        let _ = writeln!(
            out,
            "{}",
            if self.ok() {
                "OK: no regressions"
            } else {
                "REGRESSED"
            }
        );
        out
    }
}

/// The document kind of a parsed bench document, from its `schema` tag.
pub fn doc_kind(doc: &Json) -> Result<&'static str, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some("am-bench-dataflow/v1") => Ok("dataflow"),
        Some("am-bench-service/v1") => Ok("service"),
        Some(other) => Err(format!("unsupported bench schema \"{other}\"")),
        None => Err("document has no \"schema\" tag".into()),
    }
}

fn num(v: &Json, key: &str) -> Option<f64> {
    match v.get(key) {
        Some(Json::Num(n)) => Some(*n),
        Some(Json::Bool(b)) => Some(*b as u8 as f64),
        _ => None,
    }
}

/// Extracts the comparable metrics of a bench document.
pub fn extract_metrics(doc: &Json) -> Result<Vec<Metric>, String> {
    use Direction::*;
    use MetricClass::*;
    let mut metrics = Vec::new();
    let mut push = |name: String, value: Option<f64>, class, direction| {
        if let Some(value) = value {
            metrics.push(Metric {
                name,
                value,
                class,
                direction,
            });
        }
    };
    match doc_kind(doc)? {
        "dataflow" => {
            let records = doc
                .get("records")
                .and_then(Json::as_arr)
                .ok_or("missing \"records\" array")?;
            for r in records {
                let label = r
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or("record without label")?;
                for (field, direction) in [
                    ("converged", HigherBetter),
                    ("eliminated", HigherBetter),
                    ("rounds", LowerBetter),
                    ("iterations", LowerBetter),
                    ("worklist_pushes", LowerBetter),
                    ("max_worklist_len", LowerBetter),
                ] {
                    push(
                        format!("{label} / {field}"),
                        num(r, field),
                        Count,
                        direction,
                    );
                }
                for field in ["wall_micros", "motion_micros"] {
                    push(
                        format!("{label} / {field}"),
                        num(r, field),
                        Time,
                        LowerBetter,
                    );
                }
            }
        }
        "service" => {
            push("requests".into(), num(doc, "requests"), Count, HigherBetter);
            push("errors".into(), num(doc, "errors"), Count, LowerBetter);
            push(
                "dedup_ratio".into(),
                num(doc, "dedup_ratio"),
                Count,
                HigherBetter,
            );
            push(
                "throughput_rps".into(),
                num(doc, "throughput_rps"),
                Time,
                HigherBetter,
            );
            if let Some(lat) = doc.get("latency_micros") {
                for field in ["p50", "p95", "p99", "max"] {
                    push(
                        format!("latency_micros / {field}"),
                        num(lat, field),
                        Time,
                        LowerBetter,
                    );
                }
            }
        }
        _ => unreachable!("doc_kind covers both schemas"),
    }
    Ok(metrics)
}

/// Compares a candidate document against a baseline of the same kind.
pub fn compare(baseline: &Json, candidate: &Json, t: &Thresholds) -> Result<Report, String> {
    let kind = doc_kind(baseline)?;
    if doc_kind(candidate)? != kind {
        return Err(format!(
            "kind mismatch: baseline is {kind}, candidate is {}",
            doc_kind(candidate)?
        ));
    }
    let base = extract_metrics(baseline)?;
    let cand = extract_metrics(candidate)?;
    let mut report = Report {
        kind: kind.to_owned(),
        ..Report::default()
    };
    let mut matched = 0usize;
    for b in &base {
        let Some(c) = cand.iter().find(|c| c.name == b.name) else {
            continue;
        };
        matched += 1;
        if b.class == MetricClass::Time && t.counts_only {
            report.skipped_time += 1;
            continue;
        }
        report.compared += 1;
        let (ratio, floor) = match b.class {
            MetricClass::Count => (t.count_ratio, 0.5),
            MetricClass::Time => (t.time_ratio, t.time_floor),
        };
        let finding = |allowed: f64| Finding {
            name: b.name.clone(),
            baseline: b.value,
            candidate: c.value,
            allowed,
            direction: b.direction,
        };
        match b.direction {
            Direction::LowerBetter => {
                let allowed = b.value * ratio + floor;
                if c.value > allowed {
                    report.regressions.push(finding(allowed));
                } else if c.value < b.value / ratio - floor {
                    report.improvements.push(finding(allowed));
                }
            }
            Direction::HigherBetter => {
                let allowed = b.value / ratio - floor;
                if c.value < allowed {
                    report.regressions.push(finding(allowed));
                } else if c.value > b.value * ratio + floor {
                    report.improvements.push(finding(allowed));
                }
            }
        }
    }
    report.unmatched = (base.len() - matched) + (cand.len() - matched);
    // Fully disjoint rung sets (no shared labels at all) are a defined
    // skip, not an error: partial bench runs (XL smoke, --small) must be
    // comparable against a wider baseline without tripping CI when the
    // overlap happens to be empty.
    report.disjoint = matched == 0 && !(base.is_empty() && cand.is_empty());
    Ok(report)
}

/// Renders a JSON value compactly onto one line (history entries embed the
/// full document this way, keeping the file valid JSONL).
pub fn write_json_compact(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Json::Str(s) => json::write_str(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_compact(out, item);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (key, value)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_str(out, key);
                out.push(':');
                write_json_compact(out, value);
            }
            out.push('}');
        }
    }
}

/// Builds one `BENCH_history.jsonl` line from a rendered bench document.
pub fn history_line(ts_seconds: u64, doc_text: &str) -> Result<String, String> {
    let doc = json::parse(doc_text).map_err(|e| e.to_string())?;
    let kind = doc_kind(&doc)?;
    let mut line = format!("{{\"ts\":{ts_seconds},\"kind\":\"{kind}\",\"doc\":");
    write_json_compact(&mut line, &doc);
    line.push('}');
    Ok(line)
}

/// Appends one history line for `doc_text` to the file at `path`,
/// timestamped with the current wall clock. Used by both bench harnesses.
pub fn append_history(path: &std::path::Path, doc_text: &str) -> Result<(), String> {
    use std::io::Write as _;
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let line = history_line(ts, doc_text)?;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    writeln!(file, "{line}").map_err(|e| format!("{}: {e}", path.display()))
}

/// Loads a bench document from file text: either a bare document or a
/// `BENCH_history.jsonl` file, in which case the newest entry (optionally
/// restricted to `kind`) is unwrapped.
pub fn load_doc(text: &str, kind: Option<&str>) -> Result<Json, String> {
    if let Ok(doc) = json::parse(text.trim()) {
        if doc.get("schema").is_some() {
            return Ok(doc);
        }
    }
    let mut newest: Option<Json> = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry = json::parse(line).map_err(|e| format!("history line {}: {e}", lineno + 1))?;
        let entry_kind = entry.get("kind").and_then(Json::as_str);
        if entry_kind.is_none() || entry.get("doc").is_none() {
            return Err(format!(
                "line {} is neither a bench document nor a history entry",
                lineno + 1
            ));
        }
        if kind.is_none() || entry_kind == kind {
            newest = entry.get("doc").cloned();
        }
    }
    newest.ok_or_else(|| match kind {
        Some(kind) => format!("no \"{kind}\" entry in the history file"),
        None => "empty history file".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataflow_doc(pushes: u64, wall: u64, eliminated: u64) -> String {
        format!(
            r#"{{"schema":"am-bench-dataflow/v1","generator":"t","records":[
                {{"label":"nest d=1","converged":true,"eliminated":{eliminated},"rounds":4,
                  "iterations":100,"worklist_pushes":{pushes},"max_worklist_len":10,
                  "wall_micros":{wall},"motion_micros":{}}}]}}"#,
            wall / 2
        )
    }

    fn service_doc(rps: f64, errors: u64) -> String {
        format!(
            r#"{{"schema":"am-bench-service/v1","requests":640,"errors":{errors},
                "dedup_ratio":8.0,"throughput_rps":{rps},
                "latency_micros":{{"p50":100,"p95":200,"p99":300,"max":400}}}}"#
        )
    }

    fn parse(text: &str) -> Json {
        json::parse(text).unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let doc = parse(&dataflow_doc(376, 222, 8));
        let report = compare(&doc, &doc, &Thresholds::default()).unwrap();
        assert!(report.ok(), "{}", report.render());
        assert!(report.compared >= 8);
    }

    #[test]
    fn counter_regression_trips_tightly() {
        let base = parse(&dataflow_doc(376, 222, 8));
        // 10% more worklist pushes: outside the 2% counter band even
        // though the time band would allow it.
        let worse = parse(&dataflow_doc(414, 222, 8));
        let report = compare(&base, &worse, &Thresholds::default()).unwrap();
        assert!(!report.ok());
        assert!(report.regressions[0].name.contains("worklist_pushes"));
    }

    #[test]
    fn lost_eliminations_are_a_regression() {
        let base = parse(&dataflow_doc(376, 222, 8));
        let worse = parse(&dataflow_doc(376, 222, 5));
        let report = compare(&base, &worse, &Thresholds::default()).unwrap();
        assert!(!report.ok());
        assert!(report.regressions[0].name.contains("eliminated"));
    }

    #[test]
    fn time_noise_within_band_passes_and_counts_only_skips_it() {
        let base = parse(&dataflow_doc(376, 1000, 8));
        let noisy = parse(&dataflow_doc(376, 1400, 8));
        assert!(compare(&base, &noisy, &Thresholds::default()).unwrap().ok());
        // A genuine blowup trips...
        let slow = parse(&dataflow_doc(376, 30_000, 8));
        assert!(!compare(&base, &slow, &Thresholds::default()).unwrap().ok());
        // ...unless counts_only skips time entirely (the CI mode).
        let counts_only = Thresholds {
            counts_only: true,
            ..Thresholds::default()
        };
        let report = compare(&base, &slow, &counts_only).unwrap();
        assert!(report.ok());
        assert!(report.skipped_time >= 2);
    }

    #[test]
    fn tiny_absolute_times_never_trip() {
        // 3µs -> 8µs is 2.7x but under the 500µs floor: timer noise.
        let base = parse(&dataflow_doc(376, 3, 8));
        let jitter = parse(&dataflow_doc(376, 8, 8));
        assert!(compare(&base, &jitter, &Thresholds::default())
            .unwrap()
            .ok());
    }

    #[test]
    fn service_throughput_and_errors_gate() {
        let base = parse(&service_doc(2800.0, 0));
        assert!(compare(&base, &base, &Thresholds::default()).unwrap().ok());
        let errors = parse(&service_doc(2800.0, 3));
        let report = compare(&base, &errors, &Thresholds::default()).unwrap();
        assert!(!report.ok());
        assert_eq!(report.regressions[0].name, "errors");
        let slow = parse(&service_doc(900.0, 0));
        assert!(!compare(&base, &slow, &Thresholds::default()).unwrap().ok());
    }

    #[test]
    fn kind_mismatch_errors() {
        let d = parse(&dataflow_doc(1, 1, 1));
        let s = parse(&service_doc(1.0, 0));
        assert!(compare(&d, &s, &Thresholds::default()).is_err());
    }

    #[test]
    fn disjoint_rung_sets_skip_instead_of_failing() {
        // An XL-smoke candidate compared against a baseline whose rungs
        // it doesn't share must be a defined no-op gate, not a failure.
        let d = parse(&dataflow_doc(376, 222, 8));
        let other = parse(&dataflow_doc(376, 222, 8).replace("nest d=1", "xl nest c=2000"));
        let report = compare(&d, &other, &Thresholds::default()).unwrap();
        assert!(report.ok(), "{}", report.render());
        assert!(report.disjoint);
        assert_eq!(report.compared, 0);
        assert!(report.unmatched > 0);
        assert!(report.render().contains("SKIP"), "{}", report.render());
        // A partial overlap is an ordinary comparison, not a skip.
        let report = compare(&d, &d, &Thresholds::default()).unwrap();
        assert!(!report.disjoint);
        assert!(!report.render().contains("SKIP"));
    }

    #[test]
    fn history_lines_wrap_and_unwrap() {
        let doc = dataflow_doc(376, 222, 8);
        let line = history_line(1754600000, &doc).unwrap();
        assert!(line.starts_with("{\"ts\":1754600000,\"kind\":\"dataflow\",\"doc\":{"));
        assert!(!line.contains('\n'));
        let service_line = history_line(1754600001, &service_doc(2800.0, 0)).unwrap();
        let file = format!("{line}\n{service_line}\n");
        let newest = load_doc(&file, None).unwrap();
        assert_eq!(doc_kind(&newest).unwrap(), "service");
        let dataflow = load_doc(&file, Some("dataflow")).unwrap();
        assert_eq!(doc_kind(&dataflow).unwrap(), "dataflow");
        assert!(load_doc(&file, Some("nope")).is_err());
        // A bare document loads as itself.
        let bare = load_doc(&doc, None).unwrap();
        assert_eq!(doc_kind(&bare).unwrap(), "dataflow");
    }

    #[test]
    fn compact_writer_round_trips() {
        let doc = parse(&dataflow_doc(376, 222, 8));
        let mut out = String::new();
        write_json_compact(&mut out, &doc);
        assert_eq!(parse(&out), doc);
        assert!(!out.contains('\n'));
    }
}
