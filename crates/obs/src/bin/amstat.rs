//! `amstat`: offline analysis of the observability artifacts.
//!
//! Three modes:
//!
//! * `amstat TRACE.jsonl [...]` — aggregate JSONL traces produced by
//!   `amopt --trace` or `amserve --trace` into the [`OptStats`] report
//!   (per-span latency percentiles, per-analysis fixpoint totals, the
//!   iterations-vs-size scatter, and the service summary for server
//!   traces). Files holding an `am-stats/v1` document (written by
//!   `amclient stats --json`) are rendered as a live-stats report instead
//!   and may be mixed freely with trace files.
//! * `amstat regress --baseline FILE --candidate FILE [...]` — the
//!   bench-regression sentinel: compare two bench documents (or
//!   `BENCH_history.jsonl` files) and exit 1 on regression.
//!
//! Exits 0 on success, 1 on failure/regression, 2 on usage errors, so CI
//! can gate on it directly.

use std::process::ExitCode;

use am_obs::regress::{self, Thresholds};
use am_trace::export::parse_jsonl_line;
use am_trace::json::{self, Json};
use am_trace::stats::OptStats;

fn usage() -> ! {
    eprintln!("usage: amstat TRACE.jsonl [TRACE.jsonl ...]");
    eprintln!("       amstat STATS.json            (from `amclient stats --json`)");
    eprintln!("       amstat regress --baseline FILE --candidate FILE [options]");
    eprintln!();
    eprintln!("Trace mode aggregates JSONL traces written by `amopt --trace FILE");
    eprintln!("--trace-format jsonl` or `amserve --trace FILE`: per-span latency");
    eprintln!("percentiles, per-analysis fixpoint totals, the iterations-vs-nodes");
    eprintln!("scatter, and — for server traces — the answered-by-source service");
    eprintln!("summary. Multiple files merge into one report. Files containing an");
    eprintln!("am-stats/v1 document are rendered as a live-stats report instead.");
    eprintln!();
    eprintln!("regress options:");
    eprintln!("  --baseline FILE    checked-in bench doc or BENCH_history.jsonl");
    eprintln!("  --candidate FILE   fresh bench doc or BENCH_history.jsonl (newest entry)");
    eprintln!("  --kind KIND        pick `dataflow` or `service` entries from history");
    eprintln!("  --counts-only      compare deterministic counters only (CI mode)");
    eprintln!("  --time-ratio X     relative slack for time metrics (default 1.5)");
    eprintln!("  --time-floor N     absolute time slack, metric units (default 500)");
    eprintln!("  --count-ratio X    relative slack for counters (default 1.02)");
    eprintln!();
    eprintln!("Exits 1 on malformed/empty input or on a detected regression.");
    std::process::exit(2);
}

fn fmt_micros(micros: u64) -> String {
    if micros >= 10_000_000 {
        format!("{:.2}s", micros as f64 / 1e6)
    } else if micros >= 10_000 {
        format!("{:.2}ms", micros as f64 / 1e3)
    } else {
        format!("{micros}us")
    }
}

/// One input file: either a JSONL trace or an `am-stats/v1` document.
#[cfg_attr(test, derive(Debug))]
enum Input {
    Trace(Vec<am_trace::Event>),
    Stats(Json),
}

fn load_input(path: &str) -> Result<Input, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if let Ok(doc) = json::parse(text.trim()) {
        if doc.get("schema").and_then(Json::as_str) == Some("am-stats/v1") {
            return Ok(Input::Stats(doc));
        }
    }
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_jsonl_line(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?);
    }
    if events.is_empty() {
        return Err(format!("{path}: no events"));
    }
    Ok(Input::Trace(events))
}

fn print_report(stats: &OptStats) {
    println!("events: {}", stats.events);
    println!();
    println!(
        "{:<24} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "span", "count", "total", "p50", "p95", "p99", "max"
    );
    for (key, d) in &stats.spans {
        println!(
            "{key:<24} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
            d.count,
            fmt_micros(d.total_micros),
            fmt_micros(d.quantile(0.5)),
            fmt_micros(d.quantile(0.95)),
            fmt_micros(d.quantile(0.99)),
            fmt_micros(d.max_micros),
        );
    }
    if !stats.analyses.is_empty() {
        println!();
        println!(
            "{:<14} {:>7} {:>12} {:>12} {:>14}",
            "analysis", "solves", "iterations", "pushes", "peak worklist"
        );
        for (name, a) in &stats.analyses {
            println!(
                "{name:<14} {:>7} {:>12} {:>12} {:>14}",
                a.solves, a.iterations, a.worklist_pushes, a.max_worklist_len
            );
        }
        println!("total fixpoint iterations: {}", stats.total_iterations());
    }
    if !stats.counters.is_empty() {
        println!();
        println!("counters");
        for (key, value) in &stats.counters {
            println!("  {key} = {value}");
        }
    }
    if let Some(service) = stats.service() {
        println!();
        println!("service (amserve trace)");
        println!(
            "  sessions: {}   worker jobs: {}   answered: {} ({:.1}% cached)",
            service.sessions,
            service.leaders,
            service.answered(),
            service.cached_pct(),
        );
        println!(
            "  by source: fresh {}, memory {}, disk {}, coalesced {}   busy: {}   errors: {}",
            service.fresh,
            service.memory,
            service.disk,
            service.coalesced,
            service.busy,
            service.errors,
        );
        if service.service.count > 0 {
            println!(
                "  service latency: p50 {} p95 {} p99 {} max {}",
                fmt_micros(service.service.quantile(0.5)),
                fmt_micros(service.service.quantile(0.95)),
                fmt_micros(service.service.quantile(0.99)),
                fmt_micros(service.service.max_micros),
            );
        }
    }
    if !stats.scatter.is_empty() {
        println!();
        println!(
            "{:>8} {:>8} {:>12} {:>8}   iterations vs size",
            "nodes", "instrs", "iterations", "rounds"
        );
        for p in &stats.scatter {
            println!(
                "{:>8} {:>8} {:>12} {:>8}",
                p.nodes, p.instrs, p.iterations, p.rounds
            );
        }
    }
}

fn u(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// Renders an `am-stats/v1` document (the `amclient stats --json` output).
fn print_stats_doc(path: &str, doc: &Json) {
    println!("live stats ({path})");
    println!(
        "  uptime: {}   workers: {}   connections: {} open / {} total",
        fmt_micros(u(doc, "uptime_micros")),
        u(doc, "workers"),
        u(doc, "connections_open"),
        u(doc, "connections_total"),
    );
    if let Some(r) = doc.get("requests") {
        println!(
            "  requests: optimize {}, stats {}, ping {}",
            u(r, "optimize"),
            u(r, "stats"),
            u(r, "ping")
        );
    }
    if let Some(s) = doc.get("sources") {
        println!(
            "  by source: fresh {}, memory {}, disk {}, coalesced {}   busy: {}   errors: {}",
            u(s, "fresh"),
            u(s, "memory"),
            u(s, "disk"),
            u(s, "coalesced"),
            u(doc, "busy"),
            u(doc, "errors"),
        );
    }
    println!(
        "  queue: {} now, {} peak",
        u(doc, "queued_now"),
        u(doc, "queue_peak")
    );
    if let Some(m) = doc.get("memory_cache") {
        println!(
            "  memory cache: {} hits, {} misses, {} evictions, {} entries",
            u(m, "hits"),
            u(m, "misses"),
            u(m, "evictions"),
            u(m, "entries")
        );
    }
    match doc.get("disk_cache") {
        None | Some(Json::Null) => {}
        Some(d) => println!(
            "  disk cache: {} hits, {} misses, {} stores, {} entries, {} bytes",
            u(d, "hits"),
            u(d, "misses"),
            u(d, "stores"),
            u(d, "entries"),
            u(d, "bytes")
        ),
    }
    if let Some(lat) = doc.get("latency") {
        println!();
        println!(
            "  {:<10} {:>7} {:>10} {:>10} {:>10} {:>10}",
            "latency", "count", "p50", "p95", "p99", "max"
        );
        for key in ["request", "queue", "split", "init", "motion", "flush"] {
            if let Some(q) = lat.get(key) {
                println!(
                    "  {key:<10} {:>7} {:>10} {:>10} {:>10} {:>10}",
                    u(q, "count"),
                    fmt_micros(u(q, "p50")),
                    fmt_micros(u(q, "p95")),
                    fmt_micros(u(q, "p99")),
                    fmt_micros(u(q, "max")),
                );
            }
        }
    }
}

fn run(paths: &[String]) -> Result<(), String> {
    let mut stats = OptStats::default();
    let mut traces = 0usize;
    let mut first = true;
    for path in paths {
        match load_input(path)? {
            Input::Trace(events) => {
                stats.fold(&events);
                traces += 1;
            }
            Input::Stats(doc) => {
                if !first {
                    println!();
                }
                first = false;
                print_stats_doc(path, &doc);
            }
        }
    }
    if traces > 0 {
        if !first {
            println!();
        }
        print_report(&stats);
    }
    Ok(())
}

fn parse_f64(name: &str, value: &str) -> Result<f64, String> {
    value
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite() && *v > 0.0)
        .ok_or_else(|| format!("{name} needs a positive number, got \"{value}\""))
}

fn run_regress(args: &[String]) -> Result<bool, String> {
    let mut baseline = None;
    let mut candidate = None;
    let mut kind: Option<String> = None;
    let mut t = Thresholds::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--candidate" => candidate = Some(value("--candidate")?),
            "--kind" => kind = Some(value("--kind")?),
            "--counts-only" => t.counts_only = true,
            "--time-ratio" => t.time_ratio = parse_f64("--time-ratio", &value("--time-ratio")?)?,
            "--time-floor" => t.time_floor = parse_f64("--time-floor", &value("--time-floor")?)?,
            "--count-ratio" => {
                t.count_ratio = parse_f64("--count-ratio", &value("--count-ratio")?)?
            }
            other => return Err(format!("unknown regress option \"{other}\"")),
        }
    }
    let baseline = baseline.ok_or("regress needs --baseline FILE")?;
    let candidate = candidate.ok_or("regress needs --candidate FILE")?;
    if let Some(k) = &kind {
        if k != "dataflow" && k != "service" {
            return Err(format!(
                "--kind must be \"dataflow\" or \"service\", got \"{k}\""
            ));
        }
    }
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        regress::load_doc(&text, kind.as_deref()).map_err(|e| format!("{path}: {e}"))
    };
    let report = regress::compare(&load(&baseline)?, &load(&candidate)?, &t)?;
    print!("{}", report.render());
    Ok(report.ok())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        usage();
    }
    let outcome = if args[0] == "regress" {
        run_regress(&args[1..]).map(|ok| {
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        })
    } else {
        run(&args).map(|()| ExitCode::SUCCESS)
    };
    match outcome {
        Ok(code) => code,
        Err(message) => {
            eprintln!("amstat: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_trace::event::{Event, EventKind};
    use am_trace::export::jsonl;

    fn span(name: &str, dur: u64) -> Event {
        Event {
            name: name.to_owned(),
            cat: "phase".to_owned(),
            kind: EventKind::Span { dur_micros: dur },
            ts_micros: 0,
            tid: 1,
            depth: 1,
            args: Vec::new(),
        }
    }

    fn temp_file(tag: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("amstat_test_{tag}_{}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn multiple_trace_files_merge_into_one_aggregate() {
        let a = temp_file("a.jsonl", &jsonl(&[span("motion", 100)]));
        let b = temp_file("b.jsonl", &jsonl(&[span("motion", 300), span("flush", 7)]));
        let mut stats = OptStats::default();
        for path in [&a, &b] {
            match load_input(path.to_str().unwrap()).unwrap() {
                Input::Trace(events) => stats.fold(&events),
                Input::Stats(_) => panic!("trace file parsed as stats doc"),
            }
        }
        assert_eq!(stats.events, 3, "events from both files are counted");
        let motion = &stats.spans["phase/motion"];
        assert_eq!(motion.count, 2, "same span key merges across files");
        assert_eq!(motion.total_micros, 400);
        assert_eq!(motion.max_micros, 300);
        assert_eq!(stats.spans["phase/flush"].count, 1);
        let _ = (std::fs::remove_file(a), std::fs::remove_file(b));
    }

    #[test]
    fn stats_documents_are_detected_not_parsed_as_traces() {
        let doc = r#"{"schema":"am-stats/v1","uptime_micros":5000000,"workers":4}"#;
        let path = temp_file("stats.json", doc);
        match load_input(path.to_str().unwrap()).unwrap() {
            Input::Stats(doc) => {
                assert_eq!(doc.get("workers").and_then(Json::as_u64), Some(4));
            }
            Input::Trace(_) => panic!("stats doc parsed as trace"),
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_and_malformed_inputs_error() {
        let empty = temp_file("empty.jsonl", "\n\n");
        assert!(load_input(empty.to_str().unwrap())
            .unwrap_err()
            .contains("no events"));
        let bad = temp_file("bad.jsonl", "{\"name\": 42}\n");
        let err = load_input(bad.to_str().unwrap()).unwrap_err();
        assert!(err.contains(":1:"), "line number in {err}");
        let _ = (std::fs::remove_file(empty), std::fs::remove_file(bad));
    }
}
