//! `am-obs`: the observability layer of the assignment-motion workspace.
//!
//! Four independent pieces, all zero-dependency (`am-trace` supplies the
//! hand-written JSON reader/writer and the metrics primitives):
//!
//! * [`provenance`] — per-instruction decision records captured while the
//!   optimizer runs: which analysis fact (which bit of which Table 1/2/3
//!   row at which point) justified each elimination, hoist and flush
//!   motion. Exported as JSONL and as a human report naming the paper rule
//!   applied per site (`amopt --explain`).
//! * [`promtext`] — a registry of named counters/gauges/histograms rendered
//!   in the Prometheus text exposition format (0.0.4): `# HELP`/`# TYPE`
//!   lines, label sets, cumulative `_bucket`/`_sum`/`_count` histograms.
//!   `amserve --metrics` serves this over [`httpx`].
//! * [`ring`] — a bounded in-memory ring of per-request span trees, keyed
//!   by client-generated trace ids propagated through the wire protocol
//!   (`amclient trace-tail`).
//! * [`regress`] — the bench-regression sentinel: append-only
//!   `BENCH_history.jsonl` entries and a noise-aware comparator over
//!   `am-bench-dataflow/v1` / `am-bench-service/v1` documents
//!   (`amstat regress`, wired as a CI gate).

#![warn(missing_docs)]

pub mod httpx;
pub mod promtext;
pub mod provenance;
pub mod regress;
pub mod ring;

pub use promtext::Registry;
pub use provenance::{ProvKind, ProvRecord, ProvRecorder};
pub use ring::{TraceEntry, TraceRing};
