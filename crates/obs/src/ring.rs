//! End-to-end request tracing: a bounded in-memory ring of per-request
//! span trees, keyed by client-generated trace ids.
//!
//! `amclient` stamps every optimize request with a trace id; the server
//! links the request's measured stages (queue wait, worker service, and —
//! for fresh runs — the four optimizer phases) into one [`TraceEntry`] and
//! pushes it here. The ring keeps the most recent entries only, so live
//! inspection (`amclient trace-tail`) is O(capacity) memory no matter how
//! long the daemon runs.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

use am_trace::json::{self, Json};

/// Names of the four optimizer phases, in [`TraceEntry::phases`] order.
pub const PHASE_NAMES: [&str; 4] = ["split", "init", "motion", "flush"];

/// One completed request: the linked span tree of its server-side stages.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceEntry {
    /// The client-generated trace id propagated in the wire protocol.
    pub trace_id: String,
    /// The submitted program name.
    pub name: String,
    /// How the request was answered (`fresh`, `memory`, `disk`,
    /// `coalesced`, `busy`, `error`).
    pub source: String,
    /// Microseconds spent queued before a worker picked the job up.
    pub queue_micros: u64,
    /// Microseconds from pickup to answer.
    pub service_micros: u64,
    /// Per-phase optimizer wall time (split/init/motion/flush), for
    /// requests that ran fresh.
    pub phases: Option<[u64; 4]>,
    /// Server-side connection id the request arrived on.
    pub conn: u64,
    /// Server uptime at completion, microseconds.
    pub ts_micros: u64,
}

impl TraceEntry {
    /// The span tree as `(depth, name, micros)` rows, root first.
    pub fn spans(&self) -> Vec<(usize, &'static str, u64)> {
        let mut rows = vec![
            (0, "request", self.queue_micros + self.service_micros),
            (1, "queue", self.queue_micros),
            (1, "service", self.service_micros),
        ];
        if let Some(phases) = &self.phases {
            for (name, &micros) in PHASE_NAMES.iter().zip(phases) {
                rows.push((2, *name, micros));
            }
        }
        rows
    }

    /// Renders the entry as one JSON object (no trailing newline).
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"trace\":");
        json::write_str(out, &self.trace_id);
        out.push_str(",\"name\":");
        json::write_str(out, &self.name);
        out.push_str(",\"source\":");
        json::write_str(out, &self.source);
        let _ = write!(
            out,
            ",\"queue_micros\":{},\"service_micros\":{},\"conn\":{},\"ts_micros\":{}",
            self.queue_micros, self.service_micros, self.conn, self.ts_micros
        );
        if let Some(phases) = &self.phases {
            let _ = write!(
                out,
                ",\"phases\":[{},{},{},{}]",
                phases[0], phases[1], phases[2], phases[3]
            );
        }
        out.push('}');
    }

    /// Parses an entry from a parsed JSON object.
    pub fn from_json(v: &Json) -> Option<TraceEntry> {
        let get_u64 = |key: &str| v.get(key).and_then(Json::as_u64);
        let get_str = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_owned);
        let phases = v.get("phases").and_then(Json::as_arr).and_then(|items| {
            let micros: Vec<u64> = items.iter().filter_map(Json::as_u64).collect();
            <[u64; 4]>::try_from(micros).ok()
        });
        Some(TraceEntry {
            trace_id: get_str("trace")?,
            name: get_str("name")?,
            source: get_str("source")?,
            queue_micros: get_u64("queue_micros")?,
            service_micros: get_u64("service_micros")?,
            phases,
            conn: get_u64("conn").unwrap_or(0),
            ts_micros: get_u64("ts_micros").unwrap_or(0),
        })
    }
}

/// A thread-safe bounded ring of the most recent [`TraceEntry`]s.
pub struct TraceRing {
    capacity: usize,
    entries: Mutex<VecDeque<TraceEntry>>,
    dropped: Mutex<u64>,
}

impl TraceRing {
    /// A ring holding at most `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity: capacity.max(1),
            entries: Mutex::new(VecDeque::new()),
            dropped: Mutex::new(0),
        }
    }

    /// Appends an entry, evicting the oldest when full.
    pub fn push(&self, entry: TraceEntry) {
        let mut entries = self.entries.lock().expect("trace ring poisoned");
        if entries.len() == self.capacity {
            entries.pop_front();
            *self.dropped.lock().expect("trace ring poisoned") += 1;
        }
        entries.push_back(entry);
    }

    /// The newest `limit` entries, oldest first.
    pub fn tail(&self, limit: usize) -> Vec<TraceEntry> {
        let entries = self.entries.lock().expect("trace ring poisoned");
        let skip = entries.len().saturating_sub(limit);
        entries.iter().skip(skip).cloned().collect()
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("trace ring poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted so far (how much history `trace-tail` has missed).
    pub fn dropped(&self) -> u64 {
        *self.dropped.lock().expect("trace ring poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64) -> TraceEntry {
        TraceEntry {
            trace_id: format!("{id:016x}"),
            name: format!("prog_{id}"),
            source: "fresh".into(),
            queue_micros: 10 * id,
            service_micros: 100 * id,
            phases: Some([1, 2, 3, 4]),
            conn: 1,
            ts_micros: 1000 * id,
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let ring = TraceRing::new(3);
        for id in 0..5 {
            ring.push(entry(id));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let tail = ring.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].name, "prog_3");
        assert_eq!(tail[1].name, "prog_4");
        assert_eq!(ring.tail(100).len(), 3, "limit larger than the ring");
    }

    #[test]
    fn entries_round_trip_through_json() {
        for e in [
            entry(7),
            TraceEntry {
                phases: None,
                source: "memory".into(),
                ..entry(8)
            },
        ] {
            let mut out = String::new();
            e.write_json(&mut out);
            let parsed = TraceEntry::from_json(&json::parse(&out).unwrap()).unwrap();
            assert_eq!(parsed, e);
        }
    }

    #[test]
    fn span_tree_links_queue_service_and_phases() {
        let spans = entry(2).spans();
        assert_eq!(spans[0], (0, "request", 220));
        assert_eq!(spans[1], (1, "queue", 20));
        assert_eq!(spans[2], (1, "service", 200));
        assert_eq!(spans[3], (2, "split", 1));
        assert_eq!(spans.len(), 7);
        let cached = TraceEntry {
            phases: None,
            ..entry(2)
        };
        assert_eq!(cached.spans().len(), 3, "no phase children on cache hits");
    }
}
