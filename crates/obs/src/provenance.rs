//! Optimization provenance: one record per individual program
//! transformation, naming the paper rule and the analysis fact that
//! justified it.
//!
//! The optimizer reports *counts* (`MotionStats`, `FlushStats`); provenance
//! records report *sites*. Each elimination, hoist insertion/removal and
//! flush insertion/removal/reconstruction appends one [`ProvRecord`] to the
//! shared [`ProvRecorder`], so the full decision log of a run replays the
//! exact multiset delta between the post-initialization program and the
//! final program — a property the differential test in
//! `crates/pipeline/tests/explain.rs` pins on the whole corpus.
//!
//! Like [`am_trace::Tracer`], the recorder is a cheap cloneable handle that
//! is disabled by default: `record()` on a disabled recorder is one branch,
//! no locking, no formatting, no allocation. Only `amopt --explain` (and
//! tests) enable it.

use std::sync::{Arc, Mutex};

use am_trace::json;

/// What kind of transformation a record documents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProvKind {
    /// An assignment occurrence removed by redundant assignment
    /// elimination (Table 2).
    Eliminate,
    /// An instance inserted by assignment hoisting (Table 1 insertion
    /// points).
    HoistInsert,
    /// A hoisting candidate removed by assignment hoisting (Fig. 13).
    HoistRemove,
    /// An initialization inserted by the final flush (Table 3
    /// initialization points).
    FlushInsert,
    /// An instance removed from its old position by the final flush.
    FlushRemove,
    /// A single-serving use rewritten back to its original term by the
    /// final flush (`RECONSTRUCT`).
    FlushReconstruct,
}

impl ProvKind {
    /// Stable lowercase identifier used in the JSONL export.
    pub fn label(self) -> &'static str {
        match self {
            ProvKind::Eliminate => "eliminate",
            ProvKind::HoistInsert => "hoist-insert",
            ProvKind::HoistRemove => "hoist-remove",
            ProvKind::FlushInsert => "flush-insert",
            ProvKind::FlushRemove => "flush-remove",
            ProvKind::FlushReconstruct => "flush-reconstruct",
        }
    }

    /// The paper rule the transformation applies.
    pub fn rule(self) -> &'static str {
        match self {
            ProvKind::Eliminate => "Table 2: N-REDUNDANT (elimination step, Sec. 4.3.1)",
            ProvKind::HoistInsert => {
                "Table 1: N-INSERT/X-INSERT of the greatest hoistability solution (Sec. 4.3.2)"
            }
            ProvKind::HoistRemove => {
                "Fig. 13: first unblocked occurrence is the hoisting candidate"
            }
            ProvKind::FlushInsert => "Table 3: N-INIT/X-INIT = LATEST · X-USABLE* (Sec. 4.4)",
            ProvKind::FlushRemove => "Table 3: IS-INST removed, re-placed at latest points",
            ProvKind::FlushReconstruct => "Table 3: RECONSTRUCT = USED · N-LATEST · ¬X-USABLE*",
        }
    }

    /// Net effect on the instruction multiset: how many copies of
    /// [`ProvRecord::instr`] the transformation adds (+1) or removes (−1).
    /// Reconstructions remove `instr` and add [`ProvRecord::new_instr`].
    pub fn delta(self) -> i64 {
        match self {
            ProvKind::HoistInsert | ProvKind::FlushInsert => 1,
            ProvKind::Eliminate
            | ProvKind::HoistRemove
            | ProvKind::FlushRemove
            | ProvKind::FlushReconstruct => -1,
        }
    }
}

/// One provenance record: a single transformation at a single site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvRecord {
    /// The transformation kind (also determines the paper rule).
    pub kind: ProvKind,
    /// The optimizer phase (`"motion"` or `"flush"`).
    pub phase: &'static str,
    /// The 1-based motion round, 0 for the flush.
    pub round: u32,
    /// Label of the block the site sits in.
    pub node: String,
    /// Instruction index within the block at the time of the
    /// transformation (`None` for block-entry/exit insertions).
    pub index: Option<u32>,
    /// Display text of the instruction removed, inserted, or (for
    /// reconstructions) replaced.
    pub instr: String,
    /// The rewritten instruction, for reconstructions only.
    pub new_instr: Option<String>,
    /// The analysis bit (pattern index in the round's universe) the
    /// decision keyed on, when the transformation is pattern-indexed.
    pub pattern: Option<u32>,
    /// The hash-consed instruction id (`am_ir::intern::InstrId`) of the
    /// site, when the capturing pass had one at hand.
    pub instr_id: Option<u32>,
    /// Which analysis fact justified the decision, in the paper's terms.
    pub justification: String,
}

impl ProvRecord {
    /// Renders the record as one JSON object (no trailing newline).
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("{\"kind\":");
        json::write_str(out, self.kind.label());
        out.push_str(",\"phase\":");
        json::write_str(out, self.phase);
        let _ = write!(out, ",\"round\":{}", self.round);
        out.push_str(",\"node\":");
        json::write_str(out, &self.node);
        if let Some(index) = self.index {
            let _ = write!(out, ",\"index\":{index}");
        }
        out.push_str(",\"instr\":");
        json::write_str(out, &self.instr);
        if let Some(new_instr) = &self.new_instr {
            out.push_str(",\"new_instr\":");
            json::write_str(out, new_instr);
        }
        if let Some(pattern) = self.pattern {
            let _ = write!(out, ",\"pattern\":{pattern}");
        }
        if let Some(id) = self.instr_id {
            let _ = write!(out, ",\"instr_id\":{id}");
        }
        out.push_str(",\"rule\":");
        json::write_str(out, self.kind.rule());
        out.push_str(",\"justification\":");
        json::write_str(out, &self.justification);
        out.push('}');
    }
}

/// A cheap cloneable handle collecting provenance records.
///
/// Mirrors [`am_trace::Tracer`]: disabled by default (no allocation, one
/// branch per potential record), enabled handles share one `Vec` behind a
/// mutex so the capture sites inside the optimizer need no plumbing beyond
/// a clone of the handle.
#[derive(Clone, Default)]
pub struct ProvRecorder {
    sink: Option<Arc<Mutex<Vec<ProvRecord>>>>,
}

impl std::fmt::Debug for ProvRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProvRecorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl ProvRecorder {
    /// The disabled recorder: records are dropped on one branch.
    pub fn disabled() -> Self {
        ProvRecorder { sink: None }
    }

    /// A recording handle; clones share the same record log.
    pub fn enabled() -> Self {
        ProvRecorder {
            sink: Some(Arc::new(Mutex::new(Vec::new()))),
        }
    }

    /// Whether records are kept. Capture sites must check this before
    /// formatting instruction text, so the disabled path stays one branch.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Appends one record (a no-op when disabled).
    pub fn record(&self, record: ProvRecord) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("provenance sink poisoned").push(record);
        }
    }

    /// Takes every record collected so far, leaving the log empty.
    pub fn take(&self) -> Vec<ProvRecord> {
        match &self.sink {
            Some(sink) => std::mem::take(&mut *sink.lock().expect("provenance sink poisoned")),
            None => Vec::new(),
        }
    }
}

/// Renders records as JSONL, one object per line (the `--explain` export).
pub fn jsonl(records: &[ProvRecord]) -> String {
    let mut out = String::new();
    for record in records {
        record.write_json(&mut out);
        out.push('\n');
    }
    out
}

/// Renders records as a human report: sites grouped by phase and round,
/// each line naming the transformation, the site and the paper rule.
pub fn report(records: &[ProvRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if records.is_empty() {
        out.push_str("no transformations recorded\n");
        return out;
    }
    let mut counts: Vec<(ProvKind, usize)> = Vec::new();
    for record in records {
        match counts.iter_mut().find(|(k, _)| *k == record.kind) {
            Some((_, n)) => *n += 1,
            None => counts.push((record.kind, 1)),
        }
    }
    let _ = writeln!(out, "{} transformations:", records.len());
    for (kind, n) in &counts {
        let _ = writeln!(out, "  {:>5} {:<17} {}", n, kind.label(), kind.rule());
    }
    let mut header: Option<(&'static str, u32)> = None;
    for record in records {
        let here = (record.phase, record.round);
        if header != Some(here) {
            header = Some(here);
            if record.round > 0 {
                let _ = writeln!(out, "\n{} round {}:", record.phase, record.round);
            } else {
                let _ = writeln!(out, "\n{}:", record.phase);
            }
        }
        let site = match record.index {
            Some(index) => format!("node {} [{}]", record.node, index),
            None => format!("node {}", record.node),
        };
        match &record.new_instr {
            Some(new_instr) => {
                let _ = writeln!(
                    out,
                    "  {:<17} {:<16} {} -> {}  ({})",
                    record.kind.label(),
                    site,
                    record.instr,
                    new_instr,
                    record.justification
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {:<17} {:<16} {}  ({})",
                    record.kind.label(),
                    site,
                    record.instr,
                    record.justification
                );
            }
        }
    }
    out
}

/// Parses one line of the JSONL export back into a record (used by the
/// differential test to replay a decision log from disk).
pub fn parse_jsonl_line(line: &str) -> Result<ProvRecord, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let kind_label = v
        .get("kind")
        .and_then(|k| k.as_str())
        .ok_or("missing kind")?;
    let kind = [
        ProvKind::Eliminate,
        ProvKind::HoistInsert,
        ProvKind::HoistRemove,
        ProvKind::FlushInsert,
        ProvKind::FlushRemove,
        ProvKind::FlushReconstruct,
    ]
    .into_iter()
    .find(|k| k.label() == kind_label)
    .ok_or_else(|| format!("unknown kind '{kind_label}'"))?;
    let phase = match v.get("phase").and_then(|p| p.as_str()) {
        Some("motion") => "motion",
        Some("flush") => "flush",
        other => return Err(format!("unknown phase {other:?}")),
    };
    let get_str = |key: &str| v.get(key).and_then(|s| s.as_str()).map(str::to_owned);
    let get_u32 = |key: &str| v.get(key).and_then(|n| n.as_u64()).map(|n| n as u32);
    Ok(ProvRecord {
        kind,
        phase,
        round: get_u32("round").ok_or("missing round")?,
        node: get_str("node").ok_or("missing node")?,
        index: get_u32("index"),
        instr: get_str("instr").ok_or("missing instr")?,
        new_instr: get_str("new_instr"),
        pattern: get_u32("pattern"),
        instr_id: get_u32("instr_id"),
        justification: get_str("justification").ok_or("missing justification")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProvRecord {
        ProvRecord {
            kind: ProvKind::Eliminate,
            phase: "motion",
            round: 2,
            node: "loop.head".into(),
            index: Some(3),
            instr: "x := a+b".into(),
            new_instr: None,
            pattern: Some(1),
            instr_id: Some(42),
            justification: "N-REDUNDANT[p] bit 1 at block entry".into(),
        }
    }

    #[test]
    fn disabled_recorder_drops_records() {
        let rec = ProvRecorder::disabled();
        assert!(!rec.is_enabled());
        rec.record(sample());
        assert!(rec.take().is_empty());
    }

    #[test]
    fn enabled_recorder_shares_the_log_across_clones() {
        let rec = ProvRecorder::enabled();
        assert!(rec.is_enabled());
        let clone = rec.clone();
        clone.record(sample());
        rec.record(ProvRecord {
            kind: ProvKind::FlushReconstruct,
            round: 0,
            phase: "flush",
            new_instr: Some("x := a+b".into()),
            instr: "x := h1".into(),
            ..sample()
        });
        let records = rec.take();
        assert_eq!(records.len(), 2);
        assert!(rec.take().is_empty(), "take drains the log");
    }

    #[test]
    fn jsonl_round_trips() {
        let records = vec![
            sample(),
            ProvRecord {
                kind: ProvKind::FlushReconstruct,
                phase: "flush",
                round: 0,
                node: "4".into(),
                index: None,
                instr: "x := h1".into(),
                new_instr: Some("x := c+d".into()),
                pattern: Some(0),
                instr_id: None,
                justification: "USED · N-LATEST · ¬X-USABLE*".into(),
            },
        ];
        let text = jsonl(&records);
        let parsed: Vec<ProvRecord> = text.lines().map(|l| parse_jsonl_line(l).unwrap()).collect();
        assert_eq!(parsed, records);
    }

    #[test]
    fn report_names_the_rule_per_site() {
        let text = report(&[sample()]);
        assert!(text.contains("eliminate"), "{text}");
        assert!(text.contains("x := a+b"), "{text}");
        assert!(text.contains("motion round 2"), "{text}");
        assert!(text.contains("N-REDUNDANT"), "{text}");
    }

    #[test]
    fn deltas_balance_for_reconstructions() {
        assert_eq!(ProvKind::HoistInsert.delta(), 1);
        assert_eq!(ProvKind::Eliminate.delta(), -1);
        assert_eq!(ProvKind::FlushReconstruct.delta(), -1);
    }
}
