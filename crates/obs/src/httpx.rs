//! A minimal HTTP/1.1 exchange, std-only — just enough to serve the
//! Prometheus scrape endpoint and for `amclient metrics` to fetch it.
//!
//! The server side parses a request head (method + path, headers skipped)
//! and writes a `Connection: close` response; the client side writes a
//! plain `GET` and splits the response at the blank line. No keep-alive, no
//! chunked encoding, no TLS — scrapers speak this subset happily and the
//! listener closes each connection after one exchange.

use std::io::{Read, Write};

/// A parsed request head.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The method (`GET`, `HEAD`, ...), uppercase as sent.
    pub method: String,
    /// The request target (`/metrics`), query string included.
    pub path: String,
}

/// Reads and parses one request head from `stream` (headers and any body
/// are read until the blank line and discarded). Returns `None` on
/// malformed input or a closed connection.
pub fn read_request(stream: &mut dyn Read) -> Option<Request> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // Read byte-wise until CRLFCRLF (or LFLF); request heads are tiny and
    // the listener serves one exchange per connection.
    while !head.ends_with(b"\r\n\r\n") && !head.ends_with(b"\n\n") {
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => return None,
        }
        if head.len() > 8192 {
            return None;
        }
    }
    let head = std::str::from_utf8(&head).ok()?;
    let line = head.lines().next()?;
    let mut parts = line.split_ascii_whitespace();
    let method = parts.next()?.to_owned();
    let path = parts.next()?.to_owned();
    let version = parts.next()?;
    version
        .starts_with("HTTP/1.")
        .then_some(Request { method, path })
}

/// Writes a complete response with the given status line suffix (e.g.
/// `200 OK`), content type and body, then flushes.
pub fn write_response(
    stream: &mut dyn Write,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Performs one `GET path` exchange over an already-connected stream and
/// returns `(status line, body)`.
pub fn get<S: Read + Write>(stream: &mut S, path: &str) -> std::io::Result<(String, String)> {
    let request = format!("GET {path} HTTP/1.1\r\nHost: amserve\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let text = String::from_utf8_lossy(&response);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .or_else(|| text.split_once("\n\n"))
        .unwrap_or((&text, ""));
    let status = head.lines().next().unwrap_or("").to_owned();
    Ok((status, body.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_request_head() {
        let mut input: &[u8] =
            b"GET /metrics?x=1 HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n";
        let request = read_request(&mut input).unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/metrics?x=1");
    }

    #[test]
    fn rejects_garbage() {
        let mut input: &[u8] = b"not http at all\r\n\r\n";
        assert_eq!(read_request(&mut input), None);
        let mut truncated: &[u8] = b"GET /metrics HTTP/1.1\r\n";
        assert_eq!(read_request(&mut truncated), None);
    }

    #[test]
    fn response_round_trips_through_get() {
        // Serve into a buffer, then parse that buffer as the client.
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            "200 OK",
            "text/plain; version=0.0.4",
            "am_up 1\n",
        )
        .unwrap();
        struct Fake {
            reply: std::io::Cursor<Vec<u8>>,
        }
        impl Read for Fake {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.reply.read(buf)
            }
        }
        impl Write for Fake {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut fake = Fake {
            reply: std::io::Cursor::new(wire),
        };
        let (status, body) = get(&mut fake, "/metrics").unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "am_up 1\n");
    }
}
