//! Prometheus text exposition (format 0.0.4), hand-written.
//!
//! A [`Registry`] collects one snapshot of named metric families —
//! counters, gauges and histograms — and renders them as the plain-text
//! format every Prometheus-compatible scraper understands: a `# HELP` and
//! `# TYPE` line per family, one sample line per label set, and cumulative
//! `_bucket`/`_sum`/`_count` series for histograms.
//!
//! Histograms are built directly from [`am_trace::DurStats`]: the log₂
//! latency buckets the tracer already maintains become cumulative
//! `le`-labeled buckets in seconds, so `amserve --metrics` exposes the same
//! distribution `amclient stats` prints, with no second recording path.

use std::fmt::Write as _;

use am_trace::stats::HISTOGRAM_BUCKETS;
use am_trace::DurStats;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Sample {
    /// A plain value with its label set.
    Value(Vec<(String, String)>, f64),
    /// A histogram with its label set.
    Hist(Vec<(String, String)>, Box<DurStats>),
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    samples: Vec<Sample>,
}

/// One metrics snapshot, rendered with [`Registry::render`].
#[derive(Default)]
pub struct Registry {
    families: Vec<Family>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn family(&mut self, name: &str, help: &str, kind: Kind) -> &mut Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            debug_assert!(self.families[i].kind == kind, "kind clash for {name}");
            return &mut self.families[i];
        }
        self.families.push(Family {
            name: name.to_owned(),
            help: help.to_owned(),
            kind,
            samples: Vec::new(),
        });
        self.families.last_mut().expect("just pushed")
    }

    fn owned(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    /// Adds a monotone counter sample (repeat with different labels to
    /// grow the family).
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.family(name, help, Kind::Counter)
            .samples
            .push(Sample::Value(Self::owned(labels), value as f64));
    }

    /// Adds a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.family(name, help, Kind::Gauge)
            .samples
            .push(Sample::Value(Self::owned(labels), value));
    }

    /// Adds a latency histogram built from a [`DurStats`] (microsecond
    /// samples exposed as seconds, per Prometheus convention).
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], d: &DurStats) {
        self.family(name, help, Kind::Histogram)
            .samples
            .push(Sample::Hist(Self::owned(labels), Box::new(d.clone())));
    }

    /// Renders the whole snapshot in the text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.label());
            for sample in &family.samples {
                match sample {
                    Sample::Value(labels, value) => {
                        out.push_str(&family.name);
                        write_labels(&mut out, labels, None);
                        out.push(' ');
                        write_value(&mut out, *value);
                        out.push('\n');
                    }
                    Sample::Hist(labels, d) => write_histogram(&mut out, &family.name, labels, d),
                }
            }
        }
        out
    }
}

/// Writes `{k="v",...}` (with `le` appended when given); nothing for an
/// empty label set without `le`.
fn write_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (key, value) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(key);
        out.push_str("=\"");
        for ch in value.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

fn write_value(out: &mut String, value: f64) {
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        let _ = write!(out, "{}", value as i64);
    } else {
        let _ = write!(out, "{value}");
    }
}

/// Cumulative buckets from the log₂ histogram: bucket `i ≥ 1` of
/// [`am_trace::Histogram`] holds durations in `[2^(i-1), 2^i)` µs, so its
/// inclusive upper bound is `(2^i - 1)` µs, rendered in seconds. Buckets
/// past the last sample are folded into `+Inf`.
fn write_histogram(out: &mut String, name: &str, labels: &[(String, String)], d: &DurStats) {
    let mut cumulative = 0u64;
    for (i, &n) in d.histogram.buckets.iter().enumerate() {
        cumulative += n;
        let le_micros = if i == 0 { 0 } else { (1u64 << i) - 1 };
        let le = format_le_seconds(le_micros);
        out.push_str(name);
        out.push_str("_bucket");
        write_labels(out, labels, Some(&le));
        let _ = writeln!(out, " {cumulative}");
        if cumulative == d.count && i + 1 < HISTOGRAM_BUCKETS && i >= 14 {
            // All samples covered and sub-second bounds emitted: the
            // remaining empty powers of two fold into +Inf.
            break;
        }
    }
    out.push_str(name);
    out.push_str("_bucket");
    write_labels(out, labels, Some("+Inf"));
    let _ = writeln!(out, " {}", d.count);
    out.push_str(name);
    out.push_str("_sum");
    write_labels(out, labels, None);
    let _ = writeln!(out, " {}", d.total_micros as f64 / 1e6);
    out.push_str(name);
    out.push_str("_count");
    write_labels(out, labels, None);
    let _ = writeln!(out, " {}", d.count);
}

fn format_le_seconds(micros: u64) -> String {
    let seconds = micros as f64 / 1e6;
    if seconds.fract() == 0.0 && seconds.abs() < 9.0e15 {
        format!("{}", seconds as i64)
    } else {
        format!("{seconds}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_with_labels() {
        let mut r = Registry::new();
        r.counter(
            "am_requests_total",
            "Requests by verb.",
            &[("verb", "ping")],
            3,
        );
        r.counter(
            "am_requests_total",
            "Requests by verb.",
            &[("verb", "optimize")],
            17,
        );
        r.gauge("am_queue_depth", "Queued jobs now.", &[], 2.0);
        let text = r.render();
        assert!(text.contains("# HELP am_requests_total Requests by verb.\n"));
        assert!(text.contains("# TYPE am_requests_total counter\n"));
        assert!(text.contains("am_requests_total{verb=\"ping\"} 3\n"));
        assert!(text.contains("am_requests_total{verb=\"optimize\"} 17\n"));
        assert!(text.contains("# TYPE am_queue_depth gauge\n"));
        assert!(text.contains("am_queue_depth 2\n"));
        // One HELP/TYPE pair per family, not per sample.
        assert_eq!(text.matches("# TYPE am_requests_total").count(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let mut d = DurStats::default();
        for v in [1u64, 2, 3, 1000] {
            d.record(v);
        }
        let mut r = Registry::new();
        r.histogram("am_lat_seconds", "Latency.", &[("phase", "motion")], &d);
        let text = r.render();
        assert!(text.contains("# TYPE am_lat_seconds histogram\n"));
        assert!(
            text.contains("am_lat_seconds_bucket{phase=\"motion\",le=\"+Inf\"} 4\n"),
            "{text}"
        );
        assert!(text.contains("am_lat_seconds_count{phase=\"motion\"} 4\n"));
        assert!(text.contains("am_lat_seconds_sum{phase=\"motion\"} 0.001006\n"));
        // Bucket counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "non-monotone: {line}");
            last = count;
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let mut r = Registry::new();
        r.gauge("g", "h", &[("k", "a\"b\\c\nd")], 1.0);
        assert!(r.render().contains("g{k=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn empty_histogram_is_well_formed() {
        let mut r = Registry::new();
        r.histogram("h_seconds", "Empty.", &[], &DurStats::default());
        let text = r.render();
        assert!(text.contains("h_seconds_bucket{le=\"+Inf\"} 0\n"), "{text}");
        assert!(text.contains("h_seconds_count 0\n"));
        assert!(text.contains("h_seconds_sum 0\n"));
    }
}
