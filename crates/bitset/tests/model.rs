//! Model-based property tests: `BitSet` against `std::collections::BTreeSet`.

use std::collections::BTreeSet;

use am_bitset::{BitMatrix, BitSet};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert(usize),
    Remove(usize),
    Clear,
    InsertAll,
    UnionWith(Vec<usize>),
    IntersectWith(Vec<usize>),
    DifferenceWith(Vec<usize>),
}

fn op_strategy(universe: usize) -> impl Strategy<Value = Op> {
    let bit = 0..universe;
    let bits = proptest::collection::vec(0..universe, 0..8);
    prop_oneof![
        bit.clone().prop_map(Op::Insert),
        bit.prop_map(Op::Remove),
        Just(Op::Clear),
        Just(Op::InsertAll),
        bits.clone().prop_map(Op::UnionWith),
        bits.clone().prop_map(Op::IntersectWith),
        bits.prop_map(Op::DifferenceWith),
    ]
}

fn other_set(universe: usize, bits: &[usize]) -> (BitSet, BTreeSet<usize>) {
    let mut s = BitSet::new(universe);
    let mut m = BTreeSet::new();
    for &b in bits {
        s.insert(b);
        m.insert(b);
    }
    (s, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn operations_match_the_model(
        ops in proptest::collection::vec(op_strategy(130), 1..40),
    ) {
        let universe = 130;
        let mut set = BitSet::new(universe);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for op in ops {
            match op {
                Op::Insert(b) => {
                    let changed = set.insert(b);
                    prop_assert_eq!(changed, model.insert(b));
                }
                Op::Remove(b) => {
                    let changed = set.remove(b);
                    prop_assert_eq!(changed, model.remove(&b));
                }
                Op::Clear => {
                    set.clear();
                    model.clear();
                }
                Op::InsertAll => {
                    set.insert_all();
                    model = (0..universe).collect();
                }
                Op::UnionWith(bits) => {
                    let (other, other_model) = other_set(universe, &bits);
                    set.union_with(&other);
                    model = model.union(&other_model).copied().collect();
                }
                Op::IntersectWith(bits) => {
                    let (other, other_model) = other_set(universe, &bits);
                    set.intersect_with(&other);
                    model = model.intersection(&other_model).copied().collect();
                }
                Op::DifferenceWith(bits) => {
                    let (other, other_model) = other_set(universe, &bits);
                    set.difference_with(&other);
                    model = model.difference(&other_model).copied().collect();
                }
            }
            // Invariants after every step.
            prop_assert_eq!(set.count(), model.len());
            prop_assert_eq!(set.is_empty(), model.is_empty());
            let elems: Vec<usize> = set.iter().collect();
            let expected: Vec<usize> = model.iter().copied().collect();
            prop_assert_eq!(elems, expected);
        }
    }

    #[test]
    fn subset_and_disjoint_match_the_model(
        a in proptest::collection::vec(0usize..90, 0..20),
        b in proptest::collection::vec(0usize..90, 0..20),
    ) {
        let (sa, ma) = other_set(90, &a);
        let (sb, mb) = other_set(90, &b);
        prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
        prop_assert_eq!(sa.is_disjoint(&sb), ma.is_disjoint(&mb));
    }

    #[test]
    fn matrix_rows_behave_like_independent_sets(
        rows in 1usize..6,
        cols in 1usize..100,
        writes in proptest::collection::vec((0usize..6, 0usize..100), 0..40),
    ) {
        let mut m = BitMatrix::new(rows, cols);
        let mut model: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); rows];
        for (r, c) in writes {
            let (r, c) = (r % rows, c % cols);
            m.insert(r, c);
            model[r].insert(c);
        }
        for (r, row_model) in model.iter().enumerate() {
            let row: Vec<usize> = m.iter_row(r).collect();
            let expected: Vec<usize> = row_model.iter().copied().collect();
            prop_assert_eq!(row, expected);
        }
    }

    #[test]
    fn copy_from_round_trips(bits in proptest::collection::vec(0usize..70, 0..30)) {
        let (src, _) = other_set(70, &bits);
        let mut dst = BitSet::new(70);
        dst.copy_from(&src);
        prop_assert_eq!(&dst, &src);
        prop_assert!(!dst.copy_from(&src), "second copy reports no change");
    }
}
