//! Model-based property tests: `BitSet` against `std::collections::BTreeSet`.
//!
//! Randomized with an inline SplitMix64 stream (am-bitset is a leaf crate
//! with no dependencies, so the generator lives here); every case derives
//! from a fixed seed and reproduces deterministically.

use std::collections::BTreeSet;

use am_bitset::{BitMatrix, BitSet};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn bits(&mut self, universe: usize, max_len: usize) -> Vec<usize> {
        let n = self.below(max_len);
        (0..n).map(|_| self.below(universe)).collect()
    }
}

#[derive(Clone, Debug)]
enum Op {
    Insert(usize),
    Remove(usize),
    Clear,
    InsertAll,
    UnionWith(Vec<usize>),
    IntersectWith(Vec<usize>),
    DifferenceWith(Vec<usize>),
}

fn random_op(rng: &mut Rng, universe: usize) -> Op {
    match rng.below(7) {
        0 => Op::Insert(rng.below(universe)),
        1 => Op::Remove(rng.below(universe)),
        2 => Op::Clear,
        3 => Op::InsertAll,
        4 => Op::UnionWith(rng.bits(universe, 8)),
        5 => Op::IntersectWith(rng.bits(universe, 8)),
        _ => Op::DifferenceWith(rng.bits(universe, 8)),
    }
}

fn other_set(universe: usize, bits: &[usize]) -> (BitSet, BTreeSet<usize>) {
    let mut s = BitSet::new(universe);
    let mut m = BTreeSet::new();
    for &b in bits {
        s.insert(b);
        m.insert(b);
    }
    (s, m)
}

#[test]
fn operations_match_the_model() {
    let mut rng = Rng(0xB17_5E7);
    for case in 0..256 {
        let universe = 130;
        let mut set = BitSet::new(universe);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        let steps = 1 + rng.below(39);
        for _ in 0..steps {
            let op = random_op(&mut rng, universe);
            match op.clone() {
                Op::Insert(b) => {
                    let changed = set.insert(b);
                    assert_eq!(changed, model.insert(b), "case {case} {op:?}");
                }
                Op::Remove(b) => {
                    let changed = set.remove(b);
                    assert_eq!(changed, model.remove(&b), "case {case} {op:?}");
                }
                Op::Clear => {
                    set.clear();
                    model.clear();
                }
                Op::InsertAll => {
                    set.insert_all();
                    model = (0..universe).collect();
                }
                Op::UnionWith(bits) => {
                    let (other, other_model) = other_set(universe, &bits);
                    set.union_with(&other);
                    model = model.union(&other_model).copied().collect();
                }
                Op::IntersectWith(bits) => {
                    let (other, other_model) = other_set(universe, &bits);
                    set.intersect_with(&other);
                    model = model.intersection(&other_model).copied().collect();
                }
                Op::DifferenceWith(bits) => {
                    let (other, other_model) = other_set(universe, &bits);
                    set.difference_with(&other);
                    model = model.difference(&other_model).copied().collect();
                }
            }
            // Invariants after every step.
            assert_eq!(set.count(), model.len(), "case {case} {op:?}");
            assert_eq!(set.is_empty(), model.is_empty(), "case {case} {op:?}");
            let elems: Vec<usize> = set.iter().collect();
            let expected: Vec<usize> = model.iter().copied().collect();
            assert_eq!(elems, expected, "case {case} {op:?}");
        }
    }
}

#[test]
fn subset_and_disjoint_match_the_model() {
    let mut rng = Rng(0x5B5E7);
    for case in 0..256 {
        let a = rng.bits(90, 20);
        let b = rng.bits(90, 20);
        let (sa, ma) = other_set(90, &a);
        let (sb, mb) = other_set(90, &b);
        assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb), "case {case}");
        assert_eq!(sa.is_disjoint(&sb), ma.is_disjoint(&mb), "case {case}");
    }
}

#[test]
fn matrix_rows_behave_like_independent_sets() {
    let mut rng = Rng(0x3A721);
    for case in 0..256 {
        let rows = 1 + rng.below(5);
        let cols = 1 + rng.below(99);
        let mut m = BitMatrix::new(rows, cols);
        let mut model: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); rows];
        for _ in 0..rng.below(40) {
            let (r, c) = (rng.below(rows), rng.below(cols));
            m.insert(r, c);
            model[r].insert(c);
        }
        for (r, row_model) in model.iter().enumerate() {
            let row: Vec<usize> = m.iter_row(r).collect();
            let expected: Vec<usize> = row_model.iter().copied().collect();
            assert_eq!(row, expected, "case {case} row {r}");
        }
    }
}

#[test]
fn copy_from_round_trips() {
    let mut rng = Rng(0xC0B1E5);
    for case in 0..256 {
        let bits = rng.bits(70, 30);
        let (src, _) = other_set(70, &bits);
        let mut dst = BitSet::new(70);
        dst.copy_from(&src);
        assert_eq!(&dst, &src, "case {case}");
        assert!(
            !dst.copy_from(&src),
            "second copy reports no change (case {case})"
        );
    }
}
