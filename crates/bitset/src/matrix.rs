use std::fmt;

use crate::set::BitSet;
use crate::{tail_mask, words_for, WORD_BITS};

/// A rectangular array of bit rows over a shared column universe.
///
/// Data-flow solvers keep one row per program point; storing the rows
/// contiguously avoids one allocation per point and keeps the whole solver
/// state cache-friendly.
///
/// # Examples
///
/// ```
/// use am_bitset::BitMatrix;
///
/// let mut m = BitMatrix::new(3, 10);
/// m.insert(0, 7);
/// m.insert(2, 7);
/// assert!(m.contains(0, 7));
/// assert!(!m.contains(1, 7));
/// assert_eq!(m.row(2).iter().collect::<Vec<_>>(), vec![7]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    row_words: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero matrix with `rows` rows and `cols` columns.
    pub fn new(rows: usize, cols: usize) -> Self {
        let row_words = words_for(cols);
        BitMatrix {
            rows,
            cols,
            row_words,
            words: vec![0; rows * row_words],
        }
    }

    /// Creates an all-one matrix (every in-universe bit set).
    pub fn full(rows: usize, cols: usize) -> Self {
        let mut m = BitMatrix::new(rows, cols);
        m.words.iter_mut().for_each(|w| *w = u64::MAX);
        let mask = tail_mask(cols);
        if m.row_words > 0 {
            for r in 0..rows {
                let end = (r + 1) * m.row_words - 1;
                m.words[end] &= mask;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the universe size of each row).
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn range(&self, row: usize) -> std::ops::Range<usize> {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        row * self.row_words..(row + 1) * self.row_words
    }

    /// Tests the bit at (`row`, `col`).
    pub fn contains(&self, row: usize, col: usize) -> bool {
        assert!(col < self.cols, "col {col} out of range {}", self.cols);
        let r = self.range(row);
        self.words[r][col / WORD_BITS] & (1 << (col % WORD_BITS)) != 0
    }

    /// Sets the bit at (`row`, `col`); returns `true` if the matrix changed.
    pub fn insert(&mut self, row: usize, col: usize) -> bool {
        assert!(col < self.cols, "col {col} out of range {}", self.cols);
        let r = self.range(row);
        let w = &mut self.words[r][col / WORD_BITS];
        let mask = 1 << (col % WORD_BITS);
        let changed = *w & mask == 0;
        *w |= mask;
        changed
    }

    /// Clears the bit at (`row`, `col`); returns `true` if the matrix changed.
    pub fn remove(&mut self, row: usize, col: usize) -> bool {
        assert!(col < self.cols, "col {col} out of range {}", self.cols);
        let r = self.range(row);
        let w = &mut self.words[r][col / WORD_BITS];
        let mask = 1 << (col % WORD_BITS);
        let changed = *w & mask != 0;
        *w &= !mask;
        changed
    }

    /// Copies row `row` out into an owned [`BitSet`].
    pub fn row(&self, row: usize) -> BitSet {
        let mut set = BitSet::new(self.cols);
        for col in self.iter_row(row) {
            set.insert(col);
        }
        set
    }

    /// Overwrites row `row` with `set`; returns `true` if the row changed.
    ///
    /// # Panics
    ///
    /// Panics if `set.len() != self.cols()`.
    pub fn set_row(&mut self, row: usize, set: &BitSet) -> bool {
        assert_eq!(set.len(), self.cols, "row universe mismatch");
        let mut changed = false;
        let r = self.range(row);
        let words = &mut self.words[r];
        let mut fresh = vec![0u64; words.len()];
        for col in set.iter() {
            fresh[col / WORD_BITS] |= 1 << (col % WORD_BITS);
        }
        for (dst, src) in words.iter_mut().zip(&fresh) {
            changed |= *dst != *src;
            *dst = *src;
        }
        changed
    }

    /// `rows[dst] ∪= rows[src]`; returns `true` if row `dst` changed.
    pub fn union_rows(&mut self, dst: usize, src: usize) -> bool {
        self.combine_rows(dst, src, |a, b| a | b)
    }

    /// `rows[dst] ∩= rows[src]`; returns `true` if row `dst` changed.
    pub fn intersect_rows(&mut self, dst: usize, src: usize) -> bool {
        self.combine_rows(dst, src, |a, b| a & b)
    }

    fn combine_rows(&mut self, dst: usize, src: usize, f: impl Fn(u64, u64) -> u64) -> bool {
        let dst_range = self.range(dst);
        let src_range = self.range(src);
        let mut changed = false;
        if dst == src {
            return false;
        }
        // Split the storage so we can borrow the two rows simultaneously.
        let (lo, hi, dst_first) = if dst_range.start < src_range.start {
            (dst_range, src_range, true)
        } else {
            (src_range, dst_range, false)
        };
        let (head, tail) = self.words.split_at_mut(hi.start);
        let lo_row = &mut head[lo];
        let hi_row = &mut tail[..lo_row.len()];
        let (d, s): (&mut [u64], &[u64]) = if dst_first {
            (lo_row, hi_row)
        } else {
            (hi_row, lo_row)
        };
        for (a, b) in d.iter_mut().zip(s) {
            let new = f(*a, *b);
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Iterates over the set columns of `row` in increasing order.
    pub fn iter_row(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let r = self.range(row);
        self.words[r].iter().enumerate().flat_map(|(wi, &w)| {
            (0..WORD_BITS).filter_map(move |b| (w & (1 << b) != 0).then_some(wi * WORD_BITS + b))
        })
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut dbg = f.debug_map();
        for r in 0..self.rows {
            dbg.entry(&r, &self.row(r));
        }
        dbg.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_matrix_is_zero() {
        let m = BitMatrix::new(4, 100);
        for r in 0..4 {
            assert!(m.row(r).is_empty());
        }
    }

    #[test]
    fn full_matrix_respects_tail() {
        let m = BitMatrix::full(2, 70);
        assert_eq!(m.row(0).count(), 70);
        assert_eq!(m.row(1).count(), 70);
    }

    #[test]
    fn insert_and_query() {
        let mut m = BitMatrix::new(3, 65);
        assert!(m.insert(1, 64));
        assert!(!m.insert(1, 64));
        assert!(m.contains(1, 64));
        assert!(!m.contains(0, 64));
        assert!(m.remove(1, 64));
        assert!(!m.remove(1, 64));
    }

    #[test]
    fn set_row_round_trips() {
        let mut m = BitMatrix::new(2, 10);
        let mut s = BitSet::new(10);
        s.extend([0, 9]);
        assert!(m.set_row(1, &s));
        assert_eq!(m.row(1), s);
        assert!(!m.set_row(1, &s));
        assert!(m.row(0).is_empty());
    }

    #[test]
    fn union_and_intersect_rows() {
        let mut m = BitMatrix::new(2, 130);
        m.insert(0, 0);
        m.insert(0, 129);
        m.insert(1, 129);
        assert!(m.union_rows(1, 0));
        assert_eq!(m.iter_row(1).collect::<Vec<_>>(), vec![0, 129]);
        assert!(!m.intersect_rows(0, 1)); // row 0 ⊆ row 1 already
        m.remove(1, 0);
        assert!(m.intersect_rows(0, 1));
        assert_eq!(m.iter_row(0).collect::<Vec<_>>(), vec![129]);
    }

    #[test]
    fn self_combination_is_noop() {
        let mut m = BitMatrix::new(2, 8);
        m.insert(0, 3);
        assert!(!m.union_rows(0, 0));
        assert!(m.contains(0, 3));
    }

    #[test]
    #[should_panic(expected = "row 5 out of range")]
    fn row_out_of_range_panics() {
        let m = BitMatrix::new(2, 8);
        let _ = m.row(5);
    }
}
