//! Dense, fixed-universe bit sets and bit matrices.
//!
//! Bit-vector data-flow analyses manipulate sets drawn from a small, fixed
//! universe (the assignment and expression patterns of a program). This crate
//! provides the two containers those analyses need:
//!
//! * [`BitSet`] — a dense set of `usize` elements below a fixed universe
//!   size, with in-place union/intersection/difference and change reporting
//!   (the change bit is what drives worklist convergence).
//! * [`BitMatrix`] — a rectangular array of bit rows, used to store one
//!   [`BitSet`] per program point without per-point allocation.
//!
//! # Examples
//!
//! ```
//! use am_bitset::BitSet;
//!
//! let mut a = BitSet::new(70);
//! a.insert(3);
//! a.insert(69);
//! let mut b = BitSet::new(70);
//! b.insert(3);
//! assert!(b.is_subset(&a));
//! assert!(a.intersect_with(&b)); // `a` changed
//! assert_eq!(a.iter().collect::<Vec<_>>(), vec![3]);
//! ```

mod matrix;
mod set;

pub use matrix::BitMatrix;
pub use set::{ActiveWords, BitSet};

/// Number of bits per storage word.
pub(crate) const WORD_BITS: usize = u64::BITS as usize;

/// Number of `u64` words needed to hold `bits` bits.
pub(crate) fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// Mask selecting the in-universe bits of the final word of a `bits`-bit set.
pub(crate) fn tail_mask(bits: usize) -> u64 {
    let rem = bits % WORD_BITS;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}
