use std::fmt;

use crate::{tail_mask, words_for, WORD_BITS};

/// A dense set of `usize` elements drawn from a fixed universe `0..len`.
///
/// All binary operations require both operands to share the same universe
/// size and report whether the receiver changed, which is the signal
/// worklist solvers use to decide whether to requeue dependents.
///
/// # Examples
///
/// ```
/// use am_bitset::BitSet;
///
/// let mut live = BitSet::new(8);
/// live.insert(1);
/// live.insert(5);
/// assert_eq!(live.count(), 2);
/// assert!(live.contains(5));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            len,
            words: vec![0; words_for(len)],
        }
    }

    /// Creates a full set containing every element of `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet {
            len,
            words: vec![u64::MAX; words_for(len)],
        };
        s.trim();
        s
    }

    fn trim(&mut self) {
        if let Some(last) = self.words.last_mut() {
            *last &= tail_mask(self.len);
        }
    }

    /// The universe size (not the number of elements; see [`BitSet::count`]).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the set contains no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements currently in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Tests membership of `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the universe.
    pub fn contains(&self, bit: usize) -> bool {
        assert!(bit < self.len, "bit {bit} out of universe {}", self.len);
        self.words[bit / WORD_BITS] & (1 << (bit % WORD_BITS)) != 0
    }

    /// Inserts `bit`; returns `true` if the set changed.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the universe.
    pub fn insert(&mut self, bit: usize) -> bool {
        assert!(bit < self.len, "bit {bit} out of universe {}", self.len);
        let w = &mut self.words[bit / WORD_BITS];
        let mask = 1 << (bit % WORD_BITS);
        let changed = *w & mask == 0;
        *w |= mask;
        changed
    }

    /// Removes `bit`; returns `true` if the set changed.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the universe.
    pub fn remove(&mut self, bit: usize) -> bool {
        assert!(bit < self.len, "bit {bit} out of universe {}", self.len);
        let w = &mut self.words[bit / WORD_BITS];
        let mask = 1 << (bit % WORD_BITS);
        let changed = *w & mask != 0;
        *w &= !mask;
        changed
    }

    /// Sets or clears `bit` according to `value`; returns `true` on change.
    pub fn set(&mut self, bit: usize, value: bool) -> bool {
        if value {
            self.insert(bit)
        } else {
            self.remove(bit)
        }
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Inserts every element of the universe.
    pub fn insert_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = u64::MAX);
        self.trim();
    }

    fn assert_same_universe(&self, other: &BitSet) {
        assert_eq!(
            self.len, other.len,
            "bit set universes differ: {} vs {}",
            self.len, other.len
        );
    }

    /// `self ∪= other`; returns `true` if `self` changed.
    ///
    /// Single branchless pass: the change signal is an XOR accumulator over
    /// all words, so the loop vectorizes instead of testing per word.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        let mut diff = 0u64;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            diff |= *a ^ new;
            *a = new;
        }
        diff != 0
    }

    /// `self ∩= other`; returns `true` if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        let mut diff = 0u64;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & b;
            diff |= *a ^ new;
            *a = new;
        }
        diff != 0
    }

    /// `self −= other`; returns `true` if `self` changed.
    pub fn difference_with(&mut self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        let mut diff = 0u64;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & !b;
            diff |= *a ^ new;
            *a = new;
        }
        diff != 0
    }

    /// Replaces `self` with a copy of `other`; returns `true` if it changed.
    pub fn copy_from(&mut self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        let mut diff = 0u64;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            diff |= *a ^ b;
            *a = *b;
        }
        diff != 0
    }

    /// The fused gen/kill transfer `self = gen ∪ (input ∖ kill)`; returns
    /// `true` if `self` changed.
    ///
    /// This is the solver's inner step collapsed into one pass over the
    /// words instead of three (copy, difference, union), with the same
    /// XOR-accumulated change detection as the binary operators. `active`
    /// is the dirty-word index of the `(gen, kill)` row — see
    /// [`ActiveWords`]: words outside the index are a straight copy of
    /// `input`, so a sparse row on a wide universe touches `gen`/`kill`
    /// storage only where they are nonzero.
    ///
    /// # Panics
    ///
    /// Panics if any operand's universe differs from `self`'s, or if
    /// `active` was built for a different word count.
    pub fn transfer_from(
        &mut self,
        input: &BitSet,
        gen: &BitSet,
        kill: &BitSet,
        active: &ActiveWords,
    ) -> bool {
        self.assert_same_universe(input);
        self.assert_same_universe(gen);
        self.assert_same_universe(kill);
        let words = self.words.len();
        let mut diff = 0u64;
        match &active.index {
            None => {
                for i in 0..words {
                    let new = gen.words[i] | (input.words[i] & !kill.words[i]);
                    diff |= self.words[i] ^ new;
                    self.words[i] = new;
                }
            }
            Some(index) => {
                assert_eq!(
                    active.words, words,
                    "active-word index built for a different universe"
                );
                // Runs of inactive words between index entries are plain
                // copies (tight, vectorizable); the indexed words get the
                // full transfer. Change detection stays exact because each
                // word's XOR contribution uses its actual new value.
                let mut start = 0usize;
                for &w in index.iter() {
                    let w = w as usize;
                    for i in start..w {
                        diff |= self.words[i] ^ input.words[i];
                        self.words[i] = input.words[i];
                    }
                    let new = gen.words[w] | (input.words[w] & !kill.words[w]);
                    diff |= self.words[w] ^ new;
                    self.words[w] = new;
                    start = w + 1;
                }
                for i in start..words {
                    diff |= self.words[i] ^ input.words[i];
                    self.words[i] = input.words[i];
                }
            }
        }
        diff != 0
    }

    /// Tests `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Tests whether the sets share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for bit in iter {
            self.insert(bit);
        }
    }
}

/// A sparse "dirty word" index over a gen/kill row pair, consumed by
/// [`BitSet::transfer_from`].
///
/// On wide universes most transfer rows touch only a few words: every word
/// where `gen | kill == 0` turns the transfer into a plain copy of the
/// input. This index records which words are *active* (`gen | kill != 0`)
/// so the fused transfer can stream the inactive runs as straight copies.
/// When at least half the words are active the index degrades to a dense
/// marker and the transfer scans every word — the sparse walk would only
/// add bookkeeping.
///
/// # Examples
///
/// ```
/// use am_bitset::{ActiveWords, BitSet};
///
/// let mut gen = BitSet::new(256);
/// gen.insert(200);
/// let kill = BitSet::new(256);
/// let active = ActiveWords::build(&gen, &kill);
/// assert!(active.is_sparse());
///
/// let mut input = BitSet::new(256);
/// input.insert(7);
/// let mut out = BitSet::new(256);
/// assert!(out.transfer_from(&input, &gen, &kill, &active));
/// assert_eq!(out.iter().collect::<Vec<_>>(), vec![7, 200]);
/// ```
#[derive(Clone, Debug)]
pub struct ActiveWords {
    /// Word count of the universe this index was built for.
    words: usize,
    /// Sorted indices of the active words, or `None` for a dense row.
    index: Option<Box<[u32]>>,
}

impl ActiveWords {
    /// Builds the dirty-word index for the transfer row `(gen, kill)`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different universe sizes.
    pub fn build(gen: &BitSet, kill: &BitSet) -> Self {
        gen.assert_same_universe(kill);
        let words = gen.words.len();
        let active: Vec<u32> = (0..words)
            .filter(|&i| gen.words[i] | kill.words[i] != 0)
            .map(|i| i as u32)
            .collect();
        if active.len() * 2 >= words {
            ActiveWords { words, index: None }
        } else {
            ActiveWords {
                words,
                index: Some(active.into_boxed_slice()),
            }
        }
    }

    /// Builds a dense marker: the transfer applies gen/kill to every word.
    pub fn dense(universe: usize) -> Self {
        ActiveWords {
            words: words_for(universe),
            index: None,
        }
    }

    /// Whether the index actually skips words (false for dense rows).
    pub fn is_sparse(&self) -> bool {
        self.index.is_some()
    }

    /// Number of active words recorded, or the full word count when dense.
    pub fn active_len(&self) -> usize {
        match &self.index {
            Some(ix) => ix.len(),
            None => self.words,
        }
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.iter().next(), None);
        for i in 0..100 {
            assert!(!s.contains(i));
        }
    }

    #[test]
    fn full_set_respects_universe_boundary() {
        let s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert_eq!(s.iter().last(), Some(69));
    }

    #[test]
    fn full_set_of_word_multiple() {
        let s = BitSet::full(128);
        assert_eq!(s.count(), 128);
        assert!(s.contains(127));
    }

    #[test]
    fn insert_remove_report_changes() {
        let mut s = BitSet::new(10);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(!s.contains(3));
    }

    #[test]
    fn set_dispatches_on_value() {
        let mut s = BitSet::new(4);
        assert!(s.set(2, true));
        assert!(!s.set(2, true));
        assert!(s.set(2, false));
        assert!(!s.set(2, false));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn contains_out_of_range_panics() {
        let s = BitSet::new(8);
        let _ = s.contains(8);
    }

    #[test]
    fn union_intersection_difference() {
        let mut a = BitSet::new(130);
        a.extend([1, 64, 129]);
        let mut b = BitSet::new(130);
        b.extend([64, 65]);

        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 64, 65, 129]);
        assert!(!u.union_with(&b));

        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![64]);

        let mut d = a.clone();
        assert!(d.difference_with(&b));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 129]);
    }

    #[test]
    fn subset_and_disjoint() {
        let mut a = BitSet::new(20);
        a.extend([2, 5]);
        let mut b = BitSet::new(20);
        b.extend([2, 5, 9]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let mut c = BitSet::new(20);
        c.insert(7);
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn copy_from_reports_change() {
        let mut a = BitSet::new(9);
        let mut b = BitSet::new(9);
        b.insert(8);
        assert!(a.copy_from(&b));
        assert!(!a.copy_from(&b));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "universes differ")]
    fn mismatched_universes_panic() {
        let mut a = BitSet::new(8);
        let b = BitSet::new(9);
        a.union_with(&b);
    }

    #[test]
    fn insert_all_then_clear() {
        let mut s = BitSet::new(77);
        s.insert_all();
        assert_eq!(s.count(), 77);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn debug_formats_as_set() {
        let mut s = BitSet::new(8);
        s.extend([1, 3]);
        assert_eq!(format!("{s:?}"), "{1, 3}");
        assert_eq!(format!("{:?}", BitSet::new(3)), "{}");
    }

    #[test]
    fn zero_universe_is_fine() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(BitSet::full(0).count(), 0);
    }
}

#[cfg(test)]
mod iterator_tests {
    use super::*;

    #[test]
    fn into_iterator_by_reference() {
        let mut s = BitSet::new(70);
        s.extend([0, 64, 69]);
        let via_for: Vec<usize> = (&s).into_iter().collect();
        assert_eq!(via_for, vec![0, 64, 69]);
    }

    #[test]
    fn iterating_a_full_set_visits_everything() {
        let s = BitSet::full(129);
        let elems: Vec<usize> = s.iter().collect();
        assert_eq!(elems.len(), 129);
        assert_eq!(elems.first(), Some(&0));
        assert_eq!(elems.last(), Some(&128));
        assert!(elems.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
    }

    #[test]
    fn extend_accepts_any_usize_iterator() {
        let mut s = BitSet::new(10);
        s.extend((0..10).filter(|i| i % 3 == 0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 6, 9]);
    }

    /// Tiny deterministic generator for the differential kernel tests.
    fn pseudo_random_set(universe: usize, mut seed: u64, density: u64) -> BitSet {
        let mut s = BitSet::new(universe);
        for bit in 0..universe {
            seed = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x632b_e593_86d1_face);
            if (seed >> 33) % 100 < density {
                s.insert(bit);
            }
        }
        s
    }

    /// The reference formulation the fused kernel must agree with:
    /// `out = gen ∪ (input ∖ kill)` via three passes, change = word compare.
    fn naive_transfer(out: &mut BitSet, input: &BitSet, gen: &BitSet, kill: &BitSet) -> bool {
        let mut scratch = input.clone();
        scratch.difference_with(kill);
        scratch.union_with(gen);
        let changed = *out != scratch;
        out.words.copy_from_slice(&scratch.words);
        changed
    }

    #[test]
    fn fused_transfer_matches_naive_formulation_exactly() {
        // Sweep universes around word boundaries and several densities so
        // both the sparse run-copy path and the dense path are exercised,
        // including rows where nothing changes (the change bit must be
        // exact, not conservative — the solver's counters depend on it).
        for &universe in &[1usize, 63, 64, 65, 200, 512] {
            for round in 0..40u64 {
                let gen = pseudo_random_set(universe, round * 7 + 1, 5);
                let kill = pseudo_random_set(universe, round * 7 + 2, 5);
                let input = pseudo_random_set(universe, round * 7 + 3, 30);
                let active = ActiveWords::build(&gen, &kill);
                let mut fused = pseudo_random_set(universe, round * 7 + 4, 30);
                let mut naive = fused.clone();
                let changed_fused = fused.transfer_from(&input, &gen, &kill, &active);
                let changed_naive = naive_transfer(&mut naive, &input, &gen, &kill);
                assert_eq!(fused, naive, "universe {universe} round {round}");
                assert_eq!(
                    changed_fused, changed_naive,
                    "change bit diverged at universe {universe} round {round}"
                );
                // Applying the same transfer again must report no change.
                assert!(!fused.transfer_from(&input, &gen, &kill, &active));
            }
        }
        // Force the sparse run-copy path: gen/kill confined to two words of
        // a wide universe, input dense everywhere.
        for round in 0..40u64 {
            let universe = 640; // 10 words
            let mut gen = BitSet::new(universe);
            let mut kill = BitSet::new(universe);
            for bit in 0..universe {
                if !(64..128).contains(&bit) && !(512..576).contains(&bit) {
                    continue;
                }
                if (round.wrapping_mul(bit as u64 + 13)) % 7 == 0 {
                    gen.insert(bit);
                } else if (round.wrapping_mul(bit as u64 + 29)) % 11 == 0 {
                    kill.insert(bit);
                }
            }
            let active = ActiveWords::build(&gen, &kill);
            assert!(active.is_sparse());
            let input = pseudo_random_set(universe, round + 101, 50);
            let mut fused = pseudo_random_set(universe, round + 202, 50);
            let mut naive = fused.clone();
            let changed_fused = fused.transfer_from(&input, &gen, &kill, &active);
            let changed_naive = naive_transfer(&mut naive, &input, &gen, &kill);
            assert_eq!(fused, naive, "sparse round {round}");
            assert_eq!(
                changed_fused, changed_naive,
                "sparse change bit, round {round}"
            );
            assert!(!fused.transfer_from(&input, &gen, &kill, &active));
        }
    }

    #[test]
    fn dense_active_index_gives_the_same_transfer() {
        let universe = 640;
        let mut gen = BitSet::new(universe);
        gen.insert(3);
        gen.insert(600);
        let mut kill = BitSet::new(universe);
        kill.insert(100);
        let input = pseudo_random_set(universe, 33, 40);
        let sparse = ActiveWords::build(&gen, &kill);
        assert!(sparse.is_sparse());
        let dense = ActiveWords::dense(universe);
        assert!(!dense.is_sparse());
        let mut a = BitSet::new(universe);
        let mut b = BitSet::new(universe);
        assert_eq!(
            a.transfer_from(&input, &gen, &kill, &sparse),
            b.transfer_from(&input, &gen, &kill, &dense)
        );
        assert_eq!(a, b);
    }

    #[test]
    fn active_words_degrades_to_dense_on_busy_rows() {
        let universe = 256; // 4 words
        let gen = BitSet::full(universe);
        let kill = BitSet::new(universe);
        let busy = ActiveWords::build(&gen, &kill);
        assert!(!busy.is_sparse());
        assert_eq!(busy.active_len(), 4);

        let quiet = ActiveWords::build(&kill, &kill);
        assert!(quiet.is_sparse());
        assert_eq!(quiet.active_len(), 0);
    }

    #[test]
    fn empty_active_index_makes_transfer_a_copy() {
        let universe = 130;
        let gen = BitSet::new(universe);
        let kill = BitSet::new(universe);
        let active = ActiveWords::build(&gen, &kill);
        let input = pseudo_random_set(universe, 5, 50);
        let mut out = BitSet::new(universe);
        assert!(out.transfer_from(&input, &gen, &kill, &active));
        assert_eq!(out, input);
    }

    #[test]
    fn copy_from_reports_change_exactly() {
        let a = pseudo_random_set(100, 1, 50);
        let mut b = BitSet::new(100);
        assert!(b.copy_from(&a));
        assert_eq!(a, b);
        assert!(!b.copy_from(&a));
    }
}
