use std::fmt;

use crate::{tail_mask, words_for, WORD_BITS};

/// A dense set of `usize` elements drawn from a fixed universe `0..len`.
///
/// All binary operations require both operands to share the same universe
/// size and report whether the receiver changed, which is the signal
/// worklist solvers use to decide whether to requeue dependents.
///
/// # Examples
///
/// ```
/// use am_bitset::BitSet;
///
/// let mut live = BitSet::new(8);
/// live.insert(1);
/// live.insert(5);
/// assert_eq!(live.count(), 2);
/// assert!(live.contains(5));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            len,
            words: vec![0; words_for(len)],
        }
    }

    /// Creates a full set containing every element of `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet {
            len,
            words: vec![u64::MAX; words_for(len)],
        };
        s.trim();
        s
    }

    fn trim(&mut self) {
        if let Some(last) = self.words.last_mut() {
            *last &= tail_mask(self.len);
        }
    }

    /// The universe size (not the number of elements; see [`BitSet::count`]).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the set contains no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements currently in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Tests membership of `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the universe.
    pub fn contains(&self, bit: usize) -> bool {
        assert!(bit < self.len, "bit {bit} out of universe {}", self.len);
        self.words[bit / WORD_BITS] & (1 << (bit % WORD_BITS)) != 0
    }

    /// Inserts `bit`; returns `true` if the set changed.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the universe.
    pub fn insert(&mut self, bit: usize) -> bool {
        assert!(bit < self.len, "bit {bit} out of universe {}", self.len);
        let w = &mut self.words[bit / WORD_BITS];
        let mask = 1 << (bit % WORD_BITS);
        let changed = *w & mask == 0;
        *w |= mask;
        changed
    }

    /// Removes `bit`; returns `true` if the set changed.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the universe.
    pub fn remove(&mut self, bit: usize) -> bool {
        assert!(bit < self.len, "bit {bit} out of universe {}", self.len);
        let w = &mut self.words[bit / WORD_BITS];
        let mask = 1 << (bit % WORD_BITS);
        let changed = *w & mask != 0;
        *w &= !mask;
        changed
    }

    /// Sets or clears `bit` according to `value`; returns `true` on change.
    pub fn set(&mut self, bit: usize, value: bool) -> bool {
        if value {
            self.insert(bit)
        } else {
            self.remove(bit)
        }
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Inserts every element of the universe.
    pub fn insert_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = u64::MAX);
        self.trim();
    }

    fn assert_same_universe(&self, other: &BitSet) {
        assert_eq!(
            self.len, other.len,
            "bit set universes differ: {} vs {}",
            self.len, other.len
        );
    }

    /// `self ∪= other`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self ∩= other`; returns `true` if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self −= other`; returns `true` if `self` changed.
    pub fn difference_with(&mut self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & !b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Replaces `self` with a copy of `other`; returns `true` if it changed.
    pub fn copy_from(&mut self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        let changed = self.words != other.words;
        self.words.copy_from_slice(&other.words);
        changed
    }

    /// Tests `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Tests whether the sets share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for bit in iter {
            self.insert(bit);
        }
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.iter().next(), None);
        for i in 0..100 {
            assert!(!s.contains(i));
        }
    }

    #[test]
    fn full_set_respects_universe_boundary() {
        let s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert_eq!(s.iter().last(), Some(69));
    }

    #[test]
    fn full_set_of_word_multiple() {
        let s = BitSet::full(128);
        assert_eq!(s.count(), 128);
        assert!(s.contains(127));
    }

    #[test]
    fn insert_remove_report_changes() {
        let mut s = BitSet::new(10);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(!s.contains(3));
    }

    #[test]
    fn set_dispatches_on_value() {
        let mut s = BitSet::new(4);
        assert!(s.set(2, true));
        assert!(!s.set(2, true));
        assert!(s.set(2, false));
        assert!(!s.set(2, false));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn contains_out_of_range_panics() {
        let s = BitSet::new(8);
        let _ = s.contains(8);
    }

    #[test]
    fn union_intersection_difference() {
        let mut a = BitSet::new(130);
        a.extend([1, 64, 129]);
        let mut b = BitSet::new(130);
        b.extend([64, 65]);

        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 64, 65, 129]);
        assert!(!u.union_with(&b));

        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![64]);

        let mut d = a.clone();
        assert!(d.difference_with(&b));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 129]);
    }

    #[test]
    fn subset_and_disjoint() {
        let mut a = BitSet::new(20);
        a.extend([2, 5]);
        let mut b = BitSet::new(20);
        b.extend([2, 5, 9]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let mut c = BitSet::new(20);
        c.insert(7);
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn copy_from_reports_change() {
        let mut a = BitSet::new(9);
        let mut b = BitSet::new(9);
        b.insert(8);
        assert!(a.copy_from(&b));
        assert!(!a.copy_from(&b));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "universes differ")]
    fn mismatched_universes_panic() {
        let mut a = BitSet::new(8);
        let b = BitSet::new(9);
        a.union_with(&b);
    }

    #[test]
    fn insert_all_then_clear() {
        let mut s = BitSet::new(77);
        s.insert_all();
        assert_eq!(s.count(), 77);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn debug_formats_as_set() {
        let mut s = BitSet::new(8);
        s.extend([1, 3]);
        assert_eq!(format!("{s:?}"), "{1, 3}");
        assert_eq!(format!("{:?}", BitSet::new(3)), "{}");
    }

    #[test]
    fn zero_universe_is_fine() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(BitSet::full(0).count(), 0);
    }
}

#[cfg(test)]
mod iterator_tests {
    use super::*;

    #[test]
    fn into_iterator_by_reference() {
        let mut s = BitSet::new(70);
        s.extend([0, 64, 69]);
        let via_for: Vec<usize> = (&s).into_iter().collect();
        assert_eq!(via_for, vec![0, 64, 69]);
    }

    #[test]
    fn iterating_a_full_set_visits_everything() {
        let s = BitSet::full(129);
        let elems: Vec<usize> = s.iter().collect();
        assert_eq!(elems.len(), 129);
        assert_eq!(elems.first(), Some(&0));
        assert_eq!(elems.last(), Some(&128));
        assert!(elems.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
    }

    #[test]
    fn extend_accepts_any_usize_iterator() {
        let mut s = BitSet::new(10);
        s.extend((0..10).filter(|i| i % 3 == 0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 6, 9]);
    }
}
