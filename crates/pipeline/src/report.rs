//! Aggregated batch results.

use std::fmt;
use std::time::Duration;

use am_core::global::PhaseTimings;

use crate::cache::CacheStats;
use crate::job::{JobOutcome, JobReport};

/// The result of one [`Pipeline::run`](crate::Pipeline::run): per-job
/// reports in submission order plus batch-wide aggregates.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// One entry per submitted job, in submission order (independent of
    /// which worker ran it when).
    pub jobs: Vec<JobReport>,
    /// Worker threads used.
    pub workers: usize,
    /// End-to-end wall time of the whole batch.
    pub wall: Duration,
    /// Cache counters at the end of the batch. Cumulative over the
    /// pipeline's lifetime — a second batch on the same [`Pipeline`]
    /// includes the first batch's traffic.
    pub cache: CacheStats,
    /// Cache hits attributable to *this* batch (end minus start).
    pub batch_cache_hits: u64,
    /// Cache misses attributable to *this* batch (end minus start).
    pub batch_cache_misses: u64,
    /// Sum of per-phase optimizer times across all non-cached jobs. With
    /// several workers this exceeds `wall` — it is total CPU time spent in
    /// the optimizer, not elapsed time.
    pub phase_totals: PhaseTimings,
}

impl PipelineReport {
    /// Jobs that produced an optimized program (freshly or from cache).
    pub fn succeeded(&self) -> usize {
        self.jobs.iter().filter(|j| j.optimized().is_some()).count()
    }

    /// Jobs that failed cleanly (I/O, unknown kind, parse error).
    pub fn failed(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.outcome, JobOutcome::Failed(_)))
            .count()
    }

    /// Jobs that panicked in the optimizer.
    pub fn panicked(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.outcome, JobOutcome::Panicked(_)))
            .count()
    }

    /// Jobs served from the cache.
    pub fn cache_hits(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.optimized().is_some_and(|o| o.cache_hit))
            .count()
    }

    /// Jobs served from the secondary (persistent) cache tier.
    pub fn secondary_hits(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| {
                j.optimized()
                    .is_some_and(|o| o.source == crate::job::ResultSource::Secondary)
            })
            .count()
    }

    /// Jobs whose translation validation passed.
    pub fn verified(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| {
                j.optimized()
                    .is_some_and(|o| matches!(o.verification, Some(Ok(()))))
            })
            .count()
    }

    /// Jobs whose translation validation failed.
    pub fn verify_failed(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| {
                j.optimized()
                    .is_some_and(|o| matches!(o.verification, Some(Err(_))))
            })
            .count()
    }

    /// Summed prover verdict counts over all jobs that ran with the
    /// symbolic prover (zero counts when no job proved anything).
    pub fn proof_counts(&self) -> am_check::validate::VerdictCounts {
        let mut total = am_check::validate::VerdictCounts::default();
        for j in &self.jobs {
            if let Some(c) = j.optimized().and_then(|o| o.prove.as_ref()) {
                total.proved += c.proved;
                total.refuted += c.refuted;
                total.inconclusive += c.inconclusive;
            }
        }
        total
    }

    /// Jobs with a lint verdict (linted now, or served from a cache entry
    /// that stored one).
    pub fn linted(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.optimized().is_some_and(|o| o.result.lint.is_some()))
            .count()
    }

    /// Error-severity lint findings summed over all jobs.
    pub fn lint_errors(&self) -> usize {
        self.lint_sum(|l| l.errors)
    }

    /// Warning-severity lint findings summed over all jobs.
    pub fn lint_warnings(&self) -> usize {
        self.lint_sum(|l| l.warnings)
    }

    fn lint_sum(&self, f: impl Fn(&am_lint::LintSummary) -> usize) -> usize {
        self.jobs
            .iter()
            .filter_map(|j| j.optimized().and_then(|o| o.result.lint.as_ref()))
            .map(f)
            .sum()
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline: {} jobs on {} workers in {:.2} ms",
            self.jobs.len(),
            self.workers,
            ms(self.wall)
        )?;
        for job in &self.jobs {
            match &job.outcome {
                JobOutcome::Optimized(o) => {
                    let src = o.source.label();
                    writeln!(
                        f,
                        "  ok    {:<32} {:>8.2} ms  {:<6}  hash {:016x}  rounds {}  eliminated {}  flush -{}+{}",
                        job.name,
                        ms(job.wall),
                        src,
                        o.input_hash,
                        o.result.motion.rounds,
                        o.result.motion.eliminated,
                        o.result.flush.instances_removed,
                        o.result.flush.inserted,
                    )?;
                    if !o.result.motion.converged {
                        writeln!(f, "        {:<32} motion budget exhausted", "")?;
                    }
                    if let Some(Err(e)) = &o.verification {
                        writeln!(f, "        {:<32} verify FAILED at {}", "", e)?;
                    }
                    if let Some(lint) = &o.result.lint {
                        if lint.has_errors() {
                            for line in &lint.lines {
                                writeln!(f, "        {:<32} lint: {line}", "")?;
                            }
                        }
                    }
                }
                JobOutcome::Failed(e) => {
                    writeln!(f, "  fail  {:<32} {}", job.name, e)?;
                }
                JobOutcome::Panicked(e) => {
                    writeln!(f, "  panic {:<32} {}", job.name, e)?;
                }
            }
        }
        writeln!(
            f,
            "  cache: batch {} hits, {} misses; lifetime {} hits, {} misses, {} evictions, {} resident ({:.0}% hit rate)",
            self.batch_cache_hits,
            self.batch_cache_misses,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.entries,
            self.cache.hit_rate() * 100.0
        )?;
        if self.verified() + self.verify_failed() > 0 {
            writeln!(
                f,
                "  verify: {} ok, {} failed",
                self.verified(),
                self.verify_failed()
            )?;
        }
        let proofs = self.proof_counts();
        if proofs.total() > 0 {
            writeln!(
                f,
                "  prove: {} proved, {} refuted, {} inconclusive (phase pairs)",
                proofs.proved, proofs.refuted, proofs.inconclusive
            )?;
        }
        if self.linted() > 0 {
            writeln!(
                f,
                "  lint: {} jobs, {} error(s), {} warning(s)",
                self.linted(),
                self.lint_errors(),
                self.lint_warnings()
            )?;
        }
        write!(
            f,
            "  phases (cpu): split {:.2} ms, init {:.2} ms, motion {:.2} ms, flush {:.2} ms",
            ms(self.phase_totals.split),
            ms(self.phase_totals.init),
            ms(self.phase_totals.motion),
            ms(self.phase_totals.flush),
        )
    }
}
