//! The `am-bench-dataflow/v1` benchmark record schema.
//!
//! One JSON document per benchmark run, shared between the
//! `bench_dataflow` scaling harness (`crates/bench`) and
//! `amopt --bench-json`: a `schema` tag, the producing `generator`, and a
//! flat list of per-workload (or per-job) records carrying wall time,
//! per-phase timings and the solver counters. Hand-written writer — the
//! workspace builds offline, so no serde.
//!
//! Consumers diff successive documents to track the solver trajectory:
//! `wall_micros` and `worklist_pushes` are the regression-gated fields
//! (see `docs/PERFORMANCE.md`).

/// Schema identifier embedded in every document.
pub const BENCH_SCHEMA: &str = "am-bench-dataflow/v1";

/// One benchmarked workload or job.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BenchRecord {
    /// Workload or job label, e.g. `nest d=4 w=4`.
    pub label: String,
    /// Input CFG nodes.
    pub nodes: usize,
    /// Input instructions.
    pub instrs: usize,
    /// Instruction-level program points of the input (`PointGraph` size).
    pub points: usize,
    /// End-to-end `optimize` wall time, microseconds (best of N).
    pub wall_micros: u128,
    /// Critical-edge splitting time, microseconds.
    pub split_micros: u128,
    /// Initialization time, microseconds.
    pub init_micros: u128,
    /// Assignment-motion time, microseconds.
    pub motion_micros: u128,
    /// Final-flush time, microseconds.
    pub flush_micros: u128,
    /// Motion rounds until stabilization.
    pub rounds: usize,
    /// Whether motion converged within its round budget.
    pub converged: bool,
    /// Solver iterations (motion + flush).
    pub iterations: u64,
    /// Solver worklist pushes (motion + flush).
    pub worklist_pushes: u64,
    /// Peak solver worklist length across all solves.
    pub max_worklist_len: usize,
    /// Assignment occurrences eliminated by motion.
    pub eliminated: usize,
    /// Instances inserted by hoisting.
    pub inserted: usize,
    /// Hoisting candidates removed.
    pub removed: usize,
    /// Whether the record was served from the result cache (always false
    /// for the scaling harness; per-job for `amopt --bench-json`, where a
    /// hit reports zero timings).
    pub cache_hit: bool,
}

impl BenchRecord {
    /// Worklist pushes per program point: the dedup/ordering health metric
    /// gated in CI. Counts every solve of the run, so a well-ordered
    /// engine stays in the low tens even over many motion rounds.
    pub fn pushes_per_point(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.worklist_pushes as f64 / self.points as f64
        }
    }
}

/// Estimated rendered size of one record — used to reserve the output
/// buffer up front so multi-MB documents build in one allocation instead
/// of repeatedly growing (and copying) the string.
const RECORD_RESERVE: usize = 384;

/// Renders a full document: schema tag, generator name, records. Writes
/// into a single pre-reserved buffer; callers persisting the result
/// should write it through a temporary file + rename so an interrupted
/// run never leaves a truncated document behind.
pub fn render(generator: &str, records: &[BenchRecord]) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(64 + records.len() * RECORD_RESERVE);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", escape(BENCH_SCHEMA));
    let _ = writeln!(out, "  \"generator\": {},", escape(generator));
    out.push_str("  \"records\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        render_record(&mut out, r);
    }
    if !records.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn render_record(out: &mut String, r: &BenchRecord) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"label\": {}, \"nodes\": {}, \"instrs\": {}, \"points\": {}, \
         \"wall_micros\": {}, \"split_micros\": {}, \"init_micros\": {}, \
         \"motion_micros\": {}, \"flush_micros\": {}, \"rounds\": {}, \
         \"converged\": {}, \"iterations\": {}, \"worklist_pushes\": {}, \
         \"max_worklist_len\": {}, \"eliminated\": {}, \"inserted\": {}, \
         \"removed\": {}, \"cache_hit\": {}}}",
        escape(&r.label),
        r.nodes,
        r.instrs,
        r.points,
        r.wall_micros,
        r.split_micros,
        r.init_micros,
        r.motion_micros,
        r.flush_micros,
        r.rounds,
        r.converged,
        r.iterations,
        r.worklist_pushes,
        r.max_worklist_len,
        r.eliminated,
        r.inserted,
        r.removed,
        r.cache_hit,
    );
}

/// Parses a full `am-bench-dataflow/v1` document back into its generator
/// name and records — the inverse of [`render`], built on the zero-dep
/// JSON reader in `am-trace`. Consumers (tests, baseline diffing) use it
/// to guard the schema against drift: every field [`render`] writes must
/// come back, and an unknown schema tag is an error.
pub fn parse_document(text: &str) -> Result<(String, Vec<BenchRecord>), String> {
    let v = am_trace::json::parse(text).map_err(|e| e.to_string())?;
    let schema = v
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or("missing \"schema\"")?;
    if schema != BENCH_SCHEMA {
        return Err(format!(
            "unsupported schema \"{schema}\" (expected \"{BENCH_SCHEMA}\")"
        ));
    }
    let generator = v
        .get("generator")
        .and_then(|g| g.as_str())
        .ok_or("missing \"generator\"")?
        .to_owned();
    let records = v
        .get("records")
        .and_then(|r| r.as_arr())
        .ok_or("missing \"records\" array")?;
    let records = records
        .iter()
        .enumerate()
        .map(|(i, r)| parse_record(r).map_err(|e| format!("record {i}: {e}")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((generator, records))
}

fn parse_record(v: &am_trace::json::Json) -> Result<BenchRecord, String> {
    let uint = |key: &str| {
        v.get(key)
            .and_then(|x| x.as_u64())
            .ok_or_else(|| format!("missing or non-integer \"{key}\""))
    };
    let boolean = |key: &str| match v.get(key) {
        Some(am_trace::json::Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-boolean \"{key}\"")),
    };
    Ok(BenchRecord {
        label: v
            .get("label")
            .and_then(|x| x.as_str())
            .ok_or("missing or non-string \"label\"")?
            .to_owned(),
        nodes: uint("nodes")? as usize,
        instrs: uint("instrs")? as usize,
        points: uint("points")? as usize,
        wall_micros: uint("wall_micros")? as u128,
        split_micros: uint("split_micros")? as u128,
        init_micros: uint("init_micros")? as u128,
        motion_micros: uint("motion_micros")? as u128,
        flush_micros: uint("flush_micros")? as u128,
        rounds: uint("rounds")? as usize,
        converged: boolean("converged")?,
        iterations: uint("iterations")?,
        worklist_pushes: uint("worklist_pushes")?,
        max_worklist_len: uint("max_worklist_len")? as usize,
        eliminated: uint("eliminated")? as usize,
        inserted: uint("inserted")? as usize,
        removed: uint("removed")? as usize,
        cache_hit: boolean("cache_hit")?,
    })
}

/// JSON string literal with the required escapes.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_shape_and_escaping() {
        let rec = BenchRecord {
            label: "nest \"d=1\"".to_owned(),
            nodes: 3,
            instrs: 7,
            points: 8,
            wall_micros: 1234,
            converged: true,
            worklist_pushes: 40,
            ..Default::default()
        };
        let doc = render("bench_dataflow", &[rec]);
        assert!(doc.starts_with("{\n  \"schema\": \"am-bench-dataflow/v1\""));
        assert!(doc.contains("\"generator\": \"bench_dataflow\""));
        assert!(doc.contains("\"label\": \"nest \\\"d=1\\\"\""));
        assert!(doc.contains("\"wall_micros\": 1234"));
        assert!(doc.contains("\"converged\": true"));
        assert!(doc.ends_with("]\n}\n"));
    }

    #[test]
    fn empty_document_is_valid() {
        let doc = render("amopt", &[]);
        assert!(doc.contains("\"records\": []"));
    }

    #[test]
    fn render_parse_round_trip_preserves_every_field() {
        let records = vec![
            BenchRecord {
                label: "service \"p99\"\n".to_owned(),
                nodes: 98,
                instrs: 354,
                points: 360,
                wall_micros: 123_456_789,
                split_micros: 11,
                init_micros: 22,
                motion_micros: 33,
                flush_micros: 44,
                rounds: 7,
                converged: true,
                iterations: 9001,
                worklist_pushes: 4242,
                max_worklist_len: 77,
                eliminated: 12,
                inserted: 3,
                removed: 4,
                cache_hit: true,
            },
            BenchRecord::default(),
        ];
        let doc = render("amopt", &records);
        let (generator, parsed) = parse_document(&doc).unwrap();
        assert_eq!(generator, "amopt");
        assert_eq!(parsed, records);
    }

    #[test]
    fn multi_megabyte_document_round_trips_untruncated() {
        // XL ladder reports reach tens of thousands of records; the
        // writer must neither truncate nor corrupt at that size.
        let records: Vec<BenchRecord> = (0..20_000)
            .map(|i| BenchRecord {
                label: format!("xl synthetic rung #{i} \"q\""),
                nodes: 30_000 + i,
                instrs: 150_003,
                points: 180_000,
                wall_micros: 8_000_000_000_000_000 + i as u128,
                iterations: 4_000_000_000_000_000 - i as u64,
                worklist_pushes: 1_000_000_000_000_000 + i as u64,
                converged: i % 2 == 0,
                ..Default::default()
            })
            .collect();
        let doc = render("bench_dataflow", &records);
        assert!(doc.len() > 2_000_000, "not a multi-MB document");
        assert!(doc.ends_with("]\n}\n"), "document truncated");
        let (generator, parsed) = parse_document(&doc).unwrap();
        assert_eq!(generator, "bench_dataflow");
        assert_eq!(parsed.len(), records.len());
        assert_eq!(parsed, records);
    }

    #[test]
    fn parse_rejects_schema_drift() {
        let doc = render("amopt", &[]).replace("am-bench-dataflow/v1", "am-bench-dataflow/v2");
        let err = parse_document(&doc).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
        assert!(parse_document("{}").is_err());
        assert!(parse_document("not json").is_err());
        let missing =
            r#"{"schema":"am-bench-dataflow/v1","generator":"x","records":[{"label":"a"}]}"#;
        let err = parse_document(missing).unwrap_err();
        assert!(err.contains("record 0"), "{err}");
    }

    #[test]
    fn checked_in_baseline_parses_through_the_schema() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dataflow.json");
        let text = std::fs::read_to_string(path).expect("checked-in BENCH_dataflow.json");
        let (generator, records) = parse_document(&text).unwrap();
        assert_eq!(generator, "bench_dataflow");
        assert!(
            records.len() >= 12,
            "workload ladder shrank: {}",
            records.len()
        );
        for r in &records {
            assert!(r.points > 0, "{}: zero points", r.label);
            assert!(r.converged, "{}: did not converge", r.label);
        }
    }

    #[test]
    fn pushes_per_point_handles_zero_points() {
        assert_eq!(BenchRecord::default().pushes_per_point(), 0.0);
        let r = BenchRecord {
            points: 8,
            worklist_pushes: 40,
            ..Default::default()
        };
        assert!((r.pushes_per_point() - 5.0).abs() < 1e-9);
    }
}
