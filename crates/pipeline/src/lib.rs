//! Parallel batch optimization of whole program corpora.
//!
//! The per-program algorithm lives in [`am_core::global`]; this crate runs
//! it at fleet scale:
//!
//! ```text
//!   jobs (.wl / .ir / in-memory)
//!        │
//!   work queue ──► scoped worker threads (catch_unwind per job)
//!        │              │
//!        │              ├─ stable_hash(input) ──► result cache (LRU) ── hit ─┐
//!        │              └─ miss: optimize_with + per-phase timings ──────────┤
//!        ▼              ▼                                                    ▼
//!   PipelineReport: per-job outcomes in submission order + aggregates
//! ```
//!
//! Guarantees:
//!
//! * **Determinism** — job reports come back in submission order and the
//!   optimizer is deterministic, so batch output is byte-identical whether
//!   one worker runs or sixteen do.
//! * **Isolation** — a job that panics is reported as
//!   [`JobOutcome::Panicked`](job::JobOutcome::Panicked); every other job
//!   still completes.
//! * **Sharing** — the cache is keyed by
//!   [`am_ir::alpha::stable_hash`], so alpha-equivalent inputs (including
//!   byte-identical files under different names) are optimized once.
//!
//! # Examples
//!
//! ```
//! use am_pipeline::{Job, Pipeline, PipelineConfig};
//! use am_lang::SourceKind;
//!
//! // One worker so the duplicate is a guaranteed cache hit: with several
//! // workers, two equivalent jobs in flight at once may both miss (the
//! // race costs time, never correctness).
//! let pipeline = Pipeline::new(PipelineConfig { workers: Some(1), ..Default::default() });
//! let jobs = vec![
//!     Job::from_source("double", SourceKind::While, "x := (a+b)*(a+b); print(x);"),
//!     Job::from_source("again", SourceKind::While, "x := (a+b)*(a+b); print(x);"),
//! ];
//! let report = pipeline.run(&jobs);
//! assert_eq!(report.succeeded(), 2);
//! assert_eq!(report.cache_hits(), 1); // identical program: optimized once
//! ```

#![warn(missing_docs)]

pub mod bench_json;
pub mod cache;
pub mod engine;
pub mod explain;
pub mod job;
pub mod report;

pub use bench_json::{BenchRecord, BENCH_SCHEMA};
pub use cache::{CacheStats, CachedResult, ResultCache, SecondaryCache};
pub use engine::{Pipeline, PipelineConfig};
pub use explain::{explain_graph, Explanation};
pub use job::{Job, JobInput, JobOutcome, JobReport, OptimizedJob, ResultSource};
pub use report::PipelineReport;
