//! The worker-pool engine.
//!
//! Jobs are drained from a shared queue (an atomic index into the job
//! slice) by scoped worker threads. Each job runs under `catch_unwind`, so
//! a panicking job is reported as [`JobOutcome::Panicked`] while its worker
//! carries on with the rest of the queue. Results land in per-job slots, so
//! the report order is submission order no matter which worker finished
//! when — with a deterministic optimizer this makes batch output
//! byte-identical across worker counts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use am_check::validate::{validate, ValidationConfig, VerdictCounts};
use am_core::global::{optimize_with, GlobalConfig, PhaseTimings};
use am_ir::alpha::{canonical_text, stable_hash};
use am_ir::FlowGraph;
use am_lang::{compile_source, SourceKind};
use am_trace::Tracer;

use crate::cache::{CachedResult, ResultCache, SecondaryCache};
use crate::job::{Job, JobInput, JobOutcome, JobReport, OptimizedJob, ResultSource};
use crate::report::PipelineReport;

/// Engine configuration.
#[derive(Clone)]
pub struct PipelineConfig {
    /// Worker threads; `None` uses [`std::thread::available_parallelism`].
    pub workers: Option<usize>,
    /// Result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Motion-round budget per job; `None` uses the paper's quadratic
    /// bound. A job that exhausts the budget still terminates and reports
    /// `converged: false`.
    pub max_motion_rounds: Option<usize>,
    /// Translation-validate every job: re-run the optimizer through the
    /// phase-boundary hooks and differentially check each phase against
    /// the counting interpreter (see `am-check`). Runs even on cache hits
    /// — the cache stores results, not validations.
    pub verify: bool,
    /// Run the `am-prove` symbolic equivalence prover on every phase pair
    /// before the interpreter (implies `verify`): proved pairs are
    /// discharged for *all* inputs statically, refuted pairs fail the job
    /// with the prover's witness, and only inconclusive pairs fall back to
    /// the differential interpreter runs.
    pub prove: bool,
    /// Lint every freshly optimized program with the `am-lint` static
    /// suite and store the summary in the result cache. Unlike `verify`,
    /// the verdict is a deterministic function of the input, so cache
    /// hits reuse the stored summary (which is `None` when the entry was
    /// cached by a run without linting).
    pub lint: bool,
    /// Trace sink shared by every worker: per-job spans, per-batch
    /// counters and the optimizer's own phase/round/analysis events.
    /// Disabled (a no-op) by default.
    pub tracer: Tracer,
    /// Second cache tier consulted on in-memory misses and fed on fresh
    /// optimizations (e.g. the `am-serve` persistent on-disk store).
    /// `None` (the default) keeps the engine purely in-memory.
    pub secondary: Option<Arc<dyn SecondaryCache>>,
}

impl std::fmt::Debug for PipelineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineConfig")
            .field("workers", &self.workers)
            .field("cache_capacity", &self.cache_capacity)
            .field("max_motion_rounds", &self.max_motion_rounds)
            .field("verify", &self.verify)
            .field("prove", &self.prove)
            .field("lint", &self.lint)
            .field("tracer", &self.tracer)
            .field("secondary", &self.secondary.is_some())
            .finish()
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            workers: None,
            cache_capacity: 256,
            max_motion_rounds: None,
            verify: false,
            prove: false,
            lint: false,
            tracer: Tracer::disabled(),
            secondary: None,
        }
    }
}

/// A batch optimizer: worker pool plus a result cache that persists across
/// [`Pipeline::run`] calls on the same instance.
pub struct Pipeline {
    config: PipelineConfig,
    cache: ResultCache,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new(PipelineConfig::default())
    }
}

impl Pipeline {
    /// Creates an engine with the given configuration.
    pub fn new(config: PipelineConfig) -> Pipeline {
        let cache = ResultCache::new(config.cache_capacity);
        Pipeline { config, cache }
    }

    /// The shared result cache (its counters survive across batches).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The number of worker threads a run will use.
    pub fn workers(&self) -> usize {
        self.config
            .workers
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .max(1)
    }

    /// Optimizes every job, in parallel, and returns per-job reports in
    /// submission order plus batch aggregates.
    pub fn run(&self, jobs: &[Job]) -> PipelineReport {
        let started = Instant::now();
        let workers = self.workers().min(jobs.len()).max(1);
        let cache_before = self.cache.stats();
        let mut batch = self.config.tracer.span("batch", "batch");
        batch
            .arg("jobs", jobs.len() as i64)
            .arg("workers", workers as i64);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<JobReport>>> = jobs.iter().map(|_| Mutex::new(None)).collect();

        thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    let report = self.run_job(job);
                    *slots[i].lock().unwrap() = Some(report);
                });
            }
        });

        let jobs: Vec<JobReport> = slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("every slot filled"))
            .collect();
        let mut phase_totals = PhaseTimings::default();
        for job in &jobs {
            if let Some(o) = job.optimized() {
                phase_totals.accumulate(&o.timings);
            }
        }
        let cache = self.cache.stats();
        let batch_cache_hits = cache.hits - cache_before.hits;
        let batch_cache_misses = cache.misses - cache_before.misses;
        self.config.tracer.counter(
            "batch",
            "cache",
            &[
                ("hits", batch_cache_hits as i64),
                ("misses", batch_cache_misses as i64),
            ],
        );
        drop(batch);
        PipelineReport {
            workers,
            wall: started.elapsed(),
            cache,
            batch_cache_hits,
            batch_cache_misses,
            phase_totals,
            jobs,
        }
    }

    /// Runs one job through the full engine path — I/O or in-memory parse,
    /// cache lookup (memory, then secondary), optimize on miss — with the
    /// same panic isolation and tracing a batch worker applies. This is the
    /// entry point services use to serve individual requests off the batch
    /// machinery.
    pub fn run_job(&self, job: &Job) -> JobReport {
        let started = Instant::now();
        let mut span = self.config.tracer.span("job", "job");
        let outcome = match catch_unwind(AssertUnwindSafe(|| self.process(job))) {
            Ok(Ok(optimized)) => JobOutcome::Optimized(optimized),
            Ok(Err(message)) => JobOutcome::Failed(message),
            Err(payload) => JobOutcome::Panicked(panic_message(payload.as_ref())),
        };
        if let JobOutcome::Optimized(o) = &outcome {
            span.arg("cache_hit", o.cache_hit as i64);
        }
        drop(span);
        JobReport {
            name: job.name.clone(),
            outcome,
            wall: started.elapsed(),
        }
    }

    fn process(&self, job: &Job) -> Result<OptimizedJob, String> {
        let (kind, text) = match &job.input {
            JobInput::Memory { kind, text } => (*kind, text.clone()),
            JobInput::Path(path) => {
                let kind = SourceKind::from_path(path).ok_or_else(|| {
                    format!(
                        "{}: unknown file type (expected .wl or .ir)",
                        path.display()
                    )
                })?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                (kind, text)
            }
            JobInput::Poison => panic!("poison job '{}'", job.name),
        };
        let graph = compile_source(kind, &text).map_err(|e| format!("{}: {e}", job.name))?;
        let verification =
            (self.config.verify || self.config.prove).then(|| self.verify_graph(&graph));
        let mut optimized = self.optimize_graph(&graph);
        if let Some((verdict, counts)) = verification {
            optimized.verification = Some(verdict);
            optimized.prove = counts;
        }
        Ok(optimized)
    }

    /// Optimizes one already-parsed program through the cache tiers:
    /// in-memory hit, then secondary-cache hit (promoted into memory), then
    /// a fresh optimizer run (offered to the secondary cache). Verification
    /// is a per-request concern and is left `None`; callers wanting it use
    /// [`Pipeline::run_job`].
    pub fn optimize_graph(&self, graph: &FlowGraph) -> OptimizedJob {
        let input_hash = stable_hash(graph);
        if let Some(result) = self.cache.get(input_hash) {
            return OptimizedJob {
                input_hash,
                source: ResultSource::Memory,
                cache_hit: true,
                result,
                timings: PhaseTimings::default(),
                verification: None,
                prove: None,
            };
        }
        if let Some(secondary) = &self.config.secondary {
            if let Some(loaded) = secondary.load(input_hash) {
                let result = self.cache.insert(input_hash, loaded);
                return OptimizedJob {
                    input_hash,
                    source: ResultSource::Secondary,
                    cache_hit: true,
                    result,
                    timings: PhaseTimings::default(),
                    verification: None,
                    prove: None,
                };
            }
        }
        let config = GlobalConfig {
            max_motion_rounds: self.config.max_motion_rounds,
            keep_snapshots: false,
            tracer: self.config.tracer.clone(),
            ..GlobalConfig::default()
        };
        let out = optimize_with(graph, &config);
        let lint = self.config.lint.then(|| {
            let report = am_lint::lint_graph(
                &out.program,
                &am_lint::LintConfig {
                    tracer: self.config.tracer.clone(),
                    srcmap: None,
                },
            );
            am_lint::LintSummary::from(&report)
        });
        // Input shape, for bench reporting: every non-empty block contributes
        // one program point per instruction, empty blocks one virtual point
        // (mirrors `am_dfa::PointGraph::build`).
        let nodes = graph.node_count();
        let mut instrs = 0;
        let mut points = 0;
        for n in graph.nodes() {
            let len = graph.block(n).len();
            instrs += len;
            points += len.max(1);
        }
        let entry = CachedResult {
            canonical: canonical_text(&out.program),
            nodes,
            instrs,
            points,
            init: out.init,
            motion: out.motion,
            flush: out.flush,
            edges_split: out.edges_split,
            timings: out.timings,
            lint,
        };
        if let Some(secondary) = &self.config.secondary {
            secondary.store(input_hash, &entry);
        }
        let result = self.cache.insert(input_hash, entry);
        OptimizedJob {
            input_hash,
            source: ResultSource::Fresh,
            cache_hit: false,
            result,
            timings: out.timings,
            verification: None,
            prove: None,
        }
    }

    /// Differentially validates every optimizer phase on `graph` —
    /// prove-first when [`PipelineConfig::prove`] is on — returning the
    /// verdict plus the per-phase prover verdict counts (when proving).
    fn verify_graph(
        &self,
        graph: &am_ir::FlowGraph,
    ) -> (Result<(), String>, Option<VerdictCounts>) {
        let vcfg = ValidationConfig {
            max_motion_rounds: self.config.max_motion_rounds,
            // The baselines are not what this pipeline ships; verify the
            // phases the batch actually ran.
            check_baselines: false,
            prove: self.config.prove,
            tracer: self.config.tracer.clone(),
            ..ValidationConfig::default()
        };
        let v = validate(graph, &vcfg);
        let counts = self.config.prove.then(|| {
            let mut c = VerdictCounts::default();
            for (_, verdict) in &v.prove_verdicts {
                c.add(*verdict);
            }
            c
        });
        let verdict = match v.failure {
            None => Ok(()),
            Some(f) => Err(format!("{}: {:?}", f.stage, f.kind)),
        };
        (verdict, counts)
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
