//! The `amopt --explain` path: a cache-bypassing optimizer run with
//! provenance capture enabled.
//!
//! Caching and provenance are at odds — a cache hit is precisely a run
//! whose individual decisions were *not* replayed — so explanation always
//! re-optimizes from scratch. The extra cost is the point: `--explain` is a
//! diagnostic mode, not a production path, and the recorder it enables is
//! the same one every ordinary run carries disabled at one branch per
//! potential record.

use am_core::global::{optimize_with, GlobalConfig, GlobalResult};
use am_ir::FlowGraph;
use am_obs::{ProvRecord, ProvRecorder};
use am_trace::Tracer;

/// The outcome of one explained optimization: the ordinary result (with
/// phase snapshots kept) plus the full decision log.
pub struct Explanation {
    /// The optimizer result; `after_init` and `after_motion` are always
    /// populated so callers can replay the decision log phase by phase.
    pub result: GlobalResult,
    /// Every transformation the run performed, in application order.
    pub records: Vec<ProvRecord>,
}

/// Optimizes `graph` with provenance recording enabled, bypassing every
/// cache tier. Snapshots are kept: the records between `after_init` and
/// `after_motion` are exactly the motion-phase decisions, and the records
/// after `after_motion` are exactly the flush decisions.
pub fn explain_graph(graph: &FlowGraph, max_motion_rounds: Option<usize>) -> Explanation {
    let recorder = ProvRecorder::enabled();
    let config = GlobalConfig {
        max_motion_rounds,
        keep_snapshots: true,
        tracer: Tracer::disabled(),
        recorder: recorder.clone(),
        ..GlobalConfig::default()
    };
    let result = optimize_with(graph, &config);
    Explanation {
        result,
        records: recorder.take(),
    }
}
